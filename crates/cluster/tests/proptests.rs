//! Property tests for the cluster simulator: conservation, determinism,
//! and monotone responses to resource changes.

use proptest::prelude::*;
use spca_cluster::{ClusterSim, ClusterSpec, CostModel, Placement, SimConfig};

fn quick_cfg(dim: usize, seed: u64) -> SimConfig {
    SimConfig {
        dim,
        duration: 6.0,
        warmup: 1.0,
        seed,
        ..Default::default()
    }
}

fn placement_strategy() -> impl Strategy<Value = Placement> {
    (1usize..12, 0u8..3).prop_map(|(n, kind)| match kind {
        0 => Placement::single_node(n),
        1 => Placement::round_robin(n, 10),
        _ => Placement::grouped(n, 2, 10),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Completed work never exceeds generated work, per-engine counts sum
    /// consistently, and throughput is non-negative and finite.
    #[test]
    fn conservation(p in placement_strategy(), dim in 100usize..1000, seed in 0u64..1000) {
        let r = ClusterSim::new(
            ClusterSpec::paper(),
            CostModel::paper(),
            p,
            quick_cfg(dim, seed),
        )
        .run();
        prop_assert!(r.tuples_done <= r.generated);
        let per_sum: u64 = r.per_engine.iter().sum();
        prop_assert!(per_sum <= r.generated);
        prop_assert!(r.tuples_done <= per_sum);
        prop_assert!(r.throughput.is_finite() && r.throughput >= 0.0);
        prop_assert!(r.network_bytes >= 0.0);
    }

    /// Identical configuration ⇒ identical result (the DES is a pure
    /// function of its inputs).
    #[test]
    fn determinism(p in placement_strategy(), seed in 0u64..1000) {
        let run = || {
            ClusterSim::new(
                ClusterSpec::paper(),
                CostModel::paper(),
                p.clone(),
                quick_cfg(250, seed),
            )
            .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.tuples_done, b.tuples_done);
        prop_assert_eq!(a.per_engine, b.per_engine);
        prop_assert_eq!(a.syncs, b.syncs);
    }

    /// Slower engines (higher service anchor) never increase throughput.
    #[test]
    fn monotone_in_service_time(p in placement_strategy(), factor in 1.1f64..4.0) {
        let base = CostModel::paper();
        let mut slow = base.clone();
        slow.service_anchor_s *= factor;
        let fast_r = ClusterSim::new(
            ClusterSpec::paper(),
            base,
            p.clone(),
            quick_cfg(250, 7),
        )
        .run();
        let slow_r = ClusterSim::new(
            ClusterSpec::paper(),
            slow,
            p,
            quick_cfg(250, 7),
        )
        .run();
        // Allow a sliver of queueing noise at the boundary.
        prop_assert!(
            slow_r.throughput <= fast_r.throughput * 1.01,
            "slower engines produced more: {} vs {}",
            slow_r.throughput,
            fast_r.throughput
        );
    }

    /// More cores per node never hurt.
    #[test]
    fn monotone_in_cores(n_engines in 2usize..10) {
        let small = ClusterSpec { cores_per_node: 1, ..ClusterSpec::paper() };
        let big = ClusterSpec { cores_per_node: 8, ..ClusterSpec::paper() };
        let p = Placement::single_node(n_engines);
        let r_small = ClusterSim::new(small, CostModel::paper(), p.clone(), quick_cfg(250, 9)).run();
        let r_big = ClusterSim::new(big, CostModel::paper(), p, quick_cfg(250, 9)).run();
        prop_assert!(r_big.throughput >= r_small.throughput * 0.99);
    }
}
