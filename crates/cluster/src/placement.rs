//! Engine-to-node placement strategies (§III-D's configurations).

/// Where each PCA engine lives, plus where the source/split pipeline runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Node of the source + split pipeline.
    pub split_node: usize,
    /// Node of each engine, length = engine count.
    pub engine_nodes: Vec<usize>,
}

impl Placement {
    /// Everything on one node — the paper's "single" configuration, where
    /// engines are fused with the split and exchange tuples in memory.
    pub fn single_node(n_engines: usize) -> Self {
        Placement {
            split_node: 0,
            engine_nodes: vec![0; n_engines],
        }
    }

    /// Engines distributed round-robin over all nodes — the paper's
    /// "distributed" configuration with default placement. Assignment
    /// starts at node 1 so small engine counts are genuinely remote from
    /// the split (node 0 only receives an engine once the others are
    /// occupied), matching the paper's observation that a single
    /// distributed engine pays cross-node messaging overhead.
    pub fn round_robin(n_engines: usize, n_nodes: usize) -> Self {
        assert!(n_nodes >= 1);
        Placement {
            split_node: 0,
            engine_nodes: (0..n_engines).map(|i| (i + 1) % n_nodes).collect(),
        }
    }

    /// Engines grouped `per_node` to a node, filling nodes in order — the
    /// paper's "grouped by 2 on all distributed computing nodes evenly".
    pub fn grouped(n_engines: usize, per_node: usize, n_nodes: usize) -> Self {
        assert!(per_node >= 1 && n_nodes >= 1);
        Placement {
            split_node: 0,
            engine_nodes: (0..n_engines).map(|i| (i / per_node) % n_nodes).collect(),
        }
    }

    /// Number of engines.
    pub fn n_engines(&self) -> usize {
        self.engine_nodes.len()
    }

    /// True if engine `e` is co-located (fused) with the split.
    pub fn is_local(&self, e: usize) -> bool {
        self.engine_nodes[e] == self.split_node
    }

    /// Number of engines reached over the network.
    pub fn n_remote(&self) -> usize {
        (0..self.n_engines()).filter(|&e| !self.is_local(e)).count()
    }

    /// Engines per node, indexed by node.
    pub fn engines_per_node(&self, n_nodes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_nodes];
        for &n in &self.engine_nodes {
            counts[n] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_is_all_local() {
        let p = Placement::single_node(8);
        assert_eq!(p.n_remote(), 0);
        assert!((0..8).all(|e| p.is_local(e)));
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let p = Placement::round_robin(20, 10);
        let counts = p.engines_per_node(10);
        assert!(counts.iter().all(|&c| c == 2), "{counts:?}");
        // Engines on node 0 are local to the split.
        assert_eq!(p.n_remote(), 18);
    }

    #[test]
    fn single_round_robin_engine_is_remote() {
        let p = Placement::round_robin(1, 10);
        assert_eq!(p.n_remote(), 1);
        assert!(!p.is_local(0));
    }

    #[test]
    fn grouped_fills_in_blocks() {
        let p = Placement::grouped(6, 2, 10);
        assert_eq!(p.engine_nodes, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn grouped_wraps_when_exhausted() {
        let p = Placement::grouped(25, 2, 10);
        let counts = p.engines_per_node(10);
        assert_eq!(counts.iter().sum::<usize>(), 25);
        assert!(counts.iter().all(|&c| c >= 2));
    }
}
