//! Elastic (cloud) scaling simulation.
//!
//! The paper repeatedly motivates cloud deployment: "Dynamic scalable
//! Cloud cluster would be able to meet the demand of large data streams
//! realtime processing by adding additional nodes to the processing
//! cluster when needed" (§I, §III-A, §IV). This module simulates that
//! policy loop on top of the DES: the offered load varies over time, a
//! controller watches the achieved/offered ratio over monitoring epochs,
//! and scales the engine pool up (provisioning new engines round-robin
//! over nodes) or down when capacity is wasted.
//!
//! The simulation is epoch-based: each epoch runs the steady-state DES at
//! the current pool size and offered rate — appropriate because the DES
//! reaches steady state in seconds while scaling decisions happen on
//! minutes, so within-epoch transients are negligible.

use crate::placement::Placement;
use crate::sim::{ClusterSim, SimConfig};
use crate::spec::{ClusterSpec, CostModel};

/// Autoscaler policy knobs.
#[derive(Debug, Clone)]
pub struct ElasticPolicy {
    /// Scale up when achieved/offered throughput falls below this.
    pub scale_up_below: f64,
    /// Scale down when the pool could lose an engine and still keep the
    /// achieved/offered ratio above `scale_up_below` with this margin.
    pub scale_down_margin: f64,
    /// Engines added per scale-up decision.
    pub step_up: usize,
    /// Engines removed per scale-down decision.
    pub step_down: usize,
    /// Hard bounds on the pool size.
    pub min_engines: usize,
    /// Upper bound (cloud quota).
    pub max_engines: usize,
    /// Epochs to hold after *any* scaling action before considering the
    /// next one. Without this hysteresis, offered load sitting at a
    /// capacity boundary (or a noisy capacity measurement straddling it)
    /// flips `+step_up`/`-step_down` on consecutive epochs forever.
    pub cooldown_epochs: usize,
}

impl Default for ElasticPolicy {
    /// Defaults shared by the DES simulation and the live autoscaler
    /// (`spca-engine`'s `ElasticSupervisor` builds its policy from this
    /// same `Default`, so the two loops stay calibrated against each
    /// other).
    fn default() -> Self {
        ElasticPolicy {
            scale_up_below: 0.95,
            scale_down_margin: 1.3,
            step_up: 2,
            step_down: 1,
            min_engines: 1,
            max_engines: 40,
            cooldown_epochs: 1,
        }
    }
}

impl ElasticPolicy {
    /// The scaling decision for one monitoring epoch: `+n` to add engines,
    /// `-n` to remove, `0` to hold. Pure and shared: `simulate_elastic`
    /// drives it with DES capacities, the live autoscaler with measured
    /// throughput — same thresholds, same hysteresis, by construction.
    ///
    /// `capacity` estimates sustainable throughput at a pool size (only
    /// consulted for the current and candidate-smaller pools);
    /// `epochs_since_action` is how many epochs ago the last nonzero
    /// action happened (pass `cooldown_epochs` or more when none has).
    pub fn decide(
        &self,
        offered: f64,
        engines: usize,
        mut capacity: impl FnMut(usize) -> f64,
        epochs_since_action: usize,
    ) -> i64 {
        if epochs_since_action < self.cooldown_epochs {
            return 0;
        }
        let achieved = capacity(engines).min(offered);
        let satisfaction = if offered > 0.0 {
            achieved / offered
        } else {
            1.0
        };
        if satisfaction < self.scale_up_below && engines < self.max_engines {
            let next = (engines + self.step_up).min(self.max_engines);
            return (next - engines) as i64;
        }
        if engines > self.min_engines {
            let smaller = engines.saturating_sub(self.step_down).max(self.min_engines);
            if capacity(smaller) >= offered * self.scale_up_below * self.scale_down_margin {
                return -((engines - smaller) as i64);
            }
        }
        0
    }
}

/// One monitoring epoch's outcome.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Offered load this epoch (tuples/s).
    pub offered: f64,
    /// Engines in the pool during the epoch.
    pub engines: usize,
    /// Achieved throughput (tuples/s), capped by capacity.
    pub achieved: f64,
    /// Achieved / offered.
    pub satisfaction: f64,
    /// Scaling action taken *after* this epoch: +n, -n, or 0.
    pub action: i64,
}

/// Simulates the autoscaler against a time-varying offered load.
///
/// `offered_load` gives the demand (tuples/s) per epoch. Returns one
/// report per epoch. The pool starts at `policy.min_engines`.
pub fn simulate_elastic(
    spec: &ClusterSpec,
    cost: &CostModel,
    base_cfg: &SimConfig,
    offered_load: &[f64],
    policy: &ElasticPolicy,
) -> Vec<EpochReport> {
    let mut engines = policy.min_engines.max(1);
    let mut reports = Vec::with_capacity(offered_load.len());

    // Capacity at a pool size is load-independent under the saturated DES;
    // memoize it.
    let mut capacity_cache: std::collections::HashMap<usize, f64> =
        std::collections::HashMap::new();
    let mut capacity = |n: usize| -> f64 {
        *capacity_cache.entry(n).or_insert_with(|| {
            let placement = Placement::round_robin(n, spec.n_nodes);
            ClusterSim::new(spec.clone(), cost.clone(), placement, base_cfg.clone())
                .run()
                .throughput
        })
    };

    // Free to act on the first epoch; afterwards the cooldown counts up
    // from every nonzero action.
    let mut since_action = policy.cooldown_epochs;

    for &offered in offered_load {
        let cap = capacity(engines);
        let achieved = cap.min(offered);
        let satisfaction = if offered > 0.0 {
            achieved / offered
        } else {
            1.0
        };

        // Decide the action for the next epoch.
        let action = policy.decide(offered, engines, &mut capacity, since_action);
        engines = (engines as i64 + action) as usize;
        since_action = if action != 0 {
            0
        } else {
            since_action.saturating_add(1)
        };

        reports.push(EpochReport {
            offered,
            engines: (engines as i64 - action) as usize,
            achieved,
            satisfaction,
            action,
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ClusterSpec, CostModel, SimConfig) {
        (
            ClusterSpec::paper(),
            CostModel::paper(),
            SimConfig {
                duration: 6.0,
                warmup: 1.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn scales_up_under_rising_load() {
        let (spec, cost, cfg) = setup();
        // Demand ramps well past a single engine's ~900 tuples/s.
        let load: Vec<f64> = (0..12).map(|i| 500.0 + 1000.0 * i as f64).collect();
        let reports = simulate_elastic(&spec, &cost, &cfg, &load, &ElasticPolicy::default());
        let first = reports.first().unwrap();
        let last = reports.last().unwrap();
        assert_eq!(first.engines, 1);
        assert!(last.engines > 4, "pool never grew: {:?}", last);
        // Once scaled, late epochs should be mostly satisfied.
        assert!(
            last.satisfaction > 0.8,
            "late satisfaction {:?}",
            last.satisfaction
        );
    }

    #[test]
    fn scales_down_when_load_drops() {
        let (spec, cost, cfg) = setup();
        let mut load = vec![9000.0; 8];
        load.extend(vec![500.0; 8]);
        let reports = simulate_elastic(&spec, &cost, &cfg, &load, &ElasticPolicy::default());
        let peak = reports.iter().map(|r| r.engines).max().unwrap();
        let final_size = reports.last().unwrap().engines;
        assert!(peak >= 6, "never scaled up: peak {peak}");
        assert!(
            final_size < peak,
            "never scaled down: {final_size} vs peak {peak}"
        );
    }

    #[test]
    fn respects_quota() {
        let (spec, cost, cfg) = setup();
        let load = vec![1e9; 6]; // impossible demand
        let policy = ElasticPolicy {
            max_engines: 5,
            ..Default::default()
        };
        let reports = simulate_elastic(&spec, &cost, &cfg, &load, &policy);
        assert!(reports.iter().all(|r| r.engines <= 5));
    }

    #[test]
    fn stable_load_stabilizes_pool() {
        let (spec, cost, cfg) = setup();
        let load = vec![4000.0; 14];
        let reports = simulate_elastic(&spec, &cost, &cfg, &load, &ElasticPolicy::default());
        // After convergence the pool stops oscillating.
        let tail: Vec<usize> = reports.iter().rev().take(4).map(|r| r.engines).collect();
        assert!(
            tail.windows(2)
                .all(|w| (w[0] as i64 - w[1] as i64).abs() <= 1),
            "oscillating pool: {tail:?}"
        );
        assert!(reports.last().unwrap().satisfaction > 0.9);
    }

    /// Drives [`ElasticPolicy::decide`] through an epoch loop against a
    /// per-epoch capacity estimate, mirroring `simulate_elastic`'s
    /// bookkeeping without the DES. Returns the action sequence.
    fn drive_policy(policy: &ElasticPolicy, caps: &[f64], offered: f64) -> Vec<i64> {
        let mut engines = policy.min_engines.max(1);
        let mut since_action = policy.cooldown_epochs;
        caps.iter()
            .map(|&per_engine| {
                let action =
                    policy.decide(offered, engines, |n| per_engine * n as f64, since_action);
                engines = (engines as i64 + action) as usize;
                since_action = if action != 0 {
                    0
                } else {
                    since_action.saturating_add(1)
                };
                action
            })
            .collect()
    }

    #[test]
    fn cooldown_prevents_consecutive_epoch_flapping() {
        // A noisy capacity estimate straddling the boundary: low epochs
        // make the pool look starved (scale up), high epochs make the
        // shrunk pool look sufficient (scale down). Without a cooldown the
        // policy acts on consecutive epochs, flipping forever.
        let caps: Vec<f64> = (0..20)
            .map(|e| if e % 2 == 0 { 900.0 } else { 1300.0 })
            .collect();
        let offered = 2000.0;

        let no_cooldown = ElasticPolicy {
            cooldown_epochs: 0,
            ..Default::default()
        };
        let flappy = drive_policy(&no_cooldown, &caps, offered);
        assert!(
            flappy
                .windows(2)
                .any(|w| w[0] != 0 && w[1] != 0 && w[0].signum() != w[1].signum()),
            "expected consecutive opposite actions without cooldown: {flappy:?}"
        );

        // The default policy (cooldown_epochs >= 1) never acts on two
        // consecutive epochs, so +up/-down flips cannot alternate back to
        // back — and it acts strictly less often overall.
        let policy = ElasticPolicy::default();
        assert!(policy.cooldown_epochs >= 1, "default cooldown must be >= 1");
        let damped = drive_policy(&policy, &caps, offered);
        assert!(
            damped.windows(2).all(|w| w[0] == 0 || w[1] == 0),
            "cooldown violated: {damped:?}"
        );
        let acts = |v: &[i64]| v.iter().filter(|&&a| a != 0).count();
        assert!(
            acts(&damped) < acts(&flappy),
            "cooldown did not reduce churn: {} vs {}",
            acts(&damped),
            acts(&flappy)
        );
    }

    #[test]
    fn simulate_elastic_honors_the_cooldown() {
        let (spec, cost, cfg) = setup();
        // Load swinging across the pool's capacity boundary every epoch.
        let load: Vec<f64> = (0..16)
            .map(|e| if e % 2 == 0 { 6000.0 } else { 1200.0 })
            .collect();
        let reports = simulate_elastic(&spec, &cost, &cfg, &load, &ElasticPolicy::default());
        assert!(
            reports
                .windows(2)
                .all(|w| w[0].action == 0 || w[1].action == 0),
            "consecutive-epoch actions despite cooldown: {:?}",
            reports.iter().map(|r| r.action).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_load_is_fine() {
        let (spec, cost, cfg) = setup();
        let reports = simulate_elastic(&spec, &cost, &cfg, &[0.0, 0.0], &ElasticPolicy::default());
        assert!(reports.iter().all(|r| r.satisfaction == 1.0));
    }
}
