//! Cluster hardware description and per-tuple cost model.

/// Static description of the simulated cluster (paper §III-D).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub n_nodes: usize,
    /// Cores per node (Xeon E31230: 4 cores).
    pub cores_per_node: usize,
    /// NIC bandwidth in bytes/second (1 GbE ≈ 125 MB/s).
    pub nic_bandwidth: f64,
    /// One-way link latency in seconds.
    pub link_latency: f64,
}

impl ClusterSpec {
    /// The paper's test cluster: 10 × quad-core Xeon E31230, 1 GbE.
    pub fn paper() -> Self {
        ClusterSpec {
            n_nodes: 10,
            cores_per_node: 4,
            nic_bandwidth: 125.0e6,
            link_latency: 100e-6,
        }
    }
}

/// Per-tuple cost model. All times in seconds.
///
/// Provenance of the defaults (see crate docs):
/// * `service_anchor_s`: 1/1.9 kHz from Fig. 6's fused single-engine point.
/// * `remote_recv_s`: Fig. 6's distributed single-engine point (≈0.9 kHz ⇒
///   `1/0.9k − service` ≈ 580 µs) rounded to 600 µs.
/// * `split_remote_base_s` + `split_remote_per_conn_s`: chosen so the
///   distributed curve peaks near 20 engines (2/node) at ≈13–18 k tuples/s
///   and degrades at 30, Fig. 6's headline behaviour.
/// * `split_local_s`: in-memory hand-off (fusion), microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Engine CPU time to process one tuple at the anchor dimension
    /// (d = 250) on the paper's hardware.
    pub service_anchor_s: f64,
    /// Anchor dimension for `service_anchor_s`.
    pub anchor_dim: usize,
    /// Measured relative cost curve: `(dim, seconds_per_tuple)` samples
    /// from the real implementation; used for dimension scaling only.
    pub measured: Vec<(usize, f64)>,
    /// Extra engine-side CPU per tuple that arrived over the network.
    pub remote_recv_s: f64,
    /// Split CPU per tuple handed to a fused (same-PE) engine.
    pub split_local_s: f64,
    /// Split CPU per tuple sent to a remote engine (serialization, kernel).
    pub split_remote_base_s: f64,
    /// Additional split CPU per tuple *per open remote connection* — the
    /// no-batching dispatch overhead that saturates the split node as the
    /// engine count grows.
    pub split_remote_per_conn_s: f64,
    /// CPU time for one synchronization merge (low-rank SVD of the joined
    /// factor) at the anchor dimension; scales like the service time.
    pub sync_anchor_s: f64,
    /// Flow-control window: max tuples in flight (queued + serving) per
    /// engine before the split looks elsewhere.
    pub window: usize,
}

impl CostModel {
    /// The paper-calibrated model (see field docs for provenance). The
    /// `measured` table defaults to the paper-implied linear-ish growth and
    /// is meant to be replaced by [`CostModel::with_measurements`] using
    /// real timings from `spca-bench`.
    pub fn paper() -> Self {
        CostModel {
            service_anchor_s: 530e-6,
            anchor_dim: 250,
            // Fallback dimension curve implied by Fig. 7's per-thread
            // rates (roughly linear in d over 250–2000).
            measured: vec![
                (250, 530e-6),
                (500, 1.05e-3),
                (1000, 2.1e-3),
                (1500, 3.2e-3),
                (2000, 4.2e-3),
            ],
            remote_recv_s: 600e-6,
            split_local_s: 5e-6,
            split_remote_base_s: 30e-6,
            split_remote_per_conn_s: 2e-6,
            sync_anchor_s: 2.0e-3,
            window: 64,
        }
    }

    /// Replaces the dimension-scaling table with real measurements
    /// (`(dim, seconds_per_tuple)` on the benchmarking machine). The
    /// absolute anchor stays pinned to the paper's hardware; only the
    /// *shape* `t(d)/t(anchor)` is taken from the measurements.
    pub fn with_measurements(mut self, measured: Vec<(usize, f64)>) -> Self {
        assert!(!measured.is_empty(), "need at least one measurement");
        self.measured = measured;
        self.measured.sort_by_key(|&(d, _)| d);
        self
    }

    /// Interpolated raw measurement at dimension `d` (linear between
    /// samples, clamped at the ends).
    fn measured_at(&self, d: usize) -> f64 {
        let pts = &self.measured;
        if d <= pts[0].0 {
            // Extrapolate proportionally below the first sample: per-tuple
            // cost is dominated by O(d) work at small p.
            return pts[0].1 * d as f64 / pts[0].0 as f64;
        }
        for w in pts.windows(2) {
            let (d0, t0) = w[0];
            let (d1, t1) = w[1];
            if d <= d1 {
                let f = (d - d0) as f64 / (d1 - d0) as f64;
                return t0 + f * (t1 - t0);
            }
        }
        // Extrapolate beyond the last sample linearly from the final pair.
        let (d0, t0) = pts[pts.len() - 2];
        let (d1, t1) = pts[pts.len() - 1];
        let slope = (t1 - t0) / (d1 - d0) as f64;
        t1 + slope * (d - d1) as f64
    }

    /// Engine service time for one `d`-dimensional tuple on the simulated
    /// hardware: paper anchor × measured shape.
    pub fn service_time(&self, d: usize) -> f64 {
        let shape = self.measured_at(d) / self.measured_at(self.anchor_dim);
        self.service_anchor_s * shape
    }

    /// CPU time of one synchronization merge at dimension `d`.
    pub fn sync_time(&self, d: usize) -> f64 {
        let shape = self.measured_at(d) / self.measured_at(self.anchor_dim);
        self.sync_anchor_s * shape
    }

    /// Split service time for one tuple given the target kind and the
    /// number of open remote connections.
    pub fn split_time(&self, remote: bool, n_remote_conns: usize) -> f64 {
        if remote {
            self.split_remote_base_s + self.split_remote_per_conn_s * n_remote_conns as f64
        } else {
            self.split_local_s
        }
    }

    /// Serialized size of one `d`-dimensional data tuple on the wire.
    pub fn tuple_bytes(&self, d: usize) -> f64 {
        16.0 + 8.0 * d as f64
    }

    /// Serialized size of an exchanged eigensystem (`p` components +
    /// mean + running sums).
    pub fn eigensystem_bytes(&self, d: usize, p: usize) -> f64 {
        8.0 * (d * p + d + p + 8) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_matches_hardware_description() {
        let s = ClusterSpec::paper();
        assert_eq!(s.n_nodes, 10);
        assert_eq!(s.cores_per_node, 4);
        assert!((s.nic_bandwidth - 125e6).abs() < 1.0);
    }

    #[test]
    fn service_time_at_anchor_is_anchor() {
        let c = CostModel::paper();
        assert!((c.service_time(250) - 530e-6).abs() < 1e-9);
    }

    #[test]
    fn service_time_monotone_in_dimension() {
        let c = CostModel::paper();
        let mut prev = 0.0;
        for d in [100, 250, 500, 750, 1000, 1500, 2000, 3000] {
            let t = c.service_time(d);
            assert!(t > prev, "d={d}: {t} <= {prev}");
            prev = t;
        }
    }

    #[test]
    fn measurements_rescale_shape_not_anchor() {
        // Measurements 10x faster than the paper's hardware must leave the
        // anchor-dim service time unchanged (absolute scale is pinned).
        let c = CostModel::paper().with_measurements(vec![(250, 53e-6), (500, 106e-6)]);
        assert!((c.service_time(250) - 530e-6).abs() < 1e-9);
        assert!((c.service_time(500) - 1060e-6).abs() < 1e-9);
    }

    #[test]
    fn split_time_grows_with_connections() {
        let c = CostModel::paper();
        assert!(c.split_time(true, 30) > c.split_time(true, 5));
        assert!(c.split_time(false, 30) < c.split_time(true, 1));
    }

    #[test]
    fn interpolation_between_samples() {
        let c = CostModel::paper().with_measurements(vec![(100, 1e-3), (300, 3e-3)]);
        let mid = c.measured_at(200);
        assert!((mid - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_beyond_last_sample() {
        let c = CostModel::paper().with_measurements(vec![(100, 1e-3), (200, 2e-3)]);
        assert!((c.measured_at(400) - 4e-3).abs() < 1e-9);
    }

    #[test]
    fn tuple_bytes_match_engine_estimate() {
        // Must agree with spca-streams' DataTuple::wire_bytes for unmasked
        // tuples (16-byte header + 8 bytes/value).
        let c = CostModel::paper();
        assert_eq!(c.tuple_bytes(250) as u64, 16 + 2000);
    }
}
