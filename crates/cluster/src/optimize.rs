//! Placement search.
//!
//! §III-D: "The optimal components placement scheme would change depending
//! on the number of nodes, data vector dimensions number and hardware
//! configuration. It makes it hard trying to tune the application for any
//! possible task" — and the conclusion calls for "further improvements of
//! the elements placement". This module automates the tuning the paper did
//! by hand: a simple stochastic hill-climb over engine→node assignments,
//! scoring each candidate with the discrete-event simulator.

use crate::placement::Placement;
use crate::sim::{ClusterSim, SimConfig};
use crate::spec::{ClusterSpec, CostModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a placement search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best placement found.
    pub placement: Placement,
    /// Its simulated throughput (tuples/s).
    pub throughput: f64,
    /// Throughput of the starting placement.
    pub initial_throughput: f64,
    /// Throughput after each accepted move.
    pub history: Vec<f64>,
    /// Candidate evaluations performed.
    pub evaluations: usize,
}

/// Hill-climbs engine placement starting from `initial`, evaluating up to
/// `budget` candidate moves (each one DES run). A move reassigns one
/// random engine to a random node; improvements are accepted.
///
/// The simulation config should use a modest `duration` (≈10 s simulated)
/// — the score only needs to rank placements, not be publication-grade.
pub fn optimize_placement(
    spec: &ClusterSpec,
    cost: &CostModel,
    initial: Placement,
    sim_cfg: &SimConfig,
    budget: usize,
    seed: u64,
) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let score = |p: &Placement, salt: u64| {
        let mut cfg = sim_cfg.clone();
        // Decorrelate the split's random choices from the search's; keep
        // per-candidate determinism.
        cfg.seed = sim_cfg.seed ^ salt;
        ClusterSim::new(spec.clone(), cost.clone(), p.clone(), cfg)
            .run()
            .throughput
    };

    let mut best = initial;
    let initial_throughput = score(&best, 0);
    let mut best_score = initial_throughput;
    let mut history = vec![best_score];
    let mut evaluations = 1;

    for step in 0..budget {
        let mut cand = best.clone();
        let e = rng.gen_range(0..cand.n_engines());
        let node = rng.gen_range(0..spec.n_nodes);
        if cand.engine_nodes[e] == node {
            continue;
        }
        cand.engine_nodes[e] = node;
        let s = score(&cand, step as u64 + 1);
        evaluations += 1;
        if s > best_score {
            best = cand;
            best_score = s;
            history.push(s);
        }
    }

    SearchResult {
        placement: best,
        throughput: best_score,
        initial_throughput,
        history,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            duration: 8.0,
            warmup: 2.0,
            ..Default::default()
        }
    }

    #[test]
    fn search_never_regresses() {
        let spec = ClusterSpec::paper();
        let cost = CostModel::paper();
        let res = optimize_placement(
            &spec,
            &cost,
            Placement::round_robin(8, spec.n_nodes),
            &quick_cfg(),
            12,
            1,
        );
        assert!(res.throughput >= res.initial_throughput);
        assert!(res.evaluations >= 2);
        // History is monotone non-decreasing by construction.
        for w in res.history.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn search_escapes_pathological_start() {
        // All 8 engines piled on node 1: four must queue for cores. A few
        // moves should spread them out and beat the start clearly.
        let spec = ClusterSpec::paper();
        let cost = CostModel::paper();
        let bad = Placement {
            split_node: 0,
            engine_nodes: vec![1; 8],
        };
        let res = optimize_placement(&spec, &cost, bad, &quick_cfg(), 40, 2);
        assert!(
            res.throughput > 1.2 * res.initial_throughput,
            "no improvement: {} vs {}",
            res.throughput,
            res.initial_throughput
        );
        // The best placement uses more than one node.
        let used: std::collections::HashSet<_> = res.placement.engine_nodes.iter().collect();
        assert!(used.len() > 1);
    }

    #[test]
    fn zero_budget_returns_initial() {
        let spec = ClusterSpec::paper();
        let cost = CostModel::paper();
        let start = Placement::round_robin(4, spec.n_nodes);
        let res = optimize_placement(&spec, &cost, start.clone(), &quick_cfg(), 0, 3);
        assert_eq!(res.placement, start);
        assert_eq!(res.evaluations, 1);
    }
}
