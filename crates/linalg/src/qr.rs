//! Householder thin QR factorization.
//!
//! Used to (re-)orthonormalize eigenbases after merges and gap-filled
//! updates, where accumulated floating-point drift would otherwise let the
//! basis lose orthogonality over millions of streaming updates.

use crate::mat::Mat;
use crate::vecops;
use crate::{LinalgError, Result};

/// Thin QR factorization `A = Q R` with `Q` `m × n` column-orthonormal and
/// `R` `n × n` upper-triangular (requires `m ≥ n`).
#[derive(Debug, Clone)]
pub struct ThinQr {
    /// Column-orthonormal factor, same shape as the input.
    pub q: Mat,
    /// Upper-triangular factor.
    pub r: Mat,
}

/// Reusable buffers for [`thin_qr_into`].
///
/// Householder vectors are stored flat with stride `m` (reflector `k`
/// occupies `vs[k·m .. k·m + (m−k)]`) instead of one `Vec` per column, so
/// repeated factorizations of same-shaped inputs allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct QrWorkspace {
    /// Column-orthonormal factor (`m × n`), valid after a successful call.
    pub q: Mat,
    /// Upper-triangular factor (`n × n`), valid after a successful call.
    pub r: Mat,
    w: Mat,
    betas: Vec<f64>,
    vs: Vec<f64>,
}

/// Computes the thin QR of `a` by Householder reflections.
///
/// Returns an error for wide matrices (`rows < cols`) or non-finite input.
pub fn thin_qr(a: &Mat) -> Result<ThinQr> {
    let mut ws = QrWorkspace::default();
    thin_qr_into(a, &mut ws)?;
    Ok(ThinQr { q: ws.q, r: ws.r })
}

/// Computes the thin QR of `a` into the workspace (semantics of
/// [`thin_qr`], which is a thin wrapper over this).
///
/// Results land in `ws.q` and `ws.r`; on error their contents are
/// unspecified.
pub fn thin_qr_into(a: &Mat, ws: &mut QrWorkspace) -> Result<()> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::ShapeMismatch {
            expected: "rows >= cols for thin QR".to_string(),
            got: (m, n),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NotFinite);
    }

    // Work in-place on a copy; Householder vectors go to the flat `vs`
    // store, their scale factors to `betas`.
    let QrWorkspace { q, r, w, betas, vs } = ws;
    w.copy_from(a);
    betas.clear();
    betas.resize(n, 0.0);
    vs.clear();
    vs.resize(n * m, 0.0);

    for k in 0..n {
        let off = k * m;
        // Build the Householder vector for column k, rows k..m.
        {
            let x = &w.col(k)[k..];
            let alpha = -x[0].signum() * vecops::norm(x);
            let v = &mut vs[off..off + (m - k)];
            v.copy_from_slice(x);
            if alpha != 0.0 {
                v[0] -= alpha;
            }
            let vnorm2 = vecops::norm_sq(v);
            betas[k] = if vnorm2 > 0.0 { 2.0 / vnorm2 } else { 0.0 };
        }

        // Apply the reflector to the remaining columns (k..n).
        let beta = betas[k];
        if beta > 0.0 {
            let v = &vs[off..off + (m - k)];
            for j in k..n {
                let cj = &mut w.col_mut(j)[k..];
                let t = beta * vecops::dot(v, cj);
                vecops::axpy(-t, v, cj);
            }
        }
    }

    // Extract R (upper n × n block of the transformed matrix).
    r.reset_zeroed(n, n);
    for j in 0..n {
        for i in 0..=j {
            r[(i, j)] = w[(i, j)];
        }
    }

    // Form the thin Q by applying the reflectors, in reverse, to the first
    // n columns of the identity.
    q.reset_zeroed(m, n);
    for j in 0..n {
        q[(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        let beta = betas[k];
        if beta == 0.0 {
            continue;
        }
        let v = &vs[k * m..k * m + (m - k)];
        for j in 0..n {
            let cj = &mut q.col_mut(j)[k..];
            let t = beta * vecops::dot(v, cj);
            vecops::axpy(-t, v, cj);
        }
    }

    Ok(())
}

/// Orthonormalizes the columns of `a` (thin Q of its QR), fixing signs so
/// the diagonal of R is non-negative — this makes the result deterministic
/// and keeps eigenvector signs stable across repeated renormalizations.
pub fn orthonormalize(a: &Mat) -> Result<Mat> {
    let ThinQr { mut q, r } = thin_qr(a)?;
    for j in 0..q.cols() {
        if r[(j, j)] < 0.0 {
            vecops::scale(q.col_mut(j), -1.0);
        }
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fill_standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Mat::zeros(rows, cols);
        fill_standard_normal(&mut rng, m.as_mut_slice());
        m
    }

    fn assert_orthonormal(q: &Mat, tol: f64) {
        let g = q.gram();
        for i in 0..q.cols() {
            for j in 0..q.cols() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g[(i, j)] - want).abs() < tol,
                    "G[{i},{j}] = {} (want {want})",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn qr_reconstructs() {
        let a = random(20, 6, 11);
        let ThinQr { q, r } = thin_qr(&a).unwrap();
        let qr = q.matmul(&r).unwrap();
        assert!(qr.sub(&a).unwrap().max_abs() < 1e-10);
        assert_orthonormal(&q, 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = random(10, 5, 12);
        let ThinQr { r, .. } = thin_qr(&a).unwrap();
        for j in 0..5 {
            for i in (j + 1)..5 {
                assert!(r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn square_qr_works() {
        let a = random(6, 6, 13);
        let ThinQr { q, r } = thin_qr(&a).unwrap();
        assert!(q.matmul(&r).unwrap().sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Mat::zeros(2, 5);
        assert!(thin_qr(&a).is_err());
    }

    #[test]
    fn non_finite_rejected() {
        let mut a = Mat::zeros(3, 2);
        a[(0, 0)] = f64::NAN;
        assert_eq!(thin_qr(&a).unwrap_err(), LinalgError::NotFinite);
    }

    #[test]
    fn orthonormalize_preserves_span_and_signs() {
        // A matrix whose columns are already orthonormal should come back
        // unchanged (up to tolerance) thanks to the sign fix.
        let a = random(30, 4, 14);
        let q1 = orthonormalize(&a).unwrap();
        let q2 = orthonormalize(&q1).unwrap();
        assert!(q2.sub(&q1).unwrap().max_abs() < 1e-10);
        assert_orthonormal(&q1, 1e-10);
    }

    #[test]
    fn rank_deficient_input_yields_finite_q() {
        // Two identical columns: Q must still be finite and orthonormal in
        // its leading column.
        let mut a = Mat::zeros(5, 2);
        for i in 0..5 {
            a[(i, 0)] = (i + 1) as f64;
            a[(i, 1)] = (i + 1) as f64;
        }
        let ThinQr { q, .. } = thin_qr(&a).unwrap();
        assert!(q.is_finite());
        assert!((vecops::norm(q.col(0)) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn workspace_reuse_across_shapes_matches_fresh() {
        let mut ws = QrWorkspace::default();
        for (rows, cols, seed) in [
            (20usize, 6usize, 41u64),
            (6, 6, 42),
            (9, 2, 43),
            (4, 0, 44),
            (15, 7, 45),
        ] {
            let a = random(rows, cols, seed);
            thin_qr_into(&a, &mut ws).unwrap();
            let fresh = thin_qr(&a).unwrap();
            assert_eq!(ws.q, fresh.q, "{rows}x{cols}");
            assert_eq!(ws.r, fresh.r, "{rows}x{cols}");
        }
    }
}
