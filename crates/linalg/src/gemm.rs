//! Blocked and multi-threaded general matrix multiply.
//!
//! The batch-PCA baselines form `d × d` covariance matrices from sample
//! blocks; that is the only place a large GEMM appears. The inner block
//! computation lives in the runtime-dispatched [`crate::kernels`] layer —
//! a register-blocked 8×4 AVX2+FMA micro-kernel with B-panel packing where
//! the CPU supports it, the original `j-k-i` axpy loop (column-major
//! friendly: the innermost loop runs down a contiguous output column)
//! otherwise — composed here with column-parallelism via crossbeam scoped
//! threads.

use crate::kernels;
use crate::mat::Mat;
use crate::{LinalgError, Result};
use std::sync::OnceLock;

/// Serial blocked GEMM: `a * b`.
pub fn gemm(a: &Mat, b: &Mat) -> Result<Mat> {
    check(a, b)?;
    let mut out = Mat::zeros(a.rows(), b.cols());
    gemm_into_cols(a, b, out.as_mut_slice(), 0, b.cols());
    Ok(out)
}

/// Minimum `m·n·k` flop count before [`par_gemm`] spawns worker threads.
///
/// Below this, thread spawn and join overhead (tens of microseconds)
/// exceeds the multiply itself, so the serial kernel wins. 2^18 ≈ 262k
/// multiply-adds is roughly the crossover on commodity cores.
pub const PAR_GEMM_MIN_WORK: usize = 1 << 18;

/// Multi-threaded GEMM: `a * b` with output columns partitioned over
/// `threads` workers. Falls back to the serial kernel for outputs smaller
/// than [`PAR_GEMM_MIN_WORK`], where thread spawn overhead would dominate.
/// Passing `threads == 0` uses the machine's available parallelism.
pub fn par_gemm(a: &Mat, b: &Mat, threads: usize) -> Result<Mat> {
    check(a, b)?;
    let (m, n) = (a.rows(), b.cols());
    let work = m * n * a.cols();
    let threads = if threads == 0 {
        machine_parallelism()
    } else {
        threads
    };
    let threads = threads.min(n.max(1));
    if threads == 1 || work < PAR_GEMM_MIN_WORK {
        return gemm(a, b);
    }
    let mut out = Mat::zeros(m, n);
    // Split the output buffer into per-thread contiguous column bands. Each
    // band is an independent &mut, so the scope below is data-race free by
    // construction.
    let cols_per = n.div_ceil(threads);
    let bands: Vec<(usize, &mut [f64])> = {
        let mut rest = out.as_mut_slice();
        let mut bands = Vec::new();
        let mut c0 = 0;
        while c0 < n {
            let width = cols_per.min(n - c0);
            let (band, tail) = rest.split_at_mut(width * m);
            bands.push((c0, band));
            rest = tail;
            c0 += width;
        }
        bands
    };
    crossbeam::scope(|s| {
        for (c0, band) in bands {
            let width = band.len() / m;
            s.spawn(move |_| {
                gemm_into_cols(a, b, band, c0, width);
            });
        }
    })
    .expect("gemm worker panicked");
    Ok(out)
}

/// Cached `available_parallelism`: the OS query costs a syscall, and
/// `par_gemm` sits inside per-tuple merge paths — ask once, reuse forever.
fn machine_parallelism() -> usize {
    static PAR: OnceLock<usize> = OnceLock::new();
    *PAR.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Computes columns `[c0, c0+width)` of `a*b` into `band` (column-major,
/// `a.rows() * width` long) via the dispatched kernel block.
fn gemm_into_cols(a: &Mat, b: &Mat, band: &mut [f64], c0: usize, width: usize) {
    let k = a.cols();
    let bpan = &b.as_slice()[c0 * k..(c0 + width) * k];
    kernels::gemm_block(a.rows(), k, width, a.as_slice(), bpan, band);
}

/// Symmetric rank-k style product `aᵀ a`, exploiting symmetry.
pub fn ata(a: &Mat) -> Mat {
    a.gram()
}

fn check(a: &Mat, b: &Mat) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("inner dims equal ({} cols vs {} rows)", a.cols(), b.rows()),
            got: b.shape(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fill_standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    fn random(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Mat::zeros(rows, cols);
        fill_standard_normal(&mut rng, m.as_mut_slice());
        m
    }

    #[test]
    fn gemm_matches_naive() {
        let a = random(7, 5, 1);
        let b = random(5, 9, 2);
        let got = gemm(&a, &b).unwrap();
        let want = naive(&a, &b);
        assert!(got.sub(&want).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn par_gemm_matches_serial() {
        let a = random(64, 96, 3);
        let b = random(96, 80, 4);
        let serial = gemm(&a, &b).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = par_gemm(&a, &b, threads).unwrap();
            assert!(
                par.sub(&serial).unwrap().max_abs() < 1e-10,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = random(6, 6, 5);
        let i = Mat::identity(6);
        let prod = gemm(&a, &i).unwrap();
        assert!(prod.sub(&a).unwrap().max_abs() < 1e-14);
    }

    #[test]
    fn gemm_shape_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(4, 2);
        assert!(gemm(&a, &b).is_err());
    }

    #[test]
    fn par_gemm_zero_threads_uses_available_parallelism() {
        let a = random(64, 96, 7);
        let b = random(96, 80, 8);
        let serial = gemm(&a, &b).unwrap();
        let par = par_gemm(&a, &b, 0).unwrap();
        assert!(par.sub(&serial).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn par_gemm_cutoff_boundary() {
        // Shapes straddling PAR_GEMM_MIN_WORK: just below stays serial, just
        // above goes parallel; both must agree with the serial kernel.
        let k = 64;
        let m = 64;
        let n_below = (PAR_GEMM_MIN_WORK / (m * k)).saturating_sub(1); // work < cutoff
        let n_above = PAR_GEMM_MIN_WORK / (m * k); // work == cutoff
        assert!(m * n_below * k < PAR_GEMM_MIN_WORK);
        assert!(m * n_above * k >= PAR_GEMM_MIN_WORK);
        for n in [n_below, n_above] {
            let a = random(m, k, 9);
            let b = random(k, n, 10);
            let serial = gemm(&a, &b).unwrap();
            let par = par_gemm(&a, &b, 4).unwrap();
            assert!(par.sub(&serial).unwrap().max_abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn ata_matches_explicit() {
        let a = random(10, 4, 6);
        let want = gemm(&a.transpose(), &a).unwrap();
        let got = ata(&a);
        assert!(got.sub(&want).unwrap().max_abs() < 1e-12);
    }
}
