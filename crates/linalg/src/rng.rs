//! Gaussian sampling helpers.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! standard-normal sampler (polar Box–Muller) lives here. Workload
//! generators across the workspace use these helpers for reproducible,
//! seeded noise.

use rand::Rng;

/// Draws one standard-normal sample using the polar Box–Muller method.
///
/// The method draws pairs; the spare is intentionally discarded to keep the
/// API stateless (the cost is negligible next to the PCA update itself).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws `N(mu, sigma²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * standard_normal(rng)
}

/// Fills a slice with i.i.d. standard normals.
pub fn fill_standard_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for v in out {
        *v = standard_normal(rng);
    }
}

/// Returns a fresh vector of `n` i.i.d. standard normals.
pub fn standard_normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    fill_standard_normal(rng, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples = standard_normal_vec(&mut rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a = standard_normal_vec(&mut StdRng::seed_from_u64(1), 16);
        let b = standard_normal_vec(&mut StdRng::seed_from_u64(1), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn all_samples_finite() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(standard_normal_vec(&mut rng, 10_000)
            .iter()
            .all(|v| v.is_finite()));
    }
}
