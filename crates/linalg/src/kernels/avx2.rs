//! AVX2 + FMA kernels (x86-64 only).
//!
//! Every function here carries `#[target_feature(enable = "avx2,fma")]`
//! and is `unsafe` to call: the dispatcher guarantees runtime feature
//! detection has succeeded before any of them run. Loads and stores are
//! unaligned (`loadu`/`storeu`) — `Vec<f64>` gives 16-byte alignment at
//! best, and on every AVX2-era core unaligned 256-bit access to
//! cache-resident data costs the same as aligned.
//!
//! Determinism: each kernel fixes its lane count, unroll factor and
//! reduction order, so a given input produces bit-identical output on
//! every run. Results differ from the scalar backend in the last bits
//! because FMA contracts `a*b + c` into a single rounding and the
//! reductions sum in 4-lane stripes.

use std::arch::x86_64::*;

/// Sums the four lanes of `v` in a fixed order: `(l0 + l1) + (l2 + l3)`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v); // lanes 0,1
    let hi = _mm256_extractf128_pd(v, 1); // lanes 2,3
    let lo_sum = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)); // l0 + l1
    let hi_sum = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi)); // l2 + l3
    _mm_cvtsd_f64(_mm_add_sd(lo_sum, hi_sum))
}

/// Dot product: 16 elements per iteration across four independent FMA
/// accumulators (two FMA ports × ~4-cycle latency needs ≥8 in flight).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut acc2 = _mm256_setzero_pd();
    let mut acc3 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 16 <= n {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc0);
        acc1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(ap.add(i + 4)),
            _mm256_loadu_pd(bp.add(i + 4)),
            acc1,
        );
        acc2 = _mm256_fmadd_pd(
            _mm256_loadu_pd(ap.add(i + 8)),
            _mm256_loadu_pd(bp.add(i + 8)),
            acc2,
        );
        acc3 = _mm256_fmadd_pd(
            _mm256_loadu_pd(ap.add(i + 12)),
            _mm256_loadu_pd(bp.add(i + 12)),
            acc3,
        );
        i += 16;
    }
    while i + 4 <= n {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc0);
        i += 4;
    }
    let acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
    let mut s = hsum(acc);
    while i < n {
        s += *ap.add(i) * *bp.add(i);
        i += 1;
    }
    s
}

/// `y += alpha * x`, 8 elements per iteration.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let av = _mm256_set1_pd(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let y0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
        let y1 = _mm256_fmadd_pd(
            av,
            _mm256_loadu_pd(xp.add(i + 4)),
            _mm256_loadu_pd(yp.add(i + 4)),
        );
        _mm256_storeu_pd(yp.add(i), y0);
        _mm256_storeu_pd(yp.add(i + 4), y1);
        i += 8;
    }
    while i + 4 <= n {
        let y0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
        _mm256_storeu_pd(yp.add(i), y0);
        i += 4;
    }
    while i < n {
        *yp.add(i) += alpha * *xp.add(i);
        i += 1;
    }
}

/// In-place scalar multiply, 8 elements per iteration.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn scale(a: &mut [f64], s: f64) {
    let n = a.len();
    let sv = _mm256_set1_pd(s);
    let ap = a.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        _mm256_storeu_pd(ap.add(i), _mm256_mul_pd(sv, _mm256_loadu_pd(ap.add(i))));
        _mm256_storeu_pd(
            ap.add(i + 4),
            _mm256_mul_pd(sv, _mm256_loadu_pd(ap.add(i + 4))),
        );
        i += 8;
    }
    while i + 4 <= n {
        _mm256_storeu_pd(ap.add(i), _mm256_mul_pd(sv, _mm256_loadu_pd(ap.add(i))));
        i += 4;
    }
    while i < n {
        *ap.add(i) *= s;
        i += 1;
    }
}

/// Plane rotation `[x; y] ← [c·x − s·y; s·x + c·y]` — the Jacobi sweep
/// inner loop, fused so both columns stream through registers once.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn rotate2(x: &mut [f64], y: &mut [f64], c: f64, s: f64) {
    let n = x.len();
    let cv = _mm256_set1_pd(c);
    let sv = _mm256_set1_pd(s);
    let (xp, yp) = (x.as_mut_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(xp.add(i));
        let yv = _mm256_loadu_pd(yp.add(i));
        // c·x − s·y with one rounding in the multiply-subtract.
        let nx = _mm256_fmsub_pd(cv, xv, _mm256_mul_pd(sv, yv));
        let ny = _mm256_fmadd_pd(sv, xv, _mm256_mul_pd(cv, yv));
        _mm256_storeu_pd(xp.add(i), nx);
        _mm256_storeu_pd(yp.add(i), ny);
        i += 4;
    }
    while i < n {
        let xv = *xp.add(i);
        let yv = *yp.add(i);
        *xp.add(i) = c * xv - s * yv;
        *yp.add(i) = s * xv + c * yv;
        i += 1;
    }
}

/// GEMM block `out += A · B` via a register-blocked 8×4 micro-kernel.
///
/// The B panel is packed column-quad-interleaved into `pack` (reused
/// across calls by the dispatcher's per-thread buffer): entry
/// `pack[4·l + jj]` is `B[l, j0 + jj]`, so the micro-kernel's inner loop
/// reads four consecutive doubles per `l` — one cache line feeds four
/// broadcasts. A needs no packing: an 8-row stripe of one A column is
/// already contiguous in the column-major layout.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gemm_block(
    m: usize,
    k: usize,
    width: usize,
    a: &[f64],
    bpan: &[f64],
    out: &mut [f64],
    pack: &mut Vec<f64>,
) {
    pack.clear();
    pack.resize(4 * k, 0.0);
    let ap = a.as_ptr();
    let mut j0 = 0;
    while j0 + 4 <= width {
        // Pack the 4-column B strip.
        for l in 0..k {
            for jj in 0..4 {
                *pack.get_unchecked_mut(4 * l + jj) = *bpan.get_unchecked((j0 + jj) * k + l);
            }
        }
        let pb = pack.as_ptr();
        let mut i0 = 0;
        while i0 + 8 <= m {
            micro_8x4(m, k, ap.add(i0), pb, out.as_mut_ptr().add(j0 * m + i0));
            i0 += 8;
        }
        // Remainder rows of this strip: scalar per-column accumulation.
        if i0 < m {
            for jj in 0..4 {
                let col = out.as_mut_ptr().add((j0 + jj) * m);
                for l in 0..k {
                    let b = *pb.add(4 * l + jj);
                    if b != 0.0 {
                        for i in i0..m {
                            *col.add(i) += b * *ap.add(l * m + i);
                        }
                    }
                }
            }
        }
        j0 += 4;
    }
    // Remainder columns: one vectorized axpy chain per column.
    for j in j0..width {
        let col = std::slice::from_raw_parts_mut(out.as_mut_ptr().add(j * m), m);
        for l in 0..k {
            let b = *bpan.get_unchecked(j * k + l);
            if b != 0.0 {
                axpy(b, std::slice::from_raw_parts(ap.add(l * m), m), col);
            }
        }
    }
}

/// 8×4 register tile: 8 accumulator registers (two 4-lane halves × four
/// output columns) stay resident across the whole k loop; each iteration
/// issues 2 A loads, 4 B broadcasts and 8 FMAs.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_8x4(m: usize, k: usize, a: *const f64, pb: *const f64, c: *mut f64) {
    let mut c00 = _mm256_loadu_pd(c);
    let mut c01 = _mm256_loadu_pd(c.add(4));
    let mut c10 = _mm256_loadu_pd(c.add(m));
    let mut c11 = _mm256_loadu_pd(c.add(m + 4));
    let mut c20 = _mm256_loadu_pd(c.add(2 * m));
    let mut c21 = _mm256_loadu_pd(c.add(2 * m + 4));
    let mut c30 = _mm256_loadu_pd(c.add(3 * m));
    let mut c31 = _mm256_loadu_pd(c.add(3 * m + 4));
    for l in 0..k {
        let a0 = _mm256_loadu_pd(a.add(l * m));
        let a1 = _mm256_loadu_pd(a.add(l * m + 4));
        let b0 = _mm256_set1_pd(*pb.add(4 * l));
        let b1 = _mm256_set1_pd(*pb.add(4 * l + 1));
        let b2 = _mm256_set1_pd(*pb.add(4 * l + 2));
        let b3 = _mm256_set1_pd(*pb.add(4 * l + 3));
        c00 = _mm256_fmadd_pd(a0, b0, c00);
        c01 = _mm256_fmadd_pd(a1, b0, c01);
        c10 = _mm256_fmadd_pd(a0, b1, c10);
        c11 = _mm256_fmadd_pd(a1, b1, c11);
        c20 = _mm256_fmadd_pd(a0, b2, c20);
        c21 = _mm256_fmadd_pd(a1, b2, c21);
        c30 = _mm256_fmadd_pd(a0, b3, c30);
        c31 = _mm256_fmadd_pd(a1, b3, c31);
    }
    _mm256_storeu_pd(c, c00);
    _mm256_storeu_pd(c.add(4), c01);
    _mm256_storeu_pd(c.add(m), c10);
    _mm256_storeu_pd(c.add(m + 4), c11);
    _mm256_storeu_pd(c.add(2 * m), c20);
    _mm256_storeu_pd(c.add(2 * m + 4), c21);
    _mm256_storeu_pd(c.add(3 * m), c30);
    _mm256_storeu_pd(c.add(3 * m + 4), c31);
}
