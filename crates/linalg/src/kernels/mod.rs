//! Hardware-aware kernel layer: runtime-dispatched SIMD implementations of
//! the innermost vector/matrix loops.
//!
//! Every spectrum that enters the streaming update is ground through `dot`,
//! `axpy` and the GEMM inner loop; auto-vectorization of the portable code
//! reaches the 128-bit baseline (SSE2) but never uses AVX2 or fused
//! multiply-add, because those are not in the x86-64 target baseline. This
//! module closes that gap with explicit `std::arch` kernels selected *at
//! runtime*:
//!
//! * [`Backend::Scalar`] — the unrolled portable code, verbatim from the
//!   pre-dispatch implementation (see [`scalar`]'s private module docs). It
//!   is always available and is the only path on non-x86-64 targets.
//! * [`Backend::Avx2Fma`] — AVX2 + FMA kernels (4 `f64` lanes, fused
//!   multiply-add), used when `is_x86_feature_detected!` confirms both
//!   features at startup.
//!
//! Dispatch rules, in priority order:
//!
//! 1. A process-wide override installed via [`set_backend_override`] —
//!    the escape hatch benches and equivalence tests use to measure both
//!    paths inside one process.
//! 2. `SPCA_FORCE_SCALAR` in the environment (any value other than empty
//!    or `0`) pins the scalar path; CI runs the whole workspace under it
//!    so the portable fallback stays covered.
//! 3. CPU feature detection, performed once and cached.
//!
//! Numerical contract: each backend is **bit-deterministic run-to-run**
//! (fixed iteration and reduction order, no threading inside a kernel),
//! but the two backends differ in the last bits because the AVX2 path
//! sums in 4-lane stripes and contracts `a*b + c` into FMAs (one rounding
//! instead of two). Callers that need bit-stable results across *machines*
//! must pin a backend; within one process the dispatched result is stable.

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A kernel implementation the dispatcher can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable unrolled scalar code — always available.
    Scalar,
    /// AVX2 + FMA `std::arch` kernels (x86-64 only, runtime-detected).
    Avx2Fma,
}

impl Backend {
    /// True if this backend can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            Backend::Scalar => true,
            Backend::Avx2Fma => avx2_available(),
        }
    }

    /// Stable lowercase name used in benchmark artifacts and logs.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2Fma => "avx2_fma",
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// 0 = no override, 1 = force scalar, 2 = force AVX2+FMA.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

static DETECTED: OnceLock<Backend> = OnceLock::new();

fn detected() -> Backend {
    *DETECTED.get_or_init(|| {
        let forced =
            std::env::var_os("SPCA_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0");
        if !forced && avx2_available() {
            Backend::Avx2Fma
        } else {
            Backend::Scalar
        }
    })
}

/// The backend the free functions in this module currently dispatch to.
#[inline]
pub fn backend() -> Backend {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => Backend::Avx2Fma,
        _ => detected(),
    }
}

/// Installs (or with `None` clears) a process-wide backend override.
///
/// This is the measurement/testing hook: the `fig_kernels` harness and the
/// backend-equivalence tests use it to time or compare both paths within a
/// single process. Panics if the requested backend is not available on
/// this CPU — silently falling back would invalidate the measurement.
pub fn set_backend_override(b: Option<Backend>) {
    let code = match b {
        None => 0,
        Some(Backend::Scalar) => 1,
        Some(be @ Backend::Avx2Fma) => {
            assert!(be.available(), "AVX2+FMA not available on this CPU");
            2
        }
    };
    OVERRIDE.store(code, Ordering::Relaxed);
}

thread_local! {
    /// Reusable B-panel packing buffer for the AVX2 GEMM micro-kernel.
    /// One per thread so `par_gemm`'s column-band workers never contend.
    static PACK: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Dot product on the dispatched backend. Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    dot_on(backend(), a, b)
}

/// Dot product on an explicit backend. Panics if lengths differ.
#[inline]
pub fn dot_on(be: Backend, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    match be {
        Backend::Scalar => scalar::dot(a, b),
        Backend::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx2Fma is only selected after runtime detection.
            unsafe {
                avx2::dot(a, b)
            }
            #[cfg(not(target_arch = "x86_64"))]
            scalar::dot(a, b)
        }
    }
}

/// `y += alpha * x` on the dispatched backend. Panics if lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    axpy_on(backend(), alpha, x, y);
}

/// `y += alpha * x` on an explicit backend. Panics if lengths differ.
#[inline]
pub fn axpy_on(be: Backend, alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match be {
        Backend::Scalar => scalar::axpy(alpha, x, y),
        Backend::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx2Fma is only selected after runtime detection.
            unsafe {
                avx2::axpy(alpha, x, y)
            }
            #[cfg(not(target_arch = "x86_64"))]
            scalar::axpy(alpha, x, y)
        }
    }
}

/// In-place scalar multiply on the dispatched backend.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    scale_on(backend(), a, s);
}

/// In-place scalar multiply on an explicit backend.
#[inline]
pub fn scale_on(be: Backend, a: &mut [f64], s: f64) {
    match be {
        Backend::Scalar => scalar::scale(a, s),
        Backend::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx2Fma is only selected after runtime detection.
            unsafe {
                avx2::scale(a, s)
            }
            #[cfg(not(target_arch = "x86_64"))]
            scalar::scale(a, s)
        }
    }
}

/// Squared Euclidean norm on the dispatched backend.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    norm_sq_on(backend(), a)
}

/// Squared Euclidean norm on an explicit backend.
#[inline]
pub fn norm_sq_on(be: Backend, a: &[f64]) -> f64 {
    match be {
        Backend::Scalar => scalar::dot(a, a),
        Backend::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx2Fma is only selected after runtime detection.
            unsafe {
                avx2::dot(a, a)
            }
            #[cfg(not(target_arch = "x86_64"))]
            scalar::dot(a, a)
        }
    }
}

/// Plane rotation `[x; y] ← [c·x − s·y; s·x + c·y]` applied element-wise to
/// two equal-length columns — the Jacobi sweep inner loop. Panics if
/// lengths differ.
#[inline]
pub fn rotate2(x: &mut [f64], y: &mut [f64], c: f64, s: f64) {
    rotate2_on(backend(), x, y, c, s);
}

/// [`rotate2`] on an explicit backend. Panics if lengths differ.
#[inline]
pub fn rotate2_on(be: Backend, x: &mut [f64], y: &mut [f64], c: f64, s: f64) {
    assert_eq!(x.len(), y.len(), "rotate2: length mismatch");
    match be {
        Backend::Scalar => scalar::rotate2(x, y, c, s),
        Backend::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx2Fma is only selected after runtime detection.
            unsafe {
                avx2::rotate2(x, y, c, s)
            }
            #[cfg(not(target_arch = "x86_64"))]
            scalar::rotate2(x, y, c, s)
        }
    }
}

/// GEMM inner block on the dispatched backend: accumulates `A · B` into
/// `out`, where `A` is `m × k`, `B` is `k × width` and `out` is
/// `m × width`, all column-major. `out` is *accumulated into*, so callers
/// computing a plain product must zero it first.
///
/// The AVX2 path runs a register-blocked 8×4 micro-kernel over a packed
/// copy of the B panel (kept in a per-thread reusable buffer); the scalar
/// path is the original per-column axpy loop.
#[inline]
pub fn gemm_block(m: usize, k: usize, width: usize, a: &[f64], bpan: &[f64], out: &mut [f64]) {
    gemm_block_on(backend(), m, k, width, a, bpan, out);
}

/// [`gemm_block`] on an explicit backend.
pub fn gemm_block_on(
    be: Backend,
    m: usize,
    k: usize,
    width: usize,
    a: &[f64],
    bpan: &[f64],
    out: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "gemm_block: A shape mismatch");
    assert_eq!(bpan.len(), k * width, "gemm_block: B panel shape mismatch");
    assert_eq!(out.len(), m * width, "gemm_block: output shape mismatch");
    if m == 0 || k == 0 || width == 0 {
        return;
    }
    match be {
        Backend::Scalar => scalar::gemm_block(m, k, width, a, bpan, out),
        Backend::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            PACK.with(|p| {
                let mut pack = p.borrow_mut();
                // SAFETY: Avx2Fma is only selected after runtime detection.
                unsafe { avx2::gemm_block(m, k, width, a, bpan, out, &mut pack) }
            });
            #[cfg(not(target_arch = "x86_64"))]
            scalar::gemm_block(m, k, width, a, bpan, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, lo: f64) -> Vec<f64> {
        (0..n).map(|i| lo + i as f64 * 0.37).collect()
    }

    /// Backends to test on this host: scalar always, AVX2 when present.
    fn backends() -> Vec<Backend> {
        let mut v = vec![Backend::Scalar];
        if Backend::Avx2Fma.available() {
            v.push(Backend::Avx2Fma);
        }
        v
    }

    #[test]
    fn scalar_always_available() {
        assert!(Backend::Scalar.available());
        assert_eq!(Backend::Scalar.name(), "scalar");
    }

    #[test]
    fn backend_override_round_trip() {
        set_backend_override(Some(Backend::Scalar));
        assert_eq!(backend(), Backend::Scalar);
        set_backend_override(None);
        let _ = backend(); // whatever detection yields; must not panic
    }

    #[test]
    fn dot_agrees_across_backends_all_lengths() {
        for n in 0..40 {
            let a = seq(n, -3.0);
            let b = seq(n, 2.0);
            let want = dot_on(Backend::Scalar, &a, &b);
            for be in backends() {
                let got = dot_on(be, &a, &b);
                assert!(
                    (got - want).abs() <= 1e-12 * (1.0 + want.abs()),
                    "n={n} {be:?}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn axpy_and_scale_agree_across_backends() {
        for n in [0usize, 1, 3, 4, 7, 8, 15, 16, 33, 100] {
            let x = seq(n, 0.5);
            for be in backends() {
                let mut y_want = seq(n, -1.0);
                let mut y_got = y_want.clone();
                scalar::axpy(0.75, &x, &mut y_want);
                axpy_on(be, 0.75, &x, &mut y_got);
                for (g, w) in y_got.iter().zip(&y_want) {
                    assert!((g - w).abs() <= 1e-12 * (1.0 + w.abs()), "n={n} {be:?}");
                }
                let mut s_want = x.clone();
                let mut s_got = x.clone();
                scalar::scale(&mut s_want, -1.25);
                scale_on(be, &mut s_got, -1.25);
                assert_eq!(s_got, s_want, "scale is exact (single multiply)");
            }
        }
    }

    #[test]
    fn rotate2_agrees_across_backends() {
        let (c, s) = (0.8, 0.6);
        for n in [0usize, 1, 4, 5, 13, 64] {
            let x0 = seq(n, 1.0);
            let y0 = seq(n, -2.0);
            for be in backends() {
                let (mut xw, mut yw) = (x0.clone(), y0.clone());
                let (mut xg, mut yg) = (x0.clone(), y0.clone());
                scalar::rotate2(&mut xw, &mut yw, c, s);
                rotate2_on(be, &mut xg, &mut yg, c, s);
                for i in 0..n {
                    assert!((xg[i] - xw[i]).abs() <= 1e-12 * (1.0 + xw[i].abs()));
                    assert!((yg[i] - yw[i]).abs() <= 1e-12 * (1.0 + yw[i].abs()));
                }
            }
        }
    }

    #[test]
    fn gemm_block_agrees_across_backends() {
        // Shapes straddling the 8×4 tile: remainder rows, remainder
        // columns, tiny and empty dimensions.
        for (m, k, width) in [
            (1usize, 1usize, 1usize),
            (8, 3, 4),
            (9, 5, 6),
            (16, 8, 4),
            (23, 7, 11),
            (5, 0, 3),
            (0, 4, 2),
        ] {
            let a = seq(m * k, -1.0);
            let b = seq(k * width, 0.25);
            let mut want = vec![0.0; m * width];
            gemm_block_on(Backend::Scalar, m, k, width, &a, &b, &mut want);
            for be in backends() {
                let mut got = vec![0.0; m * width];
                gemm_block_on(be, m, k, width, &a, &b, &mut got);
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g - w).abs() <= 1e-12 * (1.0 + w.abs()),
                        "{m}x{k}x{width} {be:?}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_block_accumulates_into_out() {
        // Contract: out is accumulated, not overwritten.
        let (m, k, width) = (9usize, 2usize, 5usize);
        let a = seq(m * k, 0.0);
        let b = seq(k * width, 1.0);
        for be in backends() {
            let mut base = vec![0.0; m * width];
            gemm_block_on(be, m, k, width, &a, &b, &mut base);
            let mut acc = vec![1.0; m * width];
            gemm_block_on(be, m, k, width, &a, &b, &mut acc);
            for (x, y) in acc.iter().zip(&base) {
                assert!((x - y - 1.0).abs() < 1e-12, "{be:?}");
            }
        }
    }

    #[test]
    fn each_backend_is_deterministic_run_to_run() {
        let a = seq(1001, -4.0);
        let b = seq(1001, 3.0);
        for be in backends() {
            let first = dot_on(be, &a, &b);
            for _ in 0..5 {
                assert_eq!(dot_on(be, &a, &b).to_bits(), first.to_bits(), "{be:?}");
            }
        }
    }
}
