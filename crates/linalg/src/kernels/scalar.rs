//! Portable scalar kernels — the pre-dispatch implementations, verbatim.
//!
//! These are written so LLVM can auto-vectorize them at the target
//! baseline (SSE2 on x86-64): straight-line iteration, independent
//! accumulators, no bounds checks in the hot path after the dispatcher's
//! length assert. They are the reference semantics for the SIMD backends
//! and the only path on CPUs without AVX2+FMA (or under
//! `SPCA_FORCE_SCALAR`).

/// Dot product (lengths already checked by the dispatcher).
///
/// Unrolled four-wide with independent accumulators: a naive loop is a
/// serial floating-point dependency chain (one fused multiply-add per
/// ~4-cycle latency), while four partial sums keep the FPU pipeline full.
/// The combine order `(s0+s1)+(s2+s3)` is fixed so results are
/// deterministic run-to-run.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (x, y) in (&mut ca).zip(&mut cb) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

/// `y += alpha * x` (lengths already checked by the dispatcher).
///
/// Unrolled four-wide to match [`dot`]; each lane is independent, so this
/// mostly helps LLVM pick wider vector stores.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (yc, xc) in (&mut cy).zip(&mut cx) {
        yc[0] += alpha * xc[0];
        yc[1] += alpha * xc[1];
        yc[2] += alpha * xc[2];
        yc[3] += alpha * xc[3];
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// In-place scalar multiply.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Plane rotation `[x; y] ← [c·x − s·y; s·x + c·y]`, element-wise — the
/// body of the Jacobi column rotation.
#[inline]
pub fn rotate2(x: &mut [f64], y: &mut [f64], c: f64, s: f64) {
    for (a, b) in x.iter_mut().zip(y.iter_mut()) {
        let xv = *a;
        let yv = *b;
        *a = c * xv - s * yv;
        *b = s * xv + c * yv;
    }
}

/// GEMM block `out += A · B` (column-major, shapes checked by the
/// dispatcher): the original `j-k` loop — the innermost operation is an
/// axpy down a contiguous output column, with zero B entries skipped.
pub fn gemm_block(m: usize, k: usize, _width: usize, a: &[f64], bpan: &[f64], out: &mut [f64]) {
    for (bj, out_col) in bpan.chunks_exact(k).zip(out.chunks_exact_mut(m)) {
        for (l, &blj) in bj.iter().enumerate() {
            if blj != 0.0 {
                axpy(blj, &a[l * m..(l + 1) * m], out_col);
            }
        }
    }
}
