//! Symmetric eigensolver (cyclic Jacobi).
//!
//! The batch PCA baseline diagonalizes the sample covariance matrix, and
//! eigensystem merges can go through a small `2p × 2p` Gram eigenproblem.
//! Cyclic Jacobi is simple, unconditionally stable for symmetric matrices,
//! and plenty fast at the sizes we use (`d ≤ ~2000` for baselines, `≤ 64`
//! for merges).

use crate::mat::Mat;
use crate::vecops;
use crate::{LinalgError, Result};

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix, with
/// eigenvalues sorted in descending order.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, in the same order as `values`.
    pub vectors: Mat,
}

impl SymEigen {
    /// Reconstructs `V · diag(λ) · Vᵀ`.
    pub fn reconstruct(&self) -> Mat {
        let mut vl = self.vectors.clone();
        for (j, &l) in self.values.iter().enumerate() {
            vecops::scale(vl.col_mut(j), l);
        }
        vl.matmul(&self.vectors.transpose())
            .expect("square shapes agree")
    }

    /// The top-`k` eigenpairs as `(values, d×k vector matrix)`.
    pub fn top_k(&self, k: usize) -> (Vec<f64>, Mat) {
        let k = k.min(self.values.len());
        (self.values[..k].to_vec(), self.vectors.columns_range(0, k))
    }
}

const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix by cyclic Jacobi.
///
/// The input is required to be square and (numerically) symmetric: the
/// routine symmetrizes internally with `(A + Aᵀ)/2`, so tiny asymmetries
/// from accumulation are tolerated.
pub fn sym_eigen(a: &Mat) -> Result<SymEigen> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::ShapeMismatch {
            expected: "square matrix".to_string(),
            got: (m, n),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NotFinite);
    }
    if n == 0 {
        return Ok(SymEigen {
            values: Vec::new(),
            vectors: Mat::zeros(0, 0),
        });
    }

    // Symmetrize.
    let mut w = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            w[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }
    let mut v = Mat::identity(n);
    let scale = w.max_abs().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * scale;

    let mut sweeps = 0;
    loop {
        // Largest off-diagonal magnitude this sweep.
        let mut off = 0.0_f64;
        for p in 0..n - 1 {
            for q in (p + 1)..n {
                let apq = w[(p, q)];
                off = off.max(apq.abs());
                if apq.abs() <= tol {
                    continue;
                }
                let app = w[(p, p)];
                let aqq = w[(q, q)];
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                // Update rows/cols p and q of W (classical Jacobi update).
                for k in 0..n {
                    let wkp = w[(k, p)];
                    let wkq = w[(k, q)];
                    w[(k, p)] = c * wkp - s * wkq;
                    w[(k, q)] = s * wkp + c * wkq;
                }
                for k in 0..n {
                    let wpk = w[(p, k)];
                    let wqk = w[(q, k)];
                    w[(p, k)] = c * wpk - s * wqk;
                    w[(q, k)] = s * wpk + c * wqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
        if n == 1 || off <= tol {
            break;
        }
        sweeps += 1;
        if sweeps >= MAX_SWEEPS {
            return Err(LinalgError::NoConvergence {
                routine: "sym_eigen",
                sweeps,
            });
        }
    }

    // Sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| w[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));

    let mut values = Vec::with_capacity(n);
    let mut vectors = Mat::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        values.push(diag[src]);
        vectors.col_mut(dst).copy_from_slice(v.col(src));
    }
    Ok(SymEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fill_standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_symmetric(n: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Mat::zeros(n, n);
        fill_standard_normal(&mut rng, b.as_mut_slice());
        let bt = b.transpose();
        let mut s = b;
        s.add_assign(&bt).unwrap();
        s.scale_mut(0.5);
        s
    }

    #[test]
    fn eigen_reconstructs() {
        let a = random_symmetric(12, 31);
        let e = sym_eigen(&a).unwrap();
        assert!(e.reconstruct().sub(&a).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = random_symmetric(9, 32);
        let e = sym_eigen(&a).unwrap();
        let g = e.vectors.gram();
        let i = Mat::identity(9);
        assert!(g.sub(&i).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_exact() {
        let mut a = Mat::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 5.0;
        a[(2, 2)] = 3.0;
        let e = sym_eigen(&a).unwrap();
        assert_eq!(e.values.len(), 3);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn values_sorted_descending() {
        let a = random_symmetric(15, 33);
        let e = sym_eigen(&a).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = random_symmetric(10, 34);
        let e = sym_eigen(&a).unwrap();
        let tr: f64 = (0..10).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((tr - sum).abs() < 1e-9);
    }

    #[test]
    fn psd_matrix_has_nonnegative_eigenvalues() {
        // Gram matrices are PSD.
        let mut rng = StdRng::seed_from_u64(35);
        let mut b = Mat::zeros(20, 6);
        fill_standard_normal(&mut rng, b.as_mut_slice());
        let g = b.gram();
        let e = sym_eigen(&g).unwrap();
        assert!(e.values.iter().all(|&v| v > -1e-10));
    }

    #[test]
    fn top_k_truncates() {
        let a = random_symmetric(8, 36);
        let e = sym_eigen(&a).unwrap();
        let (vals, vecs) = e.top_k(3);
        assert_eq!(vals.len(), 3);
        assert_eq!(vecs.shape(), (8, 3));
        assert_eq!(vals[0], e.values[0]);
    }

    #[test]
    fn one_by_one() {
        let mut a = Mat::zeros(1, 1);
        a[(0, 0)] = 7.5;
        let e = sym_eigen(&a).unwrap();
        assert_eq!(e.values, vec![7.5]);
    }

    #[test]
    fn non_square_rejected() {
        assert!(sym_eigen(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn agrees_with_svd_on_psd() {
        let mut rng = StdRng::seed_from_u64(37);
        let mut b = Mat::zeros(16, 5);
        fill_standard_normal(&mut rng, b.as_mut_slice());
        let g = b.gram();
        let e = sym_eigen(&g).unwrap();
        let svd = crate::svd::thin_svd(&b).unwrap();
        for k in 0..5 {
            let want = svd.s[k] * svd.s[k];
            assert!((e.values[k] - want).abs() < 1e-8 * want.max(1.0), "k={k}");
        }
    }
}
