//! One-sided Jacobi singular value decomposition.
//!
//! The streaming eigensystem update (paper eq. 1–3) needs the SVD of a tall,
//! very thin factor `A ∈ R^{d×(p+1)}` on every tuple, and the merge step
//! (eq. 16) the SVD of `R^{d×2p}`. One-sided Jacobi is the right tool for
//! these shapes: it works directly on columns (contiguous in our layout),
//! converges in a handful of sweeps for nearly-orthogonal inputs — and the
//! streaming factors *are* nearly orthogonal, since their leading `p`
//! columns come from the previous orthonormal eigenbasis — and it delivers
//! high relative accuracy on the small singular values that decide where
//! the eigenspectrum is truncated.

use crate::mat::Mat;
use crate::vecops;
use crate::{LinalgError, Result};

/// Thin SVD `A = U · diag(s) · Vᵀ` with `U` `m × n` column-orthonormal,
/// `s` non-negative and sorted descending, `V` `n × n` orthogonal.
#[derive(Debug, Clone)]
pub struct ThinSvd {
    /// Left singular vectors (`m × n`).
    pub u: Mat,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors (`n × n`).
    pub v: Mat,
}

impl ThinSvd {
    /// Reconstructs `U · diag(s) · Vᵀ`.
    pub fn reconstruct(&self) -> Mat {
        let mut us = self.u.clone();
        for (j, &sj) in self.s.iter().enumerate() {
            vecops::scale(us.col_mut(j), sj);
        }
        us.matmul(&self.v.transpose())
            .expect("shapes agree by construction")
    }

    /// Numerical rank at relative tolerance `rtol` (relative to `s[0]`).
    pub fn rank(&self, rtol: f64) -> usize {
        let cutoff = self.s.first().copied().unwrap_or(0.0) * rtol;
        self.s.iter().take_while(|&&sv| sv > cutoff).count()
    }
}

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 60;

/// Relative off-diagonal tolerance for declaring a column pair orthogonal.
const TOL: f64 = 5e-13;

/// Reusable buffers for [`thin_svd_into`].
///
/// The streaming update decomposes a same-shaped `d × (p+1)` factor on
/// every tuple; holding one of these per updater lets the whole SVD run
/// with zero heap allocations once the buffers have grown to size. The
/// output fields are public; the scratch fields are internal.
#[derive(Debug, Clone, Default)]
pub struct SvdWorkspace {
    /// Left singular vectors (`m × n`), valid after a successful call.
    pub u: Mat,
    /// Singular values, descending, valid after a successful call.
    pub s: Vec<f64>,
    /// Right singular vectors (`n × n`), valid after a successful call.
    pub v: Mat,
    work: Mat,
    vwork: Mat,
    norms2: Vec<f64>,
    order: Vec<usize>,
    cand: Vec<f64>,
}

/// Computes the thin SVD of `a` (requires `rows ≥ cols`).
///
/// Zero columns are tolerated (they yield zero singular values with
/// arbitrary-but-orthonormal left vectors filled from the identity
/// completion).
pub fn thin_svd(a: &Mat) -> Result<ThinSvd> {
    let mut ws = SvdWorkspace::default();
    thin_svd_into(a, &mut ws)?;
    Ok(ThinSvd {
        u: ws.u,
        s: ws.s,
        v: ws.v,
    })
}

/// Computes the thin SVD of `a` into the workspace (semantics of
/// [`thin_svd`], which is a thin wrapper over this).
///
/// Results land in `ws.u`, `ws.s`, `ws.v`; on error their contents are
/// unspecified. The result is bitwise identical to a fresh workspace: the
/// column-norm² cache only ever holds values that a plain `norm_sq` on the
/// same column data would return, so reuse cannot drift.
pub fn thin_svd_into(a: &Mat, ws: &mut SvdWorkspace) -> Result<()> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::ShapeMismatch {
            expected: "rows >= cols for thin SVD".to_string(),
            got: (m, n),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NotFinite);
    }
    if n == 0 {
        ws.u.reset_zeroed(m, 0);
        ws.s.clear();
        ws.v.reset_zeroed(0, 0);
        return Ok(());
    }

    // Destructure for disjoint borrows: `work`/`vwork` are rotated in the
    // sweep loop while `u`/`s`/`v` receive the sorted, normalized output.
    let SvdWorkspace {
        u: su,
        s,
        v: sv,
        work: u,
        vwork: v,
        norms2,
        order,
        cand,
    } = ws;
    u.copy_from(a);
    v.reset_identity(n);

    // Column-norm² cache. An entry is refreshed with `norm_sq` whenever its
    // column is rotated, so every read sees exactly what recomputing from
    // the column would give; only the p·q cross terms need fresh dots.
    norms2.clear();
    norms2.extend((0..n).map(|j| vecops::norm_sq(u.col(j))));

    let mut converged = false;
    let mut sweeps = 0;
    while sweeps < MAX_SWEEPS {
        sweeps += 1;
        // Columns whose norm is below numerical rank (relative to the
        // largest column) contribute singular values ≤ eps·‖A‖ and must be
        // excluded from rotations: rotating two noise columns against each
        // other never converges because their inner products are pure
        // rounding error.
        let max_nrm2 = norms2.iter().fold(0.0_f64, |acc, &x| acc.max(x));
        let negligible = max_nrm2 * (f64::EPSILON * f64::EPSILON);
        if max_nrm2 == 0.0 {
            converged = true;
            break;
        }
        let mut off = 0.0_f64;
        for p in 0..n - 1 {
            for q in (p + 1)..n {
                let (app, aqq) = (norms2[p], norms2[q]);
                if app <= negligible || aqq <= negligible {
                    continue;
                }
                let apq = vecops::dot(u.col(p), u.col(q));
                let denom = (app * aqq).sqrt();
                let rel = apq.abs() / denom;
                off = off.max(rel);
                if rel <= TOL {
                    continue;
                }
                // Jacobi rotation that zeroes the (p,q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s_rot = c * t;
                rotate_cols(u, p, q, c, s_rot);
                rotate_cols(v, p, q, c, s_rot);
                norms2[p] = vecops::norm_sq(u.col(p));
                norms2[q] = vecops::norm_sq(u.col(q));
            }
        }
        if off <= TOL {
            converged = true;
            break;
        }
    }
    if !converged {
        // One-sided Jacobi stalls only on pathological inputs; the state is
        // still usable (columns are orthogonal to ~sqrt(eps)), but callers
        // should know.
        return Err(LinalgError::NoConvergence {
            routine: "thin_svd",
            sweeps,
        });
    }

    // Singular values are the column norms; normalize U. Columns below
    // numerical rank are pure rounding noise: normalizing them would yield
    // unit vectors with O(1) overlap against the true singular vectors, so
    // they are zeroed here and re-completed orthonormally below. Sorting on
    // norms² gives the same order as sorting on norms (sqrt is monotone).
    order.clear();
    order.extend(0..n);
    let max_nrm2 = norms2.iter().fold(0.0_f64, |acc, &x| acc.max(x));
    let noise_floor = max_nrm2.sqrt() * f64::EPSILON * (m as f64).sqrt();
    order.sort_by(|&i, &j| norms2[j].partial_cmp(&norms2[i]).expect("finite norms"));

    su.reset_zeroed(m, n);
    sv.reset_zeroed(n, n);
    s.clear();
    for (dst, &src) in order.iter().enumerate() {
        let nrm = norms2[src].sqrt();
        if nrm > noise_floor {
            s.push(nrm);
            let inv = 1.0 / nrm;
            for (o, &i) in su.col_mut(dst).iter_mut().zip(u.col(src)) {
                *o = i * inv;
            }
        } else {
            s.push(0.0);
        }
        sv.col_mut(dst).copy_from_slice(v.col(src));
    }

    // Complete zero columns of U with unit vectors orthogonal to the rest so
    // U stays column-orthonormal even for rank-deficient input.
    complete_zero_columns(su, s, cand);

    Ok(())
}

/// Applies the rotation `[c -s; s c]` to columns `(p, q)` of `m` via the
/// dispatched plane-rotation kernel.
#[inline]
fn rotate_cols(m: &mut Mat, p: usize, q: usize, c: f64, s: f64) {
    let (cp, cq) = m.two_cols_mut(p, q);
    crate::kernels::rotate2(cp, cq, c, s);
}

/// Replaces zero columns of `u` (those with `s[j] == 0`) by unit vectors
/// orthonormal to all existing columns, via Gram–Schmidt against the basis.
/// `cand` is caller-owned scratch for the trial vector.
fn complete_zero_columns(u: &mut Mat, s: &[f64], cand: &mut Vec<f64>) {
    let (m, n) = u.shape();
    for j in 0..n {
        if s[j] > 0.0 {
            continue;
        }
        // Try coordinate axes until one survives projection.
        'axes: for axis in 0..m {
            cand.clear();
            cand.resize(m, 0.0);
            cand[axis] = 1.0;
            for k in 0..n {
                if k == j || (s.get(k).copied().unwrap_or(0.0) == 0.0 && k > j) {
                    continue;
                }
                let proj = vecops::dot(cand, u.col(k));
                vecops::axpy(-proj, u.col(k), cand);
            }
            if vecops::normalize(cand) > 1e-8 {
                u.col_mut(j).copy_from_slice(cand);
                break 'axes;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fill_standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Mat::zeros(rows, cols);
        fill_standard_normal(&mut rng, m.as_mut_slice());
        m
    }

    fn assert_orthonormal_cols(q: &Mat, tol: f64) {
        let g = q.gram();
        for i in 0..q.cols() {
            for j in 0..q.cols() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - want).abs() < tol, "G[{i},{j}]={}", g[(i, j)]);
            }
        }
    }

    #[test]
    fn svd_reconstructs_random_tall() {
        let a = random(40, 6, 21);
        let svd = thin_svd(&a).unwrap();
        assert!(svd.reconstruct().sub(&a).unwrap().max_abs() < 1e-9);
        assert_orthonormal_cols(&svd.u, 1e-10);
        assert_orthonormal_cols(&svd.v, 1e-10);
    }

    #[test]
    fn singular_values_sorted_nonnegative() {
        let a = random(25, 8, 22);
        let svd = thin_svd(&a).unwrap();
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn known_diagonal_case() {
        // A = diag(3, 2) padded: singular values are exactly 3 and 2.
        let mut a = Mat::zeros(4, 2);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 2.0;
        let svd = thin_svd(&a).unwrap();
        assert!((svd.s[0] - 3.0).abs() < 1e-12);
        assert!((svd.s[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_input() {
        // Second column is 2x the first: rank 1.
        let mut a = Mat::zeros(5, 2);
        for i in 0..5 {
            a[(i, 0)] = (i + 1) as f64;
            a[(i, 1)] = 2.0 * (i + 1) as f64;
        }
        let svd = thin_svd(&a).unwrap();
        assert!(svd.s[1] < 1e-10 * svd.s[0]);
        assert_eq!(svd.rank(1e-8), 1);
        assert_orthonormal_cols(&svd.u, 1e-8);
        assert!(svd.reconstruct().sub(&a).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Mat::zeros(6, 3);
        let svd = thin_svd(&a).unwrap();
        assert!(svd.s.iter().all(|&x| x == 0.0));
        assert_orthonormal_cols(&svd.u, 1e-12);
    }

    #[test]
    fn single_column() {
        let mut a = Mat::zeros(3, 1);
        a[(0, 0)] = 3.0;
        a[(1, 0)] = 4.0;
        let svd = thin_svd(&a).unwrap();
        assert!((svd.s[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn wide_rejected() {
        assert!(thin_svd(&Mat::zeros(2, 4)).is_err());
    }

    #[test]
    fn singular_values_match_frobenius_norm() {
        let a = random(30, 5, 23);
        let svd = thin_svd(&a).unwrap();
        // sum of squared singular values == squared Frobenius norm
        let ss: f64 = svd.s.iter().map(|x| x * x).sum();
        let fro2 = a.fro_norm().powi(2);
        assert!((ss - fro2).abs() < 1e-8 * fro2);
    }

    #[test]
    fn empty_matrix() {
        let svd = thin_svd(&Mat::zeros(5, 0)).unwrap();
        assert!(svd.s.is_empty());
    }

    #[test]
    fn workspace_reuse_across_shapes_matches_fresh() {
        // One workspace driven through growing, shrinking and degenerate
        // shapes must agree exactly with a fresh decomposition each time.
        let mut ws = SvdWorkspace::default();
        for (rows, cols, seed) in [
            (12usize, 4usize, 31u64),
            (30, 7, 32),
            (5, 2, 33),
            (8, 0, 34),
            (20, 20, 35),
        ] {
            let a = random(rows, cols, seed);
            thin_svd_into(&a, &mut ws).unwrap();
            let fresh = thin_svd(&a).unwrap();
            assert_eq!(ws.s, fresh.s, "{rows}x{cols}");
            assert_eq!(ws.u, fresh.u, "{rows}x{cols}");
            assert_eq!(ws.v, fresh.v, "{rows}x{cols}");
        }
    }

    #[test]
    fn workspace_reuse_after_rank_deficient() {
        let mut ws = SvdWorkspace::default();
        // Rank-deficient first (exercises the zero-column completion and its
        // cand scratch), full-rank second.
        let mut a = Mat::zeros(5, 2);
        for i in 0..5 {
            a[(i, 0)] = (i + 1) as f64;
            a[(i, 1)] = 2.0 * (i + 1) as f64;
        }
        thin_svd_into(&a, &mut ws).unwrap();
        let b = random(6, 3, 36);
        thin_svd_into(&b, &mut ws).unwrap();
        let fresh = thin_svd(&b).unwrap();
        assert_eq!(ws.s, fresh.s);
        assert_eq!(ws.u, fresh.u);
    }
}
