//! Block subspace (orthogonal) iteration for dominant eigenpairs.
//!
//! The cyclic-Jacobi eigensolver in [`crate::eigen`] is exact but `O(d³)`
//! per sweep — fine at merge sizes, wasteful when a batch baseline needs
//! only the top `p ≪ d` eigenpairs of a `d × d` covariance at spectral
//! dimensions (`d` up to a few thousand). Subspace iteration costs
//! `O(d²·p)` per step and converges geometrically at rate
//! `λ_{p+1}/λ_p` — fast for the strongly low-rank covariances this system
//! lives on.

use crate::mat::Mat;
use crate::qr::orthonormalize;
use crate::{eigen, gemm, LinalgError, Result};

/// Result of a subspace iteration run.
#[derive(Debug, Clone)]
pub struct TopK {
    /// Eigenvalue estimates, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvector estimates (`d × k`).
    pub vectors: Mat,
    /// Iterations performed.
    pub iterations: usize,
    /// Final subspace change (Frobenius norm of the projected difference);
    /// small means converged.
    pub residual: f64,
}

/// Computes the top-`k` eigenpairs of a symmetric matrix by block power
/// iteration with Rayleigh–Ritz extraction.
///
/// `tol` bounds the per-iteration subspace change at convergence;
/// `max_iters` caps the work. Returns [`LinalgError::NoConvergence`] only
/// if the iteration diverges into non-finite values — a slowly-converging
/// (clustered-spectrum) problem returns the best estimate with its
/// `residual` for the caller to judge.
pub fn top_k_symmetric(a: &Mat, k: usize, tol: f64, max_iters: usize) -> Result<TopK> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::ShapeMismatch {
            expected: "square".into(),
            got: (m, n),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NotFinite);
    }
    let k = k.min(n);
    if k == 0 {
        return Ok(TopK {
            values: vec![],
            vectors: Mat::zeros(n, 0),
            iterations: 0,
            residual: 0.0,
        });
    }

    // Deterministic full-rank start: alternating-sign ramp columns beat
    // coordinate axes (which can be orthogonal to the dominant space).
    let mut q = Mat::from_fn(n, k, |i, j| {
        let x = (i + 1) as f64 / n as f64;
        (1.0 + x).powi(j as i32 + 1) * if (i + j) % 2 == 0 { 1.0 } else { -1.0 }
    });
    q = orthonormalize(&q)?;

    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    for it in 0..max_iters {
        iterations = it + 1;
        let z = gemm::gemm(a, &q)?;
        if !z.is_finite() {
            return Err(LinalgError::NoConvergence {
                routine: "top_k_symmetric",
                sweeps: it,
            });
        }
        let q_next = orthonormalize(&z)?;
        // Subspace change: || Q_next - Q (Qᵀ Q_next) ||_F
        let overlap = gemm::gemm(&q.transpose(), &q_next)?;
        let projected = gemm::gemm(&q, &overlap)?;
        residual = q_next.sub(&projected)?.fro_norm();
        q = q_next;
        if residual < tol {
            break;
        }
    }

    // Rayleigh–Ritz: diagonalize the small projected matrix for eigenvalue
    // estimates and to rotate Q into eigenvector approximations.
    let aq = gemm::gemm(a, &q)?;
    let small = gemm::gemm(&q.transpose(), &aq)?;
    let ritz = eigen::sym_eigen(&small)?;
    let vectors = gemm::gemm(&q, &ritz.vectors)?;
    Ok(TopK {
        values: ritz.values,
        vectors,
        iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fill_standard_normal;
    use crate::vecops;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Symmetric matrix with a planted spectrum.
    fn planted(n: usize, spectrum: &[f64], seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut raw = Mat::zeros(n, spectrum.len());
        fill_standard_normal(&mut rng, raw.as_mut_slice());
        let q = orthonormalize(&raw).unwrap();
        let mut a = Mat::zeros(n, n);
        for (j, &lam) in spectrum.iter().enumerate() {
            a.rank_one_update(lam, q.col(j), q.col(j)).unwrap();
        }
        a
    }

    #[test]
    fn recovers_planted_spectrum() {
        let spectrum = [10.0, 6.0, 3.0, 1.0];
        let a = planted(60, &spectrum, 1);
        let r = top_k_symmetric(&a, 3, 1e-10, 500).unwrap();
        for (got, want) in r.values.iter().zip(&spectrum) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        // Vectors are eigenvectors: ||A v − λ v|| small.
        for j in 0..3 {
            let av = a.matvec(r.vectors.col(j)).unwrap();
            let mut diff = av.clone();
            vecops::axpy(-r.values[j], r.vectors.col(j), &mut diff);
            assert!(vecops::norm(&diff) < 1e-5, "j={j}: {}", vecops::norm(&diff));
        }
    }

    #[test]
    fn agrees_with_jacobi_on_modest_size() {
        let a = planted(40, &[5.0, 4.0, 2.5, 1.0, 0.5], 2);
        let full = eigen::sym_eigen(&a).unwrap();
        let iter = top_k_symmetric(&a, 4, 1e-12, 1000).unwrap();
        for j in 0..4 {
            assert!(
                (full.values[j] - iter.values[j]).abs() < 1e-7,
                "λ{j}: {} vs {}",
                full.values[j],
                iter.values[j]
            );
        }
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let a = planted(10, &[3.0, 1.0], 3);
        let r0 = top_k_symmetric(&a, 0, 1e-8, 10).unwrap();
        assert!(r0.values.is_empty());
        let rbig = top_k_symmetric(&a, 25, 1e-8, 200).unwrap();
        assert_eq!(rbig.values.len(), 10);
    }

    #[test]
    fn converges_fast_on_separated_spectrum() {
        let a = planted(100, &[100.0, 1.0], 4);
        let r = top_k_symmetric(&a, 1, 1e-10, 500).unwrap();
        assert!(r.iterations < 30, "took {} iterations", r.iterations);
        assert!((r.values[0] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn clustered_spectrum_reports_residual() {
        // λ2 ≈ λ3: the 2-dim dominant subspace converges, the individual
        // vectors inside the cluster may not; residual is the caller's
        // signal.
        let a = planted(50, &[5.0, 2.0, 1.999], 5);
        let r = top_k_symmetric(&a, 2, 1e-14, 40).unwrap();
        assert!((r.values[0] - 5.0).abs() < 1e-5);
        assert!(r.residual.is_finite());
    }

    #[test]
    fn non_square_rejected() {
        assert!(top_k_symmetric(&Mat::zeros(3, 4), 2, 1e-8, 10).is_err());
    }
}
