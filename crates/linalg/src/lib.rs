#![warn(missing_docs)]
//! Dense linear-algebra kernels for streaming PCA.
//!
//! This crate is the substitute for the Eigen C++ library used by the paper's
//! InfoSphere operators. It provides exactly the kernels the robust
//! incremental PCA algorithm needs:
//!
//! * [`Mat`] — a dense, column-major, `f64` matrix with the usual arithmetic,
//!   built for tall-thin shapes (`d × (p+1)` update factors).
//! * [`qr`] — Householder thin QR, used to re-orthonormalize eigenbases.
//! * [`svd`] — one-sided Jacobi SVD, exact and fast for thin matrices, which
//!   is the workhorse of the low-rank eigensystem update (paper eq. 1–3).
//! * [`eigen`] — a symmetric Jacobi eigensolver for the small dense
//!   eigenproblems arising in batch baselines and eigensystem merges.
//! * [`gemm`] — blocked and multi-threaded matrix multiply for the batch
//!   covariance baselines.
//! * [`rng`] — Gaussian sampling helpers (Box–Muller) so that workload
//!   generators do not need `rand_distr`.
//! * [`kernels`] — the hardware-aware kernel layer underneath all of the
//!   above: runtime-dispatched AVX2+FMA implementations of `dot`, `axpy`,
//!   `scale`, `norm_sq`, the Jacobi plane rotation and the GEMM inner
//!   block, with the portable unrolled scalar code as fallback (pin it
//!   with `SPCA_FORCE_SCALAR=1`).
//!
//! All routines are pure Rust, allocation-conscious, and tested against
//! algebraic identities (orthogonality, reconstruction) with both unit and
//! property-based tests.
//!
//! ```
//! use spca_linalg::{thin_svd, Mat};
//!
//! let a = Mat::from_fn(6, 2, |r, c| (r * 2 + c) as f64);
//! let f = thin_svd(&a).unwrap();
//! // Reconstruction: U diag(s) Vᵀ == A.
//! assert!(f.reconstruct().sub(&a).unwrap().max_abs() < 1e-10);
//! assert!(f.s[0] >= f.s[1]);
//! ```

pub mod eigen;
pub mod gemm;
pub mod kernels;
pub mod mat;
pub mod par_svd;
pub mod qr;
pub mod rng;
pub mod solve;
pub mod subspace;
pub mod svd;
pub mod vecops;

pub use eigen::{sym_eigen, SymEigen};
pub use mat::Mat;
pub use qr::{thin_qr, thin_qr_into, QrWorkspace, ThinQr};
pub use svd::{thin_svd, thin_svd_into, SvdWorkspace, ThinSvd};

/// Errors produced by decomposition routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible with the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected shape relation.
        expected: String,
        /// The offending shape, `(rows, cols)`.
        got: (usize, usize),
    },
    /// An iterative routine failed to converge within its sweep budget.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
        /// Number of sweeps performed before giving up.
        sweeps: usize,
    },
    /// The input contained NaN or infinite entries.
    NotFinite,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "shape mismatch: expected {expected}, got {}x{}",
                    got.0, got.1
                )
            }
            LinalgError::NoConvergence { routine, sweeps } => {
                write!(f, "{routine} failed to converge after {sweeps} sweeps")
            }
            LinalgError::NotFinite => write!(f, "input contains non-finite values"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
