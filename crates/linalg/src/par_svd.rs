//! Multithreaded one-sided Jacobi SVD (Brent–Luk parallel ordering).
//!
//! The paper's conclusion names this exact optimization: "the
//! higher-dimensional data processing performance can be improved by using
//! a multithreaded SVD processing algorithm to distribute the computation
//! load to all the node processor cores."
//!
//! One-sided Jacobi is naturally parallel under a *tournament* (Brent–Luk)
//! ordering: each sweep round pairs up all columns into ⌊n/2⌋ disjoint
//! pairs, every pair's rotation touches only its own two columns, so all
//! pairs of a round rotate concurrently. Rounds rotate the pairing like a
//! round-robin tournament so that after `n − 1` rounds every pair has met
//! once — one full sweep, same convergence theory as the cyclic order.
//!
//! Ownership model: the working columns live in a `Vec<Option<Vec<f64>>>`;
//! each task *takes* its two columns, rotates them privately, and returns
//! them — data-race freedom by construction, no unsafe.

use crate::mat::Mat;
use crate::svd::ThinSvd;
use crate::vecops;
use crate::{LinalgError, Result};

const MAX_SWEEPS: usize = 60;
const TOL: f64 = 5e-13;

/// Computes the thin SVD of `a` (`rows ≥ cols`) using up to `threads`
/// worker threads. Falls back to the serial kernel when the matrix is too
/// small for threading to pay.
pub fn par_thin_svd(a: &Mat, threads: usize) -> Result<ThinSvd> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::ShapeMismatch {
            expected: "rows >= cols for thin SVD".to_string(),
            got: (m, n),
        });
    }
    // Below ~2^17 multiply-adds per round the spawn overhead dominates.
    if threads <= 1 || n < 4 || m * n < (1 << 17) {
        return crate::svd::thin_svd(a);
    }
    if !a.is_finite() {
        return Err(LinalgError::NotFinite);
    }

    // Column-owned working state for U (m-vectors) and V (n-vectors).
    let mut u: Vec<Option<Vec<f64>>> = (0..n).map(|j| Some(a.col(j).to_vec())).collect();
    let mut v: Vec<Option<Vec<f64>>> = (0..n)
        .map(|j| {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            Some(e)
        })
        .collect();

    // Tournament schedule over an even number of slots (pad with a bye).
    let slots = if n % 2 == 0 { n } else { n + 1 };
    let rounds = slots - 1;
    let mut converged = false;
    let mut sweeps = 0;

    while sweeps < MAX_SWEEPS {
        sweeps += 1;
        let max_nrm2 = u
            .iter()
            .map(|c| vecops::norm_sq(c.as_ref().expect("column present")))
            .fold(0.0, f64::max);
        if max_nrm2 == 0.0 {
            converged = true;
            break;
        }
        let negligible = max_nrm2 * (f64::EPSILON * f64::EPSILON);

        let mut sweep_off = 0.0_f64;
        for round in 0..rounds {
            // Round-robin (circle-method) pairing: slot 0 is fixed, slots
            // 1..slots-1 rotate by `round`; slot k plays slot slots-1-k.
            let resolve = |slot: usize| -> usize {
                if slot == 0 {
                    0
                } else {
                    1 + (slot - 1 + round) % (slots - 1)
                }
            };
            let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(slots / 2);
            for k in 0..slots / 2 {
                let (pi, qi) = (resolve(k), resolve(slots - 1 - k));
                if pi < n && qi < n && pi != qi {
                    pairs.push((pi.min(qi), pi.max(qi)));
                }
            }

            // Take the paired columns out and rotate them in parallel.
            type PairTask = (usize, usize, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);
            let mut tasks: Vec<PairTask> = Vec::with_capacity(pairs.len());
            for &(p, q) in &pairs {
                let up = u[p].take().expect("column double-booked");
                let uq = u[q].take().expect("column double-booked");
                let vp = v[p].take().expect("column double-booked");
                let vq = v[q].take().expect("column double-booked");
                tasks.push((p, q, up, uq, vp, vq));
            }

            let chunk = tasks.len().div_ceil(threads.max(1)).max(1);
            let offs: Vec<f64> = crossbeam::scope(|s| {
                let handles: Vec<_> = tasks
                    .chunks_mut(chunk)
                    .map(|batch| {
                        s.spawn(move |_| {
                            let mut off = 0.0_f64;
                            for (_, _, up, uq, vp, vq) in batch.iter_mut() {
                                off = off.max(rotate_pair(up, uq, vp, vq, negligible));
                            }
                            off
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("svd worker"))
                    .collect()
            })
            .expect("svd scope");
            sweep_off = offs.into_iter().fold(sweep_off, f64::max);

            for (p, q, up, uq, vp, vq) in tasks {
                u[p] = Some(up);
                u[q] = Some(uq);
                v[p] = Some(vp);
                v[q] = Some(vq);
            }
        }
        if sweep_off <= TOL {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NoConvergence {
            routine: "par_thin_svd",
            sweeps,
        });
    }

    // Assemble, reusing the serial code path for sorting/normalization by
    // round-tripping through a Mat and its (cheap, already-converged) SVD.
    let u_mat = Mat::from_columns(
        &u.into_iter()
            .map(|c| c.expect("column present"))
            .collect::<Vec<_>>(),
    );
    let v_mat = Mat::from_columns(
        &v.into_iter()
            .map(|c| c.expect("column present"))
            .collect::<Vec<_>>(),
    );
    finalize(u_mat, v_mat)
}

/// Applies one Jacobi rotation to a column pair; returns the relative
/// off-diagonal magnitude before rotation (0 when skipped).
fn rotate_pair(
    up: &mut [f64],
    uq: &mut [f64],
    vp: &mut [f64],
    vq: &mut [f64],
    negligible: f64,
) -> f64 {
    let app = vecops::norm_sq(up);
    let aqq = vecops::norm_sq(uq);
    if app <= negligible || aqq <= negligible {
        return 0.0;
    }
    let apq = vecops::dot(up, uq);
    let denom = (app * aqq).sqrt();
    let rel = apq.abs() / denom;
    if rel <= TOL {
        return rel;
    }
    let tau = (aqq - app) / (2.0 * apq);
    let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = c * t;
    crate::kernels::rotate2(up, uq, c, s);
    crate::kernels::rotate2(vp, vq, c, s);
    rel
}

/// Sorts singular triplets and normalizes U columns (same post-processing
/// as the serial kernel).
fn finalize(u: Mat, v: Mat) -> Result<ThinSvd> {
    let (m, n) = u.shape();
    let norms: Vec<f64> = (0..n).map(|j| vecops::norm(u.col(j))).collect();
    let max_nrm = norms.iter().fold(0.0_f64, |a, &b| a.max(b));
    let noise_floor = max_nrm * f64::EPSILON * (m as f64).sqrt();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).expect("finite norms"));

    let mut su = Mat::zeros(m, n);
    let mut sv = Mat::zeros(n, n);
    let mut s = Vec::with_capacity(n);
    for (dst, &src) in order.iter().enumerate() {
        let nrm = norms[src];
        if nrm > noise_floor {
            s.push(nrm);
            let inv = 1.0 / nrm;
            for (o, &i) in su.col_mut(dst).iter_mut().zip(u.col(src)) {
                *o = i * inv;
            }
        } else {
            s.push(0.0);
        }
        sv.col_mut(dst).copy_from_slice(v.col(src));
    }
    // Complete zero columns orthonormally (rank-deficient inputs).
    for (j, &sj) in s.iter().enumerate() {
        if sj > 0.0 {
            continue;
        }
        for axis in 0..m {
            let mut cand = vec![0.0; m];
            cand[axis] = 1.0;
            for k in 0..n {
                if k == j {
                    continue;
                }
                let proj = vecops::dot(&cand, su.col(k));
                vecops::axpy(-proj, su.col(k), &mut cand);
            }
            if vecops::normalize(&mut cand) > 1e-8 {
                su.col_mut(j).copy_from_slice(&cand);
                break;
            }
        }
    }
    Ok(ThinSvd { u: su, s, v: sv })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fill_standard_normal;
    use crate::svd::thin_svd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Mat::zeros(rows, cols);
        fill_standard_normal(&mut rng, m.as_mut_slice());
        m
    }

    #[test]
    fn matches_serial_singular_values() {
        let a = random(600, 24, 1);
        let serial = thin_svd(&a).unwrap();
        for threads in [2, 4] {
            let par = par_thin_svd(&a, threads).unwrap();
            for (x, y) in par.s.iter().zip(&serial.s) {
                assert!((x - y).abs() < 1e-8 * (1.0 + y), "{x} vs {y} (t={threads})");
            }
        }
    }

    #[test]
    fn reconstructs_input() {
        let a = random(512, 17, 2); // odd column count exercises the bye
        let f = par_thin_svd(&a, 4).unwrap();
        assert!(f.reconstruct().sub(&a).unwrap().max_abs() < 1e-8);
        // Orthonormal factors.
        let gu = f.u.gram();
        let gv = f.v.gram();
        let eye = Mat::identity(17);
        assert!(gu.sub(&eye).unwrap().max_abs() < 1e-9);
        assert!(gv.sub(&eye).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn small_inputs_fall_back_to_serial() {
        let a = random(20, 3, 3);
        let f = par_thin_svd(&a, 8).unwrap();
        assert!(f.reconstruct().sub(&a).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn rank_deficient_handled() {
        let mut a = random(400, 8, 4);
        // Make column 5 a copy of column 2.
        let c2 = a.col(2).to_vec();
        a.col_mut(5).copy_from_slice(&c2);
        let f = par_thin_svd(&a, 3).unwrap();
        assert!(f.s[7] < 1e-8 * f.s[0]);
        assert!(f.reconstruct().sub(&a).unwrap().max_abs() < 1e-7);
    }

    #[test]
    fn wide_rejected() {
        assert!(par_thin_svd(&Mat::zeros(3, 6), 2).is_err());
    }

    #[test]
    fn tournament_covers_all_pairs() {
        // Re-derive the pairing logic and check every unordered pair meets
        // exactly once per sweep.
        for n in [6usize, 7, 12] {
            let slots = if n % 2 == 0 { n } else { n + 1 };
            let mut met = std::collections::HashSet::new();
            for round in 0..slots - 1 {
                let resolve = |slot: usize| -> usize {
                    if slot == 0 {
                        0
                    } else {
                        1 + (slot - 1 + round) % (slots - 1)
                    }
                };
                for k in 0..slots / 2 {
                    let (pi, qi) = (resolve(k), resolve(slots - 1 - k));
                    if pi < n && qi < n && pi != qi {
                        let pair = (pi.min(qi), pi.max(qi));
                        assert!(met.insert(pair), "pair {pair:?} met twice (n={n})");
                    }
                }
            }
            assert_eq!(met.len(), n * (n - 1) / 2, "missing pairs for n={n}");
        }
    }
}
