//! Small symmetric positive-definite solves (Cholesky).
//!
//! Gap filling projects an incomplete spectrum onto the eigenbasis restricted
//! to the observed bins, which requires solving a tiny (`p × p`) SPD system
//! `(Eᵀ M E) c = Eᵀ M y` per gappy observation. A dense Cholesky with a
//! diagonal jitter fallback is exactly right at this size.

use crate::mat::Mat;
use crate::{LinalgError, Result};

/// Cholesky factor `L` (lower triangular) with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Fails with [`LinalgError::NotFinite`] on non-finite input and
    /// [`LinalgError::NoConvergence`] if the matrix is not positive
    /// definite even after a small diagonal jitter.
    pub fn new(a: &Mat) -> Result<Self> {
        let mut l = Mat::default();
        factor_into(a, &mut l)?;
        Ok(Cholesky { l })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("rhs of length {n}"),
                got: (b.len(), 1),
            });
        }
        let mut z = b.to_vec();
        solve_in_place(&self.l, &mut z);
        Ok(z)
    }
}

/// Factorizes `a` into the caller-owned lower-triangular buffer.
fn factor_into(a: &Mat, l: &mut Mat) -> Result<()> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::ShapeMismatch {
            expected: "square".into(),
            got: (m, n),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NotFinite);
    }
    // Retry with growing jitter: rank-deficient masked Gram matrices
    // occur when a spectrum's observed bins can't distinguish two
    // eigenvectors, and regularized solves are the standard remedy.
    let scale = a.max_abs().max(f64::MIN_POSITIVE);
    let mut jitter = 0.0;
    for attempt in 0..6 {
        if try_factor_into(a, jitter, l) {
            return Ok(());
        }
        jitter = scale * 1e-12 * 10f64.powi(attempt);
    }
    Err(LinalgError::NoConvergence {
        routine: "cholesky",
        sweeps: 6,
    })
}

fn try_factor_into(a: &Mat, jitter: f64, l: &mut Mat) -> bool {
    let n = a.rows();
    l.reset_zeroed(n, n);
    for j in 0..n {
        let mut d = a[(j, j)] + jitter;
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return false;
        }
        let djj = d.sqrt();
        l[(j, j)] = djj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / djj;
        }
    }
    true
}

/// In-place forward (`L z = b`) then backward (`Lᵀ x = z`) substitution.
///
/// Both passes are column-oriented so the inner loops run down contiguous
/// column tails of `L` and ride the dispatched `axpy`/`dot` kernels: the
/// forward pass scatters each solved entry into the remaining rows, the
/// backward pass gathers `Lᵀ`'s row `i` as the tail of column `i`.
fn solve_in_place(l: &Mat, z: &mut [f64]) {
    let n = l.rows();
    for k in 0..n {
        z[k] /= l[(k, k)];
        let zk = z[k];
        crate::vecops::axpy(-zk, &l.col(k)[k + 1..], &mut z[k + 1..]);
    }
    for i in (0..n).rev() {
        let tail = crate::vecops::dot(&l.col(i)[i + 1..], &z[i + 1..]);
        z[i] = (z[i] - tail) / l[(i, i)];
    }
}

/// Reusable buffers for [`spd_solve_into`].
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    /// Solution vector, valid after a successful call.
    pub x: Vec<f64>,
    l: Mat,
}

/// One-shot SPD solve `A x = b`.
pub fn spd_solve(a: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    Cholesky::new(a)?.solve(b)
}

/// SPD solve into a workspace: `ws.x = A⁻¹ b` with no allocation once the
/// buffers have grown to size (semantics of [`spd_solve`]).
pub fn spd_solve_into(a: &Mat, b: &[f64], ws: &mut SolveWorkspace) -> Result<()> {
    if b.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("rhs of length {}", a.rows()),
            got: (b.len(), 1),
        });
    }
    factor_into(a, &mut ws.l)?;
    ws.x.clear();
    ws.x.extend_from_slice(b);
    solve_in_place(&ws.l, &mut ws.x);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fill_standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_spd(n: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Mat::zeros(n + 3, n);
        fill_standard_normal(&mut rng, b.as_mut_slice());
        b.gram()
    }

    #[test]
    fn solve_round_trip() {
        let a = random_spd(6, 41);
        let x_true = vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.25];
        let b = a.matvec(&x_true).unwrap();
        let x = spd_solve(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn identity_solve_is_identity() {
        let i = Mat::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(spd_solve(&i, &b).unwrap(), b);
    }

    #[test]
    fn near_singular_uses_jitter() {
        // Rank-1 outer product plus epsilon: classic near-singular SPD.
        let mut a = Mat::zeros(3, 3);
        a.rank_one_update(1.0, &[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0])
            .unwrap();
        for i in 0..3 {
            a[(i, i)] += 1e-15;
        }
        let x = spd_solve(&a, &[1.0, 1.0, 1.0]);
        assert!(x.is_ok());
        assert!(x.unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn indefinite_rejected() {
        let mut a = Mat::identity(2);
        a[(1, 1)] = -5.0;
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn wrong_rhs_length() {
        let a = Mat::identity(3);
        let c = Cholesky::new(&a).unwrap();
        assert!(c.solve(&[1.0]).is_err());
    }

    #[test]
    fn solve_into_matches_one_shot_across_sizes() {
        let mut ws = SolveWorkspace::default();
        for (n, seed) in [(6usize, 41u64), (3, 42), (8, 43)] {
            let a = random_spd(n, seed);
            let b: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
            spd_solve_into(&a, &b, &mut ws).unwrap();
            assert_eq!(ws.x, spd_solve(&a, &b).unwrap(), "n={n}");
        }
    }

    #[test]
    fn solve_into_wrong_rhs_length() {
        let mut ws = SolveWorkspace::default();
        assert!(spd_solve_into(&Mat::identity(3), &[1.0], &mut ws).is_err());
    }
}
