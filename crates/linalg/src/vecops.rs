//! Vector primitives on plain slices.
//!
//! These are the innermost loops of the whole system (every incoming
//! spectrum runs through dots, axpys and norms). The heavy ones — `dot`,
//! `axpy`, `scale`, `norm_sq` — delegate to the runtime-dispatched
//! [`crate::kernels`] layer, so every caller automatically rides AVX2+FMA
//! where the CPU has it and the portable unrolled scalar code elsewhere
//! (or under `SPCA_FORCE_SCALAR`).

use crate::kernels;

/// Dot product. Panics if lengths differ.
///
/// Dispatched: AVX2+FMA with four independent 4-lane accumulators where
/// available, otherwise the four-wide unrolled scalar loop. Both paths use
/// a fixed combine order, so results are deterministic run-to-run.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    kernels::dot(a, b)
}

/// `y += alpha * x`. Panics if lengths differ. Dispatched like [`dot`].
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    kernels::axpy(alpha, x, y);
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    kernels::norm_sq(a).sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    kernels::norm_sq(a)
}

/// In-place scalar multiply. Dispatched like [`dot`].
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    kernels::scale(a, s);
}

/// Element-wise `a - b` into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise `a + b` into a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Normalizes `a` to unit Euclidean norm in place; returns the prior norm.
/// A zero vector is left untouched and `0.0` is returned.
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
    n
}

/// Mean of the entries (0 for an empty slice).
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Maximum absolute entry.
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// True if every entry is finite.
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norm_345() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_unit_and_returns_old_norm() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm(&v) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_is_noop() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
