//! Vector primitives on plain slices.
//!
//! These are the innermost loops of the whole system (every incoming
//! spectrum runs through dots, axpys and norms), written so LLVM can
//! auto-vectorize them: straight-line iteration, no bounds checks in the
//! hot path after the explicit length assert.

/// Dot product. Panics if lengths differ.
///
/// Unrolled four-wide with independent accumulators: a naive loop is a
/// serial floating-point dependency chain (one fused multiply-add per
/// ~4-cycle latency), while four partial sums keep the FPU pipeline full.
/// The combine order `(s0+s1)+(s2+s3)` is fixed so results are
/// deterministic run-to-run.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (x, y) in (&mut ca).zip(&mut cb) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

/// `y += alpha * x`. Panics if lengths differ.
///
/// Unrolled four-wide to match [`dot`]; each lane is independent, so this
/// mostly helps LLVM pick wider vector stores.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (yc, xc) in (&mut cy).zip(&mut cx) {
        yc[0] += alpha * xc[0];
        yc[1] += alpha * xc[1];
        yc[2] += alpha * xc[2];
        yc[3] += alpha * xc[3];
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// In-place scalar multiply.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Element-wise `a - b` into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise `a + b` into a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Normalizes `a` to unit Euclidean norm in place; returns the prior norm.
/// A zero vector is left untouched and `0.0` is returned.
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
    n
}

/// Mean of the entries (0 for an empty slice).
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Maximum absolute entry.
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// True if every entry is finite.
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norm_345() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_unit_and_returns_old_norm() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm(&v) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_is_noop() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
