//! Dense column-major matrix type.
//!
//! Column-major layout is chosen deliberately: the streaming PCA update and
//! the one-sided Jacobi SVD both operate on whole columns (eigenvectors), so
//! keeping columns contiguous makes the hot loops cache-friendly and lets us
//! hand out `&[f64]` column slices without copying.

use crate::vecops;
use crate::{LinalgError, Result};

/// A dense `rows × cols` matrix of `f64`, stored column-major.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Mat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for r in 0..show_rows {
            write!(f, "  ")?;
            for c in 0..show_cols {
                write!(f, "{:>11.4e} ", self[(r, c)])?;
            }
            if show_cols < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Mat {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for c in 0..cols {
            for r in 0..rows {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Builds a matrix from column-major data. Panics if the length is wrong.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "column-major data length mismatch");
        Mat { rows, cols, data }
    }

    /// Builds a matrix whose columns are the given vectors.
    ///
    /// Panics if the vectors have differing lengths.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        if cols.is_empty() {
            return Mat::zeros(0, 0);
        }
        let rows = cols[0].len();
        let mut data = Vec::with_capacity(rows * cols.len());
        for c in cols {
            assert_eq!(c.len(), rows, "all columns must have equal length");
            data.extend_from_slice(c);
        }
        Mat {
            rows,
            cols: cols.len(),
            data,
        }
    }

    /// Reshapes `self` to `rows × cols`, zero-filled, reusing the existing
    /// allocation whenever its capacity suffices.
    ///
    /// This is the workhorse of the preallocated-workspace path: after the
    /// first call at a given size, subsequent calls perform no heap
    /// allocation.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes `self` to the `n × n` identity, reusing the allocation.
    pub fn reset_identity(&mut self, n: usize) {
        self.reset_zeroed(n, n);
        for i in 0..n {
            self.data[i * n + i] = 1.0;
        }
    }

    /// Makes `self` an exact copy of `other` (shape and contents), reusing
    /// the existing allocation whenever its capacity suffices.
    pub fn copy_from(&mut self, other: &Mat) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Overwrites column `c` with `src * s`. Panics on length mismatch.
    pub fn scale_col_from(&mut self, c: usize, src: &[f64], s: f64) {
        let col = self.col_mut(c);
        assert_eq!(col.len(), src.len(), "scale_col_from: length mismatch");
        for (dst, x) in col.iter_mut().zip(src) {
            *dst = x * s;
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow column `c` as a contiguous slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        debug_assert!(c < self.cols);
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Mutably borrow column `c`.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        debug_assert!(c < self.cols);
        &mut self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Mutably borrow two distinct columns at once (needed by Jacobi sweeps).
    ///
    /// Panics if `a == b`.
    pub fn two_cols_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(a, b, "two_cols_mut requires distinct columns");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (left, right) = self.data.split_at_mut(hi * self.rows);
        let lo_col = &mut left[lo * self.rows..(lo + 1) * self.rows];
        let hi_col = &mut right[..self.rows];
        if a < b {
            (lo_col, hi_col)
        } else {
            (hi_col, lo_col)
        }
    }

    /// Copy row `r` into a new vector (rows are strided in this layout).
    pub fn row(&self, r: usize) -> Vec<f64> {
        (0..self.cols).map(|c| self[(r, c)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for c in 0..self.cols {
            for r in 0..self.rows {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                got: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (c, &xc) in x.iter().enumerate() {
            if xc != 0.0 {
                vecops::axpy(xc, self.col(c), &mut y);
            }
        }
        Ok(y)
    }

    /// Transposed matrix–vector product `selfᵀ * x`, i.e. the vector of
    /// column inner products. Cache-friendly in this layout.
    pub fn tr_matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.rows),
                got: (x.len(), 1),
            });
        }
        Ok((0..self.cols)
            .map(|c| vecops::dot(self.col(c), x))
            .collect())
    }

    /// Matrix product `self * other` using the blocked serial kernel.
    pub fn matmul(&self, other: &Mat) -> Result<Mat> {
        crate::gemm::gemm(self, other)
    }

    /// In-place scalar multiply (dispatched SIMD over the whole buffer).
    pub fn scale_mut(&mut self, s: f64) {
        vecops::scale(&mut self.data, s);
    }

    /// Returns `self * s`.
    pub fn scaled(&self, s: f64) -> Mat {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// In-place addition `self += other`.
    pub fn add_assign(&mut self, other: &Mat) -> Result<()> {
        self.check_same_shape(other)?;
        vecops::axpy(1.0, &other.data, &mut self.data);
        Ok(())
    }

    /// In-place scaled addition `self += s * other`.
    pub fn axpy_mat(&mut self, s: f64, other: &Mat) -> Result<()> {
        self.check_same_shape(other)?;
        vecops::axpy(s, &other.data, &mut self.data);
        Ok(())
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &Mat) -> Result<Mat> {
        self.check_same_shape(other)?;
        let mut m = self.clone();
        for (a, b) in m.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
        Ok(m)
    }

    /// Rank-one update `self += s * x yᵀ`.
    pub fn rank_one_update(&mut self, s: f64, x: &[f64], y: &[f64]) -> Result<()> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("x len {}, y len {}", self.rows, self.cols),
                got: (x.len(), y.len()),
            });
        }
        for (c, &yc) in y.iter().enumerate() {
            let syc = s * yc;
            if syc != 0.0 {
                vecops::axpy(syc, x, self.col_mut(c));
            }
        }
        Ok(())
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        vecops::norm_sq(&self.data).sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Extracts the sub-matrix consisting of columns `[lo, hi)`.
    pub fn columns_range(&self, lo: usize, hi: usize) -> Mat {
        assert!(lo <= hi && hi <= self.cols, "column range out of bounds");
        Mat {
            rows: self.rows,
            cols: hi - lo,
            data: self.data[lo * self.rows..hi * self.rows].to_vec(),
        }
    }

    /// Horizontally concatenates `self` and `other` (`[self | other]`).
    pub fn hcat(&self, other: &Mat) -> Result<Mat> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} rows", self.rows),
                got: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.cols + other.cols) * self.rows);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Mat {
            rows: self.rows,
            cols: self.cols + other.cols,
            data,
        })
    }

    /// Gram matrix `selfᵀ · self` (`cols × cols`), the thin-SVD workhorse.
    pub fn gram(&self) -> Mat {
        let n = self.cols;
        let mut g = Mat::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let d = vecops::dot(self.col(i), self.col(j));
                g[(i, j)] = d;
                g[(j, i)] = d;
            }
        }
        g
    }

    fn check_same_shape(&self, other: &Mat) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                got: other.shape(),
            });
        }
        Ok(())
    }
}

impl Default for Mat {
    /// An empty `0 × 0` matrix — the natural seed for workspace buffers
    /// that grow on first use.
    fn default() -> Self {
        Mat::zeros(0, 0)
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[c * self.rows + r]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[c * self.rows + r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mat {
        Mat::from_fn(3, 2, |r, c| (r * 10 + c) as f64)
    }

    #[test]
    fn index_round_trip() {
        let m = sample();
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.shape(), (3, 2));
    }

    #[test]
    fn columns_are_contiguous() {
        let m = sample();
        assert_eq!(m.col(0), &[0.0, 10.0, 20.0]);
        assert_eq!(m.col(1), &[1.0, 11.0, 21.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = sample();
        let y = m.matvec(&[1.0, 2.0]).unwrap();
        assert_eq!(y, vec![2.0, 32.0, 62.0]);
    }

    #[test]
    fn tr_matvec_matches_transpose_matvec() {
        let m = sample();
        let x = [1.0, -1.0, 0.5];
        let a = m.tr_matvec(&x).unwrap();
        let b = m.transpose().matvec(&x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_shape_error() {
        let m = sample();
        assert!(matches!(
            m.matvec(&[1.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rank_one_update_adds_outer_product() {
        let mut m = Mat::zeros(2, 2);
        m.rank_one_update(2.0, &[1.0, 2.0], &[3.0, 4.0]).unwrap();
        assert_eq!(m[(0, 0)], 6.0);
        assert_eq!(m[(1, 0)], 12.0);
        assert_eq!(m[(0, 1)], 8.0);
        assert_eq!(m[(1, 1)], 16.0);
    }

    #[test]
    fn two_cols_mut_returns_requested_order() {
        let mut m = sample();
        {
            let (a, b) = m.two_cols_mut(1, 0);
            assert_eq!(a, &[1.0, 11.0, 21.0]);
            assert_eq!(b, &[0.0, 10.0, 20.0]);
            a[0] = 99.0;
        }
        assert_eq!(m[(0, 1)], 99.0);
    }

    #[test]
    fn hcat_concatenates() {
        let m = sample();
        let h = m.hcat(&m).unwrap();
        assert_eq!(h.shape(), (3, 4));
        assert_eq!(h.col(2), m.col(0));
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let m = sample();
        let g = m.gram();
        assert_eq!(g.shape(), (2, 2));
        assert!((g[(0, 1)] - g[(1, 0)]).abs() < 1e-12);
        assert!(g[(0, 0)] >= 0.0 && g[(1, 1)] >= 0.0);
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = Mat::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x).unwrap(), x.to_vec());
    }

    #[test]
    fn columns_range_slices() {
        let m = Mat::from_fn(2, 4, |r, c| (r + 10 * c) as f64);
        let s = m.columns_range(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.col(0), m.col(1));
        assert_eq!(s.col(1), m.col(2));
    }

    #[test]
    fn fro_norm_of_identity() {
        assert!((Mat::identity(9).fro_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroed_reuses_allocation() {
        let mut m = Mat::zeros(10, 10);
        m[(3, 3)] = 7.0;
        let cap = m.data.capacity();
        m.reset_zeroed(8, 4);
        assert_eq!(m.shape(), (8, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(
            m.data.capacity(),
            cap,
            "reset within capacity must not realloc"
        );
    }

    #[test]
    fn reset_identity_matches_identity() {
        let mut m = Mat::zeros(6, 6);
        m.reset_identity(4);
        assert_eq!(m, Mat::identity(4));
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = sample();
        let mut dst = Mat::zeros(9, 9);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn scale_col_from_writes_scaled_column() {
        let mut m = Mat::zeros(3, 2);
        m.scale_col_from(1, &[1.0, 2.0, 3.0], -2.0);
        assert_eq!(m.col(1), &[-2.0, -4.0, -6.0]);
        assert_eq!(m.col(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn default_is_empty() {
        let m = Mat::default();
        assert_eq!(m.shape(), (0, 0));
    }
}
