//! Property-based equivalence between the scalar and SIMD kernel backends.
//!
//! The dispatched AVX2+FMA kernels may differ from the portable scalar code
//! in the last bits (4-lane stripe reductions, fused multiply-add), but the
//! two paths must agree to high relative accuracy on *every* input shape the
//! callers can produce: odd lengths that leave vector-width remainders,
//! unaligned slice offsets (`Vec` data is 8-byte aligned, AVX2 lanes want
//! 32), subnormal magnitudes and signed zeros. Each path must also be
//! bit-deterministic run-to-run — the fault-tolerance layer's snapshot
//! rehydration tests rely on within-process replays being exact.
//!
//! On hosts without AVX2 the backend list collapses to `[Scalar]` and these
//! properties degenerate to self-consistency, which keeps the suite green on
//! any target while still being a real cross-backend check on x86-64 CI.

use proptest::prelude::*;
use spca_linalg::kernels::{self, Backend};

/// Backends available on this host: scalar always, AVX2+FMA when detected.
fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar];
    if Backend::Avx2Fma.available() {
        v.push(Backend::Avx2Fma);
    }
    v
}

/// Vector strategy mixing ordinary magnitudes with the adversarial values:
/// exact zeros of both signs and subnormal-range magnitudes (`x · 1e-310`).
fn tricky_vec(len: core::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((-100.0f64..100.0, 0u8..10), len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(x, sel)| match sel {
                0 => 0.0,
                1 => -0.0,
                2 => x * 1e-310,
                3 => -x * 1e-310,
                _ => x,
            })
            .collect()
    })
}

/// Paired equal-length tricky vectors plus an unaligned starting offset.
fn paired_vecs() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, usize)> {
    (1usize..128, 0usize..4).prop_flat_map(|(n, off)| {
        (
            tricky_vec((n + off)..(n + off + 1)),
            tricky_vec((n + off)..(n + off + 1)),
            (off..off + 1),
        )
    })
}

fn rel_tol(magnitude: f64) -> f64 {
    1e-12 * (1.0 + magnitude)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dot_backends_agree((a, b, off) in paired_vecs()) {
        let (a, b) = (&a[off..], &b[off..]);
        let magnitude: f64 = a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum();
        let want = kernels::dot_on(Backend::Scalar, a, b);
        for be in backends() {
            let got = kernels::dot_on(be, a, b);
            prop_assert!(
                (got - want).abs() <= rel_tol(magnitude),
                "{be:?} n={} off={off}: {got} vs {want}", a.len()
            );
        }
    }

    #[test]
    fn axpy_backends_agree((x, y, off) in paired_vecs(), alpha in -10.0f64..10.0) {
        let x = &x[off..];
        for be in backends() {
            let mut want = y[off..].to_vec();
            let mut got = y[off..].to_vec();
            kernels::axpy_on(Backend::Scalar, alpha, x, &mut want);
            kernels::axpy_on(be, alpha, x, &mut got);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                prop_assert!(
                    (g - w).abs() <= rel_tol(w.abs() + (alpha * x[i]).abs()),
                    "{be:?} i={i}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn gemm_backends_agree(
        (m, k, width) in (1usize..24, 0usize..12, 1usize..10),
        seed_a in tricky_vec(1..2),
        seed_b in tricky_vec(1..2),
    ) {
        // Deterministically expand the seeds so the panels hit odd shapes
        // straddling the 8×4 tile with tricky entries sprinkled through.
        let a: Vec<f64> = (0..m * k)
            .map(|i| seed_a[0] + (i as f64 * 0.73).sin())
            .collect();
        let bpan: Vec<f64> = (0..k * width)
            .map(|i| if i % 7 == 3 { 0.0 } else { seed_b[0] + (i as f64 * 1.19).cos() })
            .collect();
        let bound = a.iter().fold(0.0f64, |s, v| s.max(v.abs()))
            * bpan.iter().fold(0.0f64, |s, v| s.max(v.abs()))
            * k as f64;
        let mut want = vec![0.0; m * width];
        kernels::gemm_block_on(Backend::Scalar, m, k, width, &a, &bpan, &mut want);
        for be in backends() {
            let mut got = vec![0.0; m * width];
            kernels::gemm_block_on(be, m, k, width, &a, &bpan, &mut got);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!(
                    (g - w).abs() <= rel_tol(bound),
                    "{be:?} {m}x{k}x{width}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn each_backend_bit_deterministic((a, b, off) in paired_vecs()) {
        let (a, b) = (&a[off..], &b[off..]);
        for be in backends() {
            let first = kernels::dot_on(be, a, b);
            prop_assert_eq!(kernels::dot_on(be, a, b).to_bits(), first.to_bits());

            let mut y1 = b.to_vec();
            let mut y2 = b.to_vec();
            kernels::axpy_on(be, 1.5, a, &mut y1);
            kernels::axpy_on(be, 1.5, a, &mut y2);
            for (u, v) in y1.iter().zip(&y2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn gemm_bit_deterministic((m, k, width) in (1usize..20, 1usize..10, 1usize..8)) {
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.31).sin()).collect();
        let bpan: Vec<f64> = (0..k * width).map(|i| (i as f64 * 0.17).cos()).collect();
        for be in backends() {
            let mut r1 = vec![0.0; m * width];
            let mut r2 = vec![0.0; m * width];
            kernels::gemm_block_on(be, m, k, width, &a, &bpan, &mut r1);
            kernels::gemm_block_on(be, m, k, width, &a, &bpan, &mut r2);
            for (u, v) in r1.iter().zip(&r2) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }
}
