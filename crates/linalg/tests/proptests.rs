//! Property-based tests for the linear-algebra kernels.
//!
//! Strategy: generate random matrices with bounded entries and assert the
//! algebraic identities every decomposition must satisfy, at tolerances
//! scaled to the input magnitude.

use proptest::prelude::*;
use spca_linalg::{eigen, qr, svd, Mat, QrWorkspace, SvdWorkspace};

/// Strategy producing a (rows, cols, entries) triple with rows >= cols.
fn tall_matrix() -> impl Strategy<Value = Mat> {
    (1usize..12, 1usize..6).prop_flat_map(|(extra, cols)| {
        let rows = cols + extra;
        proptest::collection::vec(-100.0f64..100.0, rows * cols)
            .prop_map(move |data| Mat::from_col_major(rows, cols, data))
    })
}

fn square_matrix() -> impl Strategy<Value = Mat> {
    (1usize..9).prop_flat_map(|n| {
        proptest::collection::vec(-50.0f64..50.0, n * n)
            .prop_map(move |data| Mat::from_col_major(n, n, data))
    })
}

/// Strategy producing thin matrices of *any* admissible shape — including
/// zero columns — and, half the time, exactly rank-deficient ones (column 1
/// overwritten with a copy of column 0). These are the shapes the workspace
/// equivalence laws must hold on.
fn any_thin_matrix() -> impl Strategy<Value = Mat> {
    (0usize..5, 0usize..10, any::<bool>()).prop_flat_map(|(cols, extra, degenerate)| {
        let rows = cols + extra;
        proptest::collection::vec(-100.0f64..100.0, rows * cols).prop_map(move |data| {
            let mut m = Mat::from_col_major(rows, cols, data);
            if degenerate && cols >= 2 {
                let c0 = m.col(0).to_vec();
                m.col_mut(1).copy_from_slice(&c0);
            }
            m
        })
    })
}

fn tol_for(m: &Mat) -> f64 {
    1e-8 * (1.0 + m.max_abs()) * (m.rows() + m.cols()) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qr_reconstructs(a in tall_matrix()) {
        let f = qr::thin_qr(&a).unwrap();
        let back = f.q.matmul(&f.r).unwrap();
        prop_assert!(back.sub(&a).unwrap().max_abs() < tol_for(&a));
    }

    #[test]
    fn qr_q_orthonormal(a in tall_matrix()) {
        let f = qr::thin_qr(&a).unwrap();
        let g = f.q.gram();
        let eye = Mat::identity(a.cols());
        // Rank-deficient random draws are measure-zero but numerically
        // possible; Gram must still be close to a projector's diagonal.
        prop_assert!(g.sub(&eye).unwrap().max_abs() < 1e-6);
    }

    #[test]
    fn svd_reconstructs(a in tall_matrix()) {
        let f = svd::thin_svd(&a).unwrap();
        prop_assert!(f.reconstruct().sub(&a).unwrap().max_abs() < tol_for(&a));
    }

    #[test]
    fn svd_values_sorted_and_nonnegative(a in tall_matrix()) {
        let f = svd::thin_svd(&a).unwrap();
        for w in f.s.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert!(f.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn svd_frobenius_identity(a in tall_matrix()) {
        let f = svd::thin_svd(&a).unwrap();
        let ss: f64 = f.s.iter().map(|x| x * x).sum();
        let fro2 = a.fro_norm().powi(2);
        prop_assert!((ss - fro2).abs() <= 1e-9 * (1.0 + fro2));
    }

    #[test]
    fn sym_eigen_reconstructs(b in square_matrix()) {
        // Symmetrize the draw.
        let bt = b.transpose();
        let mut s = b.clone();
        s.add_assign(&bt).unwrap();
        s.scale_mut(0.5);
        let e = eigen::sym_eigen(&s).unwrap();
        prop_assert!(e.reconstruct().sub(&s).unwrap().max_abs() < tol_for(&s));
    }

    #[test]
    fn eigen_trace_identity(b in square_matrix()) {
        let bt = b.transpose();
        let mut s = b.clone();
        s.add_assign(&bt).unwrap();
        s.scale_mut(0.5);
        let e = eigen::sym_eigen(&s).unwrap();
        let tr: f64 = (0..s.rows()).map(|i| s[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((tr - sum).abs() < tol_for(&s));
    }

    #[test]
    fn matmul_associative_with_vector(a in tall_matrix(), x in proptest::collection::vec(-10.0f64..10.0, 1..6)) {
        // (A x) computed directly equals A * (x as matrix) columnwise.
        prop_assume!(x.len() == a.cols());
        let y = a.matvec(&x).unwrap();
        let xm = Mat::from_col_major(x.len(), 1, x.clone());
        let ym = a.matmul(&xm).unwrap();
        for i in 0..y.len() {
            prop_assert!((y[i] - ym[(i, 0)]).abs() < 1e-9 * (1.0 + y[i].abs()));
        }
    }

    #[test]
    fn transpose_respects_matmul(a in tall_matrix()) {
        // (AᵀA)ᵀ == AᵀA
        let g = a.gram();
        let gt = g.transpose();
        prop_assert!(g.sub(&gt).unwrap().max_abs() < 1e-10 * (1.0 + g.max_abs()));
    }

    #[test]
    fn svd_into_matches_allocating_svd(ms in proptest::collection::vec(any_thin_matrix(), 1..5)) {
        // One workspace reused across a random sequence of shapes (growing,
        // shrinking, empty, rank-deficient) must reproduce the allocating
        // path exactly — stale scratch from a previous decomposition must
        // never leak into the next result.
        let mut ws = SvdWorkspace::default();
        for a in &ms {
            let fresh = svd::thin_svd(a).unwrap();
            svd::thin_svd_into(a, &mut ws).unwrap();
            prop_assert_eq!(&ws.s, &fresh.s);
            prop_assert_eq!(&ws.u, &fresh.u);
            prop_assert_eq!(&ws.v, &fresh.v);
        }
    }

    #[test]
    fn qr_into_matches_allocating_qr(ms in proptest::collection::vec(any_thin_matrix(), 1..5)) {
        let mut ws = QrWorkspace::default();
        for a in &ms {
            let fresh = qr::thin_qr(a).unwrap();
            qr::thin_qr_into(a, &mut ws).unwrap();
            prop_assert_eq!(&ws.q, &fresh.q);
            prop_assert_eq!(&ws.r, &fresh.r);
        }
    }
}
