//! Socket-backed cross-PE links: the real TCP transport behind graph
//! edges that cross a process boundary.
//!
//! In a single process, a cross-PE edge is a bounded crossbeam channel of
//! pooled [`Frame`]s. When the producing and consuming PEs live in
//! different OS processes, the same channel machinery is kept on both
//! sides and a [`NetTransport`] bridges them over TCP:
//!
//! ```text
//!   producer PE ──channel──▶ sender thread ══TCP══▶ conn thread ──channel──▶ consumer PE
//! ```
//!
//! The wire protocol is deliberately tiny (five message kinds, all
//! little-endian):
//!
//! * `HELLO`  — `"SPCH"` + version byte + `u64` link id; sender → receiver
//!   immediately after connecting (or reconnecting).
//! * `RESUME` — `"SPCR"` + `u64` delivered-entry count; receiver → sender
//!   in reply to `HELLO`. Tells the sender where to resume.
//! * `DATA`   — `"SPCD"` + `u64` start-entry count, followed by one
//!   [`codec`](crate::codec) frame. `start` is the cumulative number of
//!   entries shipped on this link before the frame, so both ends can trim
//!   duplicates after a retransmission.
//! * `ACK`    — `"SPCA"` + `u64` cumulative acknowledged entry count;
//!   receiver → sender. The sender prunes its retransmit queue up to this
//!   point. In [`AckMode::Stable`] the acknowledged count only advances
//!   when the consuming PE checkpoints, so everything since the last
//!   durable checkpoint stays retransmittable across a process kill.
//! * `GOODBYE` — `"SPCG"`; sender → receiver once the producing side has
//!   drained *and* every entry is acknowledged. Closes the link cleanly.
//!
//! **Exactly-once:** every entry (data, control, or punctuation) on a link
//! has a position in a single per-link sequence. The receiver tracks
//! `delivered`, drops the duplicate prefix of any retransmitted frame, and
//! never advances `delivered` on a partially-read or corrupt frame (the
//! codec CRC check runs before any copy). The sender keeps encoded frames
//! queued until acknowledged and replays the tail after a reconnect.
//! Together these make redelivery idempotent: a dropped connection — or a
//! killed and respawned worker process — yields the same delivered tuple
//! sequence as a fault-free run.
//!
//! **Reconnect:** the sender owns connection establishment and retries
//! with capped exponential backoff; the receiver simply keeps accepting.
//! Wire faults from the fault grammar (`net-drop-conn@link:N`,
//! `net-partial-write@link:N`) are injected in the sender's socket shim,
//! the way [`FaultVfs`](crate::vfs::FaultVfs) wraps storage writes.

use crate::codec::{decode_frame, encode_frame, frame_len, ColumnarFrame, HEADER_LEN};
use crate::tuple::{Frame, FramePool};
use crossbeam::channel::{Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Wire-protocol version carried in every `HELLO`.
pub const WIRE_VERSION: u8 = 1;

const TAG_HELLO: [u8; 4] = *b"SPCH";
const TAG_RESUME: [u8; 4] = *b"SPCR";
const TAG_DATA: [u8; 4] = *b"SPCD";
const TAG_ACK: [u8; 4] = *b"SPCA";
const TAG_GOODBYE: [u8; 4] = *b"SPCG";

/// Socket read poll interval: blocking reads time out this often so the
/// thread can notice the stop flag and flush lagging stable acks.
const READ_TICK: Duration = Duration::from_millis(50);
/// How long [`NetTransport::shutdown`] lets senders finish their clean
/// close (final ack round trip + `GOODBYE`) before aborting them.
const DRAIN_GRACE: Duration = Duration::from_secs(2);
/// First reconnect backoff; doubles up to [`BACKOFF_CAP`].
const BACKOFF_START: Duration = Duration::from_millis(25);
/// Reconnect backoff ceiling.
const BACKOFF_CAP: Duration = Duration::from_secs(1);
/// Handshake deadline: a peer that accepts but never completes the
/// `HELLO`/`RESUME` exchange within this window is treated as dead.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(10);
/// Encoded-frame buffers recycled per sender (steady state allocates none).
const SPARE_ENCODE_BUFS: usize = 8;

/// Deterministic wire faults, compiled from the fault grammar
/// (`net-drop-conn@link:N`, `net-partial-write@link:N`). Indices are
/// 1-based counts of frame writes per link; each fires at most once
/// because the per-link write counter is monotone.
#[derive(Debug, Default, Clone)]
pub struct WireFaultSpec {
    /// Frame-write indices at which the connection is dropped instead of
    /// writing the frame.
    pub drop_conn: Vec<u64>,
    /// Frame-write indices at which only half the frame's bytes are
    /// written before the connection is dropped.
    pub partial_write: Vec<u64>,
}

impl WireFaultSpec {
    /// True when the spec injects nothing.
    pub fn is_empty(&self) -> bool {
        self.drop_conn.is_empty() && self.partial_write.is_empty()
    }
}

/// How the receiving side acknowledges delivered entries.
#[derive(Clone)]
pub enum AckMode {
    /// Acknowledge on receipt (the entry was forwarded into the consuming
    /// PE's channel). Used when the consumer does not checkpoint: a
    /// process kill loses state anyway, so receipt is as good as stable.
    Receipt,
    /// Acknowledge only up to the given checkpoint-stable routed count.
    /// The engine stores the per-link routed count in the PE manifest and
    /// advances this counter after each successful checkpoint, so the
    /// sender retains everything since the last durable state.
    Stable(Arc<AtomicU64>),
}

impl std::fmt::Debug for AckMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AckMode::Receipt => write!(f, "Receipt"),
            AckMode::Stable(v) => write!(f, "Stable({})", v.load(Ordering::Relaxed)),
        }
    }
}

/// Receiving side of one boundary link.
struct Incoming {
    /// Channel into the consuming PE; taken (and thereby disconnected)
    /// on `GOODBYE`.
    tx: Mutex<Option<Sender<Frame>>>,
    pool: Arc<FramePool>,
    inflight: Arc<AtomicUsize>,
    /// Entries forwarded into the channel so far (the `RESUME` point).
    delivered: Arc<AtomicU64>,
    ack: AckMode,
    /// At most one connection drives a link at a time; a reconnect waits
    /// for the previous connection's thread to notice the broken socket.
    busy: AtomicBool,
}

/// Sending side of one boundary link, consumed by [`NetTransport::start`].
struct Outgoing {
    link_id: u64,
    rx: Receiver<Frame>,
    pool: Arc<FramePool>,
    inflight: Arc<AtomicUsize>,
    peer: SocketAddr,
}

/// The per-process TCP transport: one listener for all incoming boundary
/// links plus one sender thread per outgoing boundary link.
///
/// Construction order: [`bind`](NetTransport::bind) early (so the local
/// address can be exchanged), register links while wiring the engine
/// graph, then [`start`](NetTransport::start). [`shutdown`]
/// (NetTransport::shutdown) reaps every thread; it is idempotent.
pub struct NetTransport {
    listener: TcpListener,
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    incoming: Mutex<HashMap<u64, Arc<Incoming>>>,
    outgoing: Mutex<Vec<Outgoing>>,
    faults: Mutex<Option<Arc<WireFaultSpec>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    sender_handles: Mutex<Vec<JoinHandle<()>>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for NetTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetTransport({})", self.local)
    }
}

impl NetTransport {
    /// Binds the data listener. `addr` may use port 0 for an ephemeral
    /// port; [`local_addr`](NetTransport::local_addr) reports the actual
    /// one for address exchange.
    pub fn bind(addr: &str) -> io::Result<Arc<NetTransport>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(Arc::new(NetTransport {
            listener,
            local,
            stop: Arc::new(AtomicBool::new(false)),
            incoming: Mutex::new(HashMap::new()),
            outgoing: Mutex::new(Vec::new()),
            faults: Mutex::new(None),
            handles: Mutex::new(Vec::new()),
            sender_handles: Mutex::new(Vec::new()),
            conn_handles: Arc::new(Mutex::new(Vec::new())),
        }))
    }

    /// The bound data address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Installs deterministic wire faults on every sender shim.
    pub fn set_faults(&self, spec: WireFaultSpec) {
        if !spec.is_empty() {
            *self.faults.lock() = Some(Arc::new(spec));
        }
    }

    /// Registers the receiving end of boundary link `link_id`: decoded
    /// frames are forwarded into `tx` using buffers from `pool`, with
    /// `inflight` incremented per forwarded entry (the consuming PE's
    /// `ChanMeta` decrements it). Returns the `delivered` counter so the
    /// engine can pre-set it when rehydrating from a checkpoint manifest.
    pub fn add_incoming(
        &self,
        link_id: u64,
        tx: Sender<Frame>,
        pool: Arc<FramePool>,
        inflight: Arc<AtomicUsize>,
        ack: AckMode,
    ) -> Arc<AtomicU64> {
        let delivered = Arc::new(AtomicU64::new(0));
        self.incoming.lock().insert(
            link_id,
            Arc::new(Incoming {
                tx: Mutex::new(Some(tx)),
                pool,
                inflight,
                delivered: Arc::clone(&delivered),
                ack,
                busy: AtomicBool::new(false),
            }),
        );
        delivered
    }

    /// Registers the sending end of boundary link `link_id`: frames from
    /// `rx` are encoded and shipped to `peer`, spent tuple buffers are
    /// recycled through `pool`, and `inflight` is decremented per entry as
    /// it leaves the channel.
    pub fn add_outgoing(
        &self,
        link_id: u64,
        rx: Receiver<Frame>,
        pool: Arc<FramePool>,
        inflight: Arc<AtomicUsize>,
        peer: SocketAddr,
    ) {
        self.outgoing.lock().push(Outgoing {
            link_id,
            rx,
            pool,
            inflight,
            peer,
        });
    }

    /// Spawns the acceptor and one sender thread per registered outgoing
    /// link. Call after every link is registered.
    pub fn start(self: &Arc<Self>) {
        let mut handles = self.handles.lock();
        let me = Arc::clone(self);
        handles.push(
            thread::Builder::new()
                .name("spca-net-accept".into())
                .spawn(move || me.accept_loop())
                .expect("spawn acceptor"),
        );
        drop(handles);
        let faults = self.faults.lock().clone();
        let mut senders = self.sender_handles.lock();
        for link in self.outgoing.lock().drain(..) {
            let stop = Arc::clone(&self.stop);
            let spec = faults.clone();
            senders.push(
                thread::Builder::new()
                    .name(format!("spca-net-send-{}", link.link_id))
                    .spawn(move || run_sender(link, stop, spec))
                    .expect("spawn sender"),
            );
        }
    }

    /// Stops the acceptor, reaps every transport thread, and returns.
    ///
    /// Senders first get a short grace period to finish their clean close
    /// — the producing PE has already exited by the time this runs, so
    /// all that remains is the final ack round trip and `GOODBYE`. A
    /// sender that still holds unacknowledged frames for an unreachable
    /// peer after the grace gives up (with a note on stderr) rather than
    /// hang.
    pub fn shutdown(&self) {
        let deadline = Instant::now() + DRAIN_GRACE;
        while !self.sender_handles.lock().iter().all(|h| h.is_finished()) {
            if Instant::now() >= deadline {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        self.stop.store(true, Ordering::SeqCst);
        let senders: Vec<_> = self.sender_handles.lock().drain(..).collect();
        for h in senders {
            let _ = h.join();
        }
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        let conns: Vec<_> = self.conn_handles.lock().drain(..).collect();
        for h in conns {
            let _ = h.join();
        }
    }

    fn accept_loop(self: Arc<Self>) {
        while !self.stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let me = Arc::clone(&self);
                    let h = thread::Builder::new()
                        .name("spca-net-recv".into())
                        .spawn(move || me.handle_conn(stream))
                        .expect("spawn receiver");
                    self.conn_handles.lock().push(h);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(_) => thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Drives one accepted connection: `HELLO` → `RESUME`, then `DATA`
    /// frames (decoded, duplicate-trimmed, forwarded, acknowledged) until
    /// `GOODBYE`, EOF, or a socket/codec error. Errors never advance the
    /// delivered count — the sender retransmits on its next connection.
    fn handle_conn(self: Arc<Self>, mut s: TcpStream) {
        let stop = Arc::clone(&self.stop);
        let _ = s.set_nodelay(true);
        let _ = s.set_read_timeout(Some(READ_TICK));

        // HELLO: magic + version + link id.
        let mut hello = [0u8; 13];
        if read_full(&mut s, &mut hello, &stop).is_err() {
            return;
        }
        if hello[..4] != TAG_HELLO || hello[4] != WIRE_VERSION {
            return;
        }
        let link_id = u64::from_le_bytes(hello[5..13].try_into().expect("8 bytes"));
        let Some(link) = self.incoming.lock().get(&link_id).map(Arc::clone) else {
            return; // Unknown link: refuse by closing.
        };

        // One connection at a time per link; a stale predecessor notices
        // its dead socket within a read tick.
        let t0 = Instant::now();
        while link
            .busy
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            if stop.load(Ordering::Relaxed) || t0.elapsed() > HANDSHAKE_DEADLINE {
                return;
            }
            thread::sleep(Duration::from_millis(5));
        }
        self.drive_link(&mut s, &link, &stop);
        link.busy.store(false, Ordering::SeqCst);
    }

    fn drive_link(&self, s: &mut TcpStream, link: &Incoming, stop: &AtomicBool) {
        // RESUME with where this link's delivered sequence stands.
        let mut resume = [0u8; 12];
        resume[..4].copy_from_slice(&TAG_RESUME);
        resume[4..].copy_from_slice(&link.delivered.load(Ordering::SeqCst).to_le_bytes());
        if s.write_all(&resume).is_err() {
            return;
        }

        let mut buf: Vec<u8> = Vec::new();
        let mut cols = ColumnarFrame::default();
        let mut last_acked: u64 = 0;
        let mut tag = [0u8; 4];
        let mut tag_off = 0usize;
        loop {
            if stop.load(Ordering::Relaxed) {
                // Shutdown may land right after the receiver's terminal
                // checkpoint advanced the stable watermark; flush that last
                // ack so the sender's clean-close gate (produced <= acked)
                // can clear instead of timing out with an unacked tail.
                let ack = ack_value(link);
                if ack > last_acked {
                    let _ = write_ack(s, ack);
                }
                return;
            }
            match s.read(&mut tag[tag_off..]) {
                Ok(0) => return, // EOF: sender gone; it will reconnect.
                Ok(n) => {
                    tag_off += n;
                    if tag_off < 4 {
                        continue;
                    }
                    tag_off = 0;
                    if tag == TAG_DATA {
                        match self.recv_frame(s, link, stop, &mut buf, &mut cols) {
                            Ok(ack) => {
                                if write_ack(s, ack).is_err() {
                                    return;
                                }
                                last_acked = ack;
                            }
                            Err(_) => return,
                        }
                    } else if tag == TAG_GOODBYE {
                        // Clean close: disconnect the engine channel.
                        link.tx.lock().take();
                        return;
                    } else {
                        return; // Desynchronized stream: force a reconnect.
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Idle tick: push a lagging stable ack (checkpoints
                    // advance it outside the data path).
                    let ack = ack_value(link);
                    if ack > last_acked {
                        if write_ack(s, ack).is_err() {
                            return;
                        }
                        last_acked = ack;
                    }
                }
                Err(_) => return,
            }
        }
    }

    /// Reads, decodes, duplicate-trims, and forwards one `DATA` frame.
    /// Returns the ack value to report. Any error means the connection is
    /// unusable and nothing was forwarded from this frame.
    fn recv_frame(
        &self,
        s: &mut TcpStream,
        link: &Incoming,
        stop: &AtomicBool,
        buf: &mut Vec<u8>,
        cols: &mut ColumnarFrame,
    ) -> io::Result<u64> {
        let mut start8 = [0u8; 8];
        read_full(s, &mut start8, stop)?;
        let start = u64::from_le_bytes(start8);
        let mut hdr = [0u8; HEADER_LEN];
        read_full(s, &mut hdr, stop)?;
        let total = frame_len(&hdr).map_err(io::Error::from)?;
        buf.clear();
        buf.resize(total, 0);
        buf[..HEADER_LEN].copy_from_slice(&hdr);
        read_full(s, &mut buf[HEADER_LEN..], stop)?;
        decode_frame(buf, cols).map_err(io::Error::from)?;

        let n = cols.n_entries() as u64;
        let delivered = link.delivered.load(Ordering::SeqCst);
        if start > delivered {
            // A gap means we lost track relative to the sender; drop the
            // connection and let the handshake resynchronize.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame starts past delivered count",
            ));
        }
        let end = start + n;
        if end > delivered {
            let skip = (delivered - start) as usize;
            let mut tuples = link.pool.take(cols.n_entries());
            cols.materialize(&mut tuples).map_err(io::Error::from)?;
            if skip > 0 {
                tuples.drain(..skip);
            }
            let fwd = tuples.len();
            let sent = match link.tx.lock().as_ref() {
                Some(tx) => {
                    link.inflight.fetch_add(fwd, Ordering::SeqCst);
                    tx.send(Frame::from_vec(tuples)).is_ok()
                }
                None => false,
            };
            if !sent {
                link.inflight.fetch_sub(fwd, Ordering::SeqCst);
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "consuming engine is gone",
                ));
            }
            link.delivered.store(end, Ordering::SeqCst);
        }
        Ok(ack_value(link))
    }
}

/// The cumulative entry count the receiver may acknowledge right now.
fn ack_value(link: &Incoming) -> u64 {
    match &link.ack {
        AckMode::Receipt => link.delivered.load(Ordering::SeqCst),
        AckMode::Stable(stable) => stable.load(Ordering::SeqCst),
    }
}

fn write_ack(s: &mut TcpStream, v: u64) -> io::Result<()> {
    let mut msg = [0u8; 12];
    msg[..4].copy_from_slice(&TAG_ACK);
    msg[4..].copy_from_slice(&v.to_le_bytes());
    s.write_all(&msg)
}

/// Reads exactly `buf.len()` bytes, retrying read-timeout ticks until the
/// stop flag is raised.
fn read_full(s: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<()> {
    let mut off = 0;
    while off < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "transport stopped",
            ));
        }
        match s.read(&mut buf[off..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => off += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Outcome of a bounded wait on the engine channel (the vendored
/// crossbeam channel has no `recv_timeout`; this polls at the same
/// 100 µs granularity as its `Select`).
enum RecvOutcome {
    Frame(Frame),
    Timeout,
    Disconnected,
}

fn recv_timeout(rx: &Receiver<Frame>, timeout: Duration) -> RecvOutcome {
    let deadline = Instant::now() + timeout;
    loop {
        match rx.try_recv() {
            Ok(f) => return RecvOutcome::Frame(f),
            Err(TryRecvError::Disconnected) => return RecvOutcome::Disconnected,
            Err(TryRecvError::Empty) => {
                if Instant::now() >= deadline {
                    return RecvOutcome::Timeout;
                }
                thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

/// An encoded frame parked until acknowledged: entry positions
/// `[start, end)` on the link plus the encoded bytes.
struct QFrame {
    start: u64,
    end: u64,
    bytes: Vec<u8>,
}

/// Sender-side socket shim: owns the per-link frame-write counter and
/// injects deterministic wire faults the way `FaultVfs` injects storage
/// faults — by failing the operation at a scripted index.
struct SendSock {
    stream: TcpStream,
    spec: Option<Arc<WireFaultSpec>>,
}

impl SendSock {
    /// Writes one `DATA` preamble + frame with vectored writes, applying
    /// scripted faults at the given 1-based write index. `Ok(false)` means
    /// a fault dropped the connection (the frame stays queued).
    fn write_frame(&mut self, idx: u64, start: u64, bytes: &[u8]) -> io::Result<bool> {
        if let Some(spec) = &self.spec {
            if spec.drop_conn.contains(&idx) {
                let _ = self.stream.shutdown(Shutdown::Both);
                return Ok(false);
            }
            if spec.partial_write.contains(&idx) {
                let mut pre = [0u8; 12];
                pre[..4].copy_from_slice(&TAG_DATA);
                pre[4..].copy_from_slice(&start.to_le_bytes());
                let _ = self.stream.write_all(&pre);
                let _ = self.stream.write_all(&bytes[..bytes.len() / 2]);
                let _ = self.stream.shutdown(Shutdown::Both);
                return Ok(false);
            }
        }
        let mut pre = [0u8; 12];
        pre[..4].copy_from_slice(&TAG_DATA);
        pre[4..].copy_from_slice(&start.to_le_bytes());
        let mut a = 0usize; // bytes of preamble written
        let mut b = 0usize; // bytes of frame written
        while a < pre.len() || b < bytes.len() {
            let n = if a < pre.len() {
                let iov = [IoSlice::new(&pre[a..]), IoSlice::new(&bytes[b..])];
                self.stream.write_vectored(&iov)?
            } else {
                self.stream.write(&bytes[b..])?
            };
            if n == 0 {
                return Err(io::ErrorKind::WriteZero.into());
            }
            let adv_a = n.min(pre.len() - a);
            a += adv_a;
            b += n - adv_a;
        }
        Ok(true)
    }
}

/// One sender thread: connect (with capped backoff), handshake, replay
/// unacknowledged frames, then pump the engine channel until it drains
/// and every entry is acknowledged.
fn run_sender(link: Outgoing, stop: Arc<AtomicBool>, spec: Option<Arc<WireFaultSpec>>) {
    let Outgoing {
        link_id,
        rx,
        pool,
        inflight,
        peer,
    } = link;
    let mut produced: u64 = 0; // Entries consumed from the engine channel.
    let mut skip_until: u64 = 0; // Receiver already has entries below this.
    let mut frame_writes: u64 = 0; // Fault-shim index, monotone across reconnects.
    let mut queue: VecDeque<QFrame> = VecDeque::new();
    let mut spares: Vec<Vec<u8>> = Vec::new();
    let acked = Arc::new(AtomicU64::new(0));
    let mut chan_open = true;
    let mut ack_threads: Vec<JoinHandle<()>> = Vec::new();

    'conn: loop {
        // Connect with capped exponential backoff.
        let mut backoff = BACKOFF_START;
        let stream = loop {
            if stop.load(Ordering::Relaxed) {
                give_up(link_id, &queue, produced, &acked);
                break 'conn;
            }
            match TcpStream::connect_timeout(&peer, Duration::from_secs(1)) {
                Ok(s) => break s,
                Err(_) => {
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                }
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(READ_TICK));
        let mut sock = SendSock {
            stream,
            spec: spec.clone(),
        };

        // HELLO, then wait for RESUME.
        let mut hello = [0u8; 13];
        hello[..4].copy_from_slice(&TAG_HELLO);
        hello[4] = WIRE_VERSION;
        hello[5..].copy_from_slice(&link_id.to_le_bytes());
        if sock.stream.write_all(&hello).is_err() {
            continue 'conn;
        }
        let resume = {
            let mut msg = [0u8; 12];
            let t0 = Instant::now();
            let got = loop {
                match read_full(&mut sock.stream, &mut msg, &stop) {
                    Ok(()) => break true,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                        give_up(link_id, &queue, produced, &acked);
                        break 'conn;
                    }
                    Err(_) if t0.elapsed() < HANDSHAKE_DEADLINE => continue,
                    Err(_) => break false,
                }
            };
            if !got || msg[..4] != TAG_RESUME {
                continue 'conn;
            }
            u64::from_le_bytes(msg[4..].try_into().expect("8 bytes"))
        };
        acked.fetch_max(resume, Ordering::SeqCst);
        prune(&mut queue, &acked, &mut spares);
        if resume > produced {
            // A fresh sender talking to a receiver that already consumed
            // part of the (deterministically replayed) stream: trim until
            // production catches up with what was delivered.
            skip_until = resume;
        }

        // Replay unacknowledged frames in order.
        for f in &queue {
            frame_writes += 1;
            match sock.write_frame(frame_writes, f.start, &f.bytes) {
                Ok(true) => {}
                Ok(false) | Err(_) => continue 'conn,
            }
        }

        // Ack reader for this connection.
        let conn_dead = Arc::new(AtomicBool::new(false));
        {
            let acked = Arc::clone(&acked);
            let dead = Arc::clone(&conn_dead);
            let stop = Arc::clone(&stop);
            let mut rd = match sock.stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue 'conn,
            };
            ack_threads.push(
                thread::Builder::new()
                    .name(format!("spca-net-ack-{link_id}"))
                    .spawn(move || {
                        let mut msg = [0u8; 12];
                        loop {
                            match read_full(&mut rd, &mut msg, &stop) {
                                Ok(()) if msg[..4] == TAG_ACK => {
                                    let v = u64::from_le_bytes(msg[4..].try_into().expect("8"));
                                    acked.fetch_max(v, Ordering::SeqCst);
                                }
                                _ => {
                                    dead.store(true, Ordering::SeqCst);
                                    return;
                                }
                            }
                        }
                    })
                    .expect("spawn ack reader"),
            );
        }

        // Pump the engine channel.
        loop {
            prune(&mut queue, &acked, &mut spares);
            if !chan_open {
                if queue.is_empty() && produced <= acked.load(Ordering::SeqCst) {
                    let _ = sock.stream.write_all(&TAG_GOODBYE);
                    let _ = sock.stream.shutdown(Shutdown::Write);
                    break 'conn;
                }
                if conn_dead.load(Ordering::SeqCst) {
                    continue 'conn;
                }
                if stop.load(Ordering::Relaxed) {
                    give_up(link_id, &queue, produced, &acked);
                    break 'conn;
                }
                thread::sleep(Duration::from_millis(5));
                continue;
            }
            match recv_timeout(&rx, Duration::from_millis(20)) {
                RecvOutcome::Frame(frame) => {
                    let n = frame.len();
                    inflight.fetch_sub(n, Ordering::SeqCst);
                    let start = produced;
                    produced += n as u64;
                    let tuples = frame.tuples;
                    if produced <= skip_until {
                        pool.put(tuples); // Entirely duplicate after a resume.
                        continue;
                    }
                    let trim = skip_until.saturating_sub(start) as usize;
                    let mut bytes = spares.pop().unwrap_or_default();
                    if let Err(e) = encode_frame(&tuples[trim..], &mut bytes) {
                        // Only unregistered control payloads can fail here;
                        // that is a programming error, not a wire condition.
                        panic!("link {link_id}: cannot encode frame: {e}");
                    }
                    pool.put(tuples);
                    let qf = QFrame {
                        start: start + trim as u64,
                        end: produced,
                        bytes,
                    };
                    frame_writes += 1;
                    let wrote = sock.write_frame(frame_writes, qf.start, &qf.bytes);
                    queue.push_back(qf);
                    match wrote {
                        Ok(true) => {}
                        Ok(false) | Err(_) => continue 'conn,
                    }
                }
                RecvOutcome::Timeout => {
                    if conn_dead.load(Ordering::SeqCst) {
                        continue 'conn;
                    }
                    if stop.load(Ordering::Relaxed) {
                        give_up(link_id, &queue, produced, &acked);
                        break 'conn;
                    }
                }
                RecvOutcome::Disconnected => chan_open = false,
            }
        }
    }
    for h in ack_threads {
        let _ = h.join();
    }
}

/// Drops acknowledged frames from the front of the retransmit queue,
/// recycling their buffers.
fn prune(queue: &mut VecDeque<QFrame>, acked: &AtomicU64, spares: &mut Vec<Vec<u8>>) {
    let a = acked.load(Ordering::SeqCst);
    while queue.front().is_some_and(|f| f.end <= a) {
        let f = queue.pop_front().expect("checked front");
        if spares.len() < SPARE_ENCODE_BUFS {
            spares.push(f.bytes);
        }
    }
}

/// Shutdown raced an unacknowledged tail: report instead of hanging.
fn give_up(link_id: u64, queue: &VecDeque<QFrame>, produced: u64, acked: &AtomicU64) {
    let a = acked.load(Ordering::SeqCst);
    if !queue.is_empty() || produced > a {
        eprintln!(
            "spca-net: link {link_id} stopped with {} unacknowledged entries",
            produced.saturating_sub(a)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{DataTuple, Punctuation, Tuple};
    use crossbeam::channel::bounded;

    fn data(seq: u64, v: f64) -> Tuple {
        let mut t = DataTuple::new(seq, vec![v, v + 0.5, -v]);
        t.timestamp_ns = seq * 3;
        Tuple::Data(t)
    }

    /// Ships `n_frames` frames of `per` tuples each (plus a final EOS)
    /// through a loopback link with `spec` faults installed, and asserts
    /// the receiver observes every tuple exactly once, in order.
    fn roundtrip(spec: Option<WireFaultSpec>) {
        let recv_side = NetTransport::bind("127.0.0.1:0").expect("bind");
        let send_side = NetTransport::bind("127.0.0.1:0").expect("bind");
        if let Some(s) = spec {
            send_side.set_faults(s);
        }
        let (n_frames, per) = (6u64, 5u64);

        let pool_in = Arc::new(FramePool::new(4));
        let inflight_in = Arc::new(AtomicUsize::new(0));
        let (tx_r, rx_r) = bounded::<Frame>(64);
        recv_side.add_incoming(9, tx_r, pool_in, Arc::clone(&inflight_in), AckMode::Receipt);
        recv_side.start();

        let pool_out = Arc::new(FramePool::new(4));
        let inflight_out = Arc::new(AtomicUsize::new(0));
        let (tx_s, rx_s) = bounded::<Frame>(64);
        send_side.add_outgoing(
            9,
            rx_s,
            Arc::clone(&pool_out),
            Arc::clone(&inflight_out),
            recv_side.local_addr(),
        );
        send_side.start();

        let mut seq = 0u64;
        for f in 0..n_frames {
            let mut tuples = pool_out.take(per as usize + 1);
            for _ in 0..per {
                tuples.push(data(seq, seq as f64 * 0.25));
                seq += 1;
            }
            if f == n_frames - 1 {
                tuples.push(Tuple::Punct(Punctuation::EndOfStream));
            }
            inflight_out.fetch_add(tuples.len(), Ordering::SeqCst);
            tx_s.send(Frame::from_vec(tuples)).expect("send");
        }
        drop(tx_s);

        let mut got: Vec<Tuple> = Vec::new();
        while let RecvOutcome::Frame(frame) = recv_timeout(&rx_r, Duration::from_secs(20)) {
            inflight_in.fetch_sub(frame.len(), Ordering::SeqCst);
            got.extend(frame.tuples);
        }
        assert_eq!(got.len() as u64, n_frames * per + 1);
        for (i, t) in got.iter().take((n_frames * per) as usize).enumerate() {
            match t {
                Tuple::Data(d) => {
                    assert_eq!(d.seq, i as u64);
                    assert_eq!(d.timestamp_ns, i as u64 * 3);
                    assert_eq!(d.values[0].to_bits(), (i as f64 * 0.25).to_bits());
                }
                other => panic!("expected data at {i}, got {other:?}"),
            }
        }
        assert!(got.last().expect("non-empty").is_eos());

        send_side.shutdown();
        recv_side.shutdown();
        assert_eq!(inflight_in.load(Ordering::SeqCst), 0);
        assert_eq!(inflight_out.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn loopback_roundtrip_bit_identical() {
        roundtrip(None);
    }

    #[test]
    fn drop_conn_fault_reconnects_exactly_once() {
        roundtrip(Some(WireFaultSpec {
            drop_conn: vec![2, 5],
            partial_write: vec![],
        }));
    }

    #[test]
    fn partial_write_fault_never_partially_applies() {
        roundtrip(Some(WireFaultSpec {
            drop_conn: vec![],
            partial_write: vec![3],
        }));
    }

    #[test]
    fn stable_acks_hold_back_goodbye_until_checkpoint() {
        let recv_side = NetTransport::bind("127.0.0.1:0").expect("bind");
        let send_side = NetTransport::bind("127.0.0.1:0").expect("bind");
        let stable = Arc::new(AtomicU64::new(0));

        let pool_in = Arc::new(FramePool::new(4));
        let inflight_in = Arc::new(AtomicUsize::new(0));
        let (tx_r, rx_r) = bounded::<Frame>(8);
        recv_side.add_incoming(
            3,
            tx_r,
            pool_in,
            inflight_in,
            AckMode::Stable(Arc::clone(&stable)),
        );
        recv_side.start();

        let pool_out = Arc::new(FramePool::new(4));
        let inflight_out = Arc::new(AtomicUsize::new(0));
        let (tx_s, rx_s) = bounded::<Frame>(8);
        send_side.add_outgoing(3, rx_s, pool_out, inflight_out, recv_side.local_addr());
        send_side.start();

        let tuples = vec![data(0, 1.0), Tuple::Punct(Punctuation::EndOfStream)];
        tx_s.send(Frame::from_vec(tuples)).expect("send");
        drop(tx_s);

        let RecvOutcome::Frame(frame) = recv_timeout(&rx_r, Duration::from_secs(10)) else {
            panic!("no frame within deadline");
        };
        assert_eq!(frame.len(), 2);
        // The channel stays connected while the ack lags the checkpoint.
        assert!(matches!(
            recv_timeout(&rx_r, Duration::from_millis(300)),
            RecvOutcome::Timeout
        ));
        // "Checkpoint" the consumed entries: the sender may now say goodbye.
        stable.store(2, Ordering::SeqCst);
        assert!(matches!(
            recv_timeout(&rx_r, Duration::from_secs(10)),
            RecvOutcome::Disconnected
        ));

        send_side.shutdown();
        recv_side.shutdown();
    }
}
