#![warn(missing_docs)]
//! A from-scratch stream-processing engine modeled on IBM InfoSphere
//! Streams, the platform the paper builds on (§III).
//!
//! The paper uses a small, well-defined slice of InfoSphere:
//!
//! * **typed tuples** flowing through a dataflow graph of operators;
//! * **stateful custom operators** (their C++ streaming-PCA operator);
//! * a **multithreaded split** that load-balances a stream across parallel
//!   engines without blocking on any one target;
//! * **control ports** carrying synchronization signals, plus the standard
//!   `Throttle` operator pacing those signals;
//! * **operator fusion** — operators placed together exchange tuples by
//!   pointer in memory, while cross-PE edges pay queueing (and, on a real
//!   cluster, network) costs;
//! * per-operator **profiling** of tuple rates and channel traffic.
//!
//! This crate implements exactly that slice: a [`graph::GraphBuilder`] wires
//! [`operator::Operator`]s into processing elements (PEs), the
//! [`engine::Engine`] runs one thread per PE with bounded crossbeam channels
//! on cross-PE edges and direct in-memory dispatch inside a PE, and
//! [`metrics`] exposes the counters the paper's profiler would show.
//!
//! The engine is deliberately generic — nothing in here knows about PCA —
//! mirroring the paper's remark that "replaceable application components
//! and flexible data flow management make it easy enough to include
//! different partial sum analytics algorithms beyond streaming PCA".
//!
//! ```
//! use spca_streams::ops::{CollectSink, GeneratorSource};
//! use spca_streams::{Engine, GraphBuilder, PortKind};
//!
//! let mut g = GraphBuilder::new();
//! let src = g.add_source(
//!     "gen",
//!     Box::new(GeneratorSource::new(|seq| Some((vec![seq as f64], None))).with_max_tuples(10)),
//! );
//! let (sink, store) = CollectSink::new();
//! let out = g.add_op("collect", Box::new(sink));
//! g.connect(src, 0, out, PortKind::Data);
//! let report = Engine::run(g);
//! assert_eq!(report.op("collect").unwrap().tuples_in, 10);
//! assert_eq!(store.lock().len(), 10);
//! ```

pub mod backfill;
pub mod checkpoint;
pub mod codec;
pub mod engine;
pub mod fault;
pub mod graph;
pub mod membership;
pub mod metrics;
pub mod netio;
pub mod operator;
pub mod ops;
pub mod optimize;
pub mod tuple;
pub mod vfs;

pub use backfill::{
    content_hash, run_partitions, BackfillStats, Partition, PartitionSource, StateStore,
};
pub use checkpoint::{Checkpoint, DEFAULT_CHECKPOINT_EVERY};
pub use codec::{decode_frame, encode_frame, register_control_codec, CodecError, ColumnarFrame};
pub use engine::{Engine, LinkReport, NetPartition, RunReport, RunningEngine};
pub use fault::{Fault, FaultAction, FaultPlan, FaultTarget, RestartPolicy, StorageDomain};
pub use graph::{GraphBuilder, LinkKind, OpId, PortKind, DEFAULT_BATCH_SIZE};
pub use membership::ActiveSet;
pub use netio::{AckMode, NetTransport, WireFaultSpec, WIRE_VERSION};
pub use operator::{OpContext, Operator, SourceState};
pub use tuple::{ControlTuple, DataTuple, Frame, FramePool, Punctuation, Tuple};
pub use vfs::{FaultVfs, IoFaultSpec, RealVfs, Vfs};
