//! Profile-guided fusion advice.
//!
//! §III-D: "The optimisation component analyses the logs of profiler and
//! fuses the operators together for optimized data throughput. The
//! optimized code can be run with a profiler again to collect more
//! information … Several steps are usually necessary to optimally layout
//! the components."
//!
//! [`suggest_fusion`] implements that loop's analysis step: given a run's
//! [`RunReport`], it greedily merges operators across the hottest links —
//! in descending tuple-traffic order — as long as the combined group does
//! not exceed a CPU-budget threshold (fusing two operators serializes them
//! on one thread, so a group whose summed busy fraction exceeds ~one core
//! would *lose* throughput). The caller applies the advice with
//! [`crate::GraphBuilder::fuse`] and re-profiles, exactly as the paper
//! iterates.

use crate::engine::RunReport;
use std::collections::HashMap;

/// One suggested fusion group (operator names).
#[derive(Debug, Clone, PartialEq)]
pub struct FusionGroup {
    /// Operators to place in one PE.
    pub ops: Vec<String>,
    /// Tuple traffic that becomes in-memory hand-off if applied.
    pub tuples_internalized: u64,
    /// Combined busy fraction of the group (relative to the run's wall
    /// clock).
    pub busy_fraction: f64,
}

/// Tuning knobs for the advisor.
#[derive(Debug, Clone)]
pub struct FusionPolicy {
    /// Maximum combined busy fraction per fused group. Groups above this
    /// would serialize more CPU work than one core can supply.
    pub max_group_busy: f64,
    /// Ignore links below this tuple count (noise floor).
    pub min_link_tuples: u64,
}

impl Default for FusionPolicy {
    fn default() -> Self {
        FusionPolicy {
            max_group_busy: 0.85,
            min_link_tuples: 16,
        }
    }
}

/// Analyzes a run report and returns fusion groups worth applying, hottest
/// first. Only groups with at least two operators are returned.
pub fn suggest_fusion(report: &RunReport, policy: &FusionPolicy) -> Vec<FusionGroup> {
    let elapsed = report.elapsed.as_secs_f64().max(1e-9);

    // Busy fraction per op.
    let busy: HashMap<&str, f64> = report
        .ops
        .iter()
        .map(|(name, s)| (name.as_str(), s.busy_ns as f64 / 1e9 / elapsed))
        .collect();

    // Union-find over op names.
    let names: Vec<&str> = report.ops.iter().map(|(n, _)| n.as_str()).collect();
    let index: HashMap<&str, usize> = names.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut parent: Vec<usize> = (0..names.len()).collect();
    let mut group_busy: Vec<f64> = names.iter().map(|n| busy[n]).collect();
    let mut internalized: Vec<u64> = vec![0; names.len()];

    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }

    // Hottest links first.
    let mut links: Vec<_> = report
        .links
        .iter()
        .filter(|l| l.tuples() >= policy.min_link_tuples)
        .collect();
    links.sort_by_key(|l| std::cmp::Reverse(l.tuples()));

    for link in links {
        let (Some(&a), Some(&b)) = (index.get(link.from.as_str()), index.get(link.to.as_str()))
        else {
            continue;
        };
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            // Already together; the traffic is internalized anyway.
            internalized[ra] += link.tuples();
            continue;
        }
        let combined = group_busy[ra] + group_busy[rb];
        if combined > policy.max_group_busy {
            continue; // fusing would over-subscribe the PE's thread
        }
        parent[rb] = ra;
        group_busy[ra] = combined;
        internalized[ra] += internalized[rb] + link.tuples();
    }

    // Collect groups of size >= 2.
    let mut members: HashMap<usize, Vec<String>> = HashMap::new();
    for (i, &name) in names.iter().enumerate() {
        let root = find(&mut parent, i);
        members.entry(root).or_default().push(name.to_string());
    }
    let mut out: Vec<FusionGroup> = members
        .into_iter()
        .filter(|(_, ops)| ops.len() >= 2)
        .map(|(root, ops)| FusionGroup {
            ops,
            tuples_internalized: internalized[root],
            busy_fraction: group_busy[root],
        })
        .collect();
    out.sort_by_key(|g| std::cmp::Reverse(g.tuples_internalized));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinkReport, RunReport};
    use crate::metrics::{LinkSnapshot, OpSnapshot};
    use std::time::Duration;

    fn op(name: &str, busy_ms: u64) -> (String, OpSnapshot) {
        (
            name.to_string(),
            OpSnapshot {
                tuples_in: 1000,
                tuples_out: 1000,
                busy_ns: busy_ms * 1_000_000,
                ..OpSnapshot::default()
            },
        )
    }

    fn link(from: &str, to: &str, tuples: u64) -> LinkReport {
        LinkReport {
            from: from.to_string(),
            to: to.to_string(),
            snapshot: LinkSnapshot {
                tuples,
                bytes: tuples * 100,
            },
        }
    }

    fn report(ops: Vec<(String, OpSnapshot)>, links: Vec<LinkReport>) -> RunReport {
        RunReport {
            elapsed: Duration::from_secs(1),
            ops,
            links,
        }
    }

    #[test]
    fn fuses_hot_lightly_loaded_chain() {
        // a --(hot)--> b --(hot)--> c, all lightly busy: one group of 3.
        let r = report(
            vec![op("a", 100), op("b", 100), op("c", 100)],
            vec![link("a", "b", 10_000), link("b", "c", 10_000)],
        );
        let groups = suggest_fusion(&r, &FusionPolicy::default());
        assert_eq!(groups.len(), 1);
        let mut ops = groups[0].ops.clone();
        ops.sort();
        assert_eq!(ops, vec!["a", "b", "c"]);
        assert_eq!(groups[0].tuples_internalized, 20_000);
        assert!((groups[0].busy_fraction - 0.3).abs() < 1e-9);
    }

    #[test]
    fn respects_cpu_budget() {
        // Both ops nearly saturated: fusing would over-subscribe.
        let r = report(
            vec![op("a", 600), op("b", 600)],
            vec![link("a", "b", 10_000)],
        );
        let groups = suggest_fusion(&r, &FusionPolicy::default());
        assert!(groups.is_empty(), "{groups:?}");
    }

    #[test]
    fn prefers_hotter_link_under_budget() {
        // b can fuse with either a (hot) or c (cold), but not both
        // (budget): the hot pair wins.
        let policy = FusionPolicy {
            max_group_busy: 0.75,
            ..Default::default()
        };
        let r = report(
            vec![op("a", 300), op("b", 300), op("c", 300)],
            vec![link("a", "b", 50_000), link("b", "c", 1_000)],
        );
        let groups = suggest_fusion(&r, &policy);
        assert_eq!(groups.len(), 1);
        let mut ops = groups[0].ops.clone();
        ops.sort();
        assert_eq!(ops, vec!["a", "b"]);
    }

    #[test]
    fn ignores_cold_links() {
        let r = report(vec![op("a", 10), op("b", 10)], vec![link("a", "b", 3)]);
        let groups = suggest_fusion(&r, &FusionPolicy::default());
        assert!(groups.is_empty());
    }

    #[test]
    fn empty_report_yields_nothing() {
        let r = report(vec![], vec![]);
        assert!(suggest_fusion(&r, &FusionPolicy::default()).is_empty());
    }

    #[test]
    fn multiple_independent_groups() {
        let r = report(
            vec![op("a", 100), op("b", 100), op("x", 100), op("y", 100)],
            vec![link("a", "b", 9_000), link("x", "y", 4_000)],
        );
        let groups = suggest_fusion(&r, &FusionPolicy::default());
        assert_eq!(groups.len(), 2);
        // Hottest first.
        assert!(groups[0].tuples_internalized >= groups[1].tuples_internalized);
    }
}
