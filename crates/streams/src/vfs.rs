//! Storage virtualization: a minimal VFS with a deterministic
//! fault-injecting backend.
//!
//! Every durable write in this workspace follows the same five-step
//! sequence — create a scratch file, write the bytes, fsync, rename over
//! the target, fsync the directory — and every one of those steps can
//! fail in the real world: `ENOSPC` on write, an error surfaced at fsync,
//! a short ("torn") write that only lands a prefix, silent bit-rot, or a
//! crash that stops the sequence between any two syscalls. The [`Vfs`]
//! trait names those steps so the persistence layer
//! ([`crate::checkpoint`], [`crate::backfill`], and the engine crate's
//! snapshot files) can run against either backend:
//!
//! * [`RealVfs`] — thin passthrough to `std::fs`;
//! * [`FaultVfs`] — wraps the real backend and injects faults from an
//!   [`IoFaultSpec`], deterministically: the *N*-th write in a domain
//!   fails with `ENOSPC`, lands only half its bytes, or lands corrupted;
//!   every fsync errors; or the *K*-th VFS operation (and everything
//!   after it) dies, simulating the device disappearing mid-sequence.
//!
//! Fault triggers are counted per [`FaultVfs`] instance. Operation order
//! is deterministic whenever a single thread drives the persistence path
//! (the common case in tests: one checkpointing PE, or one state store);
//! with several PEs checkpointing concurrently the interleaving — and so
//! the exact victim of the *N*-th-write trigger — follows the thread
//! schedule.
//!
//! Paths are classified into fault domains by their file names, which are
//! fixed by this workspace's formats: `pe*-g*-*.ckpt` / `pe*…manifest`
//! files belong to the PE-checkpoint domain, `*.state` files to the
//! state-store domain. Scratch-file suffixes (`.tmp-…`) are stripped
//! before classification so a fault aimed at a manifest fires on the
//! scratch file that would become that manifest.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// The persistence operations the storage layer is allowed to use.
///
/// All operations are whole-file and handle-free: `create` truncates,
/// `write` replaces the contents of an existing file, `fsync` makes a
/// file's bytes durable, `rename` atomically installs a file under its
/// final name, `fsync_dir` makes the rename itself durable. Keeping each
/// step a separate call is the point — a crash-point harness can count
/// them and kill a write sequence between any two.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Creates (or truncates) an empty file.
    fn create(&self, path: &Path) -> io::Result<()>;

    /// Writes `bytes` as the full contents of an existing file.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Flushes a file's bytes to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to` (same directory in practice).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Flushes a directory, making renames within it durable.
    /// Call sites treat failure as best-effort (not every filesystem
    /// supports directory fsync), but the operation still counts toward
    /// crash-point enumeration.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Reads a file's full contents.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// Passthrough backend over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> io::Result<()> {
        std::fs::File::create(path).map(|_| ())
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(0)?;
        f.write_all(bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::File::open(dir)?.sync_all()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// Which persistence path a file belongs to, for domain-scoped faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDomain {
    /// PE checkpoint blobs and manifests (`pe*-g*-*.ckpt`, `pe*…manifest`).
    PeCheckpoint,
    /// Backfill state-store entries (`*.state`).
    StateStore,
    /// Anything else (eigensystem snapshots, quarantine files, …).
    Other,
}

/// Classifies a path into its fault domain by file name, after stripping
/// any `.tmp-…` scratch suffix.
pub fn domain_of(path: &Path) -> IoDomain {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let logical = match name.find(".tmp") {
        Some(i) => &name[..i],
        None => &name[..],
    };
    if logical.starts_with("pe") && (logical.ends_with(".ckpt") || logical.ends_with(".manifest")) {
        IoDomain::PeCheckpoint
    } else if logical.ends_with(".state") {
        IoDomain::StateStore
    } else {
        IoDomain::Other
    }
}

/// Deterministic disk-fault schedule, usually built from a fault plan via
/// [`crate::fault::FaultPlan::io_spec`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IoFaultSpec {
    /// 1-based indices of PE-checkpoint-domain writes that fail `ENOSPC`.
    pub enospc_pe: Vec<u64>,
    /// 1-based indices of PE-checkpoint-domain writes that land torn
    /// (only a prefix of the bytes reaches the file; the call succeeds).
    pub torn_pe: Vec<u64>,
    /// Every fsync (file and directory) fails.
    pub fsync_err: bool,
    /// 1-based indices of state-store-domain writes that land with one
    /// byte flipped (the call succeeds; detection is the reader's job).
    pub corrupt_store: Vec<u64>,
    /// 1-based global VFS-operation index at which the device "dies":
    /// that operation and every later one fails.
    pub crash_at_op: Option<u64>,
}

impl IoFaultSpec {
    /// True when the spec injects nothing.
    pub fn is_empty(&self) -> bool {
        self == &IoFaultSpec::default()
    }
}

/// Fault-injecting backend: wraps [`RealVfs`] and applies an
/// [`IoFaultSpec`] with per-instance deterministic counters.
#[derive(Debug, Default)]
pub struct FaultVfs {
    inner: RealVfs,
    spec: IoFaultSpec,
    /// Global operation counter (all ops, all domains), 1-based.
    ops: AtomicU64,
    /// PE-checkpoint-domain write counter, 1-based.
    pe_writes: AtomicU64,
    /// State-store-domain write counter, 1-based.
    store_writes: AtomicU64,
    /// Faults injected so far (errors returned plus silent torn/corrupt).
    injected: AtomicU64,
}

/// The error a crashed device returns for every operation from the crash
/// point on.
fn crashed() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "simulated storage crash")
}

/// A simulated out-of-space error, matching the kernel's `ENOSPC`.
fn enospc() -> io::Error {
    io::Error::from_raw_os_error(28) // ENOSPC: "No space left on device"
}

impl FaultVfs {
    /// A fault-injecting VFS over the real filesystem.
    pub fn new(spec: IoFaultSpec) -> Self {
        FaultVfs {
            spec,
            ..Default::default()
        }
    }

    /// Total VFS operations performed (attempted) so far.
    pub fn ops_performed(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults injected so far, counting silent (torn/corrupt) ones.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Counts one operation; errors if the device has crashed.
    fn op(&self) -> io::Result<u64> {
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(k) = self.spec.crash_at_op {
            if n >= k {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(crashed());
            }
        }
        Ok(n)
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<()> {
        self.op()?;
        self.inner.create(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.op()?;
        match domain_of(path) {
            IoDomain::PeCheckpoint => {
                let n = self.pe_writes.fetch_add(1, Ordering::Relaxed) + 1;
                if self.spec.enospc_pe.contains(&n) {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    return Err(enospc());
                }
                if self.spec.torn_pe.contains(&n) {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    // A torn write lands a prefix and *reports success* —
                    // the damage is only discoverable at read time.
                    return self.inner.write(path, &bytes[..bytes.len() / 2]);
                }
                self.inner.write(path, bytes)
            }
            IoDomain::StateStore => {
                let n = self.store_writes.fetch_add(1, Ordering::Relaxed) + 1;
                if self.spec.corrupt_store.contains(&n) {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    let mut rot = bytes.to_vec();
                    if let Some(last) = rot.last_mut() {
                        *last ^= 0xff; // bit-rot the payload tail
                    }
                    return self.inner.write(path, &rot);
                }
                self.inner.write(path, bytes)
            }
            IoDomain::Other => self.inner.write(path, bytes),
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.op()?;
        if self.spec.fsync_err {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other("simulated fsync failure"));
        }
        self.inner.fsync(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.op()?;
        self.inner.rename(from, to)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        self.op()?;
        if self.spec.fsync_err {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other("simulated fsync failure"));
        }
        self.inner.fsync_dir(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.op()?;
        self.inner.read(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.op()?;
        self.inner.remove(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU64 as TestCounter;

    static DIR_ID: TestCounter = TestCounter::new(0);

    fn temp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "spca-vfs-test-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn real_vfs_round_trips_the_write_sequence() {
        let dir = temp_dir();
        let v = RealVfs;
        let tmp = dir.join("a.state.tmp-1");
        let dst = dir.join("a.state");
        v.create(&tmp).unwrap();
        v.write(&tmp, b"hello").unwrap();
        v.fsync(&tmp).unwrap();
        v.rename(&tmp, &dst).unwrap();
        v.fsync_dir(&dir).unwrap();
        assert_eq!(v.read(&dst).unwrap(), b"hello");
        v.remove(&dst).unwrap();
        assert!(v.read(&dst).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn real_write_truncates_previous_contents() {
        let dir = temp_dir();
        let v = RealVfs;
        let p = dir.join("f");
        v.create(&p).unwrap();
        v.write(&p, b"a longer payload").unwrap();
        v.write(&p, b"short").unwrap();
        assert_eq!(v.read(&p).unwrap(), b"short");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn domains_classify_by_logical_file_name() {
        assert_eq!(
            domain_of(Path::new("/d/pe0-g3-1.ckpt")),
            IoDomain::PeCheckpoint
        );
        assert_eq!(
            domain_of(Path::new("/d/pe2.manifest")),
            IoDomain::PeCheckpoint
        );
        assert_eq!(
            domain_of(Path::new("/d/pe2.manifest.tmp-77-3")),
            IoDomain::PeCheckpoint,
            "scratch suffix is stripped before classification"
        );
        assert_eq!(
            domain_of(Path::new("/d/rows-0-100.state")),
            IoDomain::StateStore
        );
        assert_eq!(
            domain_of(Path::new("/d/rows-0-100.state.tmp-9-1")),
            IoDomain::StateStore
        );
        assert_eq!(
            domain_of(Path::new("/d/engine0_recovery.snapshot")),
            IoDomain::Other
        );
    }

    #[test]
    fn enospc_fires_on_the_nth_pe_write_only() {
        let dir = temp_dir();
        let v = FaultVfs::new(IoFaultSpec {
            enospc_pe: vec![2],
            ..Default::default()
        });
        let a = dir.join("pe0-g1-0.ckpt");
        let b = dir.join("pe0-g1-1.ckpt");
        v.create(&a).unwrap();
        v.write(&a, b"first").unwrap();
        v.create(&b).unwrap();
        let err = v.write(&b, b"second").unwrap_err();
        assert!(err.to_string().to_lowercase().contains("space"), "{err}");
        assert_eq!(v.faults_injected(), 1);
        // Store-domain writes do not advance the PE counter.
        let s = dir.join("x.state");
        v.create(&s).unwrap();
        v.write(&s, b"store").unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_write_lands_a_prefix_and_reports_success() {
        let dir = temp_dir();
        let v = FaultVfs::new(IoFaultSpec {
            torn_pe: vec![1],
            ..Default::default()
        });
        let p = dir.join("pe1-g1-0.ckpt");
        v.create(&p).unwrap();
        v.write(&p, b"0123456789").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"01234");
        assert_eq!(v.faults_injected(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_store_write_flips_the_payload_tail() {
        let dir = temp_dir();
        let v = FaultVfs::new(IoFaultSpec {
            corrupt_store: vec![1],
            ..Default::default()
        });
        let p = dir.join("a.state");
        v.create(&p).unwrap();
        v.write(&p, b"abc").unwrap();
        let got = std::fs::read(&p).unwrap();
        assert_eq!(&got[..2], b"ab");
        assert_eq!(got[2], b'c' ^ 0xff);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fsync_err_fails_every_fsync_but_nothing_else() {
        let dir = temp_dir();
        let v = FaultVfs::new(IoFaultSpec {
            fsync_err: true,
            ..Default::default()
        });
        let p = dir.join("f");
        v.create(&p).unwrap();
        v.write(&p, b"x").unwrap();
        assert!(v.fsync(&p).is_err());
        assert!(v.fsync_dir(&dir).is_err());
        assert_eq!(v.read(&p).unwrap(), b"x");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn crash_kills_the_kth_and_every_later_operation() {
        let dir = temp_dir();
        let v = FaultVfs::new(IoFaultSpec {
            crash_at_op: Some(3),
            ..Default::default()
        });
        let p = dir.join("f");
        v.create(&p).unwrap(); // op 1
        v.write(&p, b"x").unwrap(); // op 2
        assert!(v.fsync(&p).is_err()); // op 3: dead
        assert!(v.read(&p).is_err()); // still dead
        assert!(v.remove(&p).is_err()); // forever
        assert_eq!(v.ops_performed(), 5);
        std::fs::remove_dir_all(dir).ok();
    }
}
