//! Per-operator and per-link counters — the engine's "profiling tool".
//!
//! §III-D: "IBM InfoSphere Streams provides a set of tools for profiling
//! the application. The profiling tool measures the performance of each
//! component and the data channels traffic." These registries expose the
//! same signals: tuple counts in/out and busy time per operator, tuple and
//! byte counts per link, all lock-free (`AtomicU64` with relaxed ordering —
//! counters need atomicity, not ordering).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live counters for one operator.
#[derive(Debug, Default)]
pub struct OpCounters {
    /// Data tuples consumed.
    pub tuples_in: AtomicU64,
    /// Data tuples emitted.
    pub tuples_out: AtomicU64,
    /// Control tuples consumed.
    pub control_in: AtomicU64,
    /// Nanoseconds spent inside `process`/`on_control`.
    pub busy_ns: AtomicU64,
    /// Supervisor restarts after an isolated panic.
    pub restarts: AtomicU64,
    /// Whole-PE restarts this operator lived through (the hosting thread
    /// died and every fused operator was rebuilt from its checkpoint).
    pub pe_restarts: AtomicU64,
    /// Tuples diverted to quarantine (non-finite payloads).
    pub quarantined: AtomicU64,
    /// Synchronization steps skipped (gate not passed / engine not alive).
    pub sync_skips: AtomicU64,
    /// Storage faults survived (failed checkpoint writes, damaged files
    /// discovered at recovery, state-store quarantines).
    pub io_faults: AtomicU64,
    /// Checkpoint/manifest/state files quarantined aside as `*.corrupt-N`
    /// after failing structural validation.
    pub quarantined_snapshots: AtomicU64,
    /// Periodic PE checkpoints skipped because the write failed (ENOSPC,
    /// fsync error, dead device) — the PE keeps running and backs off.
    pub checkpoint_skips: AtomicU64,
    /// Elastic scale-out events (engines admitted into the active fleet).
    pub scale_outs: AtomicU64,
    /// Elastic scale-in events (engines retired from the active fleet).
    pub scale_ins: AtomicU64,
}

/// Live counters for one cross-PE link.
#[derive(Debug, Default)]
pub struct LinkCounters {
    /// Tuples transferred.
    pub tuples: AtomicU64,
    /// Estimated bytes transferred.
    pub bytes: AtomicU64,
}

/// Immutable snapshot of one operator's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Data tuples consumed.
    pub tuples_in: u64,
    /// Data tuples emitted.
    pub tuples_out: u64,
    /// Control tuples consumed.
    pub control_in: u64,
    /// Nanoseconds of busy time.
    pub busy_ns: u64,
    /// Supervisor restarts after an isolated panic.
    pub restarts: u64,
    /// Whole-PE restarts this operator lived through.
    pub pe_restarts: u64,
    /// Tuples diverted to quarantine (non-finite payloads).
    pub quarantined: u64,
    /// Synchronization steps skipped (gate not passed / engine not alive).
    pub sync_skips: u64,
    /// Storage faults survived.
    pub io_faults: u64,
    /// Files quarantined aside as `*.corrupt-N`.
    pub quarantined_snapshots: u64,
    /// Periodic checkpoints skipped because the write failed.
    pub checkpoint_skips: u64,
    /// Elastic scale-out events (engines admitted).
    pub scale_outs: u64,
    /// Elastic scale-in events (engines retired).
    pub scale_ins: u64,
}

/// Immutable snapshot of one link's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Tuples transferred.
    pub tuples: u64,
    /// Bytes transferred.
    pub bytes: u64,
}

impl OpCounters {
    /// Takes a consistent-enough snapshot (relaxed reads).
    pub fn snapshot(&self) -> OpSnapshot {
        OpSnapshot {
            tuples_in: self.tuples_in.load(Ordering::Relaxed),
            tuples_out: self.tuples_out.load(Ordering::Relaxed),
            control_in: self.control_in.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            pe_restarts: self.pe_restarts.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            sync_skips: self.sync_skips.load(Ordering::Relaxed),
            io_faults: self.io_faults.load(Ordering::Relaxed),
            quarantined_snapshots: self.quarantined_snapshots.load(Ordering::Relaxed),
            checkpoint_skips: self.checkpoint_skips.load(Ordering::Relaxed),
            scale_outs: self.scale_outs.load(Ordering::Relaxed),
            scale_ins: self.scale_ins.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add_in(&self) {
        self.tuples_in.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_out(&self) {
        self.tuples_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_control(&self) {
        self.control_in.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_busy(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn add_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_pe_restart(&self) {
        self.pe_restarts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_sync_skip(&self) {
        self.sync_skips.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_io_faults(&self, n: u64) {
        self.io_faults.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_quarantined_snapshots(&self, n: u64) {
        self.quarantined_snapshots.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_checkpoint_skip(&self) {
        self.checkpoint_skips.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_scale_out(&self) {
        self.scale_outs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_scale_in(&self) {
        self.scale_ins.fetch_add(1, Ordering::Relaxed);
    }
}

impl LinkCounters {
    /// Takes a snapshot.
    pub fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            tuples: self.tuples.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Accounts a whole frame at once while keeping the tuple as the
    /// accounting unit: `tuples` and `bytes` are the frame's per-tuple
    /// totals, so `LinkReport` figures are identical whether an edge ran
    /// batched or tuple-at-a-time.
    pub(crate) fn add_many(&self, tuples: u64, bytes: u64) {
        self.tuples.fetch_add(tuples, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Shared registry handed to every operator context; the engine builds one
/// per run and returns its snapshots in the [`crate::engine::RunReport`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    ops: Vec<Arc<OpCounters>>,
    links: Vec<Arc<LinkCounters>>,
}

impl MetricsRegistry {
    /// Registers counters for a new operator; returns its handle.
    pub fn register_op(&mut self) -> Arc<OpCounters> {
        let c = Arc::new(OpCounters::default());
        self.ops.push(Arc::clone(&c));
        c
    }

    /// Registers counters for a new link; returns its handle.
    pub fn register_link(&mut self) -> Arc<LinkCounters> {
        let c = Arc::new(LinkCounters::default());
        self.links.push(Arc::clone(&c));
        c
    }

    /// Snapshots every operator, in registration order.
    pub fn op_snapshots(&self) -> Vec<OpSnapshot> {
        self.ops.iter().map(|c| c.snapshot()).collect()
    }

    /// Snapshots every link, in registration order.
    pub fn link_snapshots(&self) -> Vec<LinkSnapshot> {
        self.links.iter().map(|c| c.snapshot()).collect()
    }
}

/// Windowed throughput measurement over a running engine, following the
/// paper's protocol ("the observations processing rate was measured as the
/// number of output tuples … averaged in 30 seconds after about 5 minutes
/// of processing"): snapshot counters at two instants and difference them.
#[derive(Debug, Clone)]
pub struct RateProbe {
    baseline: Vec<OpSnapshot>,
    taken_at: std::time::Instant,
}

impl RateProbe {
    /// Starts a measurement window from the given live snapshots.
    pub fn start(snapshots: Vec<OpSnapshot>) -> Self {
        RateProbe {
            baseline: snapshots,
            taken_at: std::time::Instant::now(),
        }
    }

    /// Ends the window: returns per-operator `tuples_in` rates (tuples/s),
    /// aligned with the snapshot order.
    ///
    /// Contract: `now_snapshots` must come from the **same registry** as the
    /// snapshots passed to [`RateProbe::start`], so both vectors have the
    /// same length and order (graphs are static, so operators are never
    /// added or removed mid-run). A length mismatch means the caller paired
    /// a probe with the wrong engine's snapshots; `zip` would silently drop
    /// the surplus operators, so this is a debug assertion rather than an
    /// accepted input.
    pub fn rates_in(&self, now_snapshots: &[OpSnapshot]) -> Vec<f64> {
        debug_assert_eq!(
            self.baseline.len(),
            now_snapshots.len(),
            "RateProbe::rates_in: snapshot count changed between start ({}) and now ({}); \
             both must come from the same MetricsRegistry",
            self.baseline.len(),
            now_snapshots.len()
        );
        let dt = self.taken_at.elapsed().as_secs_f64().max(1e-9);
        self.baseline
            .iter()
            .zip(now_snapshots)
            .map(|(b, n)| (n.tuples_in.saturating_sub(b.tuples_in)) as f64 / dt)
            .collect()
    }

    /// Aggregate input rate over operators selected by `pick` (e.g. all
    /// PCA replicas).
    pub fn total_rate_in(&self, now_snapshots: &[OpSnapshot], pick: impl Fn(usize) -> bool) -> f64 {
        self.rates_in(now_snapshots)
            .iter()
            .enumerate()
            .filter(|(i, _)| pick(*i))
            .map(|(_, r)| r)
            .sum()
    }
}

/// Number of buckets in a [`LatencyHistogram`]: powers of two from 1µs
/// (bucket 0: `< 2·2¹⁰ ns`) up past 1s, plus an overflow bucket.
pub const LATENCY_BUCKETS: usize = 22;

/// A fixed-bucket latency histogram with lock-free, allocation-free
/// recording — the serving layer's per-endpoint latency tracker.
///
/// Buckets are powers of two in nanoseconds starting at 2¹¹ ns (~2µs):
/// bucket `i` counts samples in `[2^(10+i), 2^(11+i))` ns, bucket 0 also
/// absorbs everything faster, and the last bucket absorbs everything
/// slower (> ~4s). Quantiles are read as the upper bound of the bucket
/// containing the requested rank — a ≤ 2× overestimate by construction,
/// which is adequate for tail-latency reporting and costs no memory or
/// locking on the hot path.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(ns: u64) -> usize {
        // floor(log2(ns)) - 10, clamped into range.
        let log2 = 63 - (ns | 1).leading_zeros() as usize;
        log2.saturating_sub(10).min(LATENCY_BUCKETS - 1)
    }

    /// Upper bound (ns) of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        1u64 << (11 + i)
    }

    /// Records one sample. Lock-free, allocation-free.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q <= 1`) in nanoseconds, as the upper bound
    /// of the bucket holding that rank. Returns 0 with no samples.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(LATENCY_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = OpCounters::default();
        c.add_in();
        c.add_in();
        c.add_out();
        c.add_control();
        c.add_busy(500);
        let s = c.snapshot();
        assert_eq!(s.tuples_in, 2);
        assert_eq!(s.tuples_out, 1);
        assert_eq!(s.control_in, 1);
        assert_eq!(s.busy_ns, 500);
    }

    #[test]
    fn link_counts_tuples_and_bytes() {
        let l = LinkCounters::default();
        l.add_many(1, 100);
        l.add_many(1, 50);
        let s = l.snapshot();
        assert_eq!(s.tuples, 2);
        assert_eq!(s.bytes, 150);
    }

    #[test]
    fn link_frame_accounting_matches_per_tuple() {
        let per_tuple = LinkCounters::default();
        per_tuple.add_many(1, 100);
        per_tuple.add_many(1, 50);
        per_tuple.add_many(1, 50);
        let framed = LinkCounters::default();
        framed.add_many(3, 200);
        assert_eq!(per_tuple.snapshot(), framed.snapshot());
    }

    #[test]
    fn registry_orders_snapshots() {
        let mut r = MetricsRegistry::default();
        let a = r.register_op();
        let _b = r.register_op();
        a.add_in();
        let snaps = r.op_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].tuples_in, 1);
        assert_eq!(snaps[1].tuples_in, 0);
    }

    #[test]
    fn rate_probe_differences_counters() {
        let mk = |n: u64| OpSnapshot {
            tuples_in: n,
            ..OpSnapshot::default()
        };
        let probe = RateProbe::start(vec![mk(100), mk(50)]);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let rates = probe.rates_in(&[mk(300), mk(50)]);
        assert!(rates[0] > 0.0, "{rates:?}");
        assert_eq!(rates[1], 0.0);
        let total = probe.total_rate_in(&[mk(300), mk(150)], |i| i == 1);
        assert!(total > 0.0);
    }

    #[test]
    fn rate_probe_handles_counter_reset_gracefully() {
        let mk = |n: u64| OpSnapshot {
            tuples_in: n,
            ..OpSnapshot::default()
        };
        let probe = RateProbe::start(vec![mk(500)]);
        // A smaller later value (shouldn't happen, but must not underflow).
        let rates = probe.rates_in(&[mk(100)]);
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "snapshot count changed")]
    #[cfg(debug_assertions)]
    fn rate_probe_rejects_mismatched_snapshot_lengths() {
        let mk = |n: u64| OpSnapshot {
            tuples_in: n,
            ..OpSnapshot::default()
        };
        let probe = RateProbe::start(vec![mk(1), mk(2)]);
        let _ = probe.rates_in(&[mk(1)]);
    }

    #[test]
    fn counters_are_shared_across_clones() {
        let mut r = MetricsRegistry::default();
        let h = r.register_op();
        let h2 = Arc::clone(&h);
        std::thread::spawn(move || {
            for _ in 0..100 {
                h2.add_in();
            }
        })
        .join()
        .unwrap();
        assert_eq!(r.op_snapshots()[0].tuples_in, 100);
    }

    #[test]
    fn latency_histogram_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        // 99 fast samples (~4µs) and one slow (~1ms).
        for _ in 0..99 {
            h.record_ns(4_000);
        }
        h.record_ns(1_000_000);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        let p999 = h.quantile_ns(0.999);
        assert!((4_000..=8_192).contains(&p50), "p50 = {p50}");
        assert!(p99 <= 8_192, "p99 = {p99}");
        assert!(p999 >= 1_000_000, "p999 = {p999}");
        assert!(p50 <= p99 && p99 <= p999);
    }

    #[test]
    fn latency_histogram_bucket_edges() {
        let h = LatencyHistogram::new();
        h.record_ns(0); // clamps into bucket 0
        h.record_ns(u64::MAX); // clamps into the overflow bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(1.0) >= 1 << 31);
    }
}
