//! Dataflow graph construction: operators, edges, fusion, placement.
//!
//! Fusion follows the paper's optimization story (§III-A/§III-D): operators
//! fused into one processing element (PE) exchange tuples "by pointer as a
//! variable in memory instead of using a network", while cross-PE edges go
//! through bounded queues with traffic accounting (and an optional modeled
//! link latency, for single-machine demonstrations of distributed
//! behaviour). Placement assigns PEs to logical cluster nodes — on a real
//! deployment that drives process placement; here it labels metrics and
//! feeds the cluster simulator.

use crate::fault::{FaultPlan, RestartPolicy};
use crate::operator::Operator;

/// Identifies an operator within a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) usize);

/// Which input port of the target an edge feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKind {
    /// The primary data port.
    Data,
    /// The control port.
    Control,
}

/// Transport characteristics of an edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkKind {
    /// Same-node queue hand-off.
    Local,
    /// Cross-node link: traffic is accounted and, if `model_delay_us > 0`,
    /// each channel message blocks the sender for that many microseconds —
    /// a deliberately simple stand-in for the fixed per-message
    /// syscall/framing/wakeup cost of a real link (the cluster simulator's
    /// per-message send/receive terms are the calibrated version). With the
    /// frame transport a message carries a whole batch, so batching
    /// amortizes this overhead exactly as it would on the wire; at batch
    /// size 1 it degenerates to the legacy per-tuple charge.
    Network {
        /// Per-message sender-side overhead in microseconds.
        model_delay_us: u64,
    },
}

pub(crate) struct OpEntry {
    pub name: String,
    pub op: Box<dyn Operator>,
    pub is_source: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub from: usize,
    pub out_port: usize,
    pub to: usize,
    pub port: PortKind,
    pub kind: LinkKind,
}

/// Builder for a dataflow graph.
#[derive(Default)]
pub struct GraphBuilder {
    pub(crate) ops: Vec<OpEntry>,
    pub(crate) edges: Vec<Edge>,
    /// Union-find parent for fusion groups.
    fuse_parent: Vec<usize>,
    pub(crate) placements: Vec<Option<usize>>,
    pub(crate) channel_capacity: usize,
    pub(crate) batch_size: usize,
    pub(crate) inter_node_delay_us: u64,
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) restart_policy: RestartPolicy,
    pub(crate) checkpoint_dir: Option<std::path::PathBuf>,
    pub(crate) vfs: Option<std::sync::Arc<dyn crate::vfs::Vfs>>,
}

/// Default cross-PE transport batch size (tuples per frame).
pub const DEFAULT_BATCH_SIZE: usize = 64;

impl GraphBuilder {
    /// An empty graph with the default cross-PE channel capacity (1024)
    /// and transport batch size ([`DEFAULT_BATCH_SIZE`]).
    pub fn new() -> Self {
        GraphBuilder {
            channel_capacity: 1024,
            batch_size: DEFAULT_BATCH_SIZE,
            ..Default::default()
        }
    }

    /// Sets the bounded capacity of cross-PE channels (backpressure depth).
    pub fn with_channel_capacity(mut self, cap: usize) -> Self {
        assert!(cap >= 1);
        self.channel_capacity = cap;
        self
    }

    /// Sets the cross-PE transport batch size: the maximum number of tuples
    /// accumulated into one frame before a flush is forced. `1` disables
    /// batching (every tuple travels in its own frame — the legacy
    /// per-tuple transport, kept for ablation). Flushes also happen
    /// adaptively before the threshold; see the engine docs.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be at least 1");
        self.batch_size = batch;
        self
    }

    /// The configured cross-PE transport batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Installs a deterministic [`FaultPlan`]. Targets are resolved against
    /// operator/edge names when the engine starts; an unresolvable target
    /// is a build-time panic, not a silently inert fault.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the supervisor's [`RestartPolicy`] for panicking operators
    /// (default: 8 restarts, 1 ms backoff base, 100 ms cap). The same
    /// policy bounds whole-PE restarts.
    pub fn with_restart_policy(mut self, policy: RestartPolicy) -> Self {
        self.restart_policy = policy;
        self
    }

    /// Enables periodic per-PE checkpointing into `dir`: every PE hosting
    /// at least one [`Checkpoint`](crate::checkpoint::Checkpoint)-able
    /// operator writes a consistent snapshot set (blobs + manifest) at the
    /// operators' cadence, and a restarted PE rehydrates from the latest
    /// manifest. Without a checkpoint dir, whole-PE restarts still work but
    /// recover purely from the surviving in-memory operator state.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Routes every persistence-layer disk operation (PE checkpoints) of
    /// this run through an explicit [`Vfs`](crate::vfs::Vfs) backend.
    /// Overrides the backend the engine would otherwise pick (the real
    /// filesystem, or a fault-injecting one when the fault plan carries
    /// `io-*` entries) — the crash-point harness uses this to count and
    /// kill individual disk operations.
    pub fn with_vfs(mut self, vfs: std::sync::Arc<dyn crate::vfs::Vfs>) -> Self {
        self.vfs = Some(vfs);
        self
    }

    /// Adds a non-source operator.
    pub fn add_op(&mut self, name: impl Into<String>, op: Box<dyn Operator>) -> OpId {
        self.push(name.into(), op, false)
    }

    /// Adds a source operator (the engine drives it).
    pub fn add_source(&mut self, name: impl Into<String>, op: Box<dyn Operator>) -> OpId {
        self.push(name.into(), op, true)
    }

    fn push(&mut self, name: String, op: Box<dyn Operator>, is_source: bool) -> OpId {
        let id = self.ops.len();
        self.ops.push(OpEntry {
            name,
            op,
            is_source,
        });
        self.fuse_parent.push(id);
        self.placements.push(None);
        OpId(id)
    }

    /// Connects `from`'s output `out_port` to `to`'s `port` over a local
    /// link.
    pub fn connect(&mut self, from: OpId, out_port: usize, to: OpId, port: PortKind) {
        self.connect_kind(from, out_port, to, port, LinkKind::Local);
    }

    /// Connects with an explicit link kind.
    pub fn connect_kind(
        &mut self,
        from: OpId,
        out_port: usize,
        to: OpId,
        port: PortKind,
        kind: LinkKind,
    ) {
        assert!(
            from.0 < self.ops.len() && to.0 < self.ops.len(),
            "unknown operator id"
        );
        self.edges.push(Edge {
            from: from.0,
            out_port,
            to: to.0,
            port,
            kind,
        });
    }

    /// Fuses the given operators into one PE (transitive: fusing {a,b} then
    /// {b,c} puts all three together). Fused edges dispatch in memory.
    pub fn fuse(&mut self, ops: &[OpId]) {
        for w in ops.windows(2) {
            let (a, b) = (self.find(w[0].0), self.find(w[1].0));
            if a != b {
                self.fuse_parent[a] = b;
            }
        }
    }

    /// Assigns an operator (and thus its whole fusion group at build time)
    /// to a logical cluster node. Edges between operators placed on
    /// *different* nodes are automatically upgraded from `Local` to
    /// `Network` at build time (see
    /// [`with_inter_node_delay`](Self::with_inter_node_delay)), mirroring
    /// how InfoSphere placement decides which streams cross the wire.
    pub fn place(&mut self, op: OpId, node: usize) {
        self.placements[op.0] = Some(node);
    }

    /// Sets the modeled per-tuple delay applied to edges that cross nodes
    /// because of [`place`](Self::place) assignments (default: 0 µs —
    /// traffic accounting only).
    pub fn with_inter_node_delay(mut self, delay_us: u64) -> Self {
        self.inter_node_delay_us = delay_us;
        self
    }

    /// The node an operator was placed on, if any.
    pub fn placement_of(&self, op: OpId) -> Option<usize> {
        self.placements[op.0]
    }

    /// Applies placement-derived link kinds: any `Local` edge whose
    /// endpoints sit on different nodes becomes `Network`. Called by the
    /// engine at build time; idempotent.
    pub(crate) fn apply_placements(&mut self) {
        let delay = self.inter_node_delay_us;
        for e in &mut self.edges {
            if e.kind != LinkKind::Local {
                continue;
            }
            if let (Some(a), Some(b)) = (self.placements[e.from], self.placements[e.to]) {
                if a != b {
                    e.kind = LinkKind::Network {
                        model_delay_us: delay,
                    };
                }
            }
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.fuse_parent[i] != i {
            self.fuse_parent[i] = self.fuse_parent[self.fuse_parent[i]];
            i = self.fuse_parent[i];
        }
        i
    }

    /// Resolves fusion groups: returns for each operator its PE index, and
    /// the list of PEs (each a list of operator indices in insertion
    /// order).
    pub(crate) fn resolve_pes(&mut self) -> (Vec<usize>, Vec<Vec<usize>>) {
        let n = self.ops.len();
        let mut root_to_pe = std::collections::HashMap::new();
        let mut op_pe = vec![0usize; n];
        let mut pes: Vec<Vec<usize>> = Vec::new();
        for (i, slot) in op_pe.iter_mut().enumerate() {
            let root = self.find(i);
            let pe = *root_to_pe.entry(root).or_insert_with(|| {
                pes.push(Vec::new());
                pes.len() - 1
            });
            *slot = pe;
            pes[pe].push(i);
        }
        (op_pe, pes)
    }

    /// Number of operators added so far.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// The display name of an operator.
    pub fn op_name(&self, id: OpId) -> &str {
        &self.ops[id.0].name
    }

    /// All operator ids in insertion order.
    pub fn op_ids(&self) -> Vec<OpId> {
        (0..self.ops.len()).map(OpId).collect()
    }

    /// All operator names in insertion order.
    pub fn op_names(&self) -> Vec<&str> {
        self.ops.iter().map(|o| o.name.as_str()).collect()
    }

    /// In-degree of the data port of `to` (used for end-of-stream
    /// bookkeeping and topology assertions in tests).
    pub fn data_in_degree(&self, to: OpId) -> usize {
        self.edges
            .iter()
            .filter(|e| e.to == to.0 && e.port == PortKind::Data)
            .count()
    }

    /// All edges as `(from, out_port, to, port_kind)` tuples, for topology
    /// assertions.
    pub fn edge_list(&self) -> Vec<(OpId, usize, OpId, PortKind)> {
        self.edges
            .iter()
            .map(|e| (OpId(e.from), e.out_port, OpId(e.to), e.port))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{OpContext, Operator};
    use crate::tuple::DataTuple;

    struct Nop;
    impl Operator for Nop {
        fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
    }

    fn nop() -> Box<dyn Operator> {
        Box::new(Nop)
    }

    #[test]
    fn fusion_groups_are_transitive() {
        let mut g = GraphBuilder::new();
        let a = g.add_op("a", nop());
        let b = g.add_op("b", nop());
        let c = g.add_op("c", nop());
        let d = g.add_op("d", nop());
        g.fuse(&[a, b]);
        g.fuse(&[b, c]);
        let (op_pe, pes) = g.resolve_pes();
        assert_eq!(op_pe[a.0], op_pe[b.0]);
        assert_eq!(op_pe[b.0], op_pe[c.0]);
        assert_ne!(op_pe[c.0], op_pe[d.0]);
        assert_eq!(pes.len(), 2);
    }

    #[test]
    fn batch_size_is_configurable_and_defaults_sane() {
        let g = GraphBuilder::new();
        assert_eq!(g.batch_size(), DEFAULT_BATCH_SIZE);
        let g = GraphBuilder::new().with_batch_size(1);
        assert_eq!(g.batch_size(), 1);
        let g = GraphBuilder::new().with_batch_size(256);
        assert_eq!(g.batch_size(), 256);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = GraphBuilder::new().with_batch_size(0);
    }

    #[test]
    fn default_is_one_pe_per_op() {
        let mut g = GraphBuilder::new();
        let _ = g.add_op("a", nop());
        let _ = g.add_op("b", nop());
        let (_, pes) = g.resolve_pes();
        assert_eq!(pes.len(), 2);
    }

    #[test]
    fn in_degree_counts_data_edges_only() {
        let mut g = GraphBuilder::new();
        let a = g.add_op("a", nop());
        let b = g.add_op("b", nop());
        let c = g.add_op("c", nop());
        g.connect(a, 0, c, PortKind::Data);
        g.connect(b, 0, c, PortKind::Data);
        g.connect(a, 1, c, PortKind::Control);
        assert_eq!(g.data_in_degree(c), 2);
    }

    #[test]
    #[should_panic(expected = "unknown operator")]
    fn connect_unknown_op_panics() {
        let mut g = GraphBuilder::new();
        let a = g.add_op("a", nop());
        g.connect(a, 0, OpId(99), PortKind::Data);
    }

    #[test]
    fn placement_upgrades_cross_node_edges() {
        let mut g = GraphBuilder::new().with_inter_node_delay(25);
        let a = g.add_op("a", nop());
        let b = g.add_op("b", nop());
        let c = g.add_op("c", nop());
        g.connect(a, 0, b, PortKind::Data); // cross-node
        g.connect(b, 0, c, PortKind::Data); // same node
        g.place(a, 0);
        g.place(b, 1);
        g.place(c, 1);
        g.apply_placements();
        assert_eq!(g.edges[0].kind, LinkKind::Network { model_delay_us: 25 });
        assert_eq!(g.edges[1].kind, LinkKind::Local);
        assert_eq!(g.placement_of(b), Some(1));
    }

    #[test]
    fn unplaced_ops_keep_local_edges() {
        let mut g = GraphBuilder::new();
        let a = g.add_op("a", nop());
        let b = g.add_op("b", nop());
        g.connect(a, 0, b, PortKind::Data);
        g.place(a, 0); // b unplaced → no inference
        g.apply_placements();
        assert_eq!(g.edges[0].kind, LinkKind::Local);
    }

    #[test]
    fn explicit_network_kind_preserved() {
        let mut g = GraphBuilder::new().with_inter_node_delay(5);
        let a = g.add_op("a", nop());
        let b = g.add_op("b", nop());
        g.connect_kind(
            a,
            0,
            b,
            PortKind::Data,
            LinkKind::Network { model_delay_us: 99 },
        );
        g.place(a, 0);
        g.place(b, 1);
        g.apply_placements();
        assert_eq!(g.edges[0].kind, LinkKind::Network { model_delay_us: 99 });
    }
}
