//! The operator abstraction and its execution context.
//!
//! Operators are the InfoSphere building block: stateful objects with a
//! data port, a control port, and any number of output ports. Sources are
//! operators that are *driven* by the engine instead of fed (InfoSphere
//! source operators poll their underlying file/socket the same way).

use crate::metrics::OpCounters;
use crate::tuple::{ControlTuple, DataTuple, Tuple};

/// What a source produced when driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceState {
    /// Emitted at least one tuple; drive again as soon as possible.
    Emitted,
    /// Nothing available right now; drive again after a short yield.
    Idle,
    /// The source is exhausted; end-of-stream follows.
    Done,
}

/// A dataflow operator.
///
/// `process` handles data-port tuples, `on_control` control-port tuples.
/// Sources override `drive`. All methods receive an [`OpContext`] for
/// emitting to output ports.
pub trait Operator: Send {
    /// Handles one data tuple.
    fn process(&mut self, tuple: DataTuple, ctx: &mut OpContext<'_>);

    /// Handles one control tuple. Default: ignore.
    fn on_control(&mut self, _tuple: ControlTuple, _ctx: &mut OpContext<'_>) {}

    /// Produces tuples when registered as a source. Default: immediately
    /// exhausted (non-source operators never get driven anyway).
    fn drive(&mut self, _ctx: &mut OpContext<'_>) -> SourceState {
        SourceState::Done
    }

    /// Called once before any tuple flows.
    fn on_start(&mut self, _ctx: &mut OpContext<'_>) {}

    /// Called once when the operator's inputs have all closed (or, for a
    /// source, when it reported `Done` / the engine stopped it), before
    /// end-of-stream propagates downstream. Emit final results here.
    fn on_finish(&mut self, _ctx: &mut OpContext<'_>) {}

    /// Called by the supervisor after this operator panicked and was
    /// isolated via `catch_unwind`. Restore internal state (e.g. rehydrate
    /// from an on-disk snapshot) and return `true` to resume processing;
    /// return `false` (the default) to finish the operator instead —
    /// end-of-stream then propagates as if its inputs had closed.
    /// `attempt` is the 1-based restart attempt number.
    fn recover(&mut self, _attempt: u64) -> bool {
        false
    }

    /// Exposes this operator's [`Checkpoint`](crate::checkpoint::Checkpoint)
    /// facet, if it has durable state. The PE-level supervisor snapshots
    /// every checkpointable operator into the per-PE manifest and restores
    /// them all together after a whole-PE restart. Stateless operators keep
    /// the default `None` and are simply re-entered as-is.
    ///
    /// (A separate method rather than a trait upcast because Rust cannot
    /// cross-cast `&mut dyn Operator` to `&mut dyn Checkpoint`.)
    fn checkpoint(&mut self) -> Option<&mut dyn crate::checkpoint::Checkpoint> {
        None
    }
}

/// Engine-side sink the context forwards emissions to.
pub(crate) trait EmitSink {
    /// Blocking emit to an output port (fans out to every connected edge).
    fn emit(&mut self, port: usize, t: Tuple);
    /// Non-blocking emit; returns the tuple back if *any* target edge is
    /// full (nothing is sent in that case).
    fn try_emit(&mut self, port: usize, t: Tuple) -> Result<(), Tuple>;
    /// Queue depth of the cross-PE channel behind a port, if the port has
    /// exactly one remote target (used by load-balancing splits).
    fn backlog(&self, port: usize) -> Option<usize>;
    /// Number of output ports wired for this operator.
    fn n_ports(&self) -> usize;
    /// True once the engine has requested a cooperative stop.
    fn stop_requested(&self) -> bool;
    /// Flushes any transport-level output batching so previously emitted
    /// tuples become visible downstream immediately. Default: no-op (test
    /// sinks and fused hand-offs have no buffering).
    fn flush_downstream(&mut self) {}
}

/// The context passed to every operator callback.
pub struct OpContext<'a> {
    pub(crate) sink: &'a mut dyn EmitSink,
    pub(crate) counters: &'a OpCounters,
}

impl<'a> OpContext<'a> {
    pub(crate) fn new(sink: &'a mut dyn EmitSink, counters: &'a OpCounters) -> Self {
        OpContext { sink, counters }
    }

    /// Emits a tuple on `port`, blocking if a downstream queue is full
    /// (backpressure).
    pub fn emit(&mut self, port: usize, t: Tuple) {
        if matches!(t, Tuple::Data(_)) {
            self.counters.add_out();
        }
        self.sink.emit(port, t);
    }

    /// Emits a data tuple on `port`.
    pub fn emit_data(&mut self, port: usize, d: DataTuple) {
        self.emit(port, Tuple::Data(d));
    }

    /// Emits a control tuple on `port`.
    pub fn emit_control(&mut self, port: usize, c: ControlTuple) {
        self.emit(port, Tuple::Control(c));
    }

    /// Non-blocking emit: if the downstream queue is full the tuple is
    /// handed back and nothing is sent. This is the primitive behind the
    /// threaded split's "push the data to multiple targets without blocking
    /// the queue on one target".
    pub fn try_emit(&mut self, port: usize, t: Tuple) -> Result<(), Tuple> {
        let is_data = matches!(t, Tuple::Data(_));
        match self.sink.try_emit(port, t) {
            Ok(()) => {
                if is_data {
                    self.counters.add_out();
                }
                Ok(())
            }
            Err(t) => Err(t),
        }
    }

    /// Forces any transport-level output batching to flush now. Control
    /// tuples and end-of-stream flush on their own; call this only when a
    /// *data* tuple must be visible downstream before the operator returns
    /// (e.g. a snapshot emitted mid-stream that a monitor is waiting on).
    pub fn flush(&mut self) {
        self.sink.flush_downstream();
    }

    /// Downstream queue depth behind `port` (None for fused/fan-out ports).
    /// For batched cross-PE edges this counts both the tuples still in the
    /// local output buffer and those in flight in the channel.
    pub fn backlog(&self, port: usize) -> Option<usize> {
        self.sink.backlog(port)
    }

    /// Number of output ports wired to this operator.
    pub fn n_out_ports(&self) -> usize {
        self.sink.n_ports()
    }

    /// True once a cooperative stop was requested (long-running sources
    /// should wind down promptly).
    pub fn stop_requested(&self) -> bool {
        self.sink.stop_requested()
    }

    /// Records a tuple diverted to quarantine (non-finite payload). Shows
    /// up as `quarantined` in the operator's `OpSnapshot`/`RunReport`.
    pub fn add_quarantined(&self) {
        self.counters.add_quarantined();
    }

    /// Records a skipped synchronization step (independence gate not
    /// passed, or a dead/lagging engine excluded from a sync command).
    pub fn add_sync_skip(&self) {
        self.counters.add_sync_skip();
    }

    /// Records an elastic scale-out event (an engine admitted into the
    /// active fleet). Shows up as `scale_outs` in the operator's
    /// `OpSnapshot`/`RunReport`.
    pub fn add_scale_out(&self) {
        self.counters.add_scale_out();
    }

    /// Records an elastic scale-in event (an engine retired from the
    /// active fleet).
    pub fn add_scale_in(&self) {
        self.counters.add_scale_in();
    }
}

/// Test harness for operator unit tests: an in-memory sink capturing
/// emissions per port, so operators can be exercised without a running
/// engine. Used by this crate's tests and by downstream crates
/// (`spca-engine`) to unit-test their custom operators.
pub mod testing {
    use super::*;
    use std::collections::VecDeque;

    /// Observer callback for [`CaptureSink::on_emit`].
    pub type EmitObserver = Box<dyn FnMut(usize, &Tuple)>;

    /// An in-memory sink capturing emissions per port.
    pub struct CaptureSink {
        /// Captured tuples, per output port.
        pub ports: Vec<VecDeque<Tuple>>,
        /// Ports simulated as full (try_emit fails there).
        pub full_ports: Vec<bool>,
        /// Simulated cooperative-stop flag.
        pub stop: bool,
        /// Observer invoked on every successful emit, before the tuple is
        /// stored. Lets tests assert invariants *at send time* — e.g. that
        /// an operator is not holding its state lock across a port send.
        pub on_emit: Option<EmitObserver>,
    }

    impl CaptureSink {
        /// A sink with `n_ports` output ports.
        pub fn new(n_ports: usize) -> Self {
            CaptureSink {
                ports: (0..n_ports).map(|_| VecDeque::new()).collect(),
                full_ports: vec![false; n_ports],
                stop: false,
                on_emit: None,
            }
        }

        /// The data tuples captured on `port`, in order.
        pub fn data_at(&self, port: usize) -> Vec<DataTuple> {
            self.ports[port]
                .iter()
                .filter_map(|t| match t {
                    Tuple::Data(d) => Some(d.clone()),
                    _ => None,
                })
                .collect()
        }
    }

    impl EmitSink for CaptureSink {
        fn emit(&mut self, port: usize, t: Tuple) {
            if let Some(hook) = &mut self.on_emit {
                hook(port, &t);
            }
            self.ports[port].push_back(t);
        }

        fn try_emit(&mut self, port: usize, t: Tuple) -> Result<(), Tuple> {
            if self.full_ports[port] {
                Err(t)
            } else {
                if let Some(hook) = &mut self.on_emit {
                    hook(port, &t);
                }
                self.ports[port].push_back(t);
                Ok(())
            }
        }

        fn backlog(&self, port: usize) -> Option<usize> {
            Some(self.ports[port].len())
        }

        fn n_ports(&self) -> usize {
            self.ports.len()
        }

        fn stop_requested(&self) -> bool {
            self.stop
        }
    }

    /// Runs a closure with a context over a capture sink and returns the
    /// sink for inspection.
    pub fn with_ctx<F: FnOnce(&mut OpContext<'_>)>(n_ports: usize, f: F) -> CaptureSink {
        let mut sink = CaptureSink::new(n_ports);
        with_sink(&mut sink, f);
        sink
    }

    /// Like [`with_ctx`] but over a caller-prepared sink, so tests can
    /// install an [`CaptureSink::on_emit`] observer (or pre-fill
    /// `full_ports`) before the operator runs.
    pub fn with_sink<F: FnOnce(&mut OpContext<'_>)>(sink: &mut CaptureSink, f: F) {
        let counters = OpCounters::default();
        let mut ctx = OpContext::new(sink, &counters);
        f(&mut ctx);
    }

    /// Like [`with_sink`] but with caller-owned counters, so tests can
    /// assert on quarantine/sync-skip accounting after the operator ran.
    pub fn with_sink_counters<F: FnOnce(&mut OpContext<'_>)>(
        sink: &mut CaptureSink,
        counters: &OpCounters,
        f: F,
    ) {
        let mut ctx = OpContext::new(sink, counters);
        f(&mut ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::testing::*;
    use super::*;

    #[test]
    fn emit_fans_into_capture() {
        let sink = with_ctx(2, |ctx| {
            ctx.emit_data(0, DataTuple::new(1, vec![1.0]));
            ctx.emit_data(1, DataTuple::new(2, vec![2.0]));
            ctx.emit_data(1, DataTuple::new(3, vec![3.0]));
        });
        assert_eq!(sink.data_at(0).len(), 1);
        assert_eq!(sink.data_at(1).len(), 2);
        assert_eq!(sink.data_at(1)[1].seq, 3);
    }

    #[test]
    fn try_emit_full_port_returns_tuple() {
        let counters = OpCounters::default();
        let mut sink = CaptureSink::new(1);
        sink.full_ports[0] = true;
        let mut ctx = OpContext::new(&mut sink, &counters);
        let res = ctx.try_emit(0, Tuple::Data(DataTuple::new(9, vec![])));
        match res {
            Err(Tuple::Data(d)) => assert_eq!(d.seq, 9),
            other => panic!("expected tuple back, got {other:?}"),
        }
        assert_eq!(counters.snapshot().tuples_out, 0);
    }

    #[test]
    fn counters_track_data_not_control() {
        let counters = OpCounters::default();
        let mut sink = CaptureSink::new(1);
        {
            let mut ctx = OpContext::new(&mut sink, &counters);
            ctx.emit_data(0, DataTuple::new(0, vec![]));
            ctx.emit_control(0, ControlTuple::signal(0, 0));
        }
        let s = counters.snapshot();
        assert_eq!(s.tuples_out, 1);
    }
}
