//! Generic operator checkpointing and per-PE snapshot manifests.
//!
//! The paper's prototype leaned on InfoSphere Streams' managed runtime to
//! keep PEs alive across the cluster; our PE-level supervisor (see the
//! engine docs) reproduces that by tearing down and rebuilding a whole
//! processing element when its thread dies. Rebuilding is only correct if
//! *every* stateful operator in the PE can rejoin with consistent state —
//! not just the PCA engine with its bespoke snapshot file — so this module
//! defines the uniform [`Checkpoint`] contract plus the on-disk layout the
//! supervisor uses:
//!
//! * each checkpointable operator serializes to an opaque blob (text
//!   `key value` lines by convention — see [`encode_kv`]);
//! * all blobs of one PE are written together under a generation number,
//!   then a per-PE **manifest** is atomically renamed into place naming
//!   exactly the files of that generation. Recovery trusts only blobs the
//!   manifest names, so a crash mid-checkpoint can never mix operators from
//!   two different generations — the manifest *is* the consistency point.
//!
//! Durability follows the same failure model as the engine crate's
//! eigensystem snapshots: blob and manifest temp files are fsynced before
//! the rename and the directory is fsynced best-effort afterwards, so a
//! manifest never names a blob whose bytes could still be lost by a crash.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Default cadence (data tuples between periodic PE checkpoints) for
/// operators that don't override [`Checkpoint::checkpoint_every`].
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 512;

/// Uniform snapshot/restore contract for stateful operators.
///
/// Implementors serialize *logical* state (cursors, counters, estimates) —
/// not transport state: channels, file handles and sockets are re-acquired
/// lazily after a restore. `restore` must leave the operator equivalent to
/// one that processed exactly the tuples reflected in the snapshot, so a
/// restarted PE neither loses nor double-counts work.
pub trait Checkpoint {
    /// Serializes the operator's logical state as a self-contained blob.
    fn snapshot(&self) -> Vec<u8>;

    /// Restores state from a blob produced by [`Checkpoint::snapshot`].
    /// A malformed blob is an `InvalidData` error, never a panic.
    fn restore(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Preferred cadence in data tuples between periodic PE checkpoints.
    /// The PE takes the *minimum* over its member operators.
    fn checkpoint_every(&self) -> u64 {
        DEFAULT_CHECKPOINT_EVERY
    }
}

/// Encodes `key value` lines — the shared text idiom for snapshot blobs.
pub fn encode_kv(pairs: &[(&str, String)]) -> Vec<u8> {
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(k);
        out.push(' ');
        out.push_str(v);
        out.push('\n');
    }
    out.into_bytes()
}

/// Decodes `key value` lines produced by [`encode_kv`]. Duplicate keys and
/// non-UTF-8 bytes are `InvalidData`.
pub fn decode_kv(bytes: &[u8]) -> io::Result<BTreeMap<String, String>> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "snapshot blob is not UTF-8"))?;
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let (k, v) = line.split_once(' ').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("snapshot blob line '{line}' is not 'key value'"),
            )
        })?;
        if map.insert(k.to_string(), v.to_string()).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("snapshot blob repeats key '{k}'"),
            ));
        }
    }
    Ok(map)
}

/// Looks up `key` in a decoded blob and parses it as `u64`.
pub fn kv_u64(map: &BTreeMap<String, String>, key: &str) -> io::Result<u64> {
    kv_parse(map, key)
}

/// Looks up `key` in a decoded blob and parses it with `FromStr`.
pub fn kv_parse<T: std::str::FromStr>(map: &BTreeMap<String, String>, key: &str) -> io::Result<T> {
    let raw = map.get(key).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("snapshot blob missing key '{key}'"),
        )
    })?;
    raw.parse().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("snapshot blob key '{key}' has unparsable value '{raw}'"),
        )
    })
}

const MANIFEST_MAGIC: &str = "spca-pe-manifest-v1";

/// One consistent snapshot set: `(operator name, blob)` pairs in manifest
/// order.
pub type SnapshotSet = Vec<(String, Vec<u8>)>;

/// Writes `bytes` to `path` atomically and durably: temp file in the same
/// directory, fsync, rename, best-effort directory fsync. Shared by the
/// PE checkpoint writer and the [`crate::backfill`] state store — both
/// trust that a named file is never torn.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(d) = dir {
        if let Ok(dirf) = File::open(d) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

/// One PE's checkpoint writer: owns the generation counter and prunes the
/// previous generation's blobs once a new manifest is durable.
#[derive(Debug)]
pub struct PeCheckpointer {
    dir: PathBuf,
    pe_index: usize,
    gen: u64,
    prev_files: Vec<PathBuf>,
}

impl PeCheckpointer {
    /// Creates (or reopens) the checkpoint directory for one PE.
    pub fn new(dir: impl Into<PathBuf>, pe_index: usize) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(PeCheckpointer {
            dir,
            pe_index,
            gen: 0,
            prev_files: Vec::new(),
        })
    }

    /// The PE's manifest path: `pe{index}.manifest`.
    pub fn manifest_path(&self) -> PathBuf {
        manifest_path(&self.dir, self.pe_index)
    }

    /// Reads this PE's latest consistent snapshot set, possibly written by
    /// a previous incarnation of the PE. See [`read_pe_manifest`].
    pub fn read(&self) -> io::Result<Option<SnapshotSet>> {
        read_pe_manifest(&self.dir, self.pe_index)
    }

    /// Writes one consistent snapshot set: every blob under a fresh
    /// generation, then the manifest naming exactly those files. Stale
    /// generations are pruned only after the new manifest is durable, so a
    /// crash at any byte offset leaves a complete older set readable.
    pub fn write(&mut self, parts: &[(String, Vec<u8>)]) -> io::Result<()> {
        self.gen += 1;
        let mut files = Vec::with_capacity(parts.len());
        let mut manifest = format!("{MANIFEST_MAGIC}\npe {}\ngen {}\n", self.pe_index, self.gen);
        for (ordinal, (name, blob)) in parts.iter().enumerate() {
            let file = format!("pe{}-g{}-{}.ckpt", self.pe_index, self.gen, ordinal);
            write_atomic(&self.dir.join(&file), blob)?;
            manifest.push_str(&format!("op {} {} {}\n", file, blob.len(), name));
            files.push(self.dir.join(file));
        }
        manifest.push_str("end\n");
        write_atomic(&self.manifest_path(), manifest.as_bytes())?;
        for stale in self.prev_files.drain(..) {
            let _ = std::fs::remove_file(stale);
        }
        self.prev_files = files;
        Ok(())
    }
}

fn manifest_path(dir: &Path, pe_index: usize) -> PathBuf {
    dir.join(format!("pe{pe_index}.manifest"))
}

/// Reads the latest consistent snapshot set for a PE: `(op name, blob)`
/// pairs in manifest order. `Ok(None)` when no manifest exists yet (the PE
/// never checkpointed); any structural problem — bad magic, truncated
/// manifest, missing blob, blob length mismatch — is `InvalidData`, so
/// recovery never rehydrates from a torn or mixed-generation set.
pub fn read_pe_manifest(dir: &Path, pe_index: usize) -> io::Result<Option<SnapshotSet>> {
    let path = manifest_path(dir, pe_index);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(bad(format!("manifest {path:?} has a bad magic line")));
    }
    let mut parts = Vec::new();
    let mut ended = false;
    for line in lines {
        if line == "end" {
            ended = true;
            break;
        }
        if line.starts_with("pe ") || line.starts_with("gen ") {
            continue;
        }
        let rest = line
            .strip_prefix("op ")
            .ok_or_else(|| bad(format!("manifest {path:?} has unknown line '{line}'")))?;
        let mut it = rest.splitn(3, ' ');
        let (file, len, name) = match (it.next(), it.next(), it.next()) {
            (Some(f), Some(l), Some(n)) => (f, l, n),
            _ => {
                return Err(bad(format!(
                    "manifest {path:?} has malformed entry '{line}'"
                )))
            }
        };
        let len: usize = len
            .parse()
            .map_err(|_| bad(format!("manifest {path:?} has bad length in '{line}'")))?;
        let mut blob = Vec::new();
        File::open(dir.join(file))
            .and_then(|mut f| f.read_to_end(&mut blob))
            .map_err(|e| {
                bad(format!(
                    "manifest {path:?} names unreadable blob {file}: {e}"
                ))
            })?;
        if blob.len() != len {
            return Err(bad(format!(
                "blob {file} is {} bytes, manifest says {len} — torn checkpoint",
                blob.len()
            )));
        }
        parts.push((name.to_string(), blob));
    }
    if !ended {
        return Err(bad(format!("manifest {path:?} is truncated (no 'end')")));
    }
    Ok(Some(parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "spca-ckpt-test-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn kv_round_trips() {
        let blob = encode_kv(&[("seq", "42".to_string()), ("next_rr", "3".to_string())]);
        let map = decode_kv(&blob).unwrap();
        assert_eq!(kv_u64(&map, "seq").unwrap(), 42);
        assert_eq!(kv_u64(&map, "next_rr").unwrap(), 3);
        assert!(kv_u64(&map, "missing").is_err());
        assert!(decode_kv(b"noseparator").is_err());
        assert!(decode_kv(b"a 1\na 2\n").is_err(), "duplicate keys rejected");
    }

    #[test]
    fn manifest_round_trips_a_consistent_set() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 3).unwrap();
        let parts = vec![
            ("src".to_string(), b"seq 10\n".to_vec()),
            ("split".to_string(), b"next_rr 2\npicks 10\n".to_vec()),
        ];
        w.write(&parts).unwrap();
        let back = read_pe_manifest(&dir, 3).unwrap().unwrap();
        assert_eq!(back, parts);
        // A second generation replaces the first and prunes stale blobs.
        let parts2 = vec![("src".to_string(), b"seq 20\n".to_vec())];
        w.write(&parts2).unwrap();
        let back2 = read_pe_manifest(&dir, 3).unwrap().unwrap();
        assert_eq!(back2, parts2);
        let stale: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("-g1-"))
            .collect();
        assert!(stale.is_empty(), "generation 1 blobs must be pruned");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_none_not_error() {
        let dir = temp_dir();
        assert!(read_pe_manifest(&dir, 0).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_manifest_is_invalid_data() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 0).unwrap();
        w.write(&[("a".to_string(), b"x 1\n".to_vec())]).unwrap();
        let path = manifest_path(&dir, 0);
        let full = std::fs::read_to_string(&path).unwrap();
        for cut in 0..full.len().saturating_sub(4) {
            std::fs::write(&path, &full.as_bytes()[..cut]).unwrap();
            let err = read_pe_manifest(&dir, 0).expect_err("torn manifest must fail");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blob_length_mismatch_is_invalid_data() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 1).unwrap();
        w.write(&[("a".to_string(), b"cursor 99\n".to_vec())])
            .unwrap();
        // Truncate the blob the manifest names.
        let blob = dir.join("pe1-g1-0.ckpt");
        std::fs::write(&blob, b"cursor").unwrap();
        let err = read_pe_manifest(&dir, 1).expect_err("length mismatch must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_temp_files_survive_a_write() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 2).unwrap();
        w.write(&[("a".to_string(), b"k 1\n".to_vec())]).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
