//! Generic operator checkpointing and per-PE snapshot manifests.
//!
//! The paper's prototype leaned on InfoSphere Streams' managed runtime to
//! keep PEs alive across the cluster; our PE-level supervisor (see the
//! engine docs) reproduces that by tearing down and rebuilding a whole
//! processing element when its thread dies. Rebuilding is only correct if
//! *every* stateful operator in the PE can rejoin with consistent state —
//! not just the PCA engine with its bespoke snapshot file — so this module
//! defines the uniform [`Checkpoint`] contract plus the on-disk layout the
//! supervisor uses:
//!
//! * each checkpointable operator serializes to an opaque blob (text
//!   `key value` lines by convention — see [`encode_kv`]);
//! * all blobs of one PE are written together under a generation number
//!   along with a *per-generation* manifest (`pe{i}-g{g}.manifest`), then
//!   the per-PE **pointer manifest** (`pe{i}.manifest`) is atomically
//!   renamed into place naming exactly the files of that generation.
//!   Recovery trusts only blobs a manifest names — and only after their
//!   recorded length *and content hash* check out — so a crash or bit-flip
//!   mid-checkpoint can never mix operators from two different
//!   generations: the pointer manifest *is* the consistency point.
//! * the **last two generations** are retained (older ones are garbage
//!   collected after each successful write), so a manifest or blob that
//!   turns out to be torn or bit-rotted at recovery time degrades to the
//!   previous good generation instead of losing the PE's state. The bad
//!   file is quarantined aside as `<name>.corrupt-N` for post-mortems.
//!
//! Durability follows the same failure model as the engine crate's
//! eigensystem snapshots: blob and manifest scratch files are fsynced
//! before the rename and the directory is fsynced best-effort afterwards,
//! so a manifest never names a blob whose bytes could still be lost by a
//! crash. All disk traffic goes through a [`Vfs`], so the whole layer can
//! run against the fault-injecting backend (see [`crate::vfs`]) — the
//! crash-point harness enumerates every VFS operation in a write sequence
//! and proves recovery from a kill after each one.

use crate::backfill::content_hash;
use crate::vfs::{RealVfs, Vfs};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default cadence (data tuples between periodic PE checkpoints) for
/// operators that don't override [`Checkpoint::checkpoint_every`].
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 512;

/// Uniform snapshot/restore contract for stateful operators.
///
/// Implementors serialize *logical* state (cursors, counters, estimates) —
/// not transport state: channels, file handles and sockets are re-acquired
/// lazily after a restore. `restore` must leave the operator equivalent to
/// one that processed exactly the tuples reflected in the snapshot, so a
/// restarted PE neither loses nor double-counts work.
pub trait Checkpoint {
    /// Serializes the operator's logical state as a self-contained blob.
    fn snapshot(&self) -> Vec<u8>;

    /// Restores state from a blob produced by [`Checkpoint::snapshot`].
    /// A malformed blob is an `InvalidData` error, never a panic.
    fn restore(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Preferred cadence in data tuples between periodic PE checkpoints.
    /// The PE takes the *minimum* over its member operators.
    fn checkpoint_every(&self) -> u64 {
        DEFAULT_CHECKPOINT_EVERY
    }
}

/// Encodes `key value` lines — the shared text idiom for snapshot blobs.
pub fn encode_kv(pairs: &[(&str, String)]) -> Vec<u8> {
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(k);
        out.push(' ');
        out.push_str(v);
        out.push('\n');
    }
    out.into_bytes()
}

/// Decodes `key value` lines produced by [`encode_kv`]. Duplicate keys and
/// non-UTF-8 bytes are `InvalidData`.
pub fn decode_kv(bytes: &[u8]) -> io::Result<BTreeMap<String, String>> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "snapshot blob is not UTF-8"))?;
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let (k, v) = line.split_once(' ').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("snapshot blob line '{line}' is not 'key value'"),
            )
        })?;
        if map.insert(k.to_string(), v.to_string()).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("snapshot blob repeats key '{k}'"),
            ));
        }
    }
    Ok(map)
}

/// Looks up `key` in a decoded blob and parses it as `u64`.
pub fn kv_u64(map: &BTreeMap<String, String>, key: &str) -> io::Result<u64> {
    kv_parse(map, key)
}

/// Looks up `key` in a decoded blob and parses it with `FromStr`.
pub fn kv_parse<T: std::str::FromStr>(map: &BTreeMap<String, String>, key: &str) -> io::Result<T> {
    let raw = map.get(key).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("snapshot blob missing key '{key}'"),
        )
    })?;
    raw.parse().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("snapshot blob key '{key}' has unparsable value '{raw}'"),
        )
    })
}

const MANIFEST_MAGIC: &str = "spca-pe-manifest-v2";

/// One consistent snapshot set: `(operator name, blob)` pairs in manifest
/// order.
pub type SnapshotSet = Vec<(String, Vec<u8>)>;

/// Stamps scratch-file names so concurrent writers (and debris from killed
/// processes) never collide on the same temp path.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp_path_for(path: &Path) -> PathBuf {
    let stamp = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}-{}", std::process::id(), stamp));
    PathBuf::from(tmp)
}

/// Writes `bytes` to `path` atomically and durably: scratch file in the
/// same directory, fsync, rename, best-effort directory fsync. Shared by
/// the PE checkpoint writer and the [`crate::backfill`] state store — both
/// trust that a named file is never torn.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic_vfs(&RealVfs, path, bytes)
}

/// [`write_atomic`] against an explicit [`Vfs`] backend. The sequence is
/// exactly five VFS operations — create, write, fsync, rename, fsync_dir —
/// which is what the crash-point harness enumerates. The directory fsync
/// is best-effort (not every filesystem supports it); every other failure
/// propagates after a best-effort scratch-file cleanup.
pub fn write_atomic_vfs(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path_for(path);
    let run = || -> io::Result<()> {
        vfs.create(&tmp)?;
        vfs.write(&tmp, bytes)?;
        vfs.fsync(&tmp)?;
        vfs.rename(&tmp, path)?;
        Ok(())
    };
    if let Err(e) = run() {
        // Cleanup through the same backend: a crashed device can't remove
        // its debris either — the startup sweep handles what's left.
        let _ = vfs.remove(&tmp);
        return Err(e);
    }
    if let Some(d) = path.parent() {
        let _ = vfs.fsync_dir(d);
    }
    Ok(())
}

/// How many manifest generations a PE retains (current + fallback).
const RETAINED_GENERATIONS: u64 = 2;

/// One PE's checkpoint writer: owns the generation counter, keeps the last
/// [`RETAINED_GENERATIONS`] generations on disk, and garbage-collects
/// older ones once a new pointer manifest is durable.
#[derive(Debug)]
pub struct PeCheckpointer {
    dir: PathBuf,
    pe_index: usize,
    gen: u64,
    vfs: Arc<dyn Vfs>,
}

impl PeCheckpointer {
    /// Creates (or reopens) the checkpoint directory for one PE on the
    /// real filesystem.
    pub fn new(dir: impl Into<PathBuf>, pe_index: usize) -> io::Result<Self> {
        Self::new_with_vfs(dir, pe_index, Arc::new(RealVfs))
    }

    /// Creates (or reopens) the checkpoint directory for one PE against an
    /// explicit [`Vfs`]. Reopening sweeps this PE's stale scratch files
    /// (debris from a killed process) and resumes the generation counter
    /// past every generation already on disk, so a restarted PE never
    /// reuses a blob name from a previous incarnation.
    pub fn new_with_vfs(
        dir: impl Into<PathBuf>,
        pe_index: usize,
        vfs: Arc<dyn Vfs>,
    ) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        sweep_scratch_files(vfs.as_ref(), &dir, pe_index);
        let gen = max_generation_on_disk(&dir, pe_index);
        Ok(PeCheckpointer {
            dir,
            pe_index,
            gen,
            vfs,
        })
    }

    /// The PE's pointer-manifest path: `pe{index}.manifest`.
    pub fn manifest_path(&self) -> PathBuf {
        manifest_path(&self.dir, self.pe_index)
    }

    /// Reads this PE's latest consistent snapshot set, possibly written by
    /// a previous incarnation of the PE. Strict: any structural problem is
    /// an error. See [`read_pe_manifest`].
    pub fn read(&self) -> io::Result<Option<SnapshotSet>> {
        read_pe_manifest(&self.dir, self.pe_index)
    }

    /// Recovers this PE's best available snapshot set, quarantining
    /// torn/corrupt files and falling back to the previous generation.
    /// See [`recover_pe_manifest`].
    pub fn recover(&self) -> PeRecovery {
        recover_pe_manifest_vfs(self.vfs.as_ref(), &self.dir, self.pe_index)
    }

    /// Writes one consistent snapshot set: every blob under a fresh
    /// generation, the per-generation manifest, then the pointer manifest
    /// naming exactly those files. Generations older than the previous one
    /// are garbage collected only after the new pointer is durable, so a
    /// crash at any byte offset — or a bad block discovered later — leaves
    /// a complete older set readable.
    pub fn write(&mut self, parts: &[(String, Vec<u8>)]) -> io::Result<()> {
        let gen = self.gen + 1;
        let mut manifest = format!("{MANIFEST_MAGIC}\npe {}\ngen {}\n", self.pe_index, gen);
        for (ordinal, (name, blob)) in parts.iter().enumerate() {
            let file = format!("pe{}-g{}-{}.ckpt", self.pe_index, gen, ordinal);
            write_atomic_vfs(self.vfs.as_ref(), &self.dir.join(&file), blob)?;
            manifest.push_str(&format!(
                "op {} {} {:016x} {}\n",
                file,
                blob.len(),
                content_hash(blob),
                name
            ));
        }
        manifest.push_str("end\n");
        let gen_manifest = gen_manifest_path(&self.dir, self.pe_index, gen);
        write_atomic_vfs(self.vfs.as_ref(), &gen_manifest, manifest.as_bytes())?;
        // Commit point: the pointer manifest lands atomically over the old
        // one. Only now does the new generation become the recovery target.
        write_atomic_vfs(
            self.vfs.as_ref(),
            &self.manifest_path(),
            manifest.as_bytes(),
        )?;
        self.gen = gen;
        self.gc_old_generations();
        Ok(())
    }

    /// Removes every file of generations older than the fallback one.
    /// Best-effort: GC failure never fails a checkpoint. Scanning the
    /// directory (rather than remembering file lists) also reaps orphans
    /// from generations whose write failed partway.
    fn gc_old_generations(&self) {
        let keep_from = self.gen.saturating_sub(RETAINED_GENERATIONS - 1);
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(g) = generation_of(&name, self.pe_index) {
                if g < keep_from {
                    let _ = self.vfs.remove(&entry.path());
                }
            }
        }
    }
}

fn manifest_path(dir: &Path, pe_index: usize) -> PathBuf {
    dir.join(format!("pe{pe_index}.manifest"))
}

fn gen_manifest_path(dir: &Path, pe_index: usize, gen: u64) -> PathBuf {
    dir.join(format!("pe{pe_index}-g{gen}.manifest"))
}

/// Parses the generation number out of one of this PE's checkpoint file
/// names (`pe{i}-g{G}-{ord}.ckpt`, `pe{i}-g{G}.manifest`, or scratch
/// variants thereof). `None` for other PEs' files and the pointer.
fn generation_of(file_name: &str, pe_index: usize) -> Option<u64> {
    let rest = file_name.strip_prefix(&format!("pe{pe_index}-g"))?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// True for this PE's scratch files: `pe{i}…​.tmp-…` debris left by a
/// killed process mid-write.
fn is_scratch_of(file_name: &str, pe_index: usize) -> bool {
    (file_name.starts_with(&format!("pe{pe_index}-"))
        || file_name.starts_with(&format!("pe{pe_index}.")))
        && file_name.contains(".tmp")
}

fn sweep_scratch_files(vfs: &dyn Vfs, dir: &Path, pe_index: usize) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let name = entry.file_name().to_string_lossy().into_owned();
        if is_scratch_of(&name, pe_index) {
            let _ = vfs.remove(&entry.path());
        }
    }
}

/// The highest generation any of this PE's non-scratch files mentions.
fn max_generation_on_disk(dir: &Path, pe_index: usize) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            if name.contains(".tmp") {
                return None;
            }
            generation_of(&name, pe_index)
        })
        .max()
        .unwrap_or(0)
}

/// Why one manifest candidate could not be used: the offending file is the
/// quarantine target during recovery.
enum ManifestError {
    /// The manifest itself is structurally bad (or unreadable).
    Manifest(io::Error),
    /// The manifest names a blob that is missing, torn, or bit-rotted.
    Blob(PathBuf, io::Error),
}

impl ManifestError {
    fn into_io(self) -> io::Error {
        match self {
            ManifestError::Manifest(e) => e,
            ManifestError::Blob(_, e) => e,
        }
    }
}

/// Parses and fully verifies one manifest file: every named blob must
/// exist with exactly the recorded length and content hash.
/// `Ok(None)` when the manifest file does not exist.
fn try_read_manifest(
    vfs: &dyn Vfs,
    dir: &Path,
    path: &Path,
) -> Result<Option<SnapshotSet>, ManifestError> {
    let raw = match vfs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ManifestError::Manifest(e)),
    };
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let text = std::str::from_utf8(&raw)
        .map_err(|_| ManifestError::Manifest(bad(format!("manifest {path:?} is not UTF-8"))))?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(ManifestError::Manifest(bad(format!(
            "manifest {path:?} has a bad magic line"
        ))));
    }
    let mut parts = Vec::new();
    let mut ended = false;
    for line in lines {
        if line == "end" {
            ended = true;
            break;
        }
        if line.starts_with("pe ") || line.starts_with("gen ") {
            continue;
        }
        let rest = line.strip_prefix("op ").ok_or_else(|| {
            ManifestError::Manifest(bad(format!("manifest {path:?} has unknown line '{line}'")))
        })?;
        // `op <file> <len> <hash> <name>` — the name comes last because it
        // may contain spaces.
        let mut it = rest.splitn(4, ' ');
        let (file, len, hash, name) = match (it.next(), it.next(), it.next(), it.next()) {
            (Some(f), Some(l), Some(h), Some(n)) => (f, l, h, n),
            _ => {
                return Err(ManifestError::Manifest(bad(format!(
                    "manifest {path:?} has malformed entry '{line}'"
                ))))
            }
        };
        let len: usize = len.parse().map_err(|_| {
            ManifestError::Manifest(bad(format!("manifest {path:?} has bad length in '{line}'")))
        })?;
        let hash = u64::from_str_radix(hash, 16).map_err(|_| {
            ManifestError::Manifest(bad(format!("manifest {path:?} has bad hash in '{line}'")))
        })?;
        let blob_path = dir.join(file);
        let blob = vfs.read(&blob_path).map_err(|e| {
            ManifestError::Blob(
                blob_path.clone(),
                bad(format!(
                    "manifest {path:?} names unreadable blob {file}: {e}"
                )),
            )
        })?;
        if blob.len() != len {
            return Err(ManifestError::Blob(
                blob_path,
                bad(format!(
                    "blob {file} is {} bytes, manifest says {len} — torn checkpoint",
                    blob.len()
                )),
            ));
        }
        if content_hash(&blob) != hash {
            return Err(ManifestError::Blob(
                blob_path,
                bad(format!(
                    "blob {file} fails its content hash — bit-rotted checkpoint"
                )),
            ));
        }
        parts.push((name.to_string(), blob));
    }
    if !ended {
        return Err(ManifestError::Manifest(bad(format!(
            "manifest {path:?} is truncated (no 'end')"
        ))));
    }
    Ok(Some(parts))
}

/// Reads the latest consistent snapshot set for a PE: `(op name, blob)`
/// pairs in manifest order. `Ok(None)` when no manifest exists yet (the PE
/// never checkpointed); any structural problem — bad magic, truncated
/// manifest, missing blob, blob length or hash mismatch — is
/// `InvalidData`, so a strict read never rehydrates from a torn, rotted,
/// or mixed-generation set. For the degrading variant that falls back to
/// the previous generation, see [`recover_pe_manifest`].
pub fn read_pe_manifest(dir: &Path, pe_index: usize) -> io::Result<Option<SnapshotSet>> {
    match try_read_manifest(&RealVfs, dir, &manifest_path(dir, pe_index)) {
        Ok(set) => Ok(set),
        Err(e) => Err(e.into_io()),
    }
}

/// The outcome of degrading recovery: the best snapshot set found, plus
/// how much damage was encountered on the way.
#[derive(Debug, Default)]
pub struct PeRecovery {
    /// The recovered snapshot set, or `None` when no usable generation
    /// exists (the PE resumes with fresh in-memory state).
    pub set: Option<SnapshotSet>,
    /// Files quarantined aside as `<name>.corrupt-N` during recovery.
    pub quarantined: u64,
    /// True when the pointer manifest was unusable and recovery fell back
    /// to an older generation (or to nothing).
    pub fell_back: bool,
}

/// Degrading recovery on the real filesystem. See
/// [`recover_pe_manifest_vfs`].
pub fn recover_pe_manifest(dir: &Path, pe_index: usize) -> PeRecovery {
    recover_pe_manifest_vfs(&RealVfs, dir, pe_index)
}

/// Recovers the best available snapshot set for a PE, degrading gracefully:
///
/// 1. try the pointer manifest (`pe{i}.manifest`);
/// 2. on damage, quarantine the offending file (manifest or blob) aside as
///    `<name>.corrupt-N` and fall back to the per-generation manifests in
///    descending generation order;
/// 3. when every candidate is exhausted, report `set: None` — the caller
///    resumes with fresh state rather than erroring.
///
/// Never returns an error and never panics: storage damage degrades to an
/// older generation and a pair of counters ([`PeRecovery::quarantined`],
/// [`PeRecovery::fell_back`]) that the engine surfaces as
/// `quarantined_snapshots` / `io_faults` metrics.
pub fn recover_pe_manifest_vfs(vfs: &dyn Vfs, dir: &Path, pe_index: usize) -> PeRecovery {
    let mut recovery = PeRecovery::default();
    let mut candidates = vec![manifest_path(dir, pe_index)];
    let mut gens: Vec<u64> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                if name.contains(".tmp") || !name.ends_with(".manifest") {
                    return None;
                }
                generation_of(&name, pe_index)
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    gens.sort_unstable();
    gens.dedup();
    for g in gens.into_iter().rev() {
        candidates.push(gen_manifest_path(dir, pe_index, g));
    }
    let mut tried_any = false;
    for candidate in candidates {
        match try_read_manifest(vfs, dir, &candidate) {
            Ok(Some(set)) => {
                recovery.set = Some(set);
                recovery.fell_back = tried_any;
                return recovery;
            }
            Ok(None) => continue, // candidate doesn't exist — not damage
            Err(err) => {
                tried_any = true;
                let victim = match err {
                    ManifestError::Manifest(_) => candidate.clone(),
                    ManifestError::Blob(blob, _) => blob,
                };
                if quarantine_file(vfs, &victim) {
                    recovery.quarantined += 1;
                }
            }
        }
    }
    recovery.fell_back = tried_any;
    recovery
}

/// Renames `path` aside to the first free `<path>.corrupt-N`, preserving
/// the evidence without letting it shadow good generations. Returns false
/// when the rename fails (e.g. the file vanished, or the device is dead).
/// Shared with the backfill state store's quarantine path.
pub(crate) fn quarantine_file(vfs: &dyn Vfs, path: &Path) -> bool {
    for n in 1..=1000u32 {
        let mut target = path.as_os_str().to_owned();
        target.push(format!(".corrupt-{n}"));
        let target = PathBuf::from(target);
        if target.exists() {
            continue;
        }
        return vfs.rename(path, &target).is_ok();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "spca-ckpt-test-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn parts(tag: &str) -> SnapshotSet {
        vec![
            ("src".to_string(), format!("seq {tag}\n").into_bytes()),
            (
                "split op".to_string(),
                format!("next_rr {tag}\npicks {tag}\n").into_bytes(),
            ),
        ]
    }

    #[test]
    fn kv_round_trips() {
        let blob = encode_kv(&[("seq", "42".to_string()), ("next_rr", "3".to_string())]);
        let map = decode_kv(&blob).unwrap();
        assert_eq!(kv_u64(&map, "seq").unwrap(), 42);
        assert_eq!(kv_u64(&map, "next_rr").unwrap(), 3);
        assert!(kv_u64(&map, "missing").is_err());
        assert!(decode_kv(b"noseparator").is_err());
        assert!(decode_kv(b"a 1\na 2\n").is_err(), "duplicate keys rejected");
    }

    #[test]
    fn manifest_round_trips_and_retains_exactly_two_generations() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 3).unwrap();
        w.write(&parts("g1")).unwrap();
        assert_eq!(read_pe_manifest(&dir, 3).unwrap().unwrap(), parts("g1"));
        w.write(&parts("g2")).unwrap();
        assert_eq!(read_pe_manifest(&dir, 3).unwrap().unwrap(), parts("g2"));
        // Generation 1 is the fallback: still on disk after write 2…
        let has_gen = |g: u64| {
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .any(|e| {
                    e.file_name()
                        .to_string_lossy()
                        .starts_with(&format!("pe3-g{g}"))
                })
        };
        assert!(has_gen(1), "previous generation must be retained");
        // …and garbage collected after write 3.
        w.write(&parts("g3")).unwrap();
        assert!(!has_gen(1), "generation 1 must be GCed after write 3");
        assert!(has_gen(2) && has_gen(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_none_not_error() {
        let dir = temp_dir();
        assert!(read_pe_manifest(&dir, 0).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_manifest_is_invalid_data() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 0).unwrap();
        w.write(&[("a".to_string(), b"x 1\n".to_vec())]).unwrap();
        let path = manifest_path(&dir, 0);
        let full = std::fs::read_to_string(&path).unwrap();
        for cut in 0..full.len().saturating_sub(4) {
            std::fs::write(&path, &full.as_bytes()[..cut]).unwrap();
            let err = read_pe_manifest(&dir, 0).expect_err("torn manifest must fail");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blob_length_mismatch_is_invalid_data() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 1).unwrap();
        w.write(&[("a".to_string(), b"cursor 99\n".to_vec())])
            .unwrap();
        // Truncate the blob the manifest names.
        let blob = dir.join("pe1-g1-0.ckpt");
        std::fs::write(&blob, b"cursor").unwrap();
        let err = read_pe_manifest(&dir, 1).expect_err("length mismatch must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blob_hash_mismatch_is_invalid_data() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 1).unwrap();
        w.write(&[("a".to_string(), b"cursor 99\n".to_vec())])
            .unwrap();
        // Same length, one byte flipped: only the hash can catch it.
        std::fs::write(dir.join("pe1-g1-0.ckpt"), b"cursor 98\n").unwrap();
        let err = read_pe_manifest(&dir, 1).expect_err("bit-rot must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("hash"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_quarantines_a_rotted_blob_and_falls_back_a_generation() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 2).unwrap();
        w.write(&parts("g1")).unwrap();
        w.write(&parts("g2")).unwrap();
        // Rot a generation-2 blob: pointer and g2 manifest both point at it.
        std::fs::write(dir.join("pe2-g2-0.ckpt"), b"seq XX\n").unwrap();
        let rec = recover_pe_manifest(&dir, 2);
        assert_eq!(rec.set.unwrap(), parts("g1"), "must fall back to gen 1");
        assert!(rec.fell_back);
        assert_eq!(rec.quarantined, 1, "the rotted blob is quarantined once");
        assert!(
            dir.join("pe2-g2-0.ckpt.corrupt-1").exists(),
            "evidence preserved"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_quarantines_a_torn_pointer_and_reads_the_gen_manifest() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 4).unwrap();
        w.write(&parts("g1")).unwrap();
        let pointer = manifest_path(&dir, 4);
        let full = std::fs::read(&pointer).unwrap();
        std::fs::write(&pointer, &full[..full.len() / 2]).unwrap();
        let rec = recover_pe_manifest(&dir, 4);
        assert_eq!(
            rec.set.unwrap(),
            parts("g1"),
            "per-generation manifest rescues the set"
        );
        assert!(rec.fell_back);
        assert_eq!(rec.quarantined, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_with_everything_destroyed_degrades_to_none() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 5).unwrap();
        w.write(&parts("g1")).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
            if entry.file_name().to_string_lossy().ends_with(".manifest") {
                std::fs::write(entry.path(), b"garbage").unwrap();
            } else {
                std::fs::write(entry.path(), b"rot").unwrap();
            }
        }
        let rec = recover_pe_manifest(&dir, 5);
        assert!(rec.set.is_none(), "nothing usable: degrade, don't error");
        assert!(rec.fell_back);
        assert!(rec.quarantined >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_sweeps_scratch_debris_and_resumes_the_generation_counter() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 0).unwrap();
        w.write(&parts("g1")).unwrap();
        w.write(&parts("g2")).unwrap();
        drop(w);
        // Simulate a process killed mid-write: scratch debris for this PE
        // and for a neighbour.
        std::fs::write(dir.join("pe0-g3-0.ckpt.tmp-99-7"), b"half").unwrap();
        std::fs::write(dir.join("pe0.manifest.tmp-99-8"), b"half").unwrap();
        std::fs::write(dir.join("pe1-g1-0.ckpt.tmp-99-9"), b"other pe").unwrap();
        let mut w2 = PeCheckpointer::new(&dir, 0).unwrap();
        assert!(
            !dir.join("pe0-g3-0.ckpt.tmp-99-7").exists()
                && !dir.join("pe0.manifest.tmp-99-8").exists(),
            "this PE's scratch debris must be swept"
        );
        assert!(
            dir.join("pe1-g1-0.ckpt.tmp-99-9").exists(),
            "another PE's scratch files are not ours to sweep"
        );
        // The resumed counter must not reuse generation 1 or 2 blob names.
        w2.write(&parts("g3")).unwrap();
        assert!(dir.join("pe0-g3-0.ckpt").exists(), "next write is gen 3");
        assert_eq!(read_pe_manifest(&dir, 0).unwrap().unwrap(), parts("g3"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_temp_files_survive_a_write() {
        let dir = temp_dir();
        let mut w = PeCheckpointer::new(&dir, 2).unwrap();
        w.write(&[("a".to_string(), b"k 1\n".to_vec())]).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
