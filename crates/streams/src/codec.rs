//! Binary columnar frame codec for cross-process links.
//!
//! ROADMAP item 1: the cross-PE transport promoted to a real wire
//! protocol. A frame is the unit the batched transport already ships
//! between PEs (a `Vec<Tuple>`); this module gives it a compact,
//! length-prefixed, versioned byte layout so it can cross a TCP socket
//! without per-value parsing:
//!
//! ```text
//! ┌─────────┬─────────┬──────────────┬──────────────────┬──────────┐
//! │ magic   │ version │ body_len u32 │ body (see below) │ crc32    │
//! │ "SPCF"  │ 1 byte  │ LE           │                  │ LE, body │
//! └─────────┴─────────┴──────────────┴──────────────────┴──────────┘
//! body:
//!   n_entries u32 · n_data u32 · n_ctrl u32 · n_punct u32
//!   tags        n_entries × u8          (0 = data, 1 = control, 2 = EOS)
//!   total_vals  u64
//!   seqs        n_data × u64 LE         (row ids)
//!   stamps      n_data × u64 LE
//!   lens        n_data × u32 LE
//!   values      total_vals × f64 LE     (one contiguous block)
//!   mask_flags  ⌈n_data/8⌉ bytes        (bit i = data tuple i is gappy)
//!   presence    ⌈total_vals/8⌉ bytes    (bit per value; 1 = observed)
//!   controls    n_ctrl × { kind u32 · sender u32 · tagged u8 · len u32 · bytes }
//! ```
//!
//! The layout is *columnar*: all values of a batch land in one contiguous
//! little-endian f64 block, so encode is a handful of bulk copies and
//! decode is a bounds check plus a bulk copy — no per-value formatting or
//! parsing anywhere (the CSV `TcpSource`/`TcpSink` path re-parses every
//! float; this is the hot path that replaces it). Both directions reuse
//! caller-owned buffers and allocate nothing in steady state (guarded by
//! `tests/codec_alloc.rs`, the same allocator-counter pattern as the
//! serving path).
//!
//! Torn and corrupted input can never partially apply: a decode first
//! proves the full frame is present, then verifies the CRC-32 over the
//! body, and only then copies columns out. Truncation surfaces as
//! [`CodecError::Incomplete`] (read more bytes), corruption as
//! [`CodecError::Corrupt`]; neither ever panics.
//!
//! Control payloads are `Arc<dyn Any>` in memory, so the codec cannot
//! serialize them structurally; applications register per-kind byte codecs
//! via [`register_control_codec`] (the engine registers its sync/snapshot
//! payloads at distributed start-up). A payload-free signal round-trips
//! without any registration; an unregistered payload-carrying kind fails
//! the encode loudly rather than silently dropping state.

use crate::tuple::{ControlTuple, DataTuple, Punctuation, Tuple};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// First bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SPCF";
/// Wire version this build speaks. Decoders reject other versions loudly
/// (compat rule: the version byte bumps on any layout change; there is no
/// in-band negotiation — both ends of a link run the same binary).
pub const VERSION: u8 = 1;
/// Bytes before the body: magic, version, body length.
pub const HEADER_LEN: usize = 9;
/// Bytes after the body: CRC-32 (IEEE) over the body.
pub const TRAILER_LEN: usize = 4;
/// Sanity cap on a frame body. A length prefix larger than this is treated
/// as corruption, so a flipped bit in the length field can never make the
/// receiver buffer gigabytes.
pub const MAX_BODY_LEN: usize = 1 << 28;

const TAG_DATA: u8 = 0;
const TAG_CTRL: u8 = 1;
const TAG_EOS: u8 = 2;

/// Why a frame failed to encode or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Not enough bytes yet — not an error on a streaming read, just "read
    /// more and retry".
    Incomplete,
    /// The bytes can never become a valid frame (bad magic/version, bad
    /// CRC, inconsistent counts, trailing garbage). The static message
    /// names the first check that failed.
    Corrupt(&'static str),
    /// A control tuple of this kind carries a payload but no codec was
    /// registered for it (see [`register_control_codec`]).
    UnregisteredControl(u32),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Incomplete => write!(f, "incomplete frame"),
            CodecError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
            CodecError::UnregisteredControl(k) => {
                write!(f, "no control codec registered for kind {k}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for std::io::Error {
    fn from(e: CodecError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Control payload registry
// ---------------------------------------------------------------------------

/// Serializes a control payload of a known kind into `out` (appending).
/// Returns `false` when the payload is not the type this codec expects.
pub type ControlEncodeFn = fn(&(dyn Any + Send + Sync), &mut Vec<u8>) -> bool;
/// Deserializes a control payload previously produced by the matching
/// encode fn. Returns `None` on malformed bytes.
pub type ControlDecodeFn = fn(&[u8]) -> Option<Arc<dyn Any + Send + Sync>>;

fn registry() -> &'static Mutex<HashMap<u32, (ControlEncodeFn, ControlDecodeFn)>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u32, (ControlEncodeFn, ControlDecodeFn)>>> =
        OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Registers the byte codec for control tuples of `kind`. Idempotent:
/// re-registering a kind replaces the previous codec (processes that build
/// several engines register the same codecs once per engine).
pub fn register_control_codec(kind: u32, enc: ControlEncodeFn, dec: ControlDecodeFn) {
    registry().lock().insert(kind, (enc, dec));
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), slice-by-8. Guarantees detection of any 1- or 2-bit
// corruption in the body, which the robustness proptests rely on. The
// bytewise table walk tops out around 0.35 GB/s and dominated the whole
// encode path (the payload itself moves by memcpy); slicing consumes
// eight bytes per step through eight shifted tables, which is what keeps
// `fig_net`'s codec-vs-CSV ratio above its 5x gate.
// ---------------------------------------------------------------------------

const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][(lo >> 8 & 0xFF) as usize]
            ^ CRC_TABLES[5][(lo >> 16 & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][(hi >> 8 & 0xFF) as usize]
            ^ CRC_TABLES[1][(hi >> 16 & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Bulk little-endian copies. On little-endian targets these are plain
// memcpys through a byte view — no per-value conversion; the big-endian
// fallback converts value by value so the wire format stays LE everywhere.
// ---------------------------------------------------------------------------

macro_rules! bulk_le {
    (read $read_name:ident, $ty:ty, $size:expr) => {
        /// Appends `n` values decoded from the front of `src` to `dst`.
        fn $read_name(src: &[u8], dst: &mut Vec<$ty>, n: usize) {
            debug_assert!(src.len() >= n * $size);
            let start = dst.len();
            dst.resize(start + n, Default::default());
            #[cfg(target_endian = "little")]
            {
                // SAFETY: the destination is initialized $ty storage and a
                // byte-wise overwrite of it with n*$size bytes is in
                // bounds; unaligned source bytes are fine for a byte copy.
                let out = unsafe {
                    std::slice::from_raw_parts_mut(
                        dst.as_mut_ptr().add(start) as *mut u8,
                        n * $size,
                    )
                };
                out.copy_from_slice(&src[..n * $size]);
            }
            #[cfg(not(target_endian = "little"))]
            {
                for i in 0..n {
                    let mut b = [0u8; $size];
                    b.copy_from_slice(&src[i * $size..(i + 1) * $size]);
                    dst[start + i] = <$ty>::from_le_bytes(b);
                }
            }
        }
    };
    (both $write_name:ident, $read_name:ident, $ty:ty, $size:expr) => {
        fn $write_name(out: &mut Vec<u8>, vals: &[$ty]) {
            #[cfg(target_endian = "little")]
            {
                // SAFETY: any $ty value is valid to view as bytes; the
                // slice covers exactly the values' own storage.
                let bytes = unsafe {
                    std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * $size)
                };
                out.extend_from_slice(bytes);
            }
            #[cfg(not(target_endian = "little"))]
            {
                for v in vals {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        bulk_le!(read $read_name, $ty, $size);
    };
}

bulk_le!(both write_f64s, read_f64s, f64, 8);
bulk_le!(read read_u64s, u64, 8);
bulk_le!(read read_u32s, u32, 4);

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

/// Encodes a batch of tuples as one wire frame into `out` (cleared first).
///
/// Steady-state this allocates nothing once `out` has grown to the working
/// frame size; data values land in the body via bulk copies. Control
/// payloads go through the per-kind registry; a payload-free signal needs
/// no registration.
pub fn encode_frame(tuples: &[Tuple], out: &mut Vec<u8>) -> Result<(), CodecError> {
    out.clear();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    push_u32(out, 0); // body_len, patched below
    let body_start = out.len();

    let mut n_data = 0u32;
    let mut n_ctrl = 0u32;
    let mut n_punct = 0u32;
    let mut total_vals = 0u64;
    for t in tuples {
        match t {
            Tuple::Data(d) => {
                n_data += 1;
                total_vals += d.values.len() as u64;
            }
            Tuple::Control(_) => n_ctrl += 1,
            Tuple::Punct(Punctuation::EndOfStream) => n_punct += 1,
        }
    }
    push_u32(out, tuples.len() as u32);
    push_u32(out, n_data);
    push_u32(out, n_ctrl);
    push_u32(out, n_punct);
    for t in tuples {
        out.push(match t {
            Tuple::Data(_) => TAG_DATA,
            Tuple::Control(_) => TAG_CTRL,
            Tuple::Punct(_) => TAG_EOS,
        });
    }
    push_u64(out, total_vals);
    for t in tuples {
        if let Tuple::Data(d) = t {
            push_u64(out, d.seq);
        }
    }
    for t in tuples {
        if let Tuple::Data(d) = t {
            push_u64(out, d.timestamp_ns);
        }
    }
    for t in tuples {
        if let Tuple::Data(d) = t {
            push_u32(out, d.values.len() as u32);
        }
    }
    for t in tuples {
        if let Tuple::Data(d) = t {
            write_f64s(out, &d.values);
        }
    }
    // Mask-presence flags: one bit per data tuple.
    {
        let mut acc = 0u8;
        let mut nbits = 0u8;
        for t in tuples {
            if let Tuple::Data(d) = t {
                if d.mask.is_some() {
                    acc |= 1 << nbits;
                }
                nbits += 1;
                if nbits == 8 {
                    out.push(acc);
                    acc = 0;
                    nbits = 0;
                }
            }
        }
        if nbits > 0 {
            out.push(acc);
        }
    }
    // Presence bitmap: one bit per value, 1 = observed. Complete
    // observations contribute all-ones runs.
    {
        let mut acc = 0u8;
        let mut nbits = 0u8;
        for t in tuples {
            if let Tuple::Data(d) = t {
                for i in 0..d.values.len() {
                    let present = d.mask.as_ref().is_none_or(|m| m[i]);
                    if present {
                        acc |= 1 << nbits;
                    }
                    nbits += 1;
                    if nbits == 8 {
                        out.push(acc);
                        acc = 0;
                        nbits = 0;
                    }
                }
            }
        }
        if nbits > 0 {
            out.push(acc);
        }
    }
    // Control section. Payload bytes are produced straight into the frame
    // buffer; the length field is patched afterwards.
    for t in tuples {
        let Tuple::Control(c) = t else { continue };
        push_u32(out, c.kind);
        push_u32(out, c.sender);
        if c.payload_as::<()>().is_some() {
            out.push(0);
            push_u32(out, 0);
            continue;
        }
        let Some(&(enc, _)) = registry().lock().get(&c.kind) else {
            return Err(CodecError::UnregisteredControl(c.kind));
        };
        out.push(1);
        let len_at = out.len();
        push_u32(out, 0);
        if !enc(&*c.payload, out) {
            return Err(CodecError::UnregisteredControl(c.kind));
        }
        let len = (out.len() - len_at - 4) as u32;
        out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
    }

    let body_len = out.len() - body_start;
    if body_len > MAX_BODY_LEN {
        return Err(CodecError::Corrupt("frame body exceeds MAX_BODY_LEN"));
    }
    out[body_start - 4..body_start].copy_from_slice(&(body_len as u32).to_le_bytes());
    let crc = crc32(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(())
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

/// One decoded control entry: kind, sender, whether a payload is attached,
/// and the payload's byte range inside [`ColumnarFrame::ctrl_bytes`].
#[derive(Debug, Clone, Copy)]
pub struct CtrlEntry {
    /// Application discriminator.
    pub kind: u32,
    /// Originating operator id.
    pub sender: u32,
    /// True when the entry carries registry-encoded payload bytes.
    pub tagged: bool,
    /// Payload start offset in `ctrl_bytes`.
    pub start: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// A decoded frame in columnar form: reusable flat buffers the wire bytes
/// are bulk-copied into. Decoding into this struct never allocates once
/// the buffers reach working size; materializing [`Tuple`]s out of it is a
/// separate (allocating) step, exactly as expensive as producing the same
/// tuples locally.
#[derive(Debug, Default)]
pub struct ColumnarFrame {
    /// Entry tags in stream order (0 data, 1 control, 2 EOS).
    pub tags: Vec<u8>,
    /// Row ids (sequence numbers) of the data tuples, in order.
    pub seqs: Vec<u64>,
    /// Logical timestamps of the data tuples.
    pub stamps: Vec<u64>,
    /// Per-data-tuple value counts.
    pub lens: Vec<u32>,
    /// All values of the batch, one contiguous block.
    pub values: Vec<f64>,
    /// Bit i set = data tuple i is gappy (carries a mask).
    pub mask_flags: Vec<u8>,
    /// Bit per value (concatenation order); 1 = observed.
    pub presence: Vec<u8>,
    /// Control entries in stream order.
    pub ctrls: Vec<CtrlEntry>,
    /// Backing bytes for control payloads.
    pub ctrl_bytes: Vec<u8>,
}

impl ColumnarFrame {
    /// Total entries (tuples) in the decoded frame.
    pub fn n_entries(&self) -> usize {
        self.tags.len()
    }

    fn clear(&mut self) {
        self.tags.clear();
        self.seqs.clear();
        self.stamps.clear();
        self.lens.clear();
        self.values.clear();
        self.mask_flags.clear();
        self.presence.clear();
        self.ctrls.clear();
        self.ctrl_bytes.clear();
    }

    /// Rebuilds the tuples in stream order, appending to `out`. Control
    /// payloads go through the registry; an entry whose kind has no
    /// registered decoder fails the whole call (nothing partial is kept —
    /// the caller's `out` is truncated back to its entry length).
    pub fn materialize(&self, out: &mut Vec<Tuple>) -> Result<(), CodecError> {
        let restore_len = out.len();
        let mut di = 0usize; // data cursor
        let mut ci = 0usize; // control cursor
        let mut voff = 0usize; // value offset
        for &tag in &self.tags {
            match tag {
                TAG_DATA => {
                    let len = self.lens[di] as usize;
                    let values: Vec<f64> = self.values[voff..voff + len].to_vec();
                    let masked = self.mask_flags[di / 8] & (1 << (di % 8)) != 0;
                    let mask = if masked {
                        let mut m = Vec::with_capacity(len);
                        for i in 0..len {
                            let bit = voff + i;
                            m.push(self.presence[bit / 8] & (1 << (bit % 8)) != 0);
                        }
                        Some(Arc::new(m))
                    } else {
                        None
                    };
                    out.push(Tuple::Data(DataTuple {
                        seq: self.seqs[di],
                        timestamp_ns: self.stamps[di],
                        values: Arc::new(values),
                        mask,
                    }));
                    voff += len;
                    di += 1;
                }
                TAG_CTRL => {
                    let e = self.ctrls[ci];
                    ci += 1;
                    let payload: Arc<dyn Any + Send + Sync> = if !e.tagged {
                        Arc::new(())
                    } else {
                        let Some(&(_, dec)) = registry().lock().get(&e.kind) else {
                            out.truncate(restore_len);
                            return Err(CodecError::UnregisteredControl(e.kind));
                        };
                        match dec(&self.ctrl_bytes[e.start..e.start + e.len]) {
                            Some(p) => p,
                            None => {
                                out.truncate(restore_len);
                                return Err(CodecError::Corrupt("control payload rejected"));
                            }
                        }
                    };
                    out.push(Tuple::Control(ControlTuple::new(e.kind, e.sender, payload)));
                }
                _ => out.push(Tuple::Punct(Punctuation::EndOfStream)),
            }
        }
        Ok(())
    }
}

/// Inspects a frame header and returns the total frame length (header +
/// body + CRC trailer). [`CodecError::Incomplete`] when fewer than
/// [`HEADER_LEN`] bytes are available.
pub fn frame_len(buf: &[u8]) -> Result<usize, CodecError> {
    if buf.len() < HEADER_LEN {
        return Err(CodecError::Incomplete);
    }
    if buf[..4] != MAGIC {
        return Err(CodecError::Corrupt("bad magic"));
    }
    if buf[4] != VERSION {
        return Err(CodecError::Corrupt("unsupported frame version"));
    }
    let body_len = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]) as usize;
    if body_len > MAX_BODY_LEN {
        return Err(CodecError::Corrupt("frame body exceeds MAX_BODY_LEN"));
    }
    Ok(HEADER_LEN + body_len + TRAILER_LEN)
}

/// Cursor over a body slice with bounds-checked take operations.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .at
            .checked_add(n)
            .ok_or(CodecError::Corrupt("length overflow"))?;
        if end > self.buf.len() {
            return Err(CodecError::Corrupt("section extends past body"));
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

/// Decodes one full frame from the front of `buf` into `cols`, returning
/// the number of bytes consumed.
///
/// The CRC is verified over the whole body *before* any column is copied,
/// so a failed decode never partially applies: on any `Err`, `cols` holds
/// either its previous content (`Incomplete`, bad CRC) or cleared buffers,
/// and no tuple is ever materialized from it. Decode itself is a sequence
/// of bounds checks and bulk copies — no per-value parsing.
pub fn decode_frame(buf: &[u8], cols: &mut ColumnarFrame) -> Result<usize, CodecError> {
    let total = frame_len(buf)?;
    if buf.len() < total {
        return Err(CodecError::Incomplete);
    }
    let body = &buf[HEADER_LEN..total - TRAILER_LEN];
    let want = u32::from_le_bytes(buf[total - TRAILER_LEN..total].try_into().expect("4 bytes"));
    if crc32(body) != want {
        return Err(CodecError::Corrupt("checksum mismatch"));
    }
    decode_body(body, cols)?;
    Ok(total)
}

fn decode_body(body: &[u8], cols: &mut ColumnarFrame) -> Result<(), CodecError> {
    cols.clear();
    let mut cur = Cursor { buf: body, at: 0 };
    let n_entries = cur.u32()? as usize;
    let n_data = cur.u32()? as usize;
    let n_ctrl = cur.u32()? as usize;
    let n_punct = cur.u32()? as usize;
    if n_data
        .checked_add(n_ctrl)
        .and_then(|s| s.checked_add(n_punct))
        != Some(n_entries)
    {
        return Err(CodecError::Corrupt("entry counts disagree"));
    }
    let tags = cur.take(n_entries)?;
    let (mut td, mut tc, mut tp) = (0usize, 0usize, 0usize);
    for &t in tags {
        match t {
            TAG_DATA => td += 1,
            TAG_CTRL => tc += 1,
            TAG_EOS => tp += 1,
            _ => return Err(CodecError::Corrupt("unknown entry tag")),
        }
    }
    if (td, tc, tp) != (n_data, n_ctrl, n_punct) {
        return Err(CodecError::Corrupt("tags disagree with counts"));
    }
    cols.tags.extend_from_slice(tags);

    let total_vals = cur.u64()? as usize;
    read_u64s(cur.take(n_data * 8)?, &mut cols.seqs, n_data);
    read_u64s(cur.take(n_data * 8)?, &mut cols.stamps, n_data);
    read_u32s(cur.take(n_data * 4)?, &mut cols.lens, n_data);
    let lens_sum: u64 = cols.lens.iter().map(|&l| l as u64).sum();
    if lens_sum != total_vals as u64 {
        return Err(CodecError::Corrupt("value lengths disagree with total"));
    }
    let val_bytes = total_vals
        .checked_mul(8)
        .ok_or(CodecError::Corrupt("length overflow"))?;
    read_f64s(cur.take(val_bytes)?, &mut cols.values, total_vals);
    cols.mask_flags
        .extend_from_slice(cur.take(n_data.div_ceil(8))?);
    cols.presence
        .extend_from_slice(cur.take(total_vals.div_ceil(8))?);

    for _ in 0..n_ctrl {
        let kind = cur.u32()?;
        let sender = cur.u32()?;
        let tagged = match cur.take(1)?[0] {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Corrupt("bad control payload flag")),
        };
        let len = cur.u32()? as usize;
        if !tagged && len != 0 {
            return Err(CodecError::Corrupt("unit control payload with bytes"));
        }
        let bytes = cur.take(len)?;
        let start = cols.ctrl_bytes.len();
        cols.ctrl_bytes.extend_from_slice(bytes);
        cols.ctrls.push(CtrlEntry {
            kind,
            sender,
            tagged,
            start,
            len,
        });
    }
    if cur.at != body.len() {
        return Err(CodecError::Corrupt("trailing bytes after last section"));
    }
    Ok(())
}

/// Convenience: decode one frame and materialize its tuples in one call,
/// appending to `out`. Returns bytes consumed.
pub fn decode_tuples(
    buf: &[u8],
    cols: &mut ColumnarFrame,
    out: &mut Vec<Tuple>,
) -> Result<usize, CodecError> {
    let n = decode_frame(buf, cols)?;
    cols.materialize(out)?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seq: u64, vals: Vec<f64>) -> Tuple {
        Tuple::Data(DataTuple::new(seq, vals))
    }

    fn round_trip(tuples: &[Tuple]) -> Vec<Tuple> {
        let mut buf = Vec::new();
        encode_frame(tuples, &mut buf).expect("encode");
        let mut cols = ColumnarFrame::default();
        let mut out = Vec::new();
        let n = decode_tuples(&buf, &mut cols, &mut out).expect("decode");
        assert_eq!(n, buf.len(), "whole frame consumed");
        out
    }

    #[test]
    fn empty_frame_round_trips() {
        assert!(round_trip(&[]).is_empty());
    }

    #[test]
    fn data_batch_round_trips_bit_identical() {
        let tuples: Vec<Tuple> = (0..17)
            .map(|i| {
                let mut d = DataTuple::new(i, (0..5).map(|j| (i * 5 + j) as f64 * 0.1).collect());
                d.timestamp_ns = 1_000 + i;
                Tuple::Data(d)
            })
            .collect();
        let back = round_trip(&tuples);
        assert_eq!(back.len(), 17);
        for (a, b) in tuples.iter().zip(&back) {
            let (Tuple::Data(a), Tuple::Data(b)) = (a, b) else {
                panic!("tag changed");
            };
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.timestamp_ns, b.timestamp_ns);
            assert_eq!(a.values.len(), b.values.len());
            for (x, y) in a.values.iter().zip(b.values.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert!(b.mask.is_none());
        }
    }

    #[test]
    fn masks_and_nonfinite_values_survive() {
        let tuples = vec![
            Tuple::Data(DataTuple::masked(
                7,
                vec![1.0, f64::NAN, -0.0],
                vec![true, false, true],
            )),
            data(8, vec![f64::INFINITY, f64::MIN_POSITIVE]),
        ];
        let back = round_trip(&tuples);
        let Tuple::Data(d0) = &back[0] else { panic!() };
        assert_eq!(
            d0.mask.as_ref().unwrap().as_slice(),
            &[true, false, true],
            "gap pattern survives"
        );
        assert_eq!(d0.values[1].to_bits(), f64::NAN.to_bits());
        assert_eq!(d0.values[2].to_bits(), (-0.0f64).to_bits());
        let Tuple::Data(d1) = &back[1] else { panic!() };
        assert!(d1.mask.is_none());
        assert_eq!(d1.values[0], f64::INFINITY);
    }

    #[test]
    fn mixed_ordering_is_preserved() {
        let tuples = vec![
            data(0, vec![1.0]),
            Tuple::Control(ControlTuple::signal(9, 2)),
            data(1, vec![2.0]),
            Tuple::Punct(Punctuation::EndOfStream),
        ];
        let back = round_trip(&tuples);
        assert!(matches!(back[0], Tuple::Data(_)));
        let Tuple::Control(c) = &back[1] else {
            panic!()
        };
        assert_eq!((c.kind, c.sender), (9, 2));
        assert!(c.payload_as::<()>().is_some());
        assert!(matches!(back[2], Tuple::Data(_)));
        assert!(back[3].is_eos());
    }

    #[test]
    fn registered_control_payload_round_trips() {
        const KIND: u32 = 0x00C0_DEC0;
        fn enc(p: &(dyn Any + Send + Sync), out: &mut Vec<u8>) -> bool {
            match p.downcast_ref::<u64>() {
                Some(v) => {
                    out.extend_from_slice(&v.to_le_bytes());
                    true
                }
                None => false,
            }
        }
        fn dec(b: &[u8]) -> Option<Arc<dyn Any + Send + Sync>> {
            let v = u64::from_le_bytes(b.try_into().ok()?);
            Some(Arc::new(v))
        }
        register_control_codec(KIND, enc, dec);
        let tuples = vec![Tuple::Control(ControlTuple::new(
            KIND,
            4,
            Arc::new(0xDEAD_BEEFu64),
        ))];
        let back = round_trip(&tuples);
        let Tuple::Control(c) = &back[0] else {
            panic!()
        };
        assert_eq!(*c.payload_as::<u64>().unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn unregistered_payload_kind_fails_encode_loudly() {
        let tuples = vec![Tuple::Control(ControlTuple::new(
            0xFFFF_FFFE,
            0,
            Arc::new(String::from("opaque")),
        ))];
        let mut buf = Vec::new();
        assert_eq!(
            encode_frame(&tuples, &mut buf),
            Err(CodecError::UnregisteredControl(0xFFFF_FFFE))
        );
    }

    #[test]
    fn truncation_yields_incomplete_and_corruption_yields_corrupt() {
        let tuples = vec![data(0, vec![1.0, 2.0, 3.0]), data(1, vec![4.0, 5.0, 6.0])];
        let mut buf = Vec::new();
        encode_frame(&tuples, &mut buf).unwrap();
        let mut cols = ColumnarFrame::default();
        for cut in 0..buf.len() {
            let err = decode_frame(&buf[..cut], &mut cols).expect_err("truncated");
            assert!(
                matches!(err, CodecError::Incomplete | CodecError::Corrupt(_)),
                "cut={cut}: {err}"
            );
        }
        // Flip one bit anywhere in body or trailer: CRC must catch it.
        for at in HEADER_LEN..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x01;
            let err = decode_frame(&bad, &mut cols).expect_err("corrupt");
            assert!(matches!(err, CodecError::Corrupt(_)), "at={at}: {err}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_corrupt_not_oom() {
        let mut buf = Vec::new();
        encode_frame(&[data(0, vec![1.0])], &mut buf).unwrap();
        buf[5..9].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut cols = ColumnarFrame::default();
        assert!(matches!(
            decode_frame(&buf, &mut cols),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn back_to_back_frames_decode_with_consumed_offsets() {
        let mut stream = Vec::new();
        let mut one = Vec::new();
        encode_frame(&[data(0, vec![1.0])], &mut one).unwrap();
        stream.extend_from_slice(&one);
        encode_frame(&[data(1, vec![2.0]), data(2, vec![3.0])], &mut one).unwrap();
        stream.extend_from_slice(&one);
        let mut cols = ColumnarFrame::default();
        let mut out = Vec::new();
        let n1 = decode_tuples(&stream, &mut cols, &mut out).unwrap();
        let n2 = decode_tuples(&stream[n1..], &mut cols, &mut out).unwrap();
        assert_eq!(n1 + n2, stream.len());
        assert_eq!(out.len(), 3);
        let Tuple::Data(d) = &out[2] else { panic!() };
        assert_eq!(d.seq, 2);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn decode_reuses_buffers_across_frames() {
        let mut buf = Vec::new();
        let mut cols = ColumnarFrame::default();
        encode_frame(&[data(0, vec![1.0; 64])], &mut buf).unwrap();
        decode_frame(&buf, &mut cols).unwrap();
        let cap = cols.values.capacity();
        encode_frame(&[data(1, vec![2.0; 32])], &mut buf).unwrap();
        decode_frame(&buf, &mut cols).unwrap();
        assert_eq!(cols.values.len(), 32);
        assert!(cols.values.capacity() >= cap.min(32));
        assert_eq!(cols.seqs[0], 1);
    }
}
