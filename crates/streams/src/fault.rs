//! Deterministic fault injection and restart policy.
//!
//! A [`FaultPlan`] describes *reproducible* failures: the same plan on the
//! same seeded stream produces the same panic at the same tuple, the same
//! dropped message on the same link. Plans thread through
//! [`GraphBuilder`](crate::graph::GraphBuilder) so tests and benches can
//! exercise the supervisor (`catch_unwind` + restart-from-snapshot) and the
//! failure-aware synchronization without any randomness.
//!
//! ## Grammar
//!
//! A plan is a comma-separated list of fault entries:
//!
//! ```text
//! panic@OP:N            operator OP panics after processing its N-th data tuple
//! kill-pe@OP:N          the whole PE hosting OP dies after OP's N-th data tuple
//! poison-nan@OP:N       the N-th data tuple delivered to OP has NaN values
//! poison-inf@OP:N       the N-th data tuple delivered to OP has Inf values
//! stall@OP:N:MS         OP stalls MS milliseconds before its N-th data tuple
//! drop@FROM>TO:N        the N-th data tuple on cross-PE link FROM>TO is dropped
//! dup@FROM>TO:N         the N-th data tuple on link FROM>TO is delivered twice
//! delay@FROM>TO:N:MS    the N-th data tuple on link FROM>TO is held MS ms
//! io-enospc@pe:N        the N-th checkpoint-domain disk write fails ENOSPC
//! io-torn@pe:N          the N-th checkpoint-domain disk write lands torn
//! io-fsync-err          every fsync (file and directory) fails
//! io-corrupt@store:N    the N-th state-store disk write lands bit-rotted
//! io-crash@op:K         the K-th disk operation and every later one fails
//! net-drop-conn@link:N      the N-th frame write on each wire link drops the conn
//! net-partial-write@link:N  the N-th frame write lands half its bytes, then drops
//! ```
//!
//! `kill-pe` targets an *operator* (PE indices depend on fusion resolution
//! order and would make plans fragile): the fault tears down the entire
//! processing element that operator was fused into. The PE-level supervisor
//! then rebuilds every operator in the PE from its [`Checkpoint`]
//! (crate::checkpoint::Checkpoint) snapshot; see the engine docs.
//!
//! Tuple indices `N` are 1-based and count *data* tuples only — control
//! traffic and punctuation are never faulted (a plan that corrupted EOS
//! would deadlock the graph rather than test recovery). Link faults apply
//! only to cross-PE edges: they model the network, and a fused edge has no
//! network to misbehave.
//!
//! The `io-*` kinds target the *storage layer* rather than an operator or
//! link: their "target" word names a fault domain (`pe` for checkpoint
//! blobs/manifests, `store` for backfill state files, `op` for the global
//! disk-operation counter) and their indices count disk writes/operations,
//! not tuples. They compile into an [`crate::vfs::IoFaultSpec`] via
//! [`FaultPlan::io_spec`] and are injected by [`crate::vfs::FaultVfs`].
//!
//! The `net-*` kinds target the *wire* the same way: the domain word
//! `link` covers every socket-backed cross-process link, and indices
//! count frame writes per link (monotone across reconnects, so a fault
//! fires exactly once). They compile into a
//! [`crate::netio::WireFaultSpec`] via [`FaultPlan::wire_spec`] and are
//! injected by the sender-side socket shim in [`crate::netio`].

use crate::netio::WireFaultSpec;
use crate::vfs::IoFaultSpec;
use std::time::Duration;

/// What a single fault does, once its trigger point is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic inside the operator after it finishes processing tuple `N`.
    PanicAfter(u64),
    /// Kill the whole PE hosting the operator after it finishes processing
    /// tuple `N`. Unlike [`FaultAction::PanicAfter`] — which the
    /// operator-level supervisor isolates — this unwinds the PE's scheduler
    /// loop itself, exercising whole-PE teardown and checkpoint recovery.
    KillPe(u64),
    /// Replace tuple `N`'s values with NaN before delivery.
    PoisonNan(u64),
    /// Replace tuple `N`'s values with +Inf before delivery.
    PoisonInf(u64),
    /// Busy the operator for `ms` milliseconds before tuple `at`.
    Stall {
        /// 1-based data-tuple index that triggers the stall.
        at: u64,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Drop the link's `N`-th data tuple.
    Drop(u64),
    /// Deliver the link's `N`-th data tuple twice.
    Duplicate(u64),
    /// Hold the link's `N`-th data tuple for `ms` milliseconds.
    Delay {
        /// 1-based data-tuple index that triggers the delay.
        at: u64,
        /// Delay duration in milliseconds.
        ms: u64,
    },
    /// The `N`-th checkpoint-domain disk write fails with `ENOSPC`.
    IoEnospc(u64),
    /// The `N`-th checkpoint-domain disk write lands torn (prefix only).
    IoTorn(u64),
    /// Every fsync (file and directory) fails.
    IoFsyncErr,
    /// The `N`-th state-store disk write lands with a flipped byte.
    IoCorrupt(u64),
    /// The `K`-th disk operation and every later one fails (crash).
    IoCrash(u64),
    /// The `N`-th frame write on a wire link drops the connection.
    NetDropConn(u64),
    /// The `N`-th frame write on a wire link lands half its bytes, then
    /// drops the connection.
    NetPartialWrite(u64),
}

impl FaultAction {
    /// True for actions that target an operator (vs. a link).
    pub fn is_op_action(&self) -> bool {
        matches!(
            self,
            FaultAction::PanicAfter(_)
                | FaultAction::KillPe(_)
                | FaultAction::PoisonNan(_)
                | FaultAction::PoisonInf(_)
                | FaultAction::Stall { .. }
        )
    }
}

/// The persistence domain a storage fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageDomain {
    /// PE checkpoint blobs and manifests.
    PeCheckpoint,
    /// Backfill state-store entries.
    StateStore,
    /// The global disk-operation counter (crash faults).
    AnyOp,
    /// Every domain at once (`io-fsync-err`).
    All,
}

/// What a fault applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// A named operator (panic / poison / stall).
    Op(String),
    /// A named cross-PE link (drop / dup / delay).
    Link {
        /// Producing operator's name.
        from: String,
        /// Consuming operator's name.
        to: String,
    },
    /// The storage layer (`io-*` faults). Not resolved against the graph:
    /// storage faults apply to whatever persistence the run performs.
    Storage(StorageDomain),
    /// The socket transport (`net-*` faults). Not resolved against the
    /// graph: wire faults apply to every socket-backed cross-process link
    /// the run establishes.
    Wire,
}

/// One injected fault: an action bound to a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The operator or link the fault applies to.
    pub target: FaultTarget,
    /// What happens at the trigger point.
    pub action: FaultAction,
}

/// A reproducible set of injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, in spec order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses the comma-separated fault grammar (see module docs). Errors
    /// name the offending entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            faults.push(parse_entry(entry)?);
        }
        if faults.is_empty() {
            return Err(format!("fault spec '{spec}' contains no fault entries"));
        }
        Ok(FaultPlan { faults })
    }

    /// Rewrites every target name through `f` — used to map user-facing
    /// engine names (`engine1`) onto graph operator names (`pca-1`).
    pub fn rename_targets(mut self, f: impl Fn(&str) -> String) -> Self {
        for fault in &mut self.faults {
            match &mut fault.target {
                FaultTarget::Op(name) => *name = f(name),
                FaultTarget::Link { from, to } => {
                    *from = f(from);
                    *to = f(to);
                }
                // Storage domains and the wire are not operator names.
                FaultTarget::Storage(_) | FaultTarget::Wire => {}
            }
        }
        self
    }

    /// The op-targeted faults for operator `name`.
    pub fn op_faults(&self, name: &str) -> Vec<FaultAction> {
        self.faults
            .iter()
            .filter(|f| matches!(&f.target, FaultTarget::Op(n) if n == name))
            .map(|f| f.action.clone())
            .collect()
    }

    /// The link-targeted faults for the edge `from` → `to`.
    pub fn link_faults(&self, from: &str, to: &str) -> Vec<FaultAction> {
        self.faults
            .iter()
            .filter(
                |f| matches!(&f.target, FaultTarget::Link { from: a, to: b } if a == from && b == to),
            )
            .map(|f| f.action.clone())
            .collect()
    }

    /// Compiles the plan's storage faults into a VFS fault schedule, or
    /// `None` when the plan contains no `io-*` entries.
    pub fn io_spec(&self) -> Option<IoFaultSpec> {
        let mut spec = IoFaultSpec::default();
        let mut any = false;
        for fault in &self.faults {
            if !matches!(fault.target, FaultTarget::Storage(_)) {
                continue;
            }
            any = true;
            match fault.action {
                FaultAction::IoEnospc(n) => spec.enospc_pe.push(n),
                FaultAction::IoTorn(n) => spec.torn_pe.push(n),
                FaultAction::IoFsyncErr => spec.fsync_err = true,
                FaultAction::IoCorrupt(n) => spec.corrupt_store.push(n),
                FaultAction::IoCrash(k) => {
                    spec.crash_at_op = Some(match spec.crash_at_op {
                        Some(prev) => prev.min(k),
                        None => k,
                    })
                }
                _ => unreachable!("storage targets only carry io actions"),
            }
        }
        any.then_some(spec)
    }

    /// Compiles the plan's wire faults into a socket-shim fault schedule,
    /// or `None` when the plan contains no `net-*` entries.
    pub fn wire_spec(&self) -> Option<WireFaultSpec> {
        let mut spec = WireFaultSpec::default();
        let mut any = false;
        for fault in &self.faults {
            if fault.target != FaultTarget::Wire {
                continue;
            }
            any = true;
            match fault.action {
                FaultAction::NetDropConn(n) => spec.drop_conn.push(n),
                FaultAction::NetPartialWrite(n) => spec.partial_write.push(n),
                _ => unreachable!("wire targets only carry net actions"),
            }
        }
        any.then_some(spec)
    }
}

fn parse_entry(entry: &str) -> Result<Fault, String> {
    // `io-fsync-err` takes no target or argument — every fsync fails.
    if entry == "io-fsync-err" {
        return Ok(Fault {
            target: FaultTarget::Storage(StorageDomain::All),
            action: FaultAction::IoFsyncErr,
        });
    }
    let (kind, rest) = entry
        .split_once('@')
        .ok_or_else(|| format!("fault entry '{entry}': expected KIND@TARGET:ARGS"))?;
    let bad = |msg: &str| format!("fault entry '{entry}': {msg}");
    let parse_n = |s: &str, what: &str| -> Result<u64, String> {
        let n: u64 = s
            .parse()
            .map_err(|_| bad(&format!("{what} '{s}' is not a number")))?;
        if n == 0 {
            return Err(bad(&format!(
                "{what} must be ≥ 1 (tuple indices are 1-based)"
            )));
        }
        Ok(n)
    };
    let parse_ms = |s: &str| -> Result<u64, String> {
        s.parse()
            .map_err(|_| bad(&format!("duration '{s}' is not a number of milliseconds")))
    };

    let op_target = |t: &str| -> Result<FaultTarget, String> {
        if t.is_empty() {
            return Err(bad("empty operator name"));
        }
        if t.contains('>') {
            return Err(bad("operator fault cannot target a link (FROM>TO)"));
        }
        Ok(FaultTarget::Op(t.to_string()))
    };
    let link_target = |t: &str| -> Result<FaultTarget, String> {
        let (from, to) = t
            .split_once('>')
            .ok_or_else(|| bad("link fault needs a FROM>TO target"))?;
        if from.is_empty() || to.is_empty() {
            return Err(bad("link fault needs non-empty FROM and TO names"));
        }
        Ok(FaultTarget::Link {
            from: from.to_string(),
            to: to.to_string(),
        })
    };

    let parts: Vec<&str> = rest.split(':').collect();
    let (target, action) = match (kind, parts.as_slice()) {
        ("panic", [t, n]) => (
            op_target(t)?,
            FaultAction::PanicAfter(parse_n(n, "tuple index")?),
        ),
        ("kill-pe", [t, n]) => (
            op_target(t)?,
            FaultAction::KillPe(parse_n(n, "tuple index")?),
        ),
        ("poison-nan", [t, n]) => (
            op_target(t)?,
            FaultAction::PoisonNan(parse_n(n, "tuple index")?),
        ),
        ("poison-inf", [t, n]) => (
            op_target(t)?,
            FaultAction::PoisonInf(parse_n(n, "tuple index")?),
        ),
        ("stall", [t, n, ms]) => (
            op_target(t)?,
            FaultAction::Stall {
                at: parse_n(n, "tuple index")?,
                ms: parse_ms(ms)?,
            },
        ),
        ("drop", [t, n]) => (
            link_target(t)?,
            FaultAction::Drop(parse_n(n, "tuple index")?),
        ),
        ("dup", [t, n]) => (
            link_target(t)?,
            FaultAction::Duplicate(parse_n(n, "tuple index")?),
        ),
        ("delay", [t, n, ms]) => (
            link_target(t)?,
            FaultAction::Delay {
                at: parse_n(n, "tuple index")?,
                ms: parse_ms(ms)?,
            },
        ),
        ("io-enospc", ["pe", n]) => (
            FaultTarget::Storage(StorageDomain::PeCheckpoint),
            FaultAction::IoEnospc(parse_n(n, "write index")?),
        ),
        ("io-torn", ["pe", n]) => (
            FaultTarget::Storage(StorageDomain::PeCheckpoint),
            FaultAction::IoTorn(parse_n(n, "write index")?),
        ),
        ("io-corrupt", ["store", n]) => (
            FaultTarget::Storage(StorageDomain::StateStore),
            FaultAction::IoCorrupt(parse_n(n, "write index")?),
        ),
        ("io-crash", ["op", k]) => (
            FaultTarget::Storage(StorageDomain::AnyOp),
            FaultAction::IoCrash(parse_n(k, "operation index")?),
        ),
        ("net-drop-conn", ["link", n]) => (
            FaultTarget::Wire,
            FaultAction::NetDropConn(parse_n(n, "frame-write index")?),
        ),
        ("net-partial-write", ["link", n]) => (
            FaultTarget::Wire,
            FaultAction::NetPartialWrite(parse_n(n, "frame-write index")?),
        ),
        ("io-enospc" | "io-torn", _) => return Err(bad("expected KIND@pe:N")),
        ("io-corrupt", _) => return Err(bad("expected io-corrupt@store:N")),
        ("io-crash", _) => return Err(bad("expected io-crash@op:K")),
        ("net-drop-conn" | "net-partial-write", _) => return Err(bad("expected KIND@link:N")),
        ("io-fsync-err", _) => return Err(bad("io-fsync-err takes no target or argument")),
        ("panic" | "kill-pe" | "poison-nan" | "poison-inf" | "drop" | "dup", _) => {
            return Err(bad("expected KIND@TARGET:N"))
        }
        ("stall" | "delay", _) => return Err(bad("expected KIND@TARGET:N:MS")),
        (other, _) => {
            return Err(bad(&format!(
                "unknown fault kind '{other}' (expected panic, kill-pe, poison-nan, poison-inf, \
                 stall, drop, dup, delay, io-enospc, io-torn, io-fsync-err, io-corrupt, \
                 io-crash, net-drop-conn, or net-partial-write)"
            )))
        }
    };
    Ok(Fault { target, action })
}

/// Supervisor restart policy: how many times a panicking operator is
/// restarted, and with what capped exponential backoff between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Maximum restarts before the operator is finished (EOS propagates).
    pub max_restarts: u64,
    /// Backoff before restart attempt k is `base · 2^(k−1)`, capped below.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 8,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
        }
    }
}

impl RestartPolicy {
    /// The backoff sleep before restart attempt `attempt` (1-based).
    pub fn backoff(&self, attempt: u64) -> Duration {
        let shift = attempt.saturating_sub(1).min(32) as u32;
        let grown = self
            .backoff_base
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
        grown.min(self.backoff_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_fault_kind() {
        let plan = FaultPlan::parse(
            "panic@pca-1:5000, poison-nan@pca-0:17,poison-inf@pca-2:3, stall@pca-3:10:25, \
             drop@split>pca-1:7, dup@split>pca-2:9, delay@split>pca-0:11:5, kill-pe@pca-3:800",
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 8);
        assert_eq!(
            plan.faults[0],
            Fault {
                target: FaultTarget::Op("pca-1".into()),
                action: FaultAction::PanicAfter(5000),
            }
        );
        assert_eq!(plan.faults[3].action, FaultAction::Stall { at: 10, ms: 25 });
        assert_eq!(
            plan.faults[4],
            Fault {
                target: FaultTarget::Link {
                    from: "split".into(),
                    to: "pca-1".into(),
                },
                action: FaultAction::Drop(7),
            }
        );
        assert_eq!(plan.faults[6].action, FaultAction::Delay { at: 11, ms: 5 });
        assert_eq!(
            plan.faults[7],
            Fault {
                target: FaultTarget::Op("pca-3".into()),
                action: FaultAction::KillPe(800),
            }
        );
        assert!(FaultAction::KillPe(1).is_op_action());
    }

    #[test]
    fn parses_every_io_fault_kind_into_a_spec() {
        let plan = FaultPlan::parse(
            "io-enospc@pe:3,io-torn@pe:7, io-fsync-err ,io-corrupt@store:2,io-crash@op:11",
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 5);
        assert_eq!(
            plan.faults[0].target,
            FaultTarget::Storage(StorageDomain::PeCheckpoint)
        );
        assert_eq!(plan.faults[2].action, FaultAction::IoFsyncErr);
        assert!(!FaultAction::IoCrash(1).is_op_action());
        let spec = plan.io_spec().unwrap();
        assert_eq!(spec.enospc_pe, vec![3]);
        assert_eq!(spec.torn_pe, vec![7]);
        assert!(spec.fsync_err);
        assert_eq!(spec.corrupt_store, vec![2]);
        assert_eq!(spec.crash_at_op, Some(11));
    }

    #[test]
    fn parses_wire_faults_into_a_spec() {
        let plan = FaultPlan::parse("net-drop-conn@link:3, net-partial-write@link:7").unwrap();
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.faults[0].target, FaultTarget::Wire);
        assert_eq!(plan.faults[0].action, FaultAction::NetDropConn(3));
        assert!(!FaultAction::NetDropConn(1).is_op_action());
        let spec = plan.wire_spec().unwrap();
        assert_eq!(spec.drop_conn, vec![3]);
        assert_eq!(spec.partial_write, vec![7]);
        assert!(plan.io_spec().is_none());
        // Wire targets survive renames untouched.
        let renamed = plan.rename_targets(|n| format!("x-{n}"));
        assert_eq!(renamed.faults[0].target, FaultTarget::Wire);
    }

    #[test]
    fn wire_faults_reject_malformed_entries() {
        for bad in [
            "net-drop-conn@pe:1",     // wrong domain word
            "net-drop-conn@link:0",   // indices are 1-based
            "net-partial-write@link", // missing index
            "net-drop-conn@a>b:1",    // wire faults take the link domain, not a named edge
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} must be rejected");
        }
        assert!(FaultPlan::parse("panic@a:1").unwrap().wire_spec().is_none());
    }

    #[test]
    fn io_spec_is_none_without_storage_faults_and_takes_earliest_crash() {
        assert!(FaultPlan::parse("panic@a:1").unwrap().io_spec().is_none());
        let spec = FaultPlan::parse("io-crash@op:9,io-crash@op:4")
            .unwrap()
            .io_spec()
            .unwrap();
        assert_eq!(spec.crash_at_op, Some(4));
    }

    #[test]
    fn io_faults_mix_with_process_faults_and_survive_renames() {
        let plan = FaultPlan::parse("kill-pe@engine1:500,io-torn@pe:1")
            .unwrap()
            .rename_targets(|n| n.replace("engine", "pca-"));
        assert_eq!(plan.op_faults("pca-1"), vec![FaultAction::KillPe(500)]);
        assert_eq!(plan.io_spec().unwrap().torn_pe, vec![1]);
    }

    #[test]
    fn io_faults_reject_malformed_entries() {
        for bad in [
            "io-enospc@store:1", // wrong domain word
            "io-enospc@pe:0",    // indices are 1-based
            "io-torn@pe",        // missing index
            "io-corrupt@pe:1",   // corrupt is store-domain only
            "io-crash@pe:1",     // crash counts global ops
            "io-fsync-err@pe:1", // fsync-err takes no target
            "io-explode@pe:1",   // unknown kind
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn kill_pe_rejects_malformed_entries() {
        for bad in ["kill-pe@pca-1", "kill-pe@pca-1:0", "kill-pe@a>b:5"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn rejects_malformed_entries_naming_them() {
        for bad in [
            "panic@pca-1",      // missing tuple index
            "panic@pca-1:zero", // non-numeric index
            "panic@pca-1:0",    // indices are 1-based
            "panic@a>b:5",      // op fault on a link target
            "drop@pca-1:5",     // link fault without FROM>TO
            "drop@>pca-1:5",    // empty FROM
            "stall@pca-1:5",    // stall needs a duration
            "delay@a>b:5",      // delay needs a duration
            "explode@pca-1:5",  // unknown kind
            "panic",            // no target at all
            "",                 // no entries
            "   , ,",           // only empty entries
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            let probe = if bad.trim().trim_matches(',').trim().is_empty() {
                bad
            } else {
                bad.split(',').next().unwrap().trim()
            };
            assert!(
                err.contains(probe.trim()),
                "error for {bad:?} must name the entry, got: {err}"
            );
        }
    }

    #[test]
    fn rename_targets_rewrites_ops_and_links() {
        let plan = FaultPlan::parse("panic@engine1:5000,drop@split>engine2:3")
            .unwrap()
            .rename_targets(|n| n.replace("engine", "pca-"));
        assert_eq!(plan.op_faults("pca-1"), vec![FaultAction::PanicAfter(5000)]);
        assert_eq!(
            plan.link_faults("split", "pca-2"),
            vec![FaultAction::Drop(3)]
        );
        assert!(plan.op_faults("engine1").is_empty());
    }

    #[test]
    fn target_lookups_filter_by_name() {
        let plan = FaultPlan::parse("panic@a:1,panic@b:2,drop@a>b:3,dup@b>a:4").unwrap();
        assert_eq!(plan.op_faults("a"), vec![FaultAction::PanicAfter(1)]);
        assert_eq!(plan.op_faults("b"), vec![FaultAction::PanicAfter(2)]);
        assert_eq!(plan.link_faults("a", "b"), vec![FaultAction::Drop(3)]);
        assert_eq!(plan.link_faults("b", "a"), vec![FaultAction::Duplicate(4)]);
        assert!(plan.link_faults("a", "a").is_empty());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RestartPolicy {
            max_restarts: 8,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(10),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(1));
        assert_eq!(p.backoff(2), Duration::from_millis(2));
        assert_eq!(p.backoff(3), Duration::from_millis(4));
        assert_eq!(p.backoff(4), Duration::from_millis(8));
        assert_eq!(p.backoff(5), Duration::from_millis(10)); // capped
        assert_eq!(p.backoff(64), Duration::from_millis(10)); // no overflow
    }
}
