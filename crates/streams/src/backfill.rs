//! Partitioned backfill: a persistent state store plus a parallel
//! partition runner.
//!
//! The paper's merge step (eq. 15–16) makes the per-substream analytics
//! state *algebraically mergeable* — which is exactly the contract of an
//! incremental analyzer framework: shard a historical corpus by a
//! partition key, compute each partition's state independently, persist
//! it, and merge the persisted states without ever replaying history.
//! Adding a partition then costs O(partition), never O(history), and a
//! re-run over an unchanged corpus is pure cache hits.
//!
//! This module is the engine-agnostic half of that story:
//!
//! * [`Partition`] — a unit of backfill work: a stable id, a content hash
//!   of the partition's input bytes, and an opaque payload the caller's
//!   worker knows how to compute over;
//! * [`StateStore`] — a filesystem store of finished per-partition state
//!   blobs, keyed by partition id and invalidated by content hash. Writes
//!   go through the same fsync+atomic-rename plumbing as PE checkpoints
//!   ([`crate::checkpoint::write_atomic`]), so the store never serves a
//!   torn blob;
//! * [`run_partitions`] — a worker pool that drains the partition list,
//!   serving unchanged partitions from the store and dispatching the rest
//!   to per-worker compute closures.
//!
//! What a "state blob" means is up to the caller — the PCA application
//! stores serialized eigensystems and merges them with the core crate's
//! tree reduction, but nothing here knows that.

use crate::checkpoint::{quarantine_file, write_atomic_vfs};
use crate::vfs::{RealVfs, Vfs};
use parking_lot::Mutex;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One unit of backfill work.
///
/// `id` must be stable across runs (it keys the state store); `content_hash`
/// must change whenever the partition's input bytes change (it invalidates
/// the store); `payload` carries whatever the compute closure needs to
/// produce the partition's state.
#[derive(Debug, Clone)]
pub struct Partition<T> {
    /// Stable partition key (e.g. `"rows-00000-02500"` or a file name).
    pub id: String,
    /// Hash of the partition's raw input bytes (see [`content_hash`]).
    pub content_hash: u64,
    /// Caller-defined input handle for the compute closure.
    pub payload: T,
}

/// FNV-1a over the partition's input bytes — the store's invalidation key.
///
/// Not cryptographic, and deliberately so: the store defends against stale
/// results after an edit, not against an adversary forging collisions.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const STATE_MAGIC: &str = "spca-partition-state-v1";

/// A filesystem store of finished per-partition state blobs.
///
/// One file per partition id, written atomically; the file records the
/// content hash it was computed from — so [`StateStore::load`] returns a
/// hit only when the partition's current input still matches — and a
/// checksum of the payload itself, so bit-rot is detectable. A torn or
/// hand-edited file reads as a miss-with-error, never as plausible state;
/// the runner's [`StateStore::load_or_quarantine`] degrades that error to
/// quarantine-and-recompute.
#[derive(Debug)]
pub struct StateStore {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
}

impl StateStore {
    /// Opens (creating if needed) a state store rooted at `dir`, on the
    /// real filesystem.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with_vfs(dir, Arc::new(RealVfs))
    }

    /// Opens (creating if needed) a state store against an explicit
    /// [`Vfs`] backend — the fault-injection hook.
    pub fn open_with_vfs(dir: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(StateStore { dir, vfs })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path for a partition id.
    pub fn path_for(&self, id: &str) -> PathBuf {
        // Percent-encode anything that is not filename-safe so arbitrary
        // partition keys (paths, dates, plate ids) cannot escape the dir.
        let mut name = String::with_capacity(id.len());
        for b in id.bytes() {
            match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => {
                    name.push(b as char)
                }
                other => name.push_str(&format!("%{other:02x}")),
            }
        }
        self.dir.join(format!("{name}.state"))
    }

    /// Loads the stored state for `id`, if present **and** computed from
    /// input bytes hashing to `want_hash`. A hash mismatch (the partition's
    /// input changed since the state was computed) is `Ok(None)` — a miss
    /// that the runner resolves by recomputing and overwriting. A
    /// structurally invalid file is an `InvalidData` error.
    pub fn load(&self, id: &str, want_hash: u64) -> io::Result<Option<Vec<u8>>> {
        let path = self.path_for(id);
        let bytes = match self.vfs.read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        // Header: magic \n id <id> \n hash <hex> \n len <n> \n sum <hex> \n payload
        let header_end = find_header_end(&bytes)
            .ok_or_else(|| bad(format!("state file {path:?} has a truncated header")))?;
        let header = std::str::from_utf8(&bytes[..header_end])
            .map_err(|_| bad(format!("state file {path:?} header is not UTF-8")))?;
        let mut lines = header.lines();
        if lines.next() != Some(STATE_MAGIC) {
            return Err(bad(format!("state file {path:?} has a bad magic line")));
        }
        let id_line = lines
            .next()
            .and_then(|l| l.strip_prefix("id "))
            .ok_or_else(|| bad(format!("state file {path:?} is missing its id line")))?;
        if id_line != id {
            return Err(bad(format!(
                "state file {path:?} records id '{id_line}', expected '{id}'"
            )));
        }
        let hash_line = lines
            .next()
            .and_then(|l| l.strip_prefix("hash "))
            .ok_or_else(|| bad(format!("state file {path:?} is missing its hash line")))?;
        let got_hash = u64::from_str_radix(hash_line, 16)
            .map_err(|_| bad(format!("state file {path:?} has an unparsable hash")))?;
        let len_line = lines
            .next()
            .and_then(|l| l.strip_prefix("len "))
            .ok_or_else(|| bad(format!("state file {path:?} is missing its len line")))?;
        let len: usize = len_line
            .parse()
            .map_err(|_| bad(format!("state file {path:?} has an unparsable len")))?;
        let sum_line = lines
            .next()
            .and_then(|l| l.strip_prefix("sum "))
            .ok_or_else(|| bad(format!("state file {path:?} is missing its sum line")))?;
        let want_sum = u64::from_str_radix(sum_line, 16)
            .map_err(|_| bad(format!("state file {path:?} has an unparsable sum")))?;
        let payload = &bytes[header_end..];
        if payload.len() != len {
            return Err(bad(format!(
                "state file {path:?} payload is {} bytes, header says {len} — torn write",
                payload.len()
            )));
        }
        if content_hash(payload) != want_sum {
            return Err(bad(format!(
                "state file {path:?} payload fails its checksum — bit-rotted state"
            )));
        }
        if got_hash != want_hash {
            // The partition's input changed: stale state, recompute.
            return Ok(None);
        }
        Ok(Some(payload.to_vec()))
    }

    /// Degrading [`StateStore::load`]: a structurally invalid file (torn,
    /// bit-rotted, wrong id — anything `InvalidData`) is quarantined aside
    /// as `<file>.corrupt-N` and reported as a miss plus a `true` flag, so
    /// the runner recomputes the partition instead of aborting the whole
    /// backfill. Non-structural I/O errors (permissions, dead device)
    /// still propagate.
    pub fn load_or_quarantine(
        &self,
        id: &str,
        want_hash: u64,
    ) -> io::Result<(Option<Vec<u8>>, bool)> {
        match self.load(id, want_hash) {
            Ok(hit) => Ok((hit, false)),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                quarantine_file(self.vfs.as_ref(), &self.path_for(id));
                Ok((None, true))
            }
            Err(e) => Err(e),
        }
    }

    /// Atomically persists `state` for `id` as computed from input bytes
    /// hashing to `hash`. Overwrites any previous generation.
    pub fn store(&self, id: &str, hash: u64, state: &[u8]) -> io::Result<()> {
        let mut file = format!(
            "{STATE_MAGIC}\nid {id}\nhash {hash:016x}\nlen {}\nsum {:016x}\n",
            state.len(),
            content_hash(state)
        )
        .into_bytes();
        file.extend_from_slice(state);
        write_atomic_vfs(self.vfs.as_ref(), &self.path_for(id), &file)
    }
}

/// Byte offset just past the 5-line header, or `None` if the file has
/// fewer than 5 newlines.
fn find_header_end(bytes: &[u8]) -> Option<usize> {
    let mut newlines = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            newlines += 1;
            if newlines == 5 {
                return Some(i + 1);
            }
        }
    }
    None
}

/// How one partition's state was obtained by [`run_partitions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSource {
    /// Served from the state store (input unchanged since last computed).
    CacheHit,
    /// Computed by a worker this run (and persisted for the next one).
    Computed,
}

/// Aggregate statistics of one [`run_partitions`] call.
#[derive(Debug, Clone)]
pub struct BackfillStats {
    /// Total partitions processed.
    pub partitions: usize,
    /// Partitions served from the store without running the worker.
    pub cache_hits: usize,
    /// Partitions computed (missing, or invalidated by a content change).
    pub computed: usize,
    /// Damaged state files quarantined aside (each also counts in
    /// `computed`: the partition was recomputed from scratch).
    pub quarantined: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Per-partition provenance, in input order.
    pub sources: Vec<PartitionSource>,
}

type ResultSlot = Mutex<Option<io::Result<(Vec<u8>, PartitionSource)>>>;

/// Runs the backfill worker pool: every partition's state is either served
/// from `store` (id present, content hash unchanged) or computed by a
/// worker closure and persisted.
///
/// `workers` caps the pool (`0` means one worker per available core);
/// `make_worker(w)` builds worker `w`'s compute closure once, so a worker
/// can own reusable scratch (estimator workspaces) across the partitions
/// it drains. Partitions are claimed from a shared cursor — work-stealing
/// granularity is one partition — and results land in input order, so the
/// output does not depend on scheduling.
///
/// The first error (store I/O or worker failure) aborts the run: workers
/// finish their current partition and stop claiming new ones.
pub fn run_partitions<T, W>(
    partitions: &[Partition<T>],
    store: &StateStore,
    workers: usize,
    make_worker: impl Fn(usize) -> W + Sync,
) -> io::Result<(Vec<Vec<u8>>, BackfillStats)>
where
    T: Sync,
    W: FnMut(&Partition<T>) -> io::Result<Vec<u8>> + Send,
{
    let t0 = Instant::now();
    let pool = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
    .min(partitions.len())
    .max(1);

    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let quarantined = AtomicUsize::new(0);
    let mut slots: Vec<ResultSlot> = Vec::new();
    slots.resize_with(partitions.len(), || Mutex::new(None));

    std::thread::scope(|scope| {
        for w in 0..pool {
            let cursor = &cursor;
            let failed = &failed;
            let quarantined = &quarantined;
            let slots = &slots;
            let make_worker = &make_worker;
            scope.spawn(move || {
                let mut job = make_worker(w);
                loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(part) = partitions.get(i) else {
                        break;
                    };
                    let result = process_one(part, store, &mut job, quarantined);
                    if result.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    *slots[i].lock() = Some(result);
                }
            });
        }
    });

    let mut states = Vec::with_capacity(partitions.len());
    let mut sources = Vec::with_capacity(partitions.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner() {
            Some(Ok((bytes, src))) => {
                states.push(bytes);
                sources.push(src);
            }
            Some(Err(e)) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("partition '{}': {e}", partitions[i].id),
                ))
            }
            // A worker saw the failure flag and stopped before claiming i.
            None => {
                return Err(io::Error::other(format!(
                    "partition '{}' was abandoned after an earlier failure",
                    partitions[i].id
                )))
            }
        }
    }
    let stats = BackfillStats {
        partitions: partitions.len(),
        cache_hits: sources
            .iter()
            .filter(|s| **s == PartitionSource::CacheHit)
            .count(),
        computed: sources
            .iter()
            .filter(|s| **s == PartitionSource::Computed)
            .count(),
        quarantined: quarantined.into_inner(),
        workers: pool,
        wall: t0.elapsed(),
        sources,
    };
    Ok((states, stats))
}

fn process_one<T>(
    part: &Partition<T>,
    store: &StateStore,
    job: &mut impl FnMut(&Partition<T>) -> io::Result<Vec<u8>>,
    quarantined: &AtomicUsize,
) -> io::Result<(Vec<u8>, PartitionSource)> {
    let (hit, was_quarantined) = store.load_or_quarantine(&part.id, part.content_hash)?;
    if was_quarantined {
        quarantined.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(bytes) = hit {
        return Ok((bytes, PartitionSource::CacheHit));
    }
    let bytes = job(part)?;
    store.store(&part.id, part.content_hash, &bytes)?;
    Ok((bytes, PartitionSource::Computed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn temp_store() -> (PathBuf, StateStore) {
        let d = std::env::temp_dir().join(format!(
            "spca-backfill-test-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let store = StateStore::open(&d).unwrap();
        (d, store)
    }

    fn parts(n: usize) -> Vec<Partition<Vec<u8>>> {
        (0..n)
            .map(|i| {
                let payload = vec![i as u8; 8];
                Partition {
                    id: format!("part-{i}"),
                    content_hash: content_hash(&payload),
                    payload,
                }
            })
            .collect()
    }

    #[test]
    fn store_round_trips_and_validates_hash() {
        let (dir, store) = temp_store();
        store.store("a", 0xdead, b"state-bytes").unwrap();
        assert_eq!(
            store.load("a", 0xdead).unwrap().as_deref(),
            Some(&b"state-bytes"[..])
        );
        // Content change → miss, not error.
        assert!(store.load("a", 0xbeef).unwrap().is_none());
        // Unknown id → miss.
        assert!(store.load("zzz", 0).unwrap().is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_state_file_is_invalid_data_never_a_hit() {
        let (dir, store) = temp_store();
        store.store("a", 1, b"0123456789").unwrap();
        let path = store.path_for("a");
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let got = store.load("a", 1);
            match got {
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData, "cut at {cut}"),
                Ok(hit) => assert!(hit.is_none(), "cut at {cut} served a torn payload"),
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bit_rotted_payload_is_invalid_data() {
        let (dir, store) = temp_store();
        store.store("a", 1, b"0123456789").unwrap();
        let path = store.path_for("a");
        let mut full = std::fs::read(&path).unwrap();
        // Same length, one payload byte flipped: only the checksum sees it.
        let last = full.len() - 1;
        full[last] ^= 0x01;
        std::fs::write(&path, &full).unwrap();
        let err = store.load("a", 1).expect_err("bit-rot must not be a hit");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_or_quarantine_moves_the_damage_aside() {
        let (dir, store) = temp_store();
        store.store("a", 1, b"0123456789").unwrap();
        let path = store.path_for("a");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let (hit, quarantined) = store.load_or_quarantine("a", 1).unwrap();
        assert!(hit.is_none() && quarantined);
        assert!(!path.exists(), "damaged file must be moved aside");
        let mut evidence = path.as_os_str().to_owned();
        evidence.push(".corrupt-1");
        assert!(PathBuf::from(evidence).exists(), "evidence preserved");
        // A clean store after the quarantine works again.
        store.store("a", 1, b"fresh").unwrap();
        let (hit, quarantined) = store.load_or_quarantine("a", 1).unwrap();
        assert_eq!(hit.as_deref(), Some(&b"fresh"[..]));
        assert!(!quarantined);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_state_file_recomputes_that_partition_instead_of_aborting() {
        let (dir, store) = temp_store();
        let partitions = parts(4);
        let compute =
            |_w: usize| |p: &Partition<Vec<u8>>| -> io::Result<Vec<u8>> { Ok(p.payload.clone()) };
        let (cold, _) = run_partitions(&partitions, &store, 2, compute).unwrap();
        // Tear partition 2's state file.
        let path = store.path_for("part-2");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (warm, stats) = run_partitions(&partitions, &store, 2, compute).unwrap();
        assert_eq!(warm, cold, "recomputed bytes must match");
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.computed, 1, "only the torn partition recomputes");
        assert_eq!(stats.cache_hits, 3);
        // The rewritten file serves clean on the next run.
        let (_, stats3) = run_partitions(&partitions, &store, 2, compute).unwrap();
        assert_eq!(stats3.cache_hits, 4);
        assert_eq!(stats3.quarantined, 0);
        std::fs::remove_dir_all(dir).ok();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// A stored state file truncated at *any* byte offset must read as
        /// a clean `InvalidData` error or a miss — never a panic, never a
        /// plausible-but-wrong payload.
        #[test]
        fn truncation_at_any_byte_offset_never_serves_state(frac in 0.0f64..1.0) {
            let (dir, store) = temp_store();
            store.store("p", 42, b"payload-bytes-here").unwrap();
            let path = store.path_for("p");
            let full = std::fs::read(&path).unwrap();
            let cut = ((full.len() as f64) * frac) as usize;
            std::fs::write(&path, &full[..cut.min(full.len() - 1)]).unwrap();
            match store.load("p", 42) {
                Err(e) => proptest::prop_assert_eq!(e.kind(), io::ErrorKind::InvalidData),
                Ok(hit) => proptest::prop_assert!(hit.is_none()),
            }
            std::fs::remove_dir_all(dir).ok();
        }

        /// A single flipped byte at *any* offset must read as `InvalidData`
        /// or a miss — the payload checksum catches what the length cannot.
        #[test]
        fn corruption_at_any_byte_offset_never_serves_state(frac in 0.0f64..1.0) {
            let (dir, store) = temp_store();
            store.store("p", 42, b"payload-bytes-here").unwrap();
            let path = store.path_for("p");
            let mut full = std::fs::read(&path).unwrap();
            // Flip the low bit: unlike e.g. 0x20 (which only changes a hex
            // digit's case, still parsing to the same value), this always
            // changes what the byte means.
            let at = (((full.len() as f64) * frac) as usize).min(full.len() - 1);
            full[at] ^= 0x01;
            std::fs::write(&path, &full).unwrap();
            match store.load("p", 42) {
                Err(e) => proptest::prop_assert_eq!(e.kind(), io::ErrorKind::InvalidData),
                Ok(hit) => proptest::prop_assert!(hit.is_none()),
            }
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn ids_with_path_characters_stay_inside_the_store() {
        let (dir, store) = temp_store();
        let id = "../escape/attempt";
        store.store(id, 7, b"x").unwrap();
        assert_eq!(store.load(id, 7).unwrap().as_deref(), Some(&b"x"[..]));
        let path = store.path_for(id);
        assert!(
            path.starts_with(store.dir()),
            "encoded path {path:?} escaped the store"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn cold_run_computes_everything_then_warm_run_hits() {
        let (dir, store) = temp_store();
        let partitions = parts(5);
        let compute = |_w: usize| {
            |p: &Partition<Vec<u8>>| -> io::Result<Vec<u8>> {
                Ok(p.payload.iter().map(|b| b ^ 0xff).collect())
            }
        };
        let (cold, stats) = run_partitions(&partitions, &store, 2, compute).unwrap();
        assert_eq!(stats.computed, 5);
        assert_eq!(stats.cache_hits, 0);
        let (warm, stats2) = run_partitions(&partitions, &store, 2, compute).unwrap();
        assert_eq!(stats2.computed, 0);
        assert_eq!(stats2.cache_hits, 5);
        assert_eq!(cold, warm, "warm bytes must be bit-identical");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn adding_one_partition_recomputes_exactly_one() {
        let (dir, store) = temp_store();
        let partitions = parts(4);
        let calls = AtomicUsize::new(0);
        let compute = |_w: usize| {
            |p: &Partition<Vec<u8>>| -> io::Result<Vec<u8>> {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(p.payload.clone())
            }
        };
        run_partitions(&partitions, &store, 2, compute).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        let grown = parts(5);
        let (_, stats) = run_partitions(&grown, &store, 2, compute).unwrap();
        assert_eq!(
            calls.load(Ordering::Relaxed),
            5,
            "only the new partition runs"
        );
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.cache_hits, 4);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn content_change_invalidates_exactly_that_partition() {
        let (dir, store) = temp_store();
        let mut partitions = parts(4);
        let compute =
            |_w: usize| |p: &Partition<Vec<u8>>| -> io::Result<Vec<u8>> { Ok(p.payload.clone()) };
        run_partitions(&partitions, &store, 1, compute).unwrap();
        partitions[2].payload[0] ^= 1;
        partitions[2].content_hash = content_hash(&partitions[2].payload);
        let (states, stats) = run_partitions(&partitions, &store, 1, compute).unwrap();
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(states[2], partitions[2].payload);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn worker_error_aborts_with_partition_context() {
        let (dir, store) = temp_store();
        let partitions = parts(3);
        let compute = |_w: usize| {
            |p: &Partition<Vec<u8>>| -> io::Result<Vec<u8>> {
                if p.id == "part-1" {
                    Err(io::Error::other("boom"))
                } else {
                    Ok(p.payload.clone())
                }
            }
        };
        let err = run_partitions(&partitions, &store, 1, compute).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("part-1"),
            "error must name the partition: {msg}"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn results_land_in_input_order_regardless_of_workers() {
        let (dir, store) = temp_store();
        let partitions = parts(9);
        let compute = |_w: usize| {
            |p: &Partition<Vec<u8>>| -> io::Result<Vec<u8>> { Ok(p.id.clone().into_bytes()) }
        };
        let (states, stats) = run_partitions(&partitions, &store, 4, compute).unwrap();
        assert!(stats.workers >= 1);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(s, format!("part-{i}").as_bytes());
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
    }
}
