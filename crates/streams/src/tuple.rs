//! The tuple model.
//!
//! "The data is a stream of structured blocks – tuples, having the data
//! structure specified by the application." Our data tuples carry a
//! constant-length `f64` vector (the paper's observation type) plus an
//! optional mask for gappy observations; control tuples carry an opaque
//! payload so applications can ship their own state (the PCA application
//! sends whole eigensystems through them); punctuation marks end-of-stream.

use parking_lot::Mutex;
use std::any::Any;
use std::sync::Arc;

/// A data observation: sequence number, logical timestamp, values, and an
/// optional observed-bin mask. Values are shared via `Arc`, so intra-PE
/// hand-off is pointer-sized — the engine-level analogue of InfoSphere
/// "sending the tuple memory address" between fused operators.
#[derive(Debug, Clone)]
pub struct DataTuple {
    /// Monotone per-source sequence number.
    pub seq: u64,
    /// Logical timestamp (nanoseconds since stream start).
    pub timestamp_ns: u64,
    /// Observation vector.
    pub values: Arc<Vec<f64>>,
    /// Observed-bin mask (`None` = complete observation).
    pub mask: Option<Arc<Vec<bool>>>,
}

impl DataTuple {
    /// A complete observation with the given sequence number.
    pub fn new(seq: u64, values: Vec<f64>) -> Self {
        DataTuple {
            seq,
            timestamp_ns: 0,
            values: Arc::new(values),
            mask: None,
        }
    }

    /// A gappy observation.
    pub fn masked(seq: u64, values: Vec<f64>, mask: Vec<bool>) -> Self {
        DataTuple {
            seq,
            timestamp_ns: 0,
            values: Arc::new(values),
            mask: Some(Arc::new(mask)),
        }
    }

    /// True when every value is finite (no NaN/Inf anywhere in the
    /// observation). Operators use this as the quarantine boundary check.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// A copy of this tuple with every value replaced by `fill` — used by
    /// deterministic poison-tuple fault injection.
    pub fn poisoned(&self, fill: f64) -> Self {
        DataTuple {
            seq: self.seq,
            timestamp_ns: self.timestamp_ns,
            values: Arc::new(vec![fill; self.values.len()]),
            mask: self.mask.clone(),
        }
    }

    /// Approximate serialized size in bytes (used by link-traffic metrics
    /// and the cluster simulator's bandwidth model).
    pub fn wire_bytes(&self) -> u64 {
        let header = 16u64;
        let values = (self.values.len() * 8) as u64;
        let mask = self.mask.as_ref().map_or(0, |m| m.len() as u64);
        header + values + mask
    }
}

/// A control-port message (synchronization signals, shared state, ...).
#[derive(Clone)]
pub struct ControlTuple {
    /// Application-defined discriminator.
    pub kind: u32,
    /// Originating operator (application-level id, e.g. PCA engine index).
    pub sender: u32,
    /// Opaque payload.
    pub payload: Arc<dyn Any + Send + Sync>,
}

impl std::fmt::Debug for ControlTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ControlTuple {{ kind: {}, sender: {} }}",
            self.kind, self.sender
        )
    }
}

impl ControlTuple {
    /// A control tuple with an arbitrary payload.
    pub fn new(kind: u32, sender: u32, payload: Arc<dyn Any + Send + Sync>) -> Self {
        ControlTuple {
            kind,
            sender,
            payload,
        }
    }

    /// A payload-free signal.
    pub fn signal(kind: u32, sender: u32) -> Self {
        ControlTuple {
            kind,
            sender,
            payload: Arc::new(()),
        }
    }

    /// Attempts to view the payload as `T`.
    pub fn payload_as<T: 'static>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

/// Stream punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punctuation {
    /// No more tuples will arrive on this edge.
    EndOfStream,
}

/// Anything that can flow along an edge.
#[derive(Debug, Clone)]
pub enum Tuple {
    /// A data observation.
    Data(DataTuple),
    /// A control message.
    Control(ControlTuple),
    /// Punctuation.
    Punct(Punctuation),
}

impl Tuple {
    /// Wire size estimate for traffic accounting.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Tuple::Data(d) => d.wire_bytes(),
            // Control tuples are small unless they carry state; the engine
            // that puts an eigensystem in one accounts for it separately.
            Tuple::Control(_) => 64,
            Tuple::Punct(_) => 8,
        }
    }

    /// True for end-of-stream punctuation.
    pub fn is_eos(&self) -> bool {
        matches!(self, Tuple::Punct(Punctuation::EndOfStream))
    }
}

/// A batch of tuples travelling a cross-PE edge as one channel message.
///
/// Cross-PE channels carry frames instead of individual tuples so one
/// condvar wake-up amortizes over a whole batch (§III-D: network tuple
/// transfer, not flop count, dominates the unfused throughput story). The
/// backing `Vec` is recycled through a [`FramePool`] shared by the two ends
/// of the edge, so steady-state transport does not allocate.
#[derive(Debug, Default)]
pub struct Frame {
    /// The batched tuples, in emission order.
    pub tuples: Vec<Tuple>,
}

impl Frame {
    /// Wraps an already-filled batch.
    pub fn from_vec(tuples: Vec<Tuple>) -> Self {
        Frame { tuples }
    }

    /// Number of tuples in the frame.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the frame carries no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Total wire size of the batched tuples (frame framing itself is
    /// considered free — the accounting unit stays the tuple).
    pub fn wire_bytes(&self) -> u64 {
        self.tuples.iter().map(Tuple::wire_bytes).sum()
    }
}

/// A bounded recycle bin for frame buffers.
///
/// The sender takes an empty buffer when it starts a new batch; the
/// receiver puts the drained buffer back after routing a frame. Bounded so
/// a burst can never pin unbounded memory: overflow buffers are simply
/// dropped.
#[derive(Debug)]
pub struct FramePool {
    free: Mutex<Vec<Vec<Tuple>>>,
    max_pooled: usize,
}

impl FramePool {
    /// A pool retaining at most `max_pooled` spare buffers.
    pub fn new(max_pooled: usize) -> Self {
        FramePool {
            free: Mutex::new(Vec::with_capacity(max_pooled)),
            max_pooled,
        }
    }

    /// An empty buffer with at least `cap` capacity (recycled when one is
    /// available, freshly allocated otherwise).
    pub fn take(&self, cap: usize) -> Vec<Tuple> {
        let mut v = self
            .free
            .lock()
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(cap));
        if v.capacity() < cap {
            v.reserve(cap - v.len());
        }
        v
    }

    /// Returns a drained buffer to the pool (dropped if the pool is full).
    pub fn put(&self, mut v: Vec<Tuple>) {
        v.clear();
        let mut free = self.free.lock();
        if free.len() < self.max_pooled {
            free.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_scale_with_dimension() {
        let t = DataTuple::new(0, vec![0.0; 250]);
        assert_eq!(t.wire_bytes(), 16 + 2000);
        let m = DataTuple::masked(0, vec![0.0; 250], vec![true; 250]);
        assert_eq!(m.wire_bytes(), 16 + 2000 + 250);
    }

    #[test]
    fn control_payload_downcasts() {
        let c = ControlTuple::new(7, 3, Arc::new(vec![1.0f64, 2.0]));
        assert_eq!(c.payload_as::<Vec<f64>>().unwrap()[1], 2.0);
        assert!(c.payload_as::<String>().is_none());
        assert_eq!(c.kind, 7);
        assert_eq!(c.sender, 3);
    }

    #[test]
    fn eos_detection() {
        assert!(Tuple::Punct(Punctuation::EndOfStream).is_eos());
        assert!(!Tuple::Data(DataTuple::new(0, vec![])).is_eos());
    }

    #[test]
    fn finiteness_check_and_poisoning() {
        let t = DataTuple::new(3, vec![1.0, 2.0]);
        assert!(t.all_finite());
        assert!(!DataTuple::new(0, vec![1.0, f64::NAN]).all_finite());
        assert!(!DataTuple::new(0, vec![f64::INFINITY]).all_finite());
        let p = t.poisoned(f64::NAN);
        assert_eq!(p.seq, 3);
        assert_eq!(p.values.len(), 2);
        assert!(!p.all_finite());
        assert!(t.all_finite(), "poisoning copies, never mutates");
    }

    #[test]
    fn data_sharing_is_pointer_cheap() {
        let t = DataTuple::new(0, vec![1.0; 1000]);
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.values, &u.values));
    }

    #[test]
    fn frame_accounts_per_tuple_bytes() {
        let f = Frame::from_vec(vec![
            Tuple::Data(DataTuple::new(0, vec![0.0])),
            Tuple::Punct(Punctuation::EndOfStream),
        ]);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        assert_eq!(f.wire_bytes(), 24 + 8);
        assert!(Frame::default().is_empty());
    }

    #[test]
    fn frame_pool_recycles_buffers() {
        let pool = FramePool::new(2);
        let mut a = pool.take(8);
        assert!(a.capacity() >= 8);
        a.push(Tuple::Punct(Punctuation::EndOfStream));
        pool.put(a);
        let b = pool.take(4);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        // Overflow beyond max_pooled is silently dropped.
        pool.put(Vec::new());
        pool.put(Vec::new());
        pool.put(Vec::new());
        assert!(pool.free.lock().len() <= 2);
    }
}
