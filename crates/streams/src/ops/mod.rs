//! The standard operator library.
//!
//! Mirrors the InfoSphere toolbox pieces the paper's application uses:
//! generator / file / piped data sources (§III-A1), the multithreaded
//! load-balancing split (§III-A2), the `Throttle` pacing operator (§III-B),
//! functor (map/filter) utilities, and sinks (callback, collector, CSV
//! file with periodic snapshots).

pub mod functor;
pub mod http;
pub mod http_server;
pub mod net;
pub mod sink;
pub mod source;
pub mod split;
pub mod throttle;

pub use functor::{Filter, Map};
pub use http::HttpSource;
pub use http_server::{
    ConnHandler, HttpServer, RateLimitConfig, Request, ResponseBuf, ServerConfig, ServerStats,
};
pub use net::{TcpSink, TcpSource};
pub use sink::{CallbackSink, CollectSink, CsvFileSink, NullSink};
pub use source::{CsvFileSource, FollowFileSource, GeneratorSource};
pub use split::{Split, SplitStrategy};
pub use throttle::Throttle;
