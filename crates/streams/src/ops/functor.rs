//! Functor operators: map and filter over data tuples.
//!
//! The SPL-toolbox equivalents used for pre-processing stages (the PCA
//! application normalizes every spectrum before analysis with a `Map`).

use crate::operator::{OpContext, Operator};
use crate::tuple::DataTuple;

/// Applies a function to every data tuple and forwards the result.
pub struct Map<F> {
    f: F,
}

impl<F: FnMut(DataTuple) -> DataTuple + Send> Map<F> {
    /// A mapping operator.
    pub fn new(f: F) -> Self {
        Map { f }
    }
}

impl<F: FnMut(DataTuple) -> DataTuple + Send> Operator for Map<F> {
    fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
        let out = (self.f)(t);
        ctx.emit_data(0, out);
    }
}

/// Forwards only tuples satisfying the predicate.
pub struct Filter<F> {
    pred: F,
    /// Tuples dropped so far.
    pub dropped: u64,
}

impl<F: FnMut(&DataTuple) -> bool + Send> Filter<F> {
    /// A filtering operator.
    pub fn new(pred: F) -> Self {
        Filter { pred, dropped: 0 }
    }
}

impl<F: FnMut(&DataTuple) -> bool + Send> Operator for Filter<F> {
    fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
        if (self.pred)(&t) {
            ctx.emit_data(0, t);
        } else {
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testing::with_ctx;

    #[test]
    fn map_transforms_values() {
        let mut m = Map::new(|t: DataTuple| {
            DataTuple::new(t.seq, t.values.iter().map(|v| v + 1.0).collect())
        });
        let sink = with_ctx(1, |ctx| {
            m.process(DataTuple::new(0, vec![1.0, 2.0]), ctx);
        });
        assert_eq!(*sink.data_at(0)[0].values, vec![2.0, 3.0]);
    }

    #[test]
    fn filter_drops_and_counts() {
        let mut f = Filter::new(|t: &DataTuple| t.seq.is_multiple_of(2));
        let sink = with_ctx(1, |ctx| {
            for seq in 0..10 {
                f.process(DataTuple::new(seq, vec![]), ctx);
            }
        });
        assert_eq!(sink.data_at(0).len(), 5);
        assert_eq!(f.dropped, 5);
    }
}
