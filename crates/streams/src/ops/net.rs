//! Network tuple transport: TCP source and sink operators.
//!
//! §III-A1: "Network TCP sockets and http URLs are also supported out of
//! the box as a source of data." These operators speak a newline-delimited
//! CSV wire format (one observation per line, `nan` for missing bins —
//! the same format as the file source/sink), so a `TcpSink` on one process
//! feeds a `TcpSource` on another, and anything that can open a socket
//! (including `nc`) can feed the pipeline.

use crate::checkpoint::{decode_kv, encode_kv, kv_u64, Checkpoint};
use crate::operator::{OpContext, Operator, SourceState};
use crate::tuple::DataTuple;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Streams observations from a TCP connection.
///
/// In `listen` mode it binds and accepts exactly one peer; in `connect`
/// mode it dials out. Lines are parsed exactly like [`super::CsvFileSource`].
pub struct TcpSource {
    mode: Mode,
    reader: Option<BufReader<TcpStream>>,
    line: String,
    seq: u64,
    /// Observations delivered so far.
    pub delivered: u64,
}

enum Mode {
    Listen(Option<TcpListener>),
    Connect(SocketAddr),
    Failed,
}

impl TcpSource {
    /// Binds `addr` and waits for one producer to connect. Binding happens
    /// immediately so the caller can learn the ephemeral port via
    /// [`TcpSource::local_addr`] before the engine starts.
    pub fn listen(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(TcpSource {
            mode: Mode::Listen(Some(listener)),
            reader: None,
            line: String::new(),
            seq: 0,
            delivered: 0,
        })
    }

    /// Connects to a remote producer at drive time.
    pub fn connect(addr: SocketAddr) -> Self {
        TcpSource {
            mode: Mode::Connect(addr),
            reader: None,
            line: String::new(),
            seq: 0,
            delivered: 0,
        }
    }

    /// The bound address in listen mode.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.mode {
            Mode::Listen(Some(l)) => l.local_addr().ok(),
            _ => None,
        }
    }

    fn ensure_connected(&mut self) -> bool {
        if self.reader.is_some() {
            return true;
        }
        let stream = match &mut self.mode {
            Mode::Listen(slot) => match slot.take() {
                Some(listener) => listener.accept().map(|(s, _)| s),
                None => return false,
            },
            Mode::Connect(addr) => TcpStream::connect_timeout(addr, Duration::from_secs(5)),
            Mode::Failed => return false,
        };
        match stream {
            Ok(s) => {
                // Bounded read timeout keeps the PE responsive to stop
                // requests even on a silent peer.
                let _ = s.set_read_timeout(Some(Duration::from_millis(100)));
                self.reader = Some(BufReader::new(s));
                true
            }
            Err(e) => {
                eprintln!("TcpSource: connection failed: {e}");
                self.mode = Mode::Failed;
                false
            }
        }
    }
}

impl Operator for TcpSource {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}

    fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
        if ctx.stop_requested() {
            return SourceState::Done;
        }
        if !self.ensure_connected() {
            return SourceState::Done;
        }
        let reader = self.reader.as_mut().expect("connected above");
        self.line.clear();
        match reader.read_line(&mut self.line) {
            Ok(0) => SourceState::Done, // peer closed
            Ok(_) => {
                let trimmed = self.line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    return SourceState::Idle;
                }
                let mut values = Vec::new();
                let mut mask = Vec::new();
                let mut any_missing = false;
                for field in trimmed.split(',') {
                    match field.trim().parse::<f64>() {
                        Ok(v) if v.is_finite() => {
                            values.push(v);
                            mask.push(true);
                        }
                        _ => {
                            values.push(0.0);
                            mask.push(false);
                            any_missing = true;
                        }
                    }
                }
                let t = if any_missing {
                    DataTuple::masked(self.seq, values, mask)
                } else {
                    DataTuple::new(self.seq, values)
                };
                self.seq += 1;
                self.delivered += 1;
                ctx.emit_data(0, t);
                SourceState::Emitted
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Read timeout: nothing available, stay alive.
                SourceState::Idle
            }
            Err(e) => {
                eprintln!("TcpSource: read error: {e}");
                SourceState::Done
            }
        }
    }

    fn checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

/// A TCP feed is live — the wire position cannot rewind, so the checkpoint
/// carries only the sequence cursor. A restore keeps the open connection
/// (the common case: the instance survived a PE restart in memory) and
/// resumes numbering where the snapshot left off; observations the peer sent
/// while the PE was down were already absorbed by kernel buffering or are
/// simply the stream's present, as with any live telescope feed.
impl Checkpoint for TcpSource {
    fn snapshot(&self) -> Vec<u8> {
        encode_kv(&[
            ("seq", self.seq.to_string()),
            ("delivered", self.delivered.to_string()),
        ])
    }

    fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let kv = decode_kv(bytes)?;
        self.seq = kv_u64(&kv, "seq")?;
        self.delivered = kv_u64(&kv, "delivered")?;
        Ok(())
    }
}

/// Writes data tuples to a TCP peer in the newline-CSV wire format.
pub struct TcpSink {
    addr: SocketAddr,
    writer: Option<BufWriter<TcpStream>>,
    failed: bool,
    /// Tuples written so far.
    pub written: u64,
}

impl TcpSink {
    /// A sink dialing `addr` on the first tuple.
    pub fn connect(addr: SocketAddr) -> Self {
        TcpSink {
            addr,
            writer: None,
            failed: false,
            written: 0,
        }
    }

    fn ensure_connected(&mut self) -> bool {
        if self.writer.is_some() {
            return true;
        }
        if self.failed {
            return false;
        }
        match TcpStream::connect_timeout(&self.addr, Duration::from_secs(5)) {
            Ok(s) => {
                self.writer = Some(BufWriter::new(s));
                true
            }
            Err(e) => {
                eprintln!("TcpSink: connection to {} failed: {e}", self.addr);
                self.failed = true;
                false
            }
        }
    }
}

impl Operator for TcpSink {
    fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
        if !self.ensure_connected() {
            return;
        }
        let w = self.writer.as_mut().expect("connected above");
        let mut first = true;
        for (i, v) in t.values.iter().enumerate() {
            if !first {
                let _ = write!(w, ",");
            }
            first = false;
            let missing = t.mask.as_ref().is_some_and(|m| !m[i]);
            if missing {
                let _ = write!(w, "nan");
            } else {
                let _ = write!(w, "{v}");
            }
        }
        let _ = writeln!(w);
        self.written += 1;
    }

    fn on_finish(&mut self, _ctx: &mut OpContext<'_>) {
        if let Some(w) = self.writer.as_mut() {
            let _ = w.flush();
        }
        // Dropping the writer closes the socket, signalling EOF.
        self.writer = None;
    }

    fn checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

/// Counterpart of [`TcpSource`]'s checkpoint: the written-tuple counter only.
/// A restore flushes and keeps the live connection if one is open, and
/// clears the failure latch so a sink that lost its peer in the crash that
/// triggered the restart redials on the next tuple.
impl Checkpoint for TcpSink {
    fn snapshot(&self) -> Vec<u8> {
        encode_kv(&[("written", self.written.to_string())])
    }

    fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let kv = decode_kv(bytes)?;
        self.written = kv_u64(&kv, "written")?;
        if let Some(w) = self.writer.as_mut() {
            let _ = w.flush();
        }
        self.failed = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::graph::{GraphBuilder, PortKind};
    use crate::ops::{CollectSink, GeneratorSource};

    #[test]
    fn tcp_pipe_between_two_graphs() {
        // Producer graph: generator → TcpSink; consumer: TcpSource → collect.
        let source = TcpSource::listen("127.0.0.1:0").expect("bind");
        let addr = source.local_addr().expect("bound");

        let mut consumer = GraphBuilder::new();
        let src = consumer.add_source("tcp-in", Box::new(source));
        let (collect, store) = CollectSink::new();
        let sink = consumer.add_op("collect", Box::new(collect));
        consumer.connect(src, 0, sink, PortKind::Data);
        let consumer_running = Engine::start(consumer);

        let mut producer = GraphBuilder::new();
        let gen = producer.add_source(
            "gen",
            Box::new(
                GeneratorSource::new(|seq| Some((vec![seq as f64, 2.0 * seq as f64], None)))
                    .with_max_tuples(50),
            ),
        );
        let out = producer.add_op("tcp-out", Box::new(TcpSink::connect(addr)));
        producer.connect(gen, 0, out, PortKind::Data);
        Engine::run(producer);

        let report = consumer_running.join();
        assert_eq!(report.op("collect").unwrap().tuples_in, 50);
        let got = store.lock();
        assert_eq!(got.len(), 50);
        assert_eq!(*got[49].values, vec![49.0, 98.0]);
    }

    #[test]
    fn tcp_wire_format_round_trips_masks() {
        let source = TcpSource::listen("127.0.0.1:0").expect("bind");
        let addr = source.local_addr().expect("bound");

        let mut consumer = GraphBuilder::new();
        let src = consumer.add_source("tcp-in", Box::new(source));
        let (collect, store) = CollectSink::new();
        let sink = consumer.add_op("collect", Box::new(collect));
        consumer.connect(src, 0, sink, PortKind::Data);
        let running = Engine::start(consumer);

        let mut producer = GraphBuilder::new();
        let gen = producer.add_source(
            "gen",
            Box::new(
                GeneratorSource::new(|seq| Some((vec![seq as f64, 7.0], Some(vec![true, false]))))
                    .with_max_tuples(3),
            ),
        );
        let out = producer.add_op("tcp-out", Box::new(TcpSink::connect(addr)));
        producer.connect(gen, 0, out, PortKind::Data);
        Engine::run(producer);

        running.join();
        let got = store.lock();
        assert_eq!(got.len(), 3);
        let m = got[0].mask.as_ref().expect("mask survived the wire");
        assert_eq!(m.as_slice(), &[true, false]);
        assert_eq!(got[1].values[0], 1.0);
    }

    #[test]
    fn source_survives_silent_peer_then_stop() {
        let source = TcpSource::listen("127.0.0.1:0").expect("bind");
        let addr = source.local_addr().expect("bound");

        let mut g = GraphBuilder::new();
        let src = g.add_source("tcp-in", Box::new(source));
        let (collect, _store) = CollectSink::new();
        let sink = g.add_op("collect", Box::new(collect));
        g.connect(src, 0, sink, PortKind::Data);
        let running = Engine::start(g);

        // Connect but send nothing; the source must stay idle, not spin-fail.
        let _quiet = TcpStream::connect(addr).expect("connect");
        std::thread::sleep(Duration::from_millis(150));
        running.stop();
        let report = running.join();
        assert_eq!(report.op("collect").unwrap().tuples_in, 0);
    }

    #[test]
    fn sink_handles_unreachable_peer() {
        // Port 1 on localhost is essentially never listening.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut g = GraphBuilder::new();
        let gen = g.add_source(
            "gen",
            Box::new(GeneratorSource::new(|_| Some((vec![1.0], None))).with_max_tuples(5)),
        );
        let out = g.add_op("tcp-out", Box::new(TcpSink::connect(addr)));
        g.connect(gen, 0, out, PortKind::Data);
        // Must terminate (tuples dropped), not hang or panic.
        let report = Engine::run(g);
        assert_eq!(report.op("gen").unwrap().tuples_out, 5);
    }
}
