//! The load-balancing split (§III-A2).
//!
//! "We split the input stream by time to a number of streams that are
//! rerouted to a corresponding PCA engine. The order of target instances is
//! random and is chosen by the splitting component to equally balance and
//! maximize the cluster nodes load. InfoSphere provides the multi-threaded
//! Signal splitter component to push the data to multiple targets without
//! blocking the queue on one target. Using this scheme, faster nodes will
//! get more data than slower ones."
//!
//! The non-blocking behaviour is implemented with `try_emit`: the split
//! picks a target (randomly or round-robin), and if that engine's queue is
//! full it immediately tries the others — so slow consumers shed load to
//! fast ones, exactly the paper's semantics. Only when *every* queue is
//! full does the split block (backpressure to the source).

use crate::operator::{OpContext, Operator};
use crate::tuple::{DataTuple, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Target-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Uniform random target per tuple (the paper's choice — it also
    /// provides the stream randomization §II-B asks for).
    Random,
    /// Cycle through targets.
    RoundRobin,
    /// Pick the target with the shallowest downstream queue.
    LeastLoaded,
}

/// 1-in / n-out load-balancing splitter.
pub struct Split {
    strategy: SplitStrategy,
    rng: StdRng,
    next_rr: usize,
    /// Tuples that had to block because every target was full.
    pub blocked: u64,
}

impl Split {
    /// A splitter with the given strategy. Output port `i` feeds engine `i`.
    pub fn new(strategy: SplitStrategy) -> Self {
        Split {
            strategy,
            rng: StdRng::seed_from_u64(0x517EC7),
            next_rr: 0,
            blocked: 0,
        }
    }

    fn pick(&mut self, n: usize, ctx: &OpContext<'_>) -> usize {
        match self.strategy {
            SplitStrategy::Random => self.rng.gen_range(0..n),
            SplitStrategy::RoundRobin => {
                let i = self.next_rr % n;
                self.next_rr = self.next_rr.wrapping_add(1);
                i
            }
            SplitStrategy::LeastLoaded => (0..n)
                .min_by_key(|&p| ctx.backlog(p).unwrap_or(usize::MAX))
                .unwrap_or(0),
        }
    }
}

impl Operator for Split {
    fn process(&mut self, tuple: DataTuple, ctx: &mut OpContext<'_>) {
        let n = ctx.n_out_ports();
        if n == 0 {
            return;
        }
        let first = self.pick(n, ctx);
        // Try the chosen target, then the rest in cyclic order; block on
        // the original choice only if all are full.
        let mut t = Tuple::Data(tuple);
        for off in 0..n {
            let port = (first + off) % n;
            match ctx.try_emit(port, t) {
                Ok(()) => return,
                Err(back) => t = back,
            }
        }
        self.blocked += 1;
        ctx.emit(first, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OpCounters;
    use crate::operator::testing::{with_ctx, CaptureSink};

    fn feed(split: &mut Split, n_ports: usize, n_tuples: u64) -> CaptureSink {
        with_ctx(n_ports, |ctx| {
            for seq in 0..n_tuples {
                split.process(DataTuple::new(seq, vec![seq as f64]), ctx);
            }
        })
    }

    #[test]
    fn round_robin_balances_exactly() {
        let mut s = Split::new(SplitStrategy::RoundRobin);
        let sink = feed(&mut s, 4, 100);
        for p in 0..4 {
            assert_eq!(sink.data_at(p).len(), 25, "port {p}");
        }
    }

    #[test]
    fn random_balances_statistically() {
        let mut s = Split::new(SplitStrategy::Random);
        let sink = feed(&mut s, 4, 4000);
        for p in 0..4 {
            let n = sink.data_at(p).len();
            assert!((800..1200).contains(&n), "port {p} got {n}");
        }
    }

    #[test]
    fn no_tuple_lost_or_duplicated() {
        let mut s = Split::new(SplitStrategy::Random);
        let sink = feed(&mut s, 3, 1000);
        let mut seqs: Vec<u64> = (0..3)
            .flat_map(|p| sink.data_at(p).into_iter().map(|d| d.seq))
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn full_target_sheds_to_next() {
        let mut s = Split::new(SplitStrategy::RoundRobin);
        let counters = OpCounters::default();
        let mut sink = CaptureSink::new(2);
        sink.full_ports[0] = true; // engine 0 saturated
        {
            let mut ctx = OpContext::new(&mut sink, &counters);
            for seq in 0..10 {
                s.process(DataTuple::new(seq, vec![]), &mut ctx);
            }
        }
        // Everything lands on port 1; nothing blocked because port 1 open.
        assert_eq!(sink.data_at(1).len(), 10);
        assert_eq!(s.blocked, 0);
    }

    #[test]
    fn all_full_blocks_and_counts() {
        let mut s = Split::new(SplitStrategy::Random);
        let counters = OpCounters::default();
        let mut sink = CaptureSink::new(2);
        sink.full_ports = vec![true, true];
        {
            let mut ctx = OpContext::new(&mut sink, &counters);
            s.process(DataTuple::new(0, vec![]), &mut ctx);
        }
        assert_eq!(s.blocked, 1);
        // CaptureSink's blocking emit still records the tuple.
        let total: usize = (0..2).map(|p| sink.data_at(p).len()).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn least_loaded_prefers_shallow_queue() {
        let mut s = Split::new(SplitStrategy::LeastLoaded);
        // CaptureSink backlog == items already emitted; feed sequentially
        // and confirm the split alternates (keeps queues level).
        let sink = feed(&mut s, 2, 10);
        assert_eq!(sink.data_at(0).len(), 5);
        assert_eq!(sink.data_at(1).len(), 5);
    }
}
