//! The load-balancing split (§III-A2).
//!
//! "We split the input stream by time to a number of streams that are
//! rerouted to a corresponding PCA engine. The order of target instances is
//! random and is chosen by the splitting component to equally balance and
//! maximize the cluster nodes load. InfoSphere provides the multi-threaded
//! Signal splitter component to push the data to multiple targets without
//! blocking the queue on one target. Using this scheme, faster nodes will
//! get more data than slower ones."
//!
//! The non-blocking behaviour is implemented with `try_emit`: the split
//! picks a target (randomly or round-robin), and if that engine's queue is
//! full it immediately tries the others — so slow consumers shed load to
//! fast ones, exactly the paper's semantics. Only when *every* queue is
//! full does the split block (backpressure to the source).

use crate::checkpoint::{decode_kv, encode_kv, kv_parse, kv_u64, Checkpoint};
use crate::membership::ActiveSet;
use crate::operator::{OpContext, Operator};
use crate::tuple::{DataTuple, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Seed for the random strategy's generator — fixed so runs (and restarts)
/// are reproducible.
const SPLIT_SEED: u64 = 0x517EC7;

/// Target-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Uniform random target per tuple (the paper's choice — it also
    /// provides the stream randomization §II-B asks for).
    Random,
    /// Cycle through targets.
    RoundRobin,
    /// Pick the target with the shallowest downstream queue.
    LeastLoaded,
}

/// 1-in / n-out load-balancing splitter.
pub struct Split {
    strategy: SplitStrategy,
    rng: StdRng,
    next_rr: usize,
    /// Picks made so far — checkpointed so a restored split can fast-forward
    /// the seeded generator and continue the same random target sequence.
    picks: u64,
    /// Draws to replay on the next pick after a checkpoint restore.
    replay: u64,
    /// Tuples that had to block because every target was full.
    pub blocked: u64,
    /// Elastic membership: when set, only ports `0..active()` receive
    /// traffic (standby engines past the boundary see no tuples until the
    /// autoscaler admits them).
    active: Option<Arc<ActiveSet>>,
}

impl Split {
    /// A splitter with the given strategy. Output port `i` feeds engine `i`.
    pub fn new(strategy: SplitStrategy) -> Self {
        Split {
            strategy,
            rng: StdRng::seed_from_u64(SPLIT_SEED),
            next_rr: 0,
            picks: 0,
            replay: 0,
            blocked: 0,
            active: None,
        }
    }

    /// Restricts routing to the active-membership prefix: only ports
    /// `0..active.active()` receive tuples. The autoscaler re-seeds the
    /// split by moving the boundary — no graph mutation, no new RNG.
    pub fn with_active_set(mut self, active: Arc<ActiveSet>) -> Self {
        self.active = Some(active);
        self
    }

    /// Ports currently eligible for traffic out of `n` wired ports.
    fn active_of(&self, n: usize) -> usize {
        match &self.active {
            Some(a) => a.active().min(n).max(1),
            None => n,
        }
    }

    fn pick(&mut self, n: usize, ctx: &OpContext<'_>) -> usize {
        if self.replay > 0 {
            // Fast-forward the freshly reseeded generator past the draws
            // consumed before the checkpoint. The port count is fixed for a
            // given graph — and the random draw is always over the full
            // port range even under elastic membership — so the draws
            // replay bit-for-bit regardless of scaling history.
            if self.strategy == SplitStrategy::Random {
                for _ in 0..self.replay {
                    let _ = self.rng.gen_range(0..n);
                }
            }
            self.replay = 0;
        }
        self.picks += 1;
        let active = self.active_of(n);
        match self.strategy {
            // Draw over the full port range, then fold into the active
            // prefix: the RNG consumption stays independent of membership,
            // which is what keeps checkpoint replay deterministic across
            // rescale events.
            SplitStrategy::Random => self.rng.gen_range(0..n) % active,
            SplitStrategy::RoundRobin => {
                let i = self.next_rr % active;
                self.next_rr = self.next_rr.wrapping_add(1);
                i
            }
            SplitStrategy::LeastLoaded => (0..active)
                .min_by_key(|&p| ctx.backlog(p).unwrap_or(usize::MAX))
                .unwrap_or(0),
        }
    }
}

impl Operator for Split {
    fn process(&mut self, tuple: DataTuple, ctx: &mut OpContext<'_>) {
        let n = ctx.n_out_ports();
        if n == 0 {
            return;
        }
        let first = self.pick(n, ctx);
        let active = self.active_of(n);
        // Try the chosen target, then the rest of the *active* set in
        // cyclic order; block on the original choice only if all are full.
        // Standby ports never receive traffic, even under backpressure.
        let mut t = Tuple::Data(tuple);
        for off in 0..active {
            let port = (first + off) % active;
            match ctx.try_emit(port, t) {
                Ok(()) => return,
                Err(back) => t = back,
            }
        }
        self.blocked += 1;
        ctx.emit(first, t);
    }

    fn checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

impl Checkpoint for Split {
    fn snapshot(&self) -> Vec<u8> {
        encode_kv(&[
            ("next_rr", self.next_rr.to_string()),
            ("picks", self.picks.to_string()),
            ("blocked", self.blocked.to_string()),
        ])
    }

    fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let kv = decode_kv(bytes)?;
        self.next_rr = kv_parse(&kv, "next_rr")?;
        self.picks = kv_u64(&kv, "picks")?;
        self.blocked = kv_u64(&kv, "blocked")?;
        self.rng = StdRng::seed_from_u64(SPLIT_SEED);
        self.replay = self.picks;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OpCounters;
    use crate::operator::testing::{with_ctx, CaptureSink};

    fn feed(split: &mut Split, n_ports: usize, n_tuples: u64) -> CaptureSink {
        with_ctx(n_ports, |ctx| {
            for seq in 0..n_tuples {
                split.process(DataTuple::new(seq, vec![seq as f64]), ctx);
            }
        })
    }

    #[test]
    fn round_robin_balances_exactly() {
        let mut s = Split::new(SplitStrategy::RoundRobin);
        let sink = feed(&mut s, 4, 100);
        for p in 0..4 {
            assert_eq!(sink.data_at(p).len(), 25, "port {p}");
        }
    }

    #[test]
    fn random_balances_statistically() {
        let mut s = Split::new(SplitStrategy::Random);
        let sink = feed(&mut s, 4, 4000);
        for p in 0..4 {
            let n = sink.data_at(p).len();
            assert!((800..1200).contains(&n), "port {p} got {n}");
        }
    }

    #[test]
    fn no_tuple_lost_or_duplicated() {
        let mut s = Split::new(SplitStrategy::Random);
        let sink = feed(&mut s, 3, 1000);
        let mut seqs: Vec<u64> = (0..3)
            .flat_map(|p| sink.data_at(p).into_iter().map(|d| d.seq))
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn full_target_sheds_to_next() {
        let mut s = Split::new(SplitStrategy::RoundRobin);
        let counters = OpCounters::default();
        let mut sink = CaptureSink::new(2);
        sink.full_ports[0] = true; // engine 0 saturated
        {
            let mut ctx = OpContext::new(&mut sink, &counters);
            for seq in 0..10 {
                s.process(DataTuple::new(seq, vec![]), &mut ctx);
            }
        }
        // Everything lands on port 1; nothing blocked because port 1 open.
        assert_eq!(sink.data_at(1).len(), 10);
        assert_eq!(s.blocked, 0);
    }

    #[test]
    fn all_full_blocks_and_counts() {
        let mut s = Split::new(SplitStrategy::Random);
        let counters = OpCounters::default();
        let mut sink = CaptureSink::new(2);
        sink.full_ports = vec![true, true];
        {
            let mut ctx = OpContext::new(&mut sink, &counters);
            s.process(DataTuple::new(0, vec![]), &mut ctx);
        }
        assert_eq!(s.blocked, 1);
        // CaptureSink's blocking emit still records the tuple.
        let total: usize = (0..2).map(|p| sink.data_at(p).len()).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn random_split_resumes_identical_target_sequence_after_restore() {
        // Run one split uninterrupted; run another that checkpoints and is
        // replaced by a restored instance mid-stream. The per-port tuple
        // sequences must match exactly — the restored rng fast-forwards to
        // where the original left off.
        let mut whole = Split::new(SplitStrategy::Random);
        let expected = feed(&mut whole, 4, 300);

        let mut first_half = Split::new(SplitStrategy::Random);
        let sink_a = feed(&mut first_half, 4, 120);
        let bytes = Checkpoint::snapshot(&first_half);
        let mut second_half = Split::new(SplitStrategy::Random);
        second_half.restore(&bytes).unwrap();
        let sink_b = with_ctx(4, |ctx| {
            for seq in 120..300 {
                second_half.process(DataTuple::new(seq, vec![seq as f64]), ctx);
            }
        });

        for p in 0..4 {
            let mut got: Vec<u64> = sink_a.data_at(p).iter().map(|d| d.seq).collect();
            got.extend(sink_b.data_at(p).iter().map(|d| d.seq));
            let want: Vec<u64> = expected.data_at(p).iter().map(|d| d.seq).collect();
            assert_eq!(got, want, "port {p}");
        }
    }

    #[test]
    fn round_robin_split_restores_its_cursor() {
        let mut s = Split::new(SplitStrategy::RoundRobin);
        feed(&mut s, 4, 7); // cursor now mid-cycle at 7 % 4 == 3
        let bytes = Checkpoint::snapshot(&s);
        let mut restored = Split::new(SplitStrategy::RoundRobin);
        restored.restore(&bytes).unwrap();
        let sink = feed(&mut restored, 4, 1);
        assert_eq!(sink.data_at(3).len(), 1);
    }

    #[test]
    fn active_set_confines_traffic_to_the_prefix() {
        let active = ActiveSet::new(2, 4);
        let mut s = Split::new(SplitStrategy::Random).with_active_set(Arc::clone(&active));
        let sink = feed(&mut s, 4, 400);
        assert!(sink.data_at(0).len() > 100);
        assert!(sink.data_at(1).len() > 100);
        assert!(sink.data_at(2).is_empty(), "standby port 2 got traffic");
        assert!(sink.data_at(3).is_empty(), "standby port 3 got traffic");
    }

    #[test]
    fn admitted_engine_starts_receiving_and_retired_engine_stops() {
        let active = ActiveSet::new(1, 3);
        let mut s = Split::new(SplitStrategy::RoundRobin).with_active_set(Arc::clone(&active));
        let sink1 = feed(&mut s, 3, 10);
        assert_eq!(sink1.data_at(0).len(), 10);
        active.set_active(3); // scale out
        let sink2 = feed(&mut s, 3, 9);
        assert_eq!(sink2.data_at(0).len(), 3);
        assert_eq!(sink2.data_at(1).len(), 3);
        assert_eq!(sink2.data_at(2).len(), 3);
        active.set_active(2); // retire engine 2
        let sink3 = feed(&mut s, 3, 10);
        assert!(sink3.data_at(2).is_empty(), "retired port 2 got traffic");
        assert_eq!(sink3.data_at(0).len() + sink3.data_at(1).len(), 10);
    }

    #[test]
    fn active_set_shed_path_never_touches_standby_ports() {
        let active = ActiveSet::new(2, 3);
        let mut s = Split::new(SplitStrategy::Random).with_active_set(Arc::clone(&active));
        let counters = OpCounters::default();
        let mut sink = CaptureSink::new(3);
        sink.full_ports = vec![true, true, false]; // only the standby is open
        {
            let mut ctx = OpContext::new(&mut sink, &counters);
            for seq in 0..5 {
                s.process(DataTuple::new(seq, vec![]), &mut ctx);
            }
        }
        // Both active ports full: the split blocks rather than leaking
        // tuples to the standby engine.
        assert_eq!(s.blocked, 5);
        assert!(sink.data_at(2).is_empty(), "standby port received sheds");
    }

    #[test]
    fn random_split_replay_is_deterministic_across_rescale_history() {
        // A split that scaled out mid-stream, checkpointed, and was
        // restored must route the remaining tuples exactly like an
        // uninterrupted split with the same membership history: the RNG
        // draw is over the full port range, so membership never shifts
        // the consumed sequence.
        let mk = || {
            let active = ActiveSet::new(1, 4);
            let s = Split::new(SplitStrategy::Random).with_active_set(Arc::clone(&active));
            (s, active)
        };
        let (mut whole, active_w) = mk();
        let a = feed(&mut whole, 4, 100);
        active_w.set_active(3);
        let b = with_ctx(4, |ctx| {
            for seq in 100..300 {
                whole.process(DataTuple::new(seq, vec![seq as f64]), ctx);
            }
        });

        let (mut part, active_p) = mk();
        let a2 = feed(&mut part, 4, 100);
        active_p.set_active(3);
        let bytes = Checkpoint::snapshot(&part);
        let (mut restored, active_r) = mk();
        restored.restore(&bytes).unwrap();
        active_r.set_active(3);
        let b2 = with_ctx(4, |ctx| {
            for seq in 100..300 {
                restored.process(DataTuple::new(seq, vec![seq as f64]), ctx);
            }
        });

        for p in 0..4 {
            let mut got: Vec<u64> = a2.data_at(p).iter().map(|d| d.seq).collect();
            got.extend(b2.data_at(p).iter().map(|d| d.seq));
            let mut want: Vec<u64> = a.data_at(p).iter().map(|d| d.seq).collect();
            want.extend(b.data_at(p).iter().map(|d| d.seq));
            assert_eq!(got, want, "port {p}");
        }
    }

    #[test]
    fn least_loaded_prefers_shallow_queue() {
        let mut s = Split::new(SplitStrategy::LeastLoaded);
        // CaptureSink backlog == items already emitted; feed sequentially
        // and confirm the split alternates (keeps queues level).
        let sink = feed(&mut s, 2, 10);
        assert_eq!(sink.data_at(0).len(), 5);
        assert_eq!(sink.data_at(1).len(), 5);
    }
}
