//! A dependency-free HTTP/1.1 server — the serving-side sibling of the
//! [`http`](super::http) client.
//!
//! Built for the always-on eigensystem serving layer (ROADMAP item 2),
//! so the design targets are operational rather than general-purpose:
//!
//! * **Fixed thread pool, bounded accept queue.** An acceptor thread
//!   hands connections to a small worker pool over a bounded queue; when
//!   the queue is full the acceptor *sheds* the connection immediately
//!   with `429 Too Many Requests` + `Retry-After` instead of queueing
//!   unboundedly — overload degrades tail latency for the shed client
//!   only, never for admitted ones.
//! * **Per-client admission control.** An optional token bucket per
//!   client IP limits sustained request rate; over-limit requests get a
//!   429 with a `Retry-After` computed from the token deficit.
//! * **Zero allocation per request in steady state.** Each worker owns
//!   reusable read/parse/response buffers; request heads and bodies are
//!   parsed in place and handlers write into a caller-owned
//!   [`ResponseBuf`]. After warm-up, serving a request allocates nothing.
//! * **Keep-alive.** Connections are persistent by default (HTTP/1.1);
//!   a worker serves requests on its connection until close, error, or
//!   an idle timeout, so admitted clients amortize the accept cost.
//!
//! The server is protocol-generic: request routing and endpoint
//! semantics live in a [`ConnHandler`] supplied by the embedder (the
//! eigensystem query handler lives in `spca-engine`).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::TrySendError;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A parsed request, borrowing from the worker's reusable buffers.
#[derive(Debug)]
pub struct Request<'a> {
    /// Request method (`GET`, `POST`, …), uppercase as sent.
    pub method: &'a str,
    /// Path component of the target, without the query string.
    pub path: &'a str,
    /// Raw query string after `?` (empty if none).
    pub query: &'a str,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: &'a [u8],
    /// Client address.
    pub peer: IpAddr,
}

impl Request<'_> {
    /// The value of query parameter `key` (`k=v` pairs, `&`-separated),
    /// if present. No decoding — the serving API uses plain tokens.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// A reusable response being built by a handler. The server serializes
/// it after `handle` returns; all buffers are recycled between requests.
#[derive(Debug, Default)]
pub struct ResponseBuf {
    status: u16,
    content_type: &'static str,
    retry_after: Option<u32>,
    /// Raw pre-formatted extra header lines (each `Name: value\r\n`).
    extra_headers: Vec<u8>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ResponseBuf {
    fn reset(&mut self) {
        self.status = 200;
        self.content_type = "text/plain";
        self.retry_after = None;
        self.extra_headers.clear();
        self.body.clear();
    }

    /// Sets the status code.
    pub fn set_status(&mut self, status: u16) {
        self.status = status;
    }

    /// Sets the `Content-Type` (defaults to `text/plain`).
    pub fn set_content_type(&mut self, ct: &'static str) {
        self.content_type = ct;
    }

    /// Appends one extra header line (writes into a reused buffer).
    pub fn add_header(&mut self, name: &str, value: std::fmt::Arguments<'_>) {
        use std::io::Write as _;
        let _ = write!(self.extra_headers, "{name}: {value}\r\n");
    }
}

/// Per-connection request handler. One handler instance is built per
/// worker thread, so it can own mutable scratch (workspaces, pinned
/// epoch readers) without synchronization.
pub trait ConnHandler: Send {
    /// Handles one request, writing the response into `resp` (already
    /// reset to `200 text/plain` with empty body).
    fn handle(&mut self, req: &Request<'_>, resp: &mut ResponseBuf);
}

/// Token-bucket admission control per client IP.
#[derive(Debug, Clone, Copy)]
pub struct RateLimitConfig {
    /// Sustained requests/second allowed per client.
    pub per_sec: f64,
    /// Burst capacity (bucket size) in requests.
    pub burst: f64,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each serves one connection at a time).
    pub threads: usize,
    /// Bounded accept-queue depth; connections beyond it are shed 429.
    pub queue_depth: usize,
    /// Optional per-client token bucket.
    pub rate_limit: Option<RateLimitConfig>,
    /// Keep-alive idle timeout before a worker closes the connection.
    pub idle_timeout: Duration,
    /// Total budget for receiving one complete request (head + body)
    /// once its first byte has arrived. Bounds slow-loris clients that
    /// trickle bytes fast enough to defeat the per-read idle timeout.
    pub request_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            queue_depth: 64,
            rate_limit: None,
            idle_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// Operational counters, shared lock-free with the embedder.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted into the queue.
    pub accepted: AtomicU64,
    /// Requests served (any status, including handler errors).
    pub served: AtomicU64,
    /// Connections shed with 429 because the accept queue was full.
    pub shed: AtomicU64,
    /// Requests rejected with 429 by the per-client token bucket.
    pub rate_limited: AtomicU64,
    /// Malformed requests answered with 400.
    pub bad_requests: AtomicU64,
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

struct BucketTable {
    map: HashMap<IpAddr, Bucket>,
    last_sweep: Instant,
}

struct RateLimiter {
    cfg: RateLimitConfig,
    /// A bucket idle this long has fully refilled, so evicting it is
    /// indistinguishable from keeping it — sweeping keeps the per-IP map
    /// bounded under a churn of distinct client addresses.
    stale_after: Duration,
    buckets: Mutex<BucketTable>,
}

impl RateLimiter {
    fn new(cfg: RateLimitConfig) -> Self {
        let refill_secs = (cfg.burst / cfg.per_sec).clamp(1.0, 300.0);
        RateLimiter {
            cfg,
            stale_after: Duration::from_secs_f64(refill_secs),
            buckets: Mutex::new(BucketTable {
                map: HashMap::new(),
                last_sweep: Instant::now(),
            }),
        }
    }

    /// Ok(()) to admit, Err(retry_after_secs) to reject.
    fn check(&self, peer: IpAddr) -> Result<(), u32> {
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        if now.duration_since(buckets.last_sweep) >= self.stale_after {
            buckets.last_sweep = now;
            let stale = self.stale_after;
            buckets
                .map
                .retain(|_, b| now.duration_since(b.last) < stale);
        }
        let b = buckets.map.entry(peer).or_insert(Bucket {
            tokens: self.cfg.burst,
            last: now,
        });
        let dt = now.duration_since(b.last).as_secs_f64();
        b.last = now;
        b.tokens = (b.tokens + dt * self.cfg.per_sec).min(self.cfg.burst);
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - b.tokens;
            Err((deficit / self.cfg.per_sec).ceil().max(1.0) as u32)
        }
    }
}

/// The running server. Dropping (or calling [`shutdown`](Self::shutdown))
/// stops the acceptor, drains workers, and joins all threads.
pub struct HttpServer {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` and starts the acceptor and worker pool. `factory`
    /// is called once per worker thread (with the worker index) to build
    /// that thread's handler.
    pub fn start<H, F>(
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
        factory: F,
    ) -> std::io::Result<Self>
    where
        H: ConnHandler + 'static,
        F: Fn(usize) -> H,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let limiter = cfg.rate_limit.map(|rl| Arc::new(RateLimiter::new(rl)));

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(cfg.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let workers: Vec<_> = (0..cfg.threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let stats = Arc::clone(&stats);
                let limiter = limiter.clone();
                let mut handler = factory(i);
                let idle = cfg.idle_timeout;
                let request_timeout = cfg.request_timeout;
                std::thread::Builder::new()
                    .name(format!("http-worker-{i}"))
                    .spawn(move || {
                        let mut conn_buf = ConnBuffers::default();
                        loop {
                            let conn = match rx.lock().unwrap().recv() {
                                Ok(c) => c,
                                Err(_) => return,
                            };
                            serve_connection(
                                conn,
                                &mut handler,
                                &mut conn_buf,
                                limiter.as_deref(),
                                &stats,
                                idle,
                                request_timeout,
                            );
                        }
                    })
                    .expect("spawn http worker")
            })
            .collect();

        let acceptor = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("http-acceptor".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(conn) = conn else { continue };
                        match tx.try_send(conn) {
                            Ok(()) => {
                                stats.accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(TrySendError::Full(mut conn)) => {
                                // Shed: answer 429 inline and close. The
                                // static response never blocks the
                                // acceptor for long (small write).
                                stats.shed.fetch_add(1, Ordering::Relaxed);
                                let _ = conn.set_write_timeout(Some(Duration::from_millis(200)));
                                let _ = conn.write_all(SHED_RESPONSE);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    // Dropping `tx` here lets idle workers drain and exit.
                })
                .expect("spawn http acceptor")
        };

        Ok(HttpServer {
            addr: local,
            stats,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared operational counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Stops accepting, drains in-flight connections, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor's blocking accept with a dummy connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

const SHED_RESPONSE: &[u8] = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\nContent-Length: 9\r\nConnection: close\r\n\r\noverload\n";

/// Reusable per-worker buffers: the whole-request accumulation buffer
/// and the response being built. Grown once, reused per request.
#[derive(Default)]
struct ConnBuffers {
    buf: Vec<u8>,
    resp: ResponseBuf,
    out: Vec<u8>,
}

/// Largest accepted request head, in bytes.
const MAX_HEAD: usize = 1 << 20;
/// Largest accepted request body, in bytes. Enforced straight from the
/// parsed `Content-Length`, before any body byte is read or any offset
/// arithmetic happens, so an attacker-controlled length can neither
/// overflow `usize` nor make the server buffer unbounded input.
const MAX_BODY: usize = 1 << 26;

/// Serves requests on one connection until close/error/idle timeout.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    mut conn: TcpStream,
    handler: &mut dyn ConnHandler,
    bufs: &mut ConnBuffers,
    limiter: Option<&RateLimiter>,
    stats: &ServerStats,
    idle: Duration,
    request_timeout: Duration,
) {
    let peer = match conn.peer_addr() {
        Ok(a) => a.ip(),
        Err(_) => return,
    };
    let _ = conn.set_read_timeout(Some(idle));
    let _ = conn.set_nodelay(true);
    bufs.buf.clear();
    let mut filled = 0usize;

    loop {
        // A connection may sit idle between keep-alive requests for up to
        // `idle` (the per-read timeout), but once the first byte of a
        // request is in, the whole request must arrive within
        // `request_timeout` — a client trickling one byte per read
        // (slow-loris) cannot hold the worker past that budget.
        let mut deadline = (filled > 0).then(|| Instant::now() + request_timeout);
        // Resume the terminator scan where the last fill stopped (minus
        // the window overlap) instead of rescanning from the start.
        let mut scanned = 0usize;

        // --- read one request head (carry-over aware) ---
        let head_end = loop {
            if let Some(pos) = find_double_crlf(&bufs.buf[..filled], scanned) {
                break pos;
            }
            scanned = filled.saturating_sub(3);
            if filled > MAX_HEAD {
                let _ = respond_simple(&mut conn, bufs, 431, "head too large\n", true);
                return;
            }
            match read_more(&mut conn, &mut bufs.buf, &mut filled) {
                Ok(0) | Err(_) => return, // clean close or timeout
                Ok(_) => {}
            }
            match deadline {
                None => deadline = Some(Instant::now() + request_timeout),
                Some(d) if Instant::now() >= d => return,
                Some(_) => {}
            }
        };

        // --- parse head ---
        let Some(head) = parse_head(&bufs.buf[..head_end]) else {
            stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = respond_simple(&mut conn, bufs, 400, "malformed request\n", true);
            return;
        };
        if head.content_length > MAX_BODY {
            let _ = respond_simple(&mut conn, bufs, 413, "body too large\n", true);
            return;
        }
        let body_start = head_end + 4;
        let Some(body_end) = body_start.checked_add(head.content_length) else {
            let _ = respond_simple(&mut conn, bufs, 413, "body too large\n", true);
            return;
        };

        // --- read the body ---
        while filled < body_end {
            match read_more(&mut conn, &mut bufs.buf, &mut filled) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return;
            }
        }

        // --- admission control, then dispatch ---
        let close = head.close;
        if let Some(retry) = limiter.and_then(|l| l.check(peer).err()) {
            stats.rate_limited.fetch_add(1, Ordering::Relaxed);
            bufs.resp.reset();
            bufs.resp.set_status(429);
            bufs.resp.retry_after = Some(retry);
            bufs.resp.body.extend_from_slice(b"rate limited\n");
        } else {
            let (head_bytes, rest) = bufs.buf.split_at(head_end);
            let body = &rest[4..4 + head.content_length];
            // parse_head validated the head as UTF-8 already.
            let head_text = std::str::from_utf8(head_bytes).unwrap_or("");
            let target = &head_text[head.target.clone()];
            let (path, query) = match target.split_once('?') {
                Some((p, q)) => (p, q),
                None => (target, ""),
            };
            let req = Request {
                method: &head_text[head.method.clone()],
                path,
                query,
                body,
                peer,
            };
            bufs.resp.reset();
            handler.handle(&req, &mut bufs.resp);
        }

        stats.served.fetch_add(1, Ordering::Relaxed);
        if write_response(&mut conn, &bufs.resp, &mut bufs.out, close).is_err() || close {
            return;
        }

        // --- carry over any pipelined bytes, loop for keep-alive ---
        bufs.buf.copy_within(body_end..filled, 0);
        filled -= body_end;
    }
}

fn read_more(
    conn: &mut TcpStream,
    buf: &mut Vec<u8>,
    filled: &mut usize,
) -> std::io::Result<usize> {
    if buf.len() < *filled + 4096 {
        buf.resize(*filled + 4096, 0);
    }
    let n = conn.read(&mut buf[*filled..])?;
    *filled += n;
    Ok(n)
}

/// Position of `\r\n\r\n` in `hay`, scanning from `from` (callers pass
/// the previous fill point minus the window overlap so repeated fills of
/// a large head cost O(n), not O(n²)).
fn find_double_crlf(hay: &[u8], from: usize) -> Option<usize> {
    hay.get(from..)?
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| from + p)
}

struct ParsedHead {
    method: std::ops::Range<usize>,
    target: std::ops::Range<usize>,
    content_length: usize,
    close: bool,
}

fn parse_head(head: &[u8]) -> Option<ParsedHead> {
    let text = std::str::from_utf8(head).ok()?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") || method.is_empty() || !target.starts_with('/') {
        return None;
    }
    let method_start = 0;
    let target_start = method.len() + 1;
    let mut content_length = 0usize;
    let mut close = version == "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().ok()?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        }
    }
    Some(ParsedHead {
        method: method_start..method.len(),
        target: target_start..target_start + target.len(),
        content_length,
        close,
    })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn write_response(
    conn: &mut TcpStream,
    resp: &ResponseBuf,
    out: &mut Vec<u8>,
    close: bool,
) -> std::io::Result<()> {
    use std::io::Write as _;
    out.clear();
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(retry) = resp.retry_after {
        let _ = write!(out, "Retry-After: {retry}\r\n");
    }
    out.extend_from_slice(&resp.extra_headers);
    let _ = write!(
        out,
        "Connection: {}\r\n\r\n",
        if close { "close" } else { "keep-alive" }
    );
    out.extend_from_slice(&resp.body);
    conn.write_all(out)
}

fn respond_simple(
    conn: &mut TcpStream,
    bufs: &mut ConnBuffers,
    status: u16,
    msg: &str,
    close: bool,
) -> std::io::Result<()> {
    bufs.resp.reset();
    bufs.resp.set_status(status);
    bufs.resp.body.extend_from_slice(msg.as_bytes());
    write_response(conn, &bufs.resp, &mut bufs.out, close)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo-ish test handler: GET /hello -> "world", POST /echo -> body,
    /// /slow sleeps to occupy a worker, anything else 404.
    struct TestHandler;
    impl ConnHandler for TestHandler {
        fn handle(&mut self, req: &Request<'_>, resp: &mut ResponseBuf) {
            match (req.method, req.path) {
                ("GET", "/hello") => resp.body.extend_from_slice(b"world"),
                ("POST", "/echo") => {
                    resp.add_header("X-Len", format_args!("{}", req.body.len()));
                    resp.body.extend_from_slice(req.body);
                }
                ("GET", "/slow") => {
                    std::thread::sleep(Duration::from_millis(400));
                    resp.body.extend_from_slice(b"slow");
                }
                _ => {
                    resp.set_status(404);
                    resp.body.extend_from_slice(b"not found\n");
                }
            }
        }
    }

    fn start(cfg: ServerConfig) -> HttpServer {
        HttpServer::start("127.0.0.1:0", cfg, |_| TestHandler).unwrap()
    }

    fn roundtrip(conn: &mut TcpStream, req: &str) -> String {
        conn.write_all(req.as_bytes()).unwrap();
        read_response(conn)
    }

    /// Reads exactly one response (head + Content-Length body).
    fn read_response(conn: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(p) = find_double_crlf(&buf, 0) {
                break p;
            }
            let n = conn.read(&mut chunk).unwrap();
            if n == 0 {
                break buf.len().saturating_sub(4);
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let clen: usize = head
            .lines()
            .find_map(|l| {
                let (n, v) = l.split_once(':')?;
                n.eq_ignore_ascii_case("content-length")
                    .then(|| v.trim().parse().ok())?
            })
            .unwrap_or(0);
        while buf.len() < head_end + 4 + clen {
            let n = conn.read(&mut chunk).unwrap();
            if n == 0 {
                break;
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        String::from_utf8_lossy(&buf).to_string()
    }

    #[test]
    fn get_and_keep_alive() {
        let server = start(ServerConfig::default());
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        let r1 = roundtrip(&mut conn, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r1.starts_with("HTTP/1.1 200 OK"), "{r1}");
        assert!(r1.ends_with("world"), "{r1}");
        assert!(r1.contains("Connection: keep-alive"), "{r1}");
        // Second request on the same connection.
        let r2 = roundtrip(
            &mut conn,
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nabcde",
        );
        assert!(r2.contains("X-Len: 5"), "{r2}");
        assert!(r2.ends_with("abcde"), "{r2}");
        let r3 = roundtrip(&mut conn, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r3.starts_with("HTTP/1.1 404"), "{r3}");
        assert_eq!(server.stats().served.load(Ordering::Relaxed), 3);
        drop(conn);
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = start(ServerConfig::default());
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        let r = roundtrip(&mut conn, "NONSENSE\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 400"), "{r}");
        assert_eq!(server.stats().bad_requests.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn accept_queue_sheds_with_429_retry_after() {
        // One worker, queue depth 1: a slow in-flight request plus one
        // queued connection forces the third to be shed by the acceptor.
        let server = start(ServerConfig {
            threads: 1,
            queue_depth: 1,
            idle_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET /slow HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // Fills the single queue slot.
        let _queued = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // Shed path: served 429 + Retry-After by the acceptor itself.
        let mut shed = TcpStream::connect(addr).unwrap();
        let r = read_response(&mut shed);
        assert!(r.starts_with("HTTP/1.1 429"), "{r}");
        assert!(r.contains("Retry-After:"), "{r}");
        assert!(server.stats().shed.load(Ordering::Relaxed) >= 1);
        // The slow request still completes normally.
        let r = read_response(&mut slow);
        assert!(r.ends_with("slow"), "{r}");
        drop(slow);
        drop(shed);
        drop(_queued);
        server.shutdown();
    }

    #[test]
    fn token_bucket_rate_limits_per_client() {
        let server = start(ServerConfig {
            rate_limit: Some(RateLimitConfig {
                per_sec: 0.5,
                burst: 2.0,
            }),
            ..ServerConfig::default()
        });
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        for _ in 0..2 {
            let r = roundtrip(&mut conn, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
            assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        }
        let r = roundtrip(&mut conn, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 429"), "{r}");
        assert!(r.contains("Retry-After: "), "{r}");
        assert!(server.stats().rate_limited.load(Ordering::Relaxed) >= 1);
        drop(conn);
        server.shutdown();
    }

    #[test]
    fn huge_content_length_rejected_413_without_killing_worker() {
        let server = start(ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        // Near-usize::MAX Content-Length used to wrap `body_start + len`
        // and panic the (sole) worker; it must now be shed with 413.
        for len in [usize::MAX, usize::MAX - 3, (1 << 26) + 1] {
            let mut conn = TcpStream::connect(addr).unwrap();
            let r = roundtrip(
                &mut conn,
                &format!("POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {len}\r\n\r\n"),
            );
            assert!(r.starts_with("HTTP/1.1 413"), "len {len}: {r}");
        }
        // The single worker is still alive and serving.
        let mut conn = TcpStream::connect(addr).unwrap();
        let r = roundtrip(&mut conn, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.ends_with("world"), "{r}");
        server.shutdown();
    }

    #[test]
    fn slow_loris_trickle_is_disconnected_at_the_request_deadline() {
        let server = start(ServerConfig {
            threads: 1,
            idle_timeout: Duration::from_millis(500),
            request_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        });
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        // Trickle a never-ending head one byte at a time, always faster
        // than the idle timeout: only the per-request budget can stop it.
        let start_t = Instant::now();
        let mut closed = false;
        for chunk in "GET /hello HTTP/1.1\r\nX: y".bytes().cycle() {
            if conn.write_all(&[chunk]).is_err() {
                closed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(30));
            if start_t.elapsed() > Duration::from_secs(5) {
                break;
            }
        }
        if !closed {
            // The write side may not see the RST immediately; a read
            // observing EOF/reset also proves the server hung up.
            let mut byte = [0u8; 1];
            closed = matches!(conn.read(&mut byte), Ok(0) | Err(_));
        }
        assert!(closed, "trickling client must be disconnected");
        // And the worker is free to serve someone else.
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        let r = roundtrip(&mut conn, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.ends_with("world"), "{r}");
        server.shutdown();
    }

    #[test]
    fn rate_limiter_evicts_stale_buckets() {
        let limiter = RateLimiter::new(RateLimitConfig {
            per_sec: 10.0,
            burst: 10.0,
        });
        for i in 0..100u32 {
            let _ = limiter.check(IpAddr::from([10, 0, (i >> 8) as u8, i as u8]));
        }
        assert_eq!(limiter.buckets.lock().unwrap().map.len(), 100);
        // Age every bucket (and the sweep clock) past the stale window,
        // then admit one fresh client: the sweep must drop the rest.
        {
            let mut t = limiter.buckets.lock().unwrap();
            let old = Instant::now() - limiter.stale_after - Duration::from_secs(1);
            t.last_sweep = old;
            for b in t.map.values_mut() {
                b.last = old;
            }
        }
        let _ = limiter.check(IpAddr::from([192, 168, 0, 1]));
        assert_eq!(limiter.buckets.lock().unwrap().map.len(), 1);
    }

    #[test]
    fn query_params_parse() {
        let req = Request {
            method: "GET",
            path: "/topk",
            query: "k=5&p=3",
            body: b"",
            peer: "127.0.0.1".parse().unwrap(),
        };
        assert_eq!(req.query_param("k"), Some("5"));
        assert_eq!(req.query_param("p"), Some("3"));
        assert_eq!(req.query_param("missing"), None);
    }
}
