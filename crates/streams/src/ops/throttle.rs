//! The `Throttle` operator (§III-B).
//!
//! "Another important synchronization component is standard SPL 'Throttle'
//! operator. One controls the rate of synchronization tuples from the
//! control component to the listening PCA engines." Forwards data *and*
//! control tuples, pacing them to a maximum rate; like its SPL namesake it
//! blocks its PE while waiting, so it should live in its own PE (the
//! builder does this by default).

use crate::operator::{OpContext, Operator};
use crate::tuple::{ControlTuple, DataTuple};
use std::time::{Duration, Instant};

/// Rate-limiting pass-through.
pub struct Throttle {
    period: Duration,
    last: Option<Instant>,
}

impl Throttle {
    /// A throttle emitting at most `per_sec` tuples per second.
    pub fn per_second(per_sec: f64) -> Self {
        assert!(per_sec > 0.0);
        Throttle {
            period: Duration::from_secs_f64(1.0 / per_sec),
            last: None,
        }
    }

    /// A throttle with an explicit inter-tuple period — the paper
    /// configures 0.5 s between synchronization signals.
    pub fn with_period(period: Duration) -> Self {
        Throttle { period, last: None }
    }

    fn pace(&mut self) {
        if let Some(last) = self.last {
            let elapsed = last.elapsed();
            if elapsed < self.period {
                std::thread::sleep(self.period - elapsed);
            }
        }
        self.last = Some(Instant::now());
    }
}

impl Operator for Throttle {
    fn process(&mut self, tuple: DataTuple, ctx: &mut OpContext<'_>) {
        self.pace();
        ctx.emit_data(0, tuple);
    }

    fn on_control(&mut self, tuple: ControlTuple, ctx: &mut OpContext<'_>) {
        self.pace();
        ctx.emit_control(0, tuple);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testing::with_ctx;

    #[test]
    fn paces_to_configured_rate() {
        let mut th = Throttle::per_second(200.0); // 5 ms period
        let t0 = Instant::now();
        let sink = with_ctx(1, |ctx| {
            for seq in 0..5 {
                th.process(DataTuple::new(seq, vec![]), ctx);
            }
        });
        let elapsed = t0.elapsed();
        assert_eq!(sink.data_at(0).len(), 5);
        // 4 inter-tuple gaps of ≥5 ms (first passes immediately).
        assert!(
            elapsed >= Duration::from_millis(18),
            "too fast: {elapsed:?}"
        );
    }

    #[test]
    fn first_tuple_is_immediate() {
        let mut th = Throttle::per_second(1.0);
        let t0 = Instant::now();
        with_ctx(1, |ctx| th.process(DataTuple::new(0, vec![]), ctx));
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn control_tuples_also_paced() {
        let mut th = Throttle::with_period(Duration::from_millis(5));
        let t0 = Instant::now();
        with_ctx(1, |ctx| {
            for i in 0..3 {
                th.on_control(ControlTuple::signal(0, i), ctx);
            }
        });
        assert!(t0.elapsed() >= Duration::from_millis(9));
    }
}
