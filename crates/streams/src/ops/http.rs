//! HTTP data source.
//!
//! §III-A1: "Network TCP sockets and http URLs are also supported out of
//! the box as a source of data." This is a dependency-free HTTP/1.1 GET
//! client over `std::net::TcpStream` that streams a CSV response body
//! line-by-line (same wire format as the file and TCP sources), handling
//! `Content-Length` and `Transfer-Encoding: chunked` bodies and one level
//! of redirect.

use crate::operator::{OpContext, Operator, SourceState};
use crate::tuple::DataTuple;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed `http://host[:port]/path` URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpUrl {
    /// Hostname or IP.
    pub host: String,
    /// TCP port (default 80).
    pub port: u16,
    /// Path + query, always starting with `/`.
    pub path: String,
}

impl HttpUrl {
    /// Parses an `http://` URL. `https` is intentionally unsupported (no
    /// TLS stack in the dependency budget) and reports a clear error.
    pub fn parse(url: &str) -> Result<Self, String> {
        if let Some(rest) = url.strip_prefix("https://") {
            let _ = rest;
            return Err("https is not supported (no TLS); use http://".to_string());
        }
        let rest = url
            .strip_prefix("http://")
            .ok_or("URL must start with http://")?;
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err("empty host".to_string());
        }
        let (host, port) = if let Some(rest) = authority.strip_prefix('[') {
            // Bracketed IPv6 literal: `[addr]` or `[addr]:port`. A bare
            // rsplit on ':' would chop inside the address. The brackets
            // are kept in `host` so the dial string and the Host header
            // stay in the `[addr]:port` form the socket layer expects.
            let (addr, after) = rest.split_once(']').ok_or("unclosed '[' in host")?;
            if addr.is_empty() {
                return Err("empty host".to_string());
            }
            let port: u16 = match after.strip_prefix(':') {
                Some(p) => p.parse().map_err(|_| format!("bad port '{p}'"))?,
                None if after.is_empty() => 80,
                None => return Err(format!("junk after ']': '{after}'")),
            };
            (format!("[{addr}]"), port)
        } else {
            match authority.rsplit_once(':') {
                Some((h, p)) => {
                    let port: u16 = p.parse().map_err(|_| format!("bad port '{p}'"))?;
                    (h.to_string(), port)
                }
                None => (authority.to_string(), 80),
            }
        };
        if host.is_empty() {
            return Err("empty host".to_string());
        }
        Ok(HttpUrl {
            host,
            port,
            path: path.to_string(),
        })
    }
}

enum BodyFraming {
    Length(u64),
    Chunked { remaining_in_chunk: u64, done: bool },
    UntilClose,
}

/// Streams observations from an HTTP URL serving CSV.
pub struct HttpSource {
    url: HttpUrl,
    state: ConnState,
    seq: u64,
    redirects_left: u8,
}

enum ConnState {
    Unconnected,
    Streaming {
        reader: BufReader<TcpStream>,
        framing: BodyFraming,
        line: String,
    },
    Done,
}

impl HttpSource {
    /// A source for the given `http://` URL. Errors on malformed URLs.
    pub fn get(url: &str) -> Result<Self, String> {
        Ok(HttpSource {
            url: HttpUrl::parse(url)?,
            state: ConnState::Unconnected,
            seq: 0,
            redirects_left: 1,
        })
    }

    fn connect(&mut self) {
        let addr = format!("{}:{}", self.url.host, self.url.port);
        let stream = match TcpStream::connect(&addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("HttpSource: cannot connect to {addr}: {e}");
                self.state = ConnState::Done;
                return;
            }
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let mut stream = stream;
        let req = format!(
            "GET {} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\nAccept: text/csv, */*\r\nUser-Agent: spca/0.1\r\n\r\n",
            self.url.path, self.url.host
        );
        if let Err(e) = stream.write_all(req.as_bytes()) {
            eprintln!("HttpSource: request failed: {e}");
            self.state = ConnState::Done;
            return;
        }
        let mut reader = BufReader::new(stream);

        // Status line.
        let mut status_line = String::new();
        if reader.read_line(&mut status_line).is_err() {
            eprintln!("HttpSource: no status line");
            self.state = ConnState::Done;
            return;
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);

        // Headers.
        let mut content_length: Option<u64> = None;
        let mut chunked = false;
        let mut location: Option<String> = None;
        loop {
            let mut h = String::new();
            match reader.read_line(&mut h) {
                Ok(0) => break,
                Ok(_) => {
                    let h = h.trim_end();
                    if h.is_empty() {
                        break;
                    }
                    let lower = h.to_ascii_lowercase();
                    if let Some(v) = lower.strip_prefix("content-length:") {
                        content_length = v.trim().parse().ok();
                    } else if lower.starts_with("transfer-encoding:") && lower.contains("chunked") {
                        chunked = true;
                    } else if let Some(v) = h
                        .strip_prefix("Location:")
                        .or_else(|| h.strip_prefix("location:"))
                    {
                        location = Some(v.trim().to_string());
                    }
                }
                Err(e) => {
                    eprintln!("HttpSource: header read failed: {e}");
                    self.state = ConnState::Done;
                    return;
                }
            }
        }

        match status {
            200 => {
                let framing = if chunked {
                    BodyFraming::Chunked {
                        remaining_in_chunk: 0,
                        done: false,
                    }
                } else if let Some(len) = content_length {
                    BodyFraming::Length(len)
                } else {
                    BodyFraming::UntilClose
                };
                self.state = ConnState::Streaming {
                    reader,
                    framing,
                    line: String::new(),
                };
            }
            301 | 302 | 307 | 308 if self.redirects_left > 0 => {
                self.redirects_left -= 1;
                match location.as_deref().map(HttpUrl::parse) {
                    Some(Ok(url)) => {
                        self.url = url;
                        self.state = ConnState::Unconnected; // retry with new target
                    }
                    _ => {
                        eprintln!("HttpSource: redirect without usable Location");
                        self.state = ConnState::Done;
                    }
                }
            }
            other => {
                eprintln!("HttpSource: HTTP status {other}");
                self.state = ConnState::Done;
            }
        }
    }

    /// Reads the next body line respecting the framing; None = body done.
    fn next_body_line(&mut self) -> Option<String> {
        let ConnState::Streaming {
            reader,
            framing,
            line,
        } = &mut self.state
        else {
            return None;
        };
        match framing {
            BodyFraming::UntilClose => {
                line.clear();
                match reader.read_line(line) {
                    Ok(0) => None,
                    Ok(_) => Some(line.trim_end().to_string()),
                    Err(_) => None,
                }
            }
            BodyFraming::Length(remaining) => {
                if *remaining == 0 {
                    return None;
                }
                line.clear();
                match reader.read_line(line) {
                    Ok(0) => None,
                    Ok(n) => {
                        *remaining = remaining.saturating_sub(n as u64);
                        Some(line.trim_end().to_string())
                    }
                    Err(_) => None,
                }
            }
            BodyFraming::Chunked {
                remaining_in_chunk,
                done,
            } => {
                if *done {
                    return None;
                }
                // Assemble one logical line, possibly across chunks.
                let mut out = String::new();
                loop {
                    if *remaining_in_chunk == 0 {
                        // Read next chunk-size line.
                        line.clear();
                        if reader.read_line(line).unwrap_or(0) == 0 {
                            *done = true;
                            break;
                        }
                        let size = u64::from_str_radix(line.trim(), 16).unwrap_or(0);
                        if size == 0 {
                            *done = true;
                            break;
                        }
                        *remaining_in_chunk = size;
                    }
                    // Read at most the rest of this chunk, stopping at \n.
                    let mut byte = [0u8; 1];
                    use std::io::Read;
                    let mut got_newline = false;
                    while *remaining_in_chunk > 0 {
                        match reader.read_exact(&mut byte) {
                            Ok(()) => {
                                *remaining_in_chunk -= 1;
                                if byte[0] == b'\n' {
                                    got_newline = true;
                                    break;
                                }
                                if byte[0] != b'\r' {
                                    out.push(byte[0] as char);
                                }
                            }
                            Err(_) => {
                                *done = true;
                                break;
                            }
                        }
                    }
                    if *remaining_in_chunk == 0 && !*done {
                        // Consume the CRLF trailing the chunk payload.
                        let mut crlf = String::new();
                        let _ = reader.read_line(&mut crlf);
                    }
                    if got_newline || *done {
                        break;
                    }
                }
                if out.is_empty() && *done {
                    None
                } else {
                    Some(out)
                }
            }
        }
    }
}

impl Operator for HttpSource {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}

    fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
        if ctx.stop_requested() {
            return SourceState::Done;
        }
        loop {
            match &self.state {
                ConnState::Done => return SourceState::Done,
                ConnState::Unconnected => {
                    self.connect();
                    continue;
                }
                ConnState::Streaming { .. } => break,
            }
        }
        let Some(raw) = self.next_body_line() else {
            self.state = ConnState::Done;
            return SourceState::Done;
        };
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return SourceState::Idle;
        }
        let mut values = Vec::new();
        let mut mask = Vec::new();
        let mut any_missing = false;
        for field in trimmed.split(',') {
            match field.trim().parse::<f64>() {
                Ok(v) if v.is_finite() => {
                    values.push(v);
                    mask.push(true);
                }
                _ => {
                    values.push(0.0);
                    mask.push(false);
                    any_missing = true;
                }
            }
        }
        let t = if any_missing {
            DataTuple::masked(self.seq, values, mask)
        } else {
            DataTuple::new(self.seq, values)
        };
        self.seq += 1;
        ctx.emit_data(0, t);
        SourceState::Emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::graph::{GraphBuilder, PortKind};
    use crate::ops::CollectSink;
    use std::net::TcpListener;

    /// Minimal one-shot HTTP server for tests.
    fn serve_once(response: String) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                // Drain the request head.
                let mut buf = [0u8; 4096];
                use std::io::Read;
                let _ = stream.read(&mut buf);
                let _ = stream.write_all(response.as_bytes());
            }
        });
        format!("http://{addr}/data.csv")
    }

    fn collect_from(url: &str) -> Vec<DataTuple> {
        let mut g = GraphBuilder::new();
        let src = g.add_source("http", Box::new(HttpSource::get(url).unwrap()));
        let (sink, store) = CollectSink::new();
        let s = g.add_op("collect", Box::new(sink));
        g.connect(src, 0, s, PortKind::Data);
        Engine::run(g);
        let out = store.lock().clone();
        out
    }

    #[test]
    fn url_parsing() {
        let u = HttpUrl::parse("http://example.com/a/b?x=1").unwrap();
        assert_eq!(u.host, "example.com");
        assert_eq!(u.port, 80);
        assert_eq!(u.path, "/a/b?x=1");
        let u2 = HttpUrl::parse("http://10.0.0.1:8080").unwrap();
        assert_eq!(u2.port, 8080);
        assert_eq!(u2.path, "/");
        assert!(HttpUrl::parse("https://secure").is_err());
        assert!(HttpUrl::parse("ftp://x").is_err());
        assert!(HttpUrl::parse("http://:80/").is_err());
    }

    #[test]
    fn url_parsing_ipv6() {
        // Regression: `rsplit_once(':')` used to mis-split a bracketed
        // literal with no port (`http://[::1]/x` -> "bad port '1]'").
        let u = HttpUrl::parse("http://[::1]/x").unwrap();
        assert_eq!(u.host, "[::1]");
        assert_eq!(u.port, 80);
        assert_eq!(u.path, "/x");

        let u = HttpUrl::parse("http://[::1]:9000/metrics").unwrap();
        assert_eq!(u.host, "[::1]");
        assert_eq!(u.port, 9000);
        assert_eq!(u.path, "/metrics");

        let u = HttpUrl::parse("http://[2001:db8::7]").unwrap();
        assert_eq!(u.host, "[2001:db8::7]");
        assert_eq!(u.port, 80);
        assert_eq!(u.path, "/");

        assert!(HttpUrl::parse("http://[::1").is_err());
        assert!(HttpUrl::parse("http://[]/x").is_err());
        assert!(HttpUrl::parse("http://[::1]x/").is_err());
        assert!(HttpUrl::parse("http://[::1]:bad/").is_err());
    }

    #[test]
    fn content_length_body() {
        let body = "1.0,2.0\n3.0,4.0\n";
        let url = serve_once(format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/csv\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
        let got = collect_from(&url);
        assert_eq!(got.len(), 2);
        assert_eq!(*got[1].values, vec![3.0, 4.0]);
    }

    #[test]
    fn chunked_body() {
        // Two chunks splitting a line mid-way.
        let url = serve_once(
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
             6\r\n1.0,2.\r\n8\r\n0\n3.0,4\r\n4\r\n.0\n\r\n0\r\n\r\n"
                .to_string(),
        );
        let got = collect_from(&url);
        assert_eq!(got.len(), 2, "{got:?}");
        assert_eq!(*got[0].values, vec![1.0, 2.0]);
        assert_eq!(*got[1].values, vec![3.0, 4.0]);
    }

    #[test]
    fn until_close_body() {
        let url = serve_once("HTTP/1.0 200 OK\r\n\r\n5.0,6.0\n# comment\n7.0,nan\n".to_string());
        let got = collect_from(&url);
        assert_eq!(got.len(), 2);
        assert!(got[1].mask.is_some());
    }

    #[test]
    fn error_status_terminates_cleanly() {
        let url = serve_once("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_string());
        let got = collect_from(&url);
        assert!(got.is_empty());
    }

    #[test]
    fn unreachable_host_terminates_cleanly() {
        let got = collect_from("http://127.0.0.1:1/x.csv");
        assert!(got.is_empty());
    }
}
