//! Terminal operators: collectors, callbacks, CSV file sinks.

use crate::checkpoint::{decode_kv, encode_kv, kv_u64, Checkpoint};
use crate::operator::{OpContext, Operator};
use crate::tuple::{ControlTuple, DataTuple};
use parking_lot::Mutex;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// Discards everything (throughput measurements).
pub struct NullSink;

impl Operator for NullSink {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
}

/// Collects data tuples into a shared vector for post-run inspection.
pub struct CollectSink {
    store: Arc<Mutex<Vec<DataTuple>>>,
    cap: Option<usize>,
}

impl CollectSink {
    /// An unbounded collector; keep a clone of the handle to read results.
    pub fn new() -> (Self, Arc<Mutex<Vec<DataTuple>>>) {
        let store = Arc::new(Mutex::new(Vec::new()));
        (
            CollectSink {
                store: Arc::clone(&store),
                cap: None,
            },
            store,
        )
    }

    /// A collector that keeps only the most recent `cap` tuples.
    pub fn with_capacity(cap: usize) -> (Self, Arc<Mutex<Vec<DataTuple>>>) {
        let store = Arc::new(Mutex::new(Vec::new()));
        (
            CollectSink {
                store: Arc::clone(&store),
                cap: Some(cap),
            },
            store,
        )
    }
}

impl Operator for CollectSink {
    fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
        let mut s = self.store.lock();
        s.push(t);
        if let Some(cap) = self.cap {
            let extra = s.len().saturating_sub(cap);
            if extra > 0 {
                s.drain(..extra);
            }
        }
    }
}

/// Invokes closures on data / control tuples (application glue).
pub struct CallbackSink<F, G = fn(ControlTuple)> {
    on_data: F,
    on_control: Option<G>,
}

impl<F: FnMut(DataTuple) + Send> CallbackSink<F> {
    /// A sink calling `on_data` for every data tuple.
    pub fn new(on_data: F) -> Self {
        CallbackSink {
            on_data,
            on_control: None,
        }
    }
}

impl<F: FnMut(DataTuple) + Send, G: FnMut(ControlTuple) + Send> CallbackSink<F, G> {
    /// A sink with both data and control handlers.
    pub fn with_control(on_data: F, on_control: G) -> Self {
        CallbackSink {
            on_data,
            on_control: Some(on_control),
        }
    }
}

impl<F: FnMut(DataTuple) + Send, G: FnMut(ControlTuple) + Send> Operator for CallbackSink<F, G> {
    fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
        (self.on_data)(t);
    }

    fn on_control(&mut self, t: ControlTuple, _ctx: &mut OpContext<'_>) {
        if let Some(g) = &mut self.on_control {
            g(t);
        }
    }
}

/// Appends data tuples to a CSV file, flushing every `flush_every` tuples —
/// the paper's "intermediate calculation results are periodically saved to
/// the disk for future reference".
pub struct CsvFileSink {
    path: PathBuf,
    writer: Option<std::io::BufWriter<std::fs::File>>,
    flush_every: u64,
    written: u64,
}

impl CsvFileSink {
    /// A sink writing to `path`, flushing every `flush_every` tuples.
    pub fn new(path: impl Into<PathBuf>, flush_every: u64) -> Self {
        CsvFileSink {
            path: path.into(),
            writer: None,
            flush_every: flush_every.max(1),
            written: 0,
        }
    }
}

impl Operator for CsvFileSink {
    fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
        if self.writer.is_none() {
            match std::fs::File::create(&self.path) {
                Ok(f) => self.writer = Some(std::io::BufWriter::new(f)),
                Err(e) => {
                    eprintln!("CsvFileSink: cannot create {}: {e}", self.path.display());
                    return;
                }
            }
        }
        let w = self.writer.as_mut().expect("writer installed above");
        let mut first = true;
        for v in t.values.iter() {
            if !first {
                let _ = write!(w, ",");
            }
            first = false;
            let _ = write!(w, "{v}");
        }
        let _ = writeln!(w);
        self.written += 1;
        if self.written.is_multiple_of(self.flush_every) {
            let _ = w.flush();
        }
    }

    fn on_finish(&mut self, _ctx: &mut OpContext<'_>) {
        if let Some(w) = self.writer.as_mut() {
            let _ = w.flush();
        }
    }

    fn checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

/// Byte length of the first `n` newline-terminated rows of `f` (or the whole
/// file if it holds fewer).
fn byte_len_of_first_rows(f: &std::fs::File, n: u64) -> std::io::Result<u64> {
    use std::io::BufRead;
    let mut reader = std::io::BufReader::new(f);
    let mut buf = Vec::new();
    let mut offset = 0u64;
    for _ in 0..n {
        buf.clear();
        let got = reader.read_until(b'\n', &mut buf)?;
        if got == 0 {
            break;
        }
        offset += got as u64;
    }
    Ok(offset)
}

impl Checkpoint for CsvFileSink {
    fn snapshot(&self) -> Vec<u8> {
        encode_kv(&[("written", self.written.to_string())])
    }

    fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let kv = decode_kv(bytes)?;
        let written = kv_u64(&kv, "written")?;
        // Push buffered rows to disk before repositioning: any snapshot
        // taken from this instance counted them, so they must be on disk
        // before the row-count cursor is trusted.
        if let Some(w) = self.writer.as_mut() {
            let _ = w.flush();
        }
        self.writer = None;
        self.written = written;
        if written == 0 {
            // The lazy `File::create` in `process` starts the file over.
            return Ok(());
        }
        // Drop rows written after the checkpoint, then reopen in append
        // mode — re-creating the file would wipe the checkpointed rows too.
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)?;
        let keep = byte_len_of_first_rows(&f, written)?;
        f.set_len(keep)?;
        drop(f);
        let f = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        self.writer = Some(std::io::BufWriter::new(f));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::testing::with_ctx;

    #[test]
    fn collect_sink_stores_in_order() {
        let (mut sink, store) = CollectSink::new();
        with_ctx(0, |ctx| {
            for seq in 0..5 {
                sink.process(DataTuple::new(seq, vec![seq as f64]), ctx);
            }
        });
        let got = store.lock();
        assert_eq!(got.len(), 5);
        assert_eq!(got[3].seq, 3);
    }

    #[test]
    fn bounded_collect_keeps_most_recent() {
        let (mut sink, store) = CollectSink::with_capacity(3);
        with_ctx(0, |ctx| {
            for seq in 0..10 {
                sink.process(DataTuple::new(seq, vec![]), ctx);
            }
        });
        let got = store.lock();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].seq, 7);
        assert_eq!(got[2].seq, 9);
    }

    #[test]
    fn callback_sink_sees_everything() {
        let count = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&count);
        let mut sink = CallbackSink::new(move |_t| *c2.lock() += 1);
        with_ctx(0, |ctx| {
            for seq in 0..7 {
                sink.process(DataTuple::new(seq, vec![]), ctx);
            }
        });
        assert_eq!(*count.lock(), 7);
    }

    #[test]
    fn csv_sink_restore_truncates_uncheckpointed_rows_and_appends() {
        let mut path = std::env::temp_dir();
        path.push(format!("spca_sink_ckpt_{}.csv", std::process::id()));
        std::fs::remove_file(&path).ok();
        let mut sink = CsvFileSink::new(&path, 1);
        let bytes = {
            let mut snap = Vec::new();
            with_ctx(0, |ctx| {
                sink.process(DataTuple::new(0, vec![1.0]), ctx);
                sink.process(DataTuple::new(1, vec![2.0]), ctx);
                snap = Checkpoint::snapshot(&sink);
                // Rows after the checkpoint must vanish on restore.
                sink.process(DataTuple::new(2, vec![99.0]), ctx);
                sink.on_finish(ctx);
            });
            snap
        };
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "1\n2\n99\n");

        sink.restore(&bytes).unwrap();
        with_ctx(0, |ctx| {
            sink.process(DataTuple::new(2, vec![3.0]), ctx);
            sink.on_finish(ctx);
        });
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "1\n2\n3\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_sink_restore_at_zero_starts_the_file_over() {
        let mut path = std::env::temp_dir();
        path.push(format!("spca_sink_ckpt0_{}.csv", std::process::id()));
        std::fs::remove_file(&path).ok();
        let mut sink = CsvFileSink::new(&path, 1);
        with_ctx(0, |ctx| {
            sink.process(DataTuple::new(0, vec![7.0]), ctx);
            sink.on_finish(ctx);
        });
        let empty = Checkpoint::snapshot(&CsvFileSink::new(&path, 1));
        sink.restore(&empty).unwrap();
        with_ctx(0, |ctx| {
            sink.process(DataTuple::new(0, vec![8.0]), ctx);
            sink.on_finish(ctx);
        });
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "8\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_sink_writes_rows_and_flushes_on_finish() {
        let mut path = std::env::temp_dir();
        path.push(format!("spca_sink_test_{}.csv", std::process::id()));
        let mut sink = CsvFileSink::new(&path, 1000);
        with_ctx(0, |ctx| {
            sink.process(DataTuple::new(0, vec![1.0, 2.0]), ctx);
            sink.process(DataTuple::new(1, vec![3.0, 4.0]), ctx);
            sink.on_finish(ctx);
        });
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "1,2\n3,4\n");
        std::fs::remove_file(path).ok();
    }
}
