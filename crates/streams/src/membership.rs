//! Runtime engine membership for elastic scaling.
//!
//! The dataflow topology is fixed once an engine starts: operators, ports
//! and edges cannot be added mid-run. Elastic scaling therefore
//! *pre-provisions* the graph for the maximum fleet and moves a shared
//! membership boundary at runtime: engines `0..active` are live targets,
//! engines `active..max` are warm standbys that receive no traffic and
//! take no part in synchronization. An [`ActiveSet`] is that boundary —
//! one atomic read on the hot path, written only by the autoscaler.
//!
//! The prefix discipline (always admit the lowest standby, always retire
//! the highest active engine) keeps every consumer's bookkeeping trivial:
//! the split routes over `0..active`, the sync controller rotates over
//! `0..active`, and scale-in/scale-out are single atomic stores.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared, atomically updated count of active engines out of a
/// pre-provisioned pool (prefix membership: engines `0..active()` are
/// live). Cloned handles observe each other's updates immediately.
#[derive(Debug)]
pub struct ActiveSet {
    active: AtomicUsize,
    max: usize,
}

impl ActiveSet {
    /// A membership handle starting with `initial` active engines out of
    /// `max` provisioned. `initial` is clamped into `1..=max`.
    pub fn new(initial: usize, max: usize) -> Arc<Self> {
        let max = max.max(1);
        Arc::new(ActiveSet {
            active: AtomicUsize::new(initial.clamp(1, max)),
            max,
        })
    }

    /// Number of currently active engines (the live prefix).
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Total provisioned engines (the upper bound on [`ActiveSet::active`]).
    pub fn max(&self) -> usize {
        self.max
    }

    /// Moves the membership boundary; the value is clamped into
    /// `1..=max`. Returns the count actually installed.
    pub fn set_active(&self, n: usize) -> usize {
        let n = n.clamp(1, self.max);
        self.active.store(n, Ordering::Release);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_into_bounds() {
        let a = ActiveSet::new(0, 4);
        assert_eq!(a.active(), 1);
        assert_eq!(a.max(), 4);
        assert_eq!(a.set_active(9), 4);
        assert_eq!(a.active(), 4);
        assert_eq!(a.set_active(0), 1);
        assert_eq!(a.active(), 1);
    }

    #[test]
    fn updates_are_visible_across_clones() {
        let a = ActiveSet::new(2, 8);
        let b = Arc::clone(&a);
        a.set_active(5);
        assert_eq!(b.active(), 5);
    }
}
