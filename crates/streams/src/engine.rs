//! The threaded execution engine.
//!
//! One OS thread per processing element (PE): operators fused into a PE
//! dispatch tuples to each other through an in-memory queue (the analogue
//! of InfoSphere passing "data by pointer as a variable in memory"), while
//! cross-PE edges are bounded crossbeam channels that provide backpressure
//! and traffic accounting. Sources are driven cooperatively by their PE's
//! thread; end-of-stream punctuation flows edge-by-edge, so a PE (and the
//! whole run) winds down exactly when all upstream work is drained.
//!
//! ## Shutdown semantics
//!
//! * A source finishes when its `drive` returns `Done`, or after
//!   [`RunningEngine::stop`] requests a cooperative stop.
//! * An operator with data inputs finishes when end-of-stream has arrived
//!   on every data edge; control edges never gate completion (late control
//!   tuples are dropped), which keeps control-port cycles — like the PCA
//!   ring-synchronization mesh — deadlock-free.
//! * An operator with only control inputs finishes when those edges close.
//! * `on_finish` runs before the operator's own end-of-stream propagates,
//!   so terminal operators can emit final results.

use crate::graph::{GraphBuilder, LinkKind, PortKind};
use crate::metrics::{LinkCounters, LinkSnapshot, MetricsRegistry, OpCounters, OpSnapshot};
use crate::operator::{EmitSink, OpContext, Operator, SourceState};
use crate::tuple::{Punctuation, Tuple};
use crossbeam::channel::{bounded, Receiver, Select, Sender};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where an emission goes.
enum Target {
    /// Same-PE operator: queued in the PE's pending deque.
    Local { op: usize, port: PortKind },
    /// Cross-PE channel.
    Remote {
        tx: Sender<Tuple>,
        counters: Arc<LinkCounters>,
        /// Modeled per-tuple sender-side delay (network links).
        delay: Option<Duration>,
    },
}

struct ChanIn {
    rx: Receiver<Tuple>,
    to_local: usize,
    port: PortKind,
    got_eos: bool,
    alive: bool,
}

struct OpSlot {
    #[allow(dead_code)] // retained for debugging and future per-op reporting
    name: String,
    op: Option<Box<dyn Operator>>,
    counters: Arc<OpCounters>,
    out_ports: Vec<Vec<Target>>,
    is_source: bool,
    data_in_degree: usize,
    ctrl_in_degree: usize,
    eos_data: usize,
    eos_ctrl: usize,
    finished: bool,
}

struct PeRuntime {
    slots: Vec<OpSlot>,
    inputs: Vec<ChanIn>,
    stop: Arc<AtomicBool>,
}

/// Traffic report for one cross-PE link.
#[derive(Debug, Clone)]
pub struct LinkReport {
    /// Producing operator's name.
    pub from: String,
    /// Consuming operator's name.
    pub to: String,
    /// Transfer counters.
    pub snapshot: LinkSnapshot,
}

impl LinkReport {
    /// Tuples transferred.
    pub fn tuples(&self) -> u64 {
        self.snapshot.tuples
    }

    /// Bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.snapshot.bytes
    }
}

/// Final report of a finished run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-operator name + counters, in graph insertion order.
    pub ops: Vec<(String, OpSnapshot)>,
    /// Per-cross-PE-link traffic, in edge insertion order.
    pub links: Vec<LinkReport>,
}

impl RunReport {
    /// Snapshot for the operator with the given name (first match).
    pub fn op(&self, name: &str) -> Option<&OpSnapshot> {
        self.ops.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Aggregate data tuples consumed by operators whose name starts with
    /// `prefix` — convenient for summing over parallel replicas.
    pub fn tuples_in_matching(&self, prefix: &str) -> u64 {
        self.ops
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, s)| s.tuples_in)
            .sum()
    }
}

/// A running dataflow; obtain one via [`Engine::start`].
pub struct RunningEngine {
    handles: Vec<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    metrics: MetricsRegistry,
    op_names: Vec<String>,
    link_endpoints: Vec<(String, String)>,
    started: Instant,
}

impl RunningEngine {
    /// Requests a cooperative stop: sources wind down, the pipeline drains.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Live operator snapshots (name, counters).
    pub fn op_snapshots(&self) -> Vec<(String, OpSnapshot)> {
        self.op_names
            .iter()
            .cloned()
            .zip(self.metrics.op_snapshots())
            .collect()
    }

    /// Live snapshot of the operator with the given name.
    pub fn op_snapshot(&self, name: &str) -> Option<OpSnapshot> {
        self.op_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.metrics.op_snapshots()[i])
    }

    /// Wall-clock time since the run started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Waits for every PE thread and returns the final report.
    pub fn join(self) -> RunReport {
        for h in self.handles {
            h.join().expect("PE thread panicked");
        }
        let links = self
            .link_endpoints
            .into_iter()
            .zip(self.metrics.link_snapshots())
            .map(|((from, to), snapshot)| LinkReport { from, to, snapshot })
            .collect();
        RunReport {
            elapsed: self.started.elapsed(),
            ops: self
                .op_names
                .into_iter()
                .zip(self.metrics.op_snapshots())
                .collect(),
            links,
        }
    }
}

/// Engine entry points.
pub struct Engine;

impl Engine {
    /// Builds and launches the dataflow; returns a handle for live metrics
    /// and stopping.
    pub fn start(mut builder: GraphBuilder) -> RunningEngine {
        builder.apply_placements();
        let (op_pe, pes) = builder.resolve_pes();
        let n_ops = builder.ops.len();
        let mut metrics = MetricsRegistry::default();
        let counters: Vec<Arc<OpCounters>> = (0..n_ops).map(|_| metrics.register_op()).collect();

        // Per-op output port count (max wired port + 1).
        let mut n_ports = vec![0usize; n_ops];
        for e in &builder.edges {
            n_ports[e.from] = n_ports[e.from].max(e.out_port + 1);
        }

        // local index of each op inside its PE
        let mut local_idx = vec![0usize; n_ops];
        for ops in &pes {
            for (li, &g) in ops.iter().enumerate() {
                local_idx[g] = li;
            }
        }

        // Build slots per PE.
        let op_names: Vec<String> = builder.ops.iter().map(|o| o.name.clone()).collect();
        let mut slots_per_pe: Vec<Vec<OpSlot>> = pes
            .iter()
            .map(|ops| {
                ops.iter()
                    .map(|&g| OpSlot {
                        name: op_names[g].clone(),
                        op: None, // installed below
                        counters: Arc::clone(&counters[g]),
                        out_ports: (0..n_ports[g]).map(|_| Vec::new()).collect(),
                        is_source: builder.ops[g].is_source,
                        data_in_degree: 0,
                        ctrl_in_degree: 0,
                        eos_data: 0,
                        eos_ctrl: 0,
                        finished: false,
                    })
                    .collect()
            })
            .collect();

        // Move the operator boxes in.
        for (g, entry) in builder.ops.drain(..).enumerate() {
            slots_per_pe[op_pe[g]][local_idx[g]].op = Some(entry.op);
        }

        // Wire edges.
        let mut link_endpoints: Vec<(String, String)> = Vec::new();
        let mut inputs_per_pe: Vec<Vec<ChanIn>> = (0..pes.len()).map(|_| Vec::new()).collect();
        for e in &builder.edges {
            let from_pe = op_pe[e.from];
            let to_pe = op_pe[e.to];
            let slot = &mut slots_per_pe[from_pe][local_idx[e.from]];
            if from_pe == to_pe {
                slot.out_ports[e.out_port].push(Target::Local {
                    op: local_idx[e.to],
                    port: e.port,
                });
            } else {
                let (tx, rx) = bounded(builder.channel_capacity);
                let link = metrics.register_link();
                link_endpoints.push((op_names[e.from].clone(), op_names[e.to].clone()));
                let delay = match e.kind {
                    LinkKind::Network { model_delay_us } if model_delay_us > 0 => {
                        Some(Duration::from_micros(model_delay_us))
                    }
                    _ => None,
                };
                slot.out_ports[e.out_port].push(Target::Remote {
                    tx,
                    counters: link,
                    delay,
                });
                inputs_per_pe[to_pe].push(ChanIn {
                    rx,
                    to_local: local_idx[e.to],
                    port: e.port,
                    got_eos: false,
                    alive: true,
                });
            }
            // In-degrees on the destination slot.
            let dst = &mut slots_per_pe[to_pe][local_idx[e.to]];
            match e.port {
                PortKind::Data => dst.data_in_degree += 1,
                PortKind::Control => dst.ctrl_in_degree += 1,
            }
        }

        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::with_capacity(pes.len());
        for (slots, inputs) in slots_per_pe.into_iter().zip(inputs_per_pe) {
            let pe = PeRuntime {
                slots,
                inputs,
                stop: Arc::clone(&stop),
            };
            handles.push(
                std::thread::Builder::new()
                    .name("spca-pe".to_string())
                    .spawn(move || run_pe(pe))
                    .expect("spawn PE thread"),
            );
        }

        RunningEngine {
            handles,
            stop,
            metrics,
            op_names,
            link_endpoints,
            started: Instant::now(),
        }
    }

    /// Builds, runs to completion, and reports. Only meaningful for graphs
    /// whose sources terminate on their own.
    pub fn run(builder: GraphBuilder) -> RunReport {
        Engine::start(builder).join()
    }
}

/// The per-PE sink: routes emissions to local pending queue or channels.
struct PeSink<'a> {
    out_ports: &'a [Vec<Target>],
    pending: &'a mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &'a AtomicBool,
}

impl EmitSink for PeSink<'_> {
    fn emit(&mut self, port: usize, t: Tuple) {
        let targets = &self.out_ports[port];
        if let Some((last, init)) = targets.split_last() {
            for target in init {
                deliver(target, t.clone(), self.pending);
            }
            deliver(last, t, self.pending);
        }
        // An unwired port silently drops — mirrors InfoSphere streams with
        // no subscribers.
    }

    fn try_emit(&mut self, port: usize, t: Tuple) -> Result<(), Tuple> {
        let targets = &self.out_ports[port];
        // All-or-nothing capacity check; local targets are never full.
        for target in targets {
            if let Target::Remote { tx, .. } = target {
                if tx.is_full() {
                    return Err(t);
                }
            }
        }
        self.emit(port, t);
        Ok(())
    }

    fn backlog(&self, port: usize) -> Option<usize> {
        let targets = &self.out_ports[port];
        if targets.len() != 1 {
            return None;
        }
        match &targets[0] {
            Target::Remote { tx, .. } => Some(tx.len()),
            Target::Local { .. } => None,
        }
    }

    fn n_ports(&self) -> usize {
        self.out_ports.len()
    }

    fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

fn deliver(target: &Target, t: Tuple, pending: &mut VecDeque<(usize, PortKind, Tuple)>) {
    match target {
        Target::Local { op, port } => pending.push_back((*op, *port, t)),
        Target::Remote {
            tx,
            counters,
            delay,
        } => {
            if let Some(d) = delay {
                std::thread::sleep(*d);
            }
            let bytes = t.wire_bytes();
            if tx.send(t).is_ok() {
                counters.add(bytes);
            }
            // A closed receiver means the consumer already finished; the
            // tuple is intentionally dropped.
        }
    }
}

/// Calls a slot's operator method with a context wired to the PE's sink,
/// timing it into the op's busy counter.
macro_rules! with_op {
    ($slots:expr, $pending:expr, $stop:expr, $idx:expr, |$op:ident, $ctx:ident| $body:expr) => {{
        let mut $op = $slots[$idx].op.take().expect("operator in flight");
        let counters = Arc::clone(&$slots[$idx].counters);
        let t0 = Instant::now();
        let ret = {
            let mut sink = PeSink {
                out_ports: &$slots[$idx].out_ports,
                pending: $pending,
                stop: $stop,
            };
            let $ctx = &mut OpContext::new(&mut sink, &counters);
            $body
        };
        counters.add_busy(t0.elapsed().as_nanos() as u64);
        $slots[$idx].op = Some($op);
        ret
    }};
}

fn run_pe(mut pe: PeRuntime) {
    let PeRuntime {
        ref mut slots,
        ref mut inputs,
        ref stop,
    } = pe;
    let mut pending: VecDeque<(usize, PortKind, Tuple)> = VecDeque::new();

    // Start hooks. (Index loop: the macro needs `slots` whole, by index.)
    #[allow(clippy::needless_range_loop)]
    for i in 0..slots.len() {
        with_op!(slots, &mut pending, stop, i, |op, ctx| op.on_start(ctx));
    }
    drain_pending(slots, &mut pending, stop);

    // Operators with no inputs that aren't sources are trivially finished.
    for i in 0..slots.len() {
        let s = &slots[i];
        if !s.is_source && s.data_in_degree == 0 && s.ctrl_in_degree == 0 {
            finish_op(slots, &mut pending, stop, i);
        }
    }
    drain_pending(slots, &mut pending, stop);

    let source_idxs: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_source).collect();

    loop {
        let mut progressed = false;

        // 1. Drive live sources.
        for &i in &source_idxs {
            if slots[i].finished {
                continue;
            }
            if stop.load(Ordering::Relaxed) {
                finish_op(slots, &mut pending, stop, i);
                drain_pending(slots, &mut pending, stop);
                continue;
            }
            let state: SourceState =
                with_op!(slots, &mut pending, stop, i, |op, ctx| op.drive(ctx));
            match state {
                SourceState::Emitted => progressed = true,
                SourceState::Idle => {}
                SourceState::Done => {
                    finish_op(slots, &mut pending, stop, i);
                    progressed = true;
                }
            }
            drain_pending(slots, &mut pending, stop);
        }

        let sources_alive = source_idxs.iter().any(|&i| !slots[i].finished);

        // 2. Receive from cross-PE channels.
        if sources_alive {
            // Non-blocking sweep so sources keep producing.
            for ci in 0..inputs.len() {
                if !inputs[ci].alive {
                    continue;
                }
                // Bounded batch per channel per iteration for fairness.
                for _ in 0..64 {
                    match inputs[ci].rx.try_recv() {
                        Ok(t) => {
                            progressed = true;
                            route(slots, inputs, &mut pending, stop, ci, t);
                        }
                        Err(crossbeam::channel::TryRecvError::Empty) => break,
                        Err(crossbeam::channel::TryRecvError::Disconnected) => {
                            on_disconnect(slots, inputs, &mut pending, stop, ci);
                            break;
                        }
                    }
                }
            }
        } else {
            // Blocking select with timeout. The selection happens in its
            // own scope so the immutable receiver borrows end before the
            // mutable dispatch below.
            let alive: Vec<usize> = (0..inputs.len()).filter(|&i| inputs[i].alive).collect();
            if !alive.is_empty() {
                let event: Option<(usize, Option<Tuple>)> = {
                    let mut sel = Select::new();
                    for &i in &alive {
                        sel.recv(&inputs[i].rx);
                    }
                    match sel.select_timeout(Duration::from_millis(20)) {
                        Ok(oper) => {
                            let ci = alive[oper.index()];
                            match oper.recv(&inputs[ci].rx) {
                                Ok(t) => Some((ci, Some(t))),
                                Err(_) => Some((ci, None)),
                            }
                        }
                        Err(_) => None, // timeout: fall through to exit checks
                    }
                };
                match event {
                    Some((ci, Some(t))) => {
                        progressed = true;
                        route(slots, inputs, &mut pending, stop, ci, t);
                    }
                    Some((ci, None)) => on_disconnect(slots, inputs, &mut pending, stop, ci),
                    None => {}
                }
            }
        }
        drain_pending(slots, &mut pending, stop);

        // 3. Exit when everything is finished.
        if slots.iter().all(|s| s.finished) {
            break;
        }
        // If nothing happened and no channel can ever deliver again, the
        // remaining unfinished ops can never finish through EOS (e.g. a
        // consumer fed only by a stopped peer that never wired EOS) —
        // finish them defensively rather than spinning forever.
        let channels_alive = inputs.iter().any(|c| c.alive);
        if !progressed && !sources_alive && !channels_alive && pending.is_empty() {
            for i in 0..slots.len() {
                if !slots[i].finished {
                    finish_op(slots, &mut pending, stop, i);
                }
            }
            drain_pending(slots, &mut pending, stop);
        }
        if !progressed && sources_alive {
            // Idle sources: yield briefly instead of spinning.
            std::thread::yield_now();
        }
    }
}

fn route(
    slots: &mut [OpSlot],
    inputs: &mut [ChanIn],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    ci: usize,
    t: Tuple,
) {
    let to = inputs[ci].to_local;
    let port = inputs[ci].port;
    if t.is_eos() {
        inputs[ci].got_eos = true;
        inputs[ci].alive = false;
    }
    dispatch(slots, pending, stop, to, port, t);
}

fn on_disconnect(
    slots: &mut [OpSlot],
    inputs: &mut [ChanIn],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    ci: usize,
) {
    inputs[ci].alive = false;
    if !inputs[ci].got_eos {
        // Upstream dropped without punctuating (stop/panic path): treat the
        // closure as end-of-stream so this PE can still drain and exit.
        inputs[ci].got_eos = true;
        let to = inputs[ci].to_local;
        let port = inputs[ci].port;
        dispatch(
            slots,
            pending,
            stop,
            to,
            port,
            Tuple::Punct(Punctuation::EndOfStream),
        );
    }
}

fn dispatch(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    idx: usize,
    port: PortKind,
    t: Tuple,
) {
    if slots[idx].finished {
        return; // late tuple for a finished operator
    }
    match t {
        Tuple::Punct(Punctuation::EndOfStream) => {
            match port {
                PortKind::Data => slots[idx].eos_data += 1,
                PortKind::Control => slots[idx].eos_ctrl += 1,
            }
            let s = &slots[idx];
            let data_done = s.eos_data >= s.data_in_degree;
            let ready = if s.data_in_degree > 0 {
                data_done
            } else {
                // Control-only consumer: wait for its control edges.
                s.eos_ctrl >= s.ctrl_in_degree
            };
            // Sources with no inputs only finish via drive()/stop; a source
            // *with* a data input (e.g. a sync controller watching the data
            // stream) winds down when that stream ends.
            let externally_finishable = !s.is_source || s.data_in_degree > 0;
            if ready && externally_finishable {
                finish_op(slots, pending, stop, idx);
            }
        }
        Tuple::Data(d) => {
            if port == PortKind::Data {
                slots[idx].counters.add_in();
                with_op!(slots, pending, stop, idx, |op, ctx| op.process(d, ctx));
            }
            // Data on a control port is a wiring error; dropped.
        }
        Tuple::Control(c) => {
            slots[idx].counters.add_control();
            with_op!(slots, pending, stop, idx, |op, ctx| op.on_control(c, ctx));
        }
    }
}

fn finish_op(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    idx: usize,
) {
    if slots[idx].finished {
        return;
    }
    with_op!(slots, pending, stop, idx, |op, ctx| op.on_finish(ctx));
    slots[idx].finished = true;
    // Punctuate every out port (local + remote).
    let n_ports = slots[idx].out_ports.len();
    for p in 0..n_ports {
        let mut sink = PeSink {
            out_ports: &slots[idx].out_ports,
            pending,
            stop,
        };
        sink.emit(p, Tuple::Punct(Punctuation::EndOfStream));
    }
    // Release channel senders so downstream PEs observe closure even if
    // they already stopped selecting this edge.
    for p in slots[idx].out_ports.iter_mut() {
        p.clear();
    }
}

fn drain_pending(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
) {
    while let Some((idx, port, t)) = pending.pop_front() {
        dispatch(slots, pending, stop, idx, port, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, OpId};
    use crate::operator::{OpContext, Operator, SourceState};
    use crate::tuple::DataTuple;
    use parking_lot::Mutex;

    /// Source emitting `n` one-dimensional tuples then finishing.
    struct CountSource {
        n: u64,
        next: u64,
    }

    impl Operator for CountSource {
        fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
        fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
            if self.next >= self.n {
                return SourceState::Done;
            }
            let d = DataTuple::new(self.next, vec![self.next as f64]);
            self.next += 1;
            ctx.emit_data(0, d);
            SourceState::Emitted
        }
    }

    /// Terminal operator collecting sequence numbers.
    #[derive(Clone)]
    struct Collect {
        seen: Arc<Mutex<Vec<u64>>>,
    }

    impl Operator for Collect {
        fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
            self.seen.lock().push(t.seq);
        }
    }

    /// Pass-through doubling the value.
    struct Double;
    impl Operator for Double {
        fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
            let vals: Vec<f64> = t.values.iter().map(|v| v * 2.0).collect();
            ctx.emit_data(0, DataTuple::new(t.seq, vals));
        }
    }

    fn pipeline(n: u64, fused: bool) -> (Vec<u64>, RunReport) {
        let mut g = GraphBuilder::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n, next: 0 }));
        let mid = g.add_op("double", Box::new(Double));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, mid, PortKind::Data);
        g.connect(mid, 0, sink, PortKind::Data);
        if fused {
            g.fuse(&[src, mid, sink]);
        }
        let report = Engine::run(g);
        let data = seen.lock().clone();
        (data, report)
    }

    #[test]
    fn unfused_pipeline_delivers_everything_in_order() {
        let (seen, report) = pipeline(1000, false);
        assert_eq!(seen.len(), 1000);
        assert!(seen.windows(2).all(|w| w[1] == w[0] + 1), "order violated");
        assert_eq!(report.op("collect").unwrap().tuples_in, 1000);
        assert_eq!(report.op("src").unwrap().tuples_out, 1000);
        // Two cross-PE links carried traffic.
        assert_eq!(report.links.len(), 2);
        assert_eq!(report.links[0].tuples(), 1001); // + EOS
        assert_eq!(report.links[0].from, "src");
        assert_eq!(report.links[1].to, "collect");
    }

    #[test]
    fn fused_pipeline_has_no_links() {
        let (seen, report) = pipeline(500, true);
        assert_eq!(seen.len(), 500);
        assert!(report.links.is_empty());
        assert_eq!(report.op("double").unwrap().tuples_in, 500);
    }

    #[test]
    fn fan_out_duplicates_tuples() {
        let mut g = GraphBuilder::new();
        let seen_a = Arc::new(Mutex::new(Vec::new()));
        let seen_b = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 100, next: 0 }));
        let a = g.add_op(
            "a",
            Box::new(Collect {
                seen: Arc::clone(&seen_a),
            }),
        );
        let b = g.add_op(
            "b",
            Box::new(Collect {
                seen: Arc::clone(&seen_b),
            }),
        );
        g.connect(src, 0, a, PortKind::Data);
        g.connect(src, 0, b, PortKind::Data);
        Engine::run(g);
        assert_eq!(seen_a.lock().len(), 100);
        assert_eq!(seen_b.lock().len(), 100);
    }

    #[test]
    fn stop_terminates_infinite_source() {
        struct Forever(u64);
        impl Operator for Forever {
            fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
            fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
                self.0 += 1;
                ctx.emit_data(0, DataTuple::new(self.0, vec![0.0]));
                SourceState::Emitted
            }
        }
        let mut g = GraphBuilder::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("inf", Box::new(Forever(0)));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, sink, PortKind::Data);
        let running = Engine::start(g);
        std::thread::sleep(Duration::from_millis(50));
        running.stop();
        let report = running.join();
        let n = seen.lock().len() as u64;
        assert!(n > 0, "nothing flowed before stop");
        assert_eq!(report.op("collect").unwrap().tuples_in, n);
    }

    #[test]
    fn on_finish_emits_final_results() {
        struct Summer {
            total: f64,
        }
        impl Operator for Summer {
            fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
                self.total += t.values[0];
            }
            fn on_finish(&mut self, ctx: &mut OpContext<'_>) {
                ctx.emit_data(0, DataTuple::new(0, vec![self.total]));
            }
        }
        let mut g = GraphBuilder::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 10, next: 0 }));
        let sum = g.add_op("sum", Box::new(Summer { total: 0.0 }));
        let out = g.add_op(
            "out",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, sum, PortKind::Data);
        g.connect(sum, 0, out, PortKind::Data);
        Engine::run(g);
        // Final tuple seq 0 carrying sum 0+1+..+9 = 45 observed by `out`.
        assert_eq!(seen.lock().len(), 1);
    }

    #[test]
    fn control_edges_do_not_gate_completion() {
        // A control-only cycle between two ops must not deadlock: data EOS
        // finishes both.
        struct Echo;
        impl Operator for Echo {
            fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
                // Send a control ping to the peer on port 1.
                ctx.emit_control(1, crate::tuple::ControlTuple::signal(1, t.seq as u32));
                ctx.emit_data(0, t);
            }
        }
        let mut g = GraphBuilder::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 50, next: 0 }));
        let e1 = g.add_op("e1", Box::new(Echo));
        let e2 = g.add_op("e2", Box::new(Echo));
        let sink = g.add_op(
            "sink",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, e1, PortKind::Data);
        g.connect(src, 0, e2, PortKind::Data);
        g.connect(e1, 0, sink, PortKind::Data);
        g.connect(e2, 0, sink, PortKind::Data);
        // Control cycle. Fusing the echoes makes control delivery
        // deterministic (in-PE pending queue drains before data EOS);
        // cross-PE control tuples racing EOS may legitimately be dropped.
        g.connect(e1, 1, e2, PortKind::Control);
        g.connect(e2, 1, e1, PortKind::Control);
        g.fuse(&[e1, e2]);
        let report = Engine::run(g);
        assert_eq!(seen.lock().len(), 100);
        // Both echoes saw control traffic, and the cycle did not deadlock.
        assert!(report.op("e1").unwrap().control_in > 0);
        assert!(report.op("e2").unwrap().control_in > 0);
    }

    #[test]
    fn backpressure_does_not_lose_tuples() {
        let mut g = GraphBuilder::new().with_channel_capacity(2);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 500, next: 0 }));
        struct Slow;
        impl Operator for Slow {
            fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
                std::thread::sleep(Duration::from_micros(20));
                ctx.emit_data(0, t);
            }
        }
        let slow = g.add_op("slow", Box::new(Slow));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, slow, PortKind::Data);
        g.connect(slow, 0, sink, PortKind::Data);
        Engine::run(g);
        assert_eq!(seen.lock().len(), 500);
    }

    #[test]
    fn network_link_accounts_bytes() {
        let mut g = GraphBuilder::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 10, next: 0 }));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect_kind(
            src,
            0,
            sink,
            PortKind::Data,
            LinkKind::Network { model_delay_us: 0 },
        );
        let report = Engine::run(g);
        assert_eq!(report.links.len(), 1);
        // 10 data tuples (16 + 8 bytes each) + EOS (8).
        assert_eq!(report.links[0].bytes(), 10 * 24 + 8);
    }

    #[test]
    fn empty_graph_terminates() {
        let g = GraphBuilder::new();
        let report = Engine::run(g);
        assert!(report.ops.is_empty());
    }

    #[test]
    fn isolated_non_source_terminates() {
        let mut g = GraphBuilder::new();
        struct Nop;
        impl Operator for Nop {
            fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
        }
        let _id: OpId = g.add_op("lonely", Box::new(Nop));
        let report = Engine::run(g);
        assert_eq!(report.ops.len(), 1);
    }
}
