//! The threaded execution engine.
//!
//! One OS thread per processing element (PE): operators fused into a PE
//! dispatch tuples to each other through an in-memory queue (the analogue
//! of InfoSphere passing "data by pointer as a variable in memory"), while
//! cross-PE edges are bounded crossbeam channels that provide backpressure
//! and traffic accounting. Sources are driven cooperatively by their PE's
//! thread; end-of-stream punctuation flows edge-by-edge, so a PE (and the
//! whole run) winds down exactly when all upstream work is drained.
//!
//! ## Batched transport
//!
//! Cross-PE channels carry [`Frame`]s — pooled `Vec<Tuple>` batches — so
//! one channel wake-up amortizes over up to `GraphBuilder::with_batch_size`
//! tuples. Each edge flushes adaptively (threshold reached, downstream
//! idle, scheduler about to block) and *immediately* for control tuples and
//! punctuation, so synchronization latency is never batched away; see
//! [`RemoteEdge`] for the exact policy. Delivery order per edge is
//! unchanged from per-tuple transport (frames preserve FIFO), and link
//! metrics stay tuple-denominated.
//!
//! ## Supervision
//!
//! Two nested layers, mirroring InfoSphere's operator/PE split:
//!
//! **Operator-level.** Callbacks on the tuple path (`process` /
//! `on_control`) run under a supervisor: a panic is isolated with
//! `catch_unwind`, the operator instance survives (it is borrowed, not
//! moved, into the guarded call), and after a capped exponential backoff
//! the supervisor asks it to [`Operator::recover`]. A recovered operator
//! resumes where it left off — the in-flight data tuple is redelivered
//! exactly once — while an unrecoverable one is finished so its
//! end-of-stream still propagates and the rest of the graph drains
//! normally. Restart counts surface as `restarts` in
//! [`OpSnapshot`]/[`RunReport`].
//!
//! **PE-level.** A panic that escapes the operator layer — a source's
//! `drive` blowing up, or an injected `kill-pe` fault — unwinds the PE's
//! scheduler loop itself. The PE's channels, in-flight tuples and operator
//! slots live *outside* that unwind (in [`PeRuntime`], owned across the
//! `catch_unwind`), so the supervisor tears the PE down and rebuilds it in
//! place: every [`crate::checkpoint::Checkpoint`]-able operator is
//! rehydrated from the PE's snapshot manifest (written periodically at the
//! operators' cadence, and — for a clean injected kill — once more at
//! teardown so recovery round-trips consistent state through disk), cross-PE
//! frame channels reconnect untouched (no tuple is lost or duplicated: the
//! pending queue and edge buffers survive in `PeRuntime`), and the loop
//! re-enters. PE restarts count as `pe_restarts` on every member operator
//! and are bounded by the same [`RestartPolicy`] as operator restarts.
//!
//! Deterministic faults (panic/kill-pe/poison/stall on operators,
//! drop/dup/delay on cross-PE links) are injected from the builder's
//! [`crate::fault::FaultPlan`].
//!
//! ## Shutdown semantics
//!
//! * A source finishes when its `drive` returns `Done`, or after
//!   [`RunningEngine::stop`] requests a cooperative stop.
//! * An operator with data inputs finishes when end-of-stream has arrived
//!   on every data edge; control edges never gate completion (late control
//!   tuples are dropped), which keeps control-port cycles — like the PCA
//!   ring-synchronization mesh — deadlock-free.
//! * An operator with only control inputs finishes when those edges close.
//! * `on_finish` runs before the operator's own end-of-stream propagates,
//!   so terminal operators can emit final results.

use crate::checkpoint::{self, PeCheckpointer};
use crate::fault::{FaultAction, FaultTarget, RestartPolicy};
use crate::graph::{GraphBuilder, LinkKind, PortKind};
use crate::metrics::{LinkCounters, LinkSnapshot, MetricsRegistry, OpCounters, OpSnapshot};
use crate::netio::{AckMode, NetTransport};
use crate::operator::{EmitSink, OpContext, Operator, SourceState};
use crate::tuple::{DataTuple, Frame, FramePool, Punctuation, Tuple};
use crossbeam::channel::{bounded, Receiver, Select, Sender};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuples routed per live channel in one bounded sweep (after a select
/// hit, or per scheduler iteration while sources are still live). Bounded
/// so one hot channel cannot starve its siblings or a co-resident source.
const SWEEP_TUPLES: usize = 256;

/// Spare frame buffers retained per edge pool.
const POOL_DEPTH: usize = 8;

/// One fault from the plan, armed against its trigger point. Each fault
/// fires at most once so a plan stays a finite, reproducible script.
struct InjectedFault {
    action: FaultAction,
    fired: bool,
}

impl InjectedFault {
    fn arm(actions: Vec<FaultAction>) -> Vec<InjectedFault> {
        actions
            .into_iter()
            .map(|action| InjectedFault {
                action,
                fired: false,
            })
            .collect()
    }
}

/// Sender-side state of one cross-PE edge: tuples accumulate in `buf` and
/// travel as a [`Frame`] per channel message.
///
/// Flush policy (adaptive):
/// * buffer reached the configured batch size, or
/// * the tuple is control/punctuation — sync signals and end-of-stream must
///   never wait behind a partial data batch (§III-C latency), or
/// * the downstream channel is empty and at least a quarter batch has
///   accumulated — the consumer is caught up, so holding a decent partial
///   frame back would only add latency, but flushing on *every* tuple to a
///   drained consumer would degenerate to one-tuple frames and forfeit the
///   amortization batching exists for.
///
/// The PE scheduler additionally flushes every edge whenever it is about to
/// idle or block, so no tuple is ever stranded in a buffer.
struct RemoteEdge {
    tx: Sender<Frame>,
    counters: Arc<LinkCounters>,
    /// Modeled per-message sender-side overhead (network links).
    delay: Option<Duration>,
    /// Flush threshold (tuples per frame); 1 = legacy per-tuple transport.
    batch: usize,
    buf: Vec<Tuple>,
    pool: Arc<FramePool>,
    /// Tuples sent but not yet routed by the consumer (backlog accounting).
    inflight: Arc<AtomicUsize>,
    /// Armed link faults (drop/dup/delay) from the fault plan; empty in
    /// normal runs.
    faults: Vec<InjectedFault>,
    /// 1-based count of data tuples pushed onto this edge, for fault
    /// trigger points. Only maintained while faults are armed.
    fault_data_seen: u64,
}

impl RemoteEdge {
    fn push(&mut self, t: Tuple) {
        // Link faults model the network: they apply to data tuples only
        // (corrupting punctuation would deadlock the graph, not test
        // recovery) and each fires exactly once at its 1-based index.
        if !self.faults.is_empty() {
            if let Tuple::Data(_) = &t {
                self.fault_data_seen += 1;
                let seen = self.fault_data_seen;
                let mut copies = 1usize;
                let mut hold_ms = None;
                for f in self.faults.iter_mut() {
                    if f.fired {
                        continue;
                    }
                    match f.action {
                        FaultAction::Drop(n) if n == seen => {
                            f.fired = true;
                            copies = 0;
                        }
                        FaultAction::Duplicate(n) if n == seen => {
                            f.fired = true;
                            copies = 2;
                        }
                        FaultAction::Delay { at, ms } if at == seen => {
                            f.fired = true;
                            hold_ms = Some(ms);
                        }
                        _ => {}
                    }
                }
                if let Some(ms) = hold_ms {
                    // Holding the sender delays this tuple and everything
                    // behind it — late but still in order, like a stalled
                    // network queue.
                    std::thread::sleep(Duration::from_millis(ms));
                }
                match copies {
                    0 => return,
                    2 => {
                        self.push_tuple(t.clone());
                        self.push_tuple(t);
                        return;
                    }
                    _ => {}
                }
            }
        }
        self.push_tuple(t);
    }

    fn push_tuple(&mut self, t: Tuple) {
        let urgent = !matches!(t, Tuple::Data(_));
        self.buf.push(t);
        // Adaptive flush: control tuples and punctuation go out at once; a
        // full buffer goes out; and a starved consumer (empty channel) gets
        // an early partial frame once a quarter batch has accumulated —
        // without the fill floor, a split alternating between consumers
        // that keep their channels drained would degenerate to one-tuple
        // frames and pay the per-send synchronization batching exists to
        // amortize. Sub-quarter buffers are bounded in latency by the
        // scheduler, which flushes every edge before blocking or idling.
        if urgent
            || self.buf.len() >= self.batch
            || (self.tx.is_empty() && self.buf.len() * 4 >= self.batch)
        {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let tuples = std::mem::replace(&mut self.buf, self.pool.take(self.batch));
        if let Some(d) = self.delay {
            // The modeled overhead is charged once per message, mirroring
            // the cluster cost model's per-message send/receive terms: on a
            // real link every send pays a fixed syscall/framing/wakeup cost
            // regardless of payload, and amortizing it is precisely what
            // frame batching buys (§IV). A calibrated busy-wait is used
            // instead of `sleep` because µs-scale sleeps are dominated by
            // timer slack, which would swamp the model.
            let until = Instant::now() + d;
            while Instant::now() < until {
                std::hint::spin_loop();
            }
        }
        let n = tuples.len() as u64;
        let frame = Frame::from_vec(tuples);
        let bytes = frame.wire_bytes();
        self.inflight.fetch_add(n as usize, Ordering::Relaxed);
        if self.tx.send(frame).is_ok() {
            // Per-tuple accounting is preserved inside frames so LinkReport
            // is batch-invariant.
            self.counters.add_many(n, bytes);
        } else {
            // A closed receiver means the consumer already finished; the
            // frame is intentionally dropped.
            self.inflight.fetch_sub(n as usize, Ordering::Relaxed);
        }
    }

    /// Tuples not yet routed by the consumer: local buffer + in flight.
    fn depth(&self) -> usize {
        self.buf.len() + self.inflight.load(Ordering::Relaxed)
    }
}

/// Where an emission goes.
enum Target {
    /// Same-PE operator: queued in the PE's pending deque.
    Local { op: usize, port: PortKind },
    /// Cross-PE edge with frame batching.
    Remote(RemoteEdge),
}

/// Receive-side state of one cross-PE edge. The receivers themselves live
/// in a separate `Vec` (`PeRuntime::rxs`) so a cached `Select` can keep
/// borrowing them while this metadata is updated.
///
/// `cur` holds the partially-consumed current frame *reversed*, so the next
/// tuple is an O(1) `pop`. Consuming frames through a cursor instead of
/// dispatching them wholesale lets the scheduler interleave channels at
/// tuple granularity — the same fairness the per-tuple select loop had —
/// while still paying channel synchronization only once per frame.
struct ChanMeta {
    to_local: usize,
    port: PortKind,
    got_eos: bool,
    alive: bool,
    /// Remaining tuples of the current frame, in reverse delivery order.
    cur: Vec<Tuple>,
    pool: Arc<FramePool>,
    inflight: Arc<AtomicUsize>,
    /// Tuples routed off this channel so far. For socket-backed channels
    /// this is the durable consumption watermark persisted as a
    /// `__netlink{id}` pseudo-part in the PE manifest.
    routed: u64,
    /// Socket-link bookkeeping when this channel's upstream runs in another
    /// process; `None` for ordinary in-process channels.
    net: Option<NetIn>,
}

/// Receiver-side counters shared with the [`NetTransport`] for one
/// socket-backed incoming channel.
struct NetIn {
    /// Global edge index — the wire link id and the `__netlink{id}` key.
    link_id: u64,
    /// Checkpoint-stable watermark: entries whose effects are durable on
    /// disk. The transport acknowledges up to this point when the PE
    /// checkpoints (AckMode::Stable); ignored in receipt-ack mode.
    stable: Arc<AtomicU64>,
    /// Entries the transport has pushed into the channel. Preset from the
    /// manifest on rehydrate so the RESUME handshake asks the sender to
    /// skip what this PE already consumed durably.
    delivered: Arc<AtomicU64>,
}

impl ChanMeta {
    /// Installs a freshly received frame as the current cursor.
    fn accept(&mut self, frame: Frame) {
        let Frame { mut tuples } = frame;
        self.inflight.fetch_sub(tuples.len(), Ordering::Relaxed);
        tuples.reverse();
        debug_assert!(self.cur.is_empty(), "frame accepted over unconsumed cursor");
        let spent = std::mem::replace(&mut self.cur, tuples);
        self.pool.put(spent);
    }
}

/// Outcome of asking a channel cursor for its next tuple.
enum Next {
    /// A tuple to route.
    Tuple(Tuple),
    /// Nothing buffered and nothing queued right now.
    Empty,
    /// The channel closed with no current tuple.
    Disconnected,
}

struct OpSlot {
    #[allow(dead_code)] // retained for debugging and future per-op reporting
    name: String,
    op: Option<Box<dyn Operator>>,
    counters: Arc<OpCounters>,
    out_ports: Vec<Vec<Target>>,
    is_source: bool,
    data_in_degree: usize,
    ctrl_in_degree: usize,
    eos_data: usize,
    eos_ctrl: usize,
    finished: bool,
    /// Armed operator faults (panic/poison/stall); empty in normal runs.
    faults: Vec<InjectedFault>,
    /// 1-based count of data tuples delivered, for fault trigger points.
    fault_data_seen: u64,
    /// Supervisor restart policy for this operator.
    policy: RestartPolicy,
    /// Restarts performed so far (compared against `policy.max_restarts`).
    restart_attempts: u64,
    /// Sequence number of the last redelivered tuple: a tuple whose retry
    /// panics again is a poison pill and is dropped, not redelivered
    /// forever.
    last_redelivered: Option<u64>,
}

/// Panic payload used to unwind a PE's scheduler loop on purpose. `clean`
/// means the unwind started between tuples with every operator box parked
/// in its slot (the injected `kill-pe` case), so the in-memory state is a
/// consistent set worth persisting before the rebuild.
struct PeKill {
    clean: bool,
}

/// Everything a PE owns that must survive a whole-PE restart. The
/// scheduler body (`run_pe_once`) only *borrows* this, so when a panic
/// unwinds the body, channel endpoints (senders live in `slots`' remote
/// targets, receivers in `rxs`), partially consumed frame cursors, the
/// in-PE pending queue, and the operator boxes themselves all survive for
/// the supervisor to rebuild around.
struct PeRuntime {
    slots: Vec<OpSlot>,
    /// Frame receivers, parallel to `metas`. Kept separate (and never
    /// mutated after construction) so the scheduler can cache a `Select`
    /// borrowing them across loop iterations.
    rxs: Vec<Receiver<Frame>>,
    metas: Vec<ChanMeta>,
    stop: Arc<AtomicBool>,
    /// In-PE dispatch queue. Owned here — not in the scheduler body — so
    /// tuples queued at the moment a PE dies are redelivered, not lost.
    pending: VecDeque<(usize, PortKind, Tuple)>,
    /// This PE's index in the graph's PE list (manifest identity).
    pe_index: usize,
    /// Bounds PE-level restarts (same policy as operator restarts).
    policy: RestartPolicy,
    /// Snapshot writer, when the graph has a checkpoint dir configured.
    checkpoint: Option<PeCheckpointer>,
    /// Whole-PE restarts performed so far.
    pe_restarts: u64,
    /// Sum of member `tuples_in` at the last periodic checkpoint.
    last_ckpt_total: u64,
    /// Consecutive periodic-checkpoint write failures. Each failure doubles
    /// the effective checkpoint window (capped), so a full disk is polled
    /// at a gentle rate instead of hammered every cadence; any success
    /// resets the backoff.
    ckpt_failures: u64,
    /// True once `on_start` hooks have run; a restarted PE must not re-run
    /// them (operators resume via `Checkpoint::restore`, not a fresh start).
    started: bool,
    /// Snapshot set recovered at startup (distributed rehydrate): operator
    /// state restored right after the `on_start` hooks of the first
    /// scheduler entry, so a respawned worker resumes where its manifest
    /// left off instead of reprocessing from scratch.
    rehydrate: Option<checkpoint::SnapshotSet>,
}

/// Traffic report for one cross-PE link.
#[derive(Debug, Clone)]
pub struct LinkReport {
    /// Producing operator's name.
    pub from: String,
    /// Consuming operator's name.
    pub to: String,
    /// Transfer counters.
    pub snapshot: LinkSnapshot,
}

impl LinkReport {
    /// Tuples transferred.
    pub fn tuples(&self) -> u64 {
        self.snapshot.tuples
    }

    /// Bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.snapshot.bytes
    }
}

/// Final report of a finished run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-operator name + counters, in graph insertion order.
    pub ops: Vec<(String, OpSnapshot)>,
    /// Per-cross-PE-link traffic, in edge insertion order.
    pub links: Vec<LinkReport>,
}

impl RunReport {
    /// Snapshot for the operator with the given name (first match).
    pub fn op(&self, name: &str) -> Option<&OpSnapshot> {
        self.ops.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Aggregate data tuples consumed by operators whose name starts with
    /// `prefix` — convenient for summing over parallel replicas.
    pub fn tuples_in_matching(&self, prefix: &str) -> u64 {
        self.ops
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, s)| s.tuples_in)
            .sum()
    }

    /// Total supervisor restarts across all operators. Zero in a fault-free
    /// run; benchmark artifacts are rejected when this is nonzero.
    pub fn total_restarts(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.restarts).sum()
    }

    /// Total whole-PE restarts, summed over operators (each member of a
    /// restarted PE counts the restart it lived through). Zero in a
    /// fault-free run; benchmark artifacts are rejected when this is
    /// nonzero.
    pub fn total_pe_restarts(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.pe_restarts).sum()
    }

    /// Total tuples diverted to quarantine across all operators.
    pub fn total_quarantined(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.quarantined).sum()
    }

    /// Total skipped synchronization steps across all operators.
    pub fn total_sync_skips(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.sync_skips).sum()
    }

    /// Total storage faults survived across all operators.
    pub fn total_io_faults(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.io_faults).sum()
    }

    /// Total checkpoint/state files quarantined aside as `*.corrupt-N`.
    pub fn total_quarantined_snapshots(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.quarantined_snapshots).sum()
    }

    /// Total periodic checkpoints skipped because the write failed.
    pub fn total_checkpoint_skips(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.checkpoint_skips).sum()
    }

    /// Total elastic scale-out events (engines admitted into the fleet).
    pub fn total_scale_outs(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.scale_outs).sum()
    }

    /// Total elastic scale-in events (engines retired from the fleet).
    pub fn total_scale_ins(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.scale_ins).sum()
    }
}

/// One process's share of a distributed run (see [`Engine::start_in_partition`]).
///
/// Every participating process builds the *identical* graph and names the
/// operators it owns; edges whose endpoints land in different processes are
/// carried by `net` as codec frames over TCP (keyed by the edge's global
/// index), edges between two foreign operators are skipped entirely, and
/// everything else is wired exactly as in a single-process run. Operator
/// fusion must respect the partition: two operators fused into one PE must
/// live in the same process.
pub struct NetPartition {
    /// Names of the operators this process runs. PE threads are spawned
    /// only for PEs whose members are all listed here.
    pub local_ops: HashSet<String>,
    /// The socket transport carrying boundary edges. Must be bound but not
    /// yet started; the engine registers its links and starts it.
    pub net: Arc<NetTransport>,
    /// Data-plane address of the peer process for each *outgoing* boundary
    /// edge, keyed by the edge's global index in graph insertion order.
    pub peers: HashMap<u64, SocketAddr>,
    /// Recover local PEs from their checkpoint manifests before running —
    /// the respawned-worker path. Requires a checkpoint dir on the builder.
    pub rehydrate: bool,
}

/// A running dataflow; obtain one via [`Engine::start`].
pub struct RunningEngine {
    handles: Vec<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    metrics: MetricsRegistry,
    op_names: Vec<String>,
    link_endpoints: Vec<(String, String)>,
    started: Instant,
    /// Socket transport for distributed runs; shut down after the local PEs
    /// drain (senders first flush + await acks for every queued frame).
    net: Option<Arc<NetTransport>>,
}

impl RunningEngine {
    /// Requests a cooperative stop: sources wind down, the pipeline drains.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Live operator snapshots (name, counters).
    pub fn op_snapshots(&self) -> Vec<(String, OpSnapshot)> {
        self.op_names
            .iter()
            .cloned()
            .zip(self.metrics.op_snapshots())
            .collect()
    }

    /// Live snapshot of the operator with the given name.
    pub fn op_snapshot(&self, name: &str) -> Option<OpSnapshot> {
        self.op_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.metrics.op_snapshots()[i])
    }

    /// Wall-clock time since the run started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Whether every PE thread has exited (the pipeline has drained).
    /// Non-blocking; [`RunningEngine::join`] still collects the report.
    pub fn is_finished(&self) -> bool {
        self.handles.iter().all(|h| h.is_finished())
    }

    /// Waits for every PE thread and returns the final report.
    pub fn join(self) -> RunReport {
        for h in self.handles {
            h.join().expect("PE thread panicked");
        }
        // Transport shutdown comes after the PEs drain: senders hold their
        // retransmit queues until the peer acknowledges every frame, so a
        // worker's results are on the coordinator's side of the wire before
        // this returns.
        if let Some(net) = &self.net {
            net.shutdown();
        }
        let links = self
            .link_endpoints
            .into_iter()
            .zip(self.metrics.link_snapshots())
            .map(|((from, to), snapshot)| LinkReport { from, to, snapshot })
            .collect();
        RunReport {
            elapsed: self.started.elapsed(),
            ops: self
                .op_names
                .into_iter()
                .zip(self.metrics.op_snapshots())
                .collect(),
            links,
        }
    }
}

/// Engine entry points.
pub struct Engine;

impl Engine {
    /// Builds and launches the dataflow; returns a handle for live metrics
    /// and stopping.
    pub fn start(builder: GraphBuilder) -> RunningEngine {
        Engine::start_inner(builder, None)
    }

    /// Launches this process's share of a distributed dataflow.
    ///
    /// Every participating process builds the *identical* graph (same
    /// operators, same insertion order — edge indices are the wire link
    /// ids) and declares which operators it owns via the partition. PE
    /// threads are spawned only for local operators; edges crossing the
    /// process boundary travel as codec frames over the partition's
    /// [`NetTransport`] with exactly-once redelivery on reconnect.
    pub fn start_in_partition(builder: GraphBuilder, partition: NetPartition) -> RunningEngine {
        Engine::start_inner(builder, Some(partition))
    }

    fn start_inner(mut builder: GraphBuilder, partition: Option<NetPartition>) -> RunningEngine {
        builder.apply_placements();
        let (op_pe, pes) = builder.resolve_pes();
        let n_ops = builder.ops.len();
        let mut metrics = MetricsRegistry::default();
        let counters: Vec<Arc<OpCounters>> = (0..n_ops).map(|_| metrics.register_op()).collect();

        // Per-op output port count (max wired port + 1).
        let mut n_ports = vec![0usize; n_ops];
        for e in &builder.edges {
            n_ports[e.from] = n_ports[e.from].max(e.out_port + 1);
        }

        // local index of each op inside its PE
        let mut local_idx = vec![0usize; n_ops];
        for ops in &pes {
            for (li, &g) in ops.iter().enumerate() {
                local_idx[g] = li;
            }
        }

        // Build slots per PE.
        let op_names: Vec<String> = builder.ops.iter().map(|o| o.name.clone()).collect();

        // Which operators run in this process. Without a partition: all.
        let is_local: Vec<bool> = match &partition {
            Some(p) => op_names.iter().map(|n| p.local_ops.contains(n)).collect(),
            None => vec![true; n_ops],
        };
        if let Some(p) = &partition {
            for name in &p.local_ops {
                assert!(
                    op_names.iter().any(|n| n == name),
                    "partition names unknown operator '{name}'"
                );
            }
            // Fusion exchanges tuples by pointer inside one address space; a
            // PE must therefore live wholly in one process.
            for ops in &pes {
                assert!(
                    ops.iter().all(|&g| is_local[g]) || ops.iter().all(|&g| !is_local[g]),
                    "partition splits a fused PE across processes: {:?}",
                    ops.iter()
                        .map(|&g| op_names[g].as_str())
                        .collect::<Vec<_>>()
                );
            }
        }

        // Resolve the fault plan against the graph now, so a typo in a
        // fault spec fails the run loudly instead of injecting nothing.
        let plan = builder.fault_plan.take().unwrap_or_default();
        let policy = builder.restart_policy;
        for fault in &plan.faults {
            match &fault.target {
                FaultTarget::Op(name) => {
                    assert!(
                        op_names.iter().any(|n| n == name),
                        "fault plan targets unknown operator '{name}'"
                    );
                }
                FaultTarget::Link { from, to } => {
                    let e = builder
                        .edges
                        .iter()
                        .find(|e| op_names[e.from] == *from && op_names[e.to] == *to)
                        .unwrap_or_else(|| panic!("fault plan targets unknown link '{from}>{to}'"));
                    assert!(
                        op_pe[e.from] != op_pe[e.to],
                        "fault plan link '{from}>{to}' is fused (in-memory hand-off); \
                         link faults model the network and need a cross-PE edge"
                    );
                }
                // Storage and wire faults name fault domains, not graph
                // elements — nothing to resolve.
                FaultTarget::Storage(_) | FaultTarget::Wire => {}
            }
        }

        // The persistence backend: an explicit override wins, then a
        // fault-injecting backend when the plan carries io-* entries,
        // otherwise the real filesystem.
        let vfs: Arc<dyn crate::vfs::Vfs> = match builder.vfs.take() {
            Some(v) => v,
            None => match plan.io_spec() {
                Some(spec) => Arc::new(crate::vfs::FaultVfs::new(spec)),
                None => Arc::new(crate::vfs::RealVfs),
            },
        };

        let mut slots_per_pe: Vec<Vec<OpSlot>> = pes
            .iter()
            .map(|ops| {
                ops.iter()
                    .map(|&g| OpSlot {
                        name: op_names[g].clone(),
                        op: None, // installed below
                        counters: Arc::clone(&counters[g]),
                        out_ports: (0..n_ports[g]).map(|_| Vec::new()).collect(),
                        is_source: builder.ops[g].is_source,
                        data_in_degree: 0,
                        ctrl_in_degree: 0,
                        eos_data: 0,
                        eos_ctrl: 0,
                        finished: false,
                        faults: InjectedFault::arm(plan.op_faults(&op_names[g])),
                        fault_data_seen: 0,
                        policy,
                        restart_attempts: 0,
                        last_redelivered: None,
                    })
                    .collect()
            })
            .collect();

        // Move the operator boxes in.
        for (g, entry) in builder.ops.drain(..).enumerate() {
            slots_per_pe[op_pe[g]][local_idx[g]].op = Some(entry.op);
        }

        // Wire edges. The channel capacity is configured in tuples; frames
        // carry up to `batch` tuples each, so the frame-denominated bound
        // keeps roughly the same backpressure depth at any batch size.
        let batch = builder.batch_size.max(1);
        let frame_cap = (builder.channel_capacity.div_ceil(batch)).max(1);
        let checkpoint_dir = builder.checkpoint_dir.take();
        let mut link_endpoints: Vec<(String, String)> = Vec::new();
        let mut rxs_per_pe: Vec<Vec<Receiver<Frame>>> =
            (0..pes.len()).map(|_| Vec::new()).collect();
        let mut metas_per_pe: Vec<Vec<ChanMeta>> = (0..pes.len()).map(|_| Vec::new()).collect();
        for (eid, e) in builder.edges.iter().enumerate() {
            let from_pe = op_pe[e.from];
            let to_pe = op_pe[e.to];
            match (is_local[e.from], is_local[e.to]) {
                (true, true) if from_pe == to_pe => {
                    slots_per_pe[from_pe][local_idx[e.from]].out_ports[e.out_port].push(
                        Target::Local {
                            op: local_idx[e.to],
                            port: e.port,
                        },
                    );
                }
                (true, true) => {
                    let (tx, rx) = bounded(frame_cap);
                    let link = metrics.register_link();
                    link_endpoints.push((op_names[e.from].clone(), op_names[e.to].clone()));
                    let delay = match e.kind {
                        LinkKind::Network { model_delay_us } if model_delay_us > 0 => {
                            Some(Duration::from_micros(model_delay_us))
                        }
                        _ => None,
                    };
                    let pool = Arc::new(FramePool::new(POOL_DEPTH));
                    let inflight = Arc::new(AtomicUsize::new(0));
                    slots_per_pe[from_pe][local_idx[e.from]].out_ports[e.out_port].push(
                        Target::Remote(RemoteEdge {
                            tx,
                            counters: link,
                            delay,
                            batch,
                            buf: pool.take(batch),
                            pool: Arc::clone(&pool),
                            inflight: Arc::clone(&inflight),
                            faults: InjectedFault::arm(
                                plan.link_faults(&op_names[e.from], &op_names[e.to]),
                            ),
                            fault_data_seen: 0,
                        }),
                    );
                    rxs_per_pe[to_pe].push(rx);
                    metas_per_pe[to_pe].push(ChanMeta {
                        to_local: local_idx[e.to],
                        port: e.port,
                        got_eos: false,
                        alive: true,
                        cur: Vec::new(),
                        pool,
                        inflight,
                        routed: 0,
                        net: None,
                    });
                }
                (true, false) => {
                    // Outgoing boundary edge: batched exactly like an
                    // in-process remote edge, but the channel drains into
                    // the socket transport, which encodes each frame once
                    // and retransmits it until the peer acknowledges. The
                    // modeled delay never applies — this is the real wire.
                    let p = partition.as_ref().expect("boundary edge implies partition");
                    let peer = *p.peers.get(&(eid as u64)).unwrap_or_else(|| {
                        panic!(
                            "no peer address for boundary edge {eid} ({} -> {})",
                            op_names[e.from], op_names[e.to]
                        )
                    });
                    let (tx, rx) = bounded(frame_cap);
                    let link = metrics.register_link();
                    link_endpoints.push((op_names[e.from].clone(), op_names[e.to].clone()));
                    let pool = Arc::new(FramePool::new(POOL_DEPTH));
                    let inflight = Arc::new(AtomicUsize::new(0));
                    slots_per_pe[from_pe][local_idx[e.from]].out_ports[e.out_port].push(
                        Target::Remote(RemoteEdge {
                            tx,
                            counters: link,
                            delay: None,
                            batch,
                            buf: pool.take(batch),
                            pool: Arc::clone(&pool),
                            inflight: Arc::clone(&inflight),
                            faults: InjectedFault::arm(
                                plan.link_faults(&op_names[e.from], &op_names[e.to]),
                            ),
                            fault_data_seen: 0,
                        }),
                    );
                    p.net.add_outgoing(eid as u64, rx, pool, inflight, peer);
                }
                (false, true) => {
                    // Incoming boundary edge: the transport decodes frames
                    // into the channel; the consuming PE sees an ordinary
                    // frame channel. With a checkpoint dir the sender must
                    // hold every frame until its effects are durable here
                    // (acks advance at checkpoints); otherwise receipt is
                    // final.
                    let p = partition.as_ref().expect("boundary edge implies partition");
                    let (tx, rx) = bounded(frame_cap);
                    let link = metrics.register_link();
                    drop(link); // receive side has no sender to count on
                    link_endpoints.push((op_names[e.from].clone(), op_names[e.to].clone()));
                    let pool = Arc::new(FramePool::new(POOL_DEPTH));
                    let inflight = Arc::new(AtomicUsize::new(0));
                    let stable = Arc::new(AtomicU64::new(0));
                    let ack = if checkpoint_dir.is_some() {
                        AckMode::Stable(Arc::clone(&stable))
                    } else {
                        AckMode::Receipt
                    };
                    let delivered = p.net.add_incoming(
                        eid as u64,
                        tx,
                        Arc::clone(&pool),
                        Arc::clone(&inflight),
                        ack,
                    );
                    rxs_per_pe[to_pe].push(rx);
                    metas_per_pe[to_pe].push(ChanMeta {
                        to_local: local_idx[e.to],
                        port: e.port,
                        got_eos: false,
                        alive: true,
                        cur: Vec::new(),
                        pool,
                        inflight,
                        routed: 0,
                        net: Some(NetIn {
                            link_id: eid as u64,
                            stable,
                            delivered,
                        }),
                    });
                }
                (false, false) => {} // both ends foreign: the owner wires it
            }
            // In-degrees on the destination slot. Tracked for every edge —
            // a local consumer must count boundary edges (EOS arrives over
            // the wire as ordinary punctuation), and bumping a foreign slot
            // is harmless since its PE never runs here.
            let dst = &mut slots_per_pe[to_pe][local_idx[e.to]];
            match e.port {
                PortKind::Data => dst.data_in_degree += 1,
                PortKind::Control => dst.ctrl_in_degree += 1,
            }
        }

        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::with_capacity(pes.len());
        for (pe_index, ((slots, rxs), mut metas)) in slots_per_pe
            .into_iter()
            .zip(rxs_per_pe)
            .zip(metas_per_pe)
            .enumerate()
        {
            // Foreign PEs run in another process; their slots (and the
            // operator boxes inside) are simply dropped here.
            if !pes[pe_index].iter().all(|&g| is_local[g]) {
                continue;
            }
            let checkpoint = checkpoint_dir.as_ref().map(|dir| {
                PeCheckpointer::new_with_vfs(dir, pe_index, Arc::clone(&vfs))
                    .expect("create checkpoint directory")
            });
            let mut rehydrate = None;
            if partition.as_ref().is_some_and(|p| p.rehydrate) {
                if let Some(ckpt) = checkpoint.as_ref() {
                    rehydrate = recover_for_rehydrate(ckpt, pe_index, &mut metas);
                }
            }
            let pe = PeRuntime {
                slots,
                rxs,
                metas,
                stop: Arc::clone(&stop),
                pending: VecDeque::new(),
                pe_index,
                policy,
                checkpoint,
                pe_restarts: 0,
                last_ckpt_total: 0,
                ckpt_failures: 0,
                started: false,
                rehydrate,
            };
            handles.push(
                std::thread::Builder::new()
                    .name("spca-pe".to_string())
                    .spawn(move || run_pe(pe))
                    .expect("spawn PE thread"),
            );
        }

        // Links and watermarks are all registered; open the wire. Wire
        // faults from the plan shim this process's outgoing sockets.
        let net = partition.map(|p| p.net);
        if let Some(net) = &net {
            if let Some(spec) = plan.wire_spec() {
                net.set_faults(spec);
            }
            net.start();
        }

        RunningEngine {
            handles,
            stop,
            metrics,
            op_names,
            link_endpoints,
            started: Instant::now(),
            net,
        }
    }

    /// Builds, runs to completion, and reports. Only meaningful for graphs
    /// whose sources terminate on their own.
    pub fn run(builder: GraphBuilder) -> RunReport {
        Engine::start(builder).join()
    }
}

/// The per-PE sink: routes emissions to the local pending queue or into
/// per-edge frame buffers (flushed adaptively; see [`RemoteEdge`]).
struct PeSink<'a> {
    out_ports: &'a mut [Vec<Target>],
    pending: &'a mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &'a AtomicBool,
}

impl EmitSink for PeSink<'_> {
    fn emit(&mut self, port: usize, t: Tuple) {
        let targets = &mut self.out_ports[port];
        if let Some((last, init)) = targets.split_last_mut() {
            for target in init {
                deliver(target, t.clone(), self.pending);
            }
            deliver(last, t, self.pending);
        }
        // An unwired port silently drops — mirrors InfoSphere streams with
        // no subscribers.
    }

    fn try_emit(&mut self, port: usize, t: Tuple) -> Result<(), Tuple> {
        // All-or-nothing would-block check; local targets never block. A
        // data tuple only forces a send when its edge buffer reaches the
        // batch threshold; control/punctuation flush unconditionally.
        let urgent = !matches!(t, Tuple::Data(_));
        for target in self.out_ports[port].iter() {
            if let Target::Remote(e) = target {
                let would_block = e.tx.is_full() && (urgent || e.buf.len() + 1 >= e.batch);
                if would_block {
                    return Err(t);
                }
            }
        }
        self.emit(port, t);
        Ok(())
    }

    fn backlog(&self, port: usize) -> Option<usize> {
        let targets = &self.out_ports[port];
        if targets.len() != 1 {
            return None;
        }
        match &targets[0] {
            Target::Remote(e) => Some(e.depth()),
            Target::Local { .. } => None,
        }
    }

    fn n_ports(&self) -> usize {
        self.out_ports.len()
    }

    fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn flush_downstream(&mut self) {
        for port in self.out_ports.iter_mut() {
            for target in port.iter_mut() {
                if let Target::Remote(e) = target {
                    e.flush();
                }
            }
        }
    }
}

fn deliver(target: &mut Target, t: Tuple, pending: &mut VecDeque<(usize, PortKind, Tuple)>) {
    match target {
        Target::Local { op, port } => pending.push_back((*op, *port, t)),
        Target::Remote(edge) => edge.push(t),
    }
}

/// Flushes every buffered cross-PE edge of every operator on this PE.
/// Called whenever the scheduler is about to idle or block, so buffered
/// tuples are never stranded behind a sleeping PE.
fn flush_all(slots: &mut [OpSlot]) {
    for slot in slots.iter_mut() {
        for port in slot.out_ports.iter_mut() {
            for target in port.iter_mut() {
                if let Target::Remote(e) = target {
                    e.flush();
                }
            }
        }
    }
}

/// Calls a slot's operator method with a context wired to the PE's sink,
/// timing it into the op's busy counter.
macro_rules! with_op {
    ($slots:expr, $pending:expr, $stop:expr, $idx:expr, |$op:ident, $ctx:ident| $body:expr) => {{
        let mut $op = $slots[$idx].op.take().expect("operator in flight");
        let counters = Arc::clone(&$slots[$idx].counters);
        let t0 = Instant::now();
        let ret = {
            let mut sink = PeSink {
                out_ports: &mut $slots[$idx].out_ports,
                pending: $pending,
                stop: $stop,
            };
            let $ctx = &mut OpContext::new(&mut sink, &counters);
            $body
        };
        counters.add_busy(t0.elapsed().as_nanos() as u64);
        $slots[$idx].op = Some($op);
        ret
    }};
}

/// PE thread entry: the PE-level supervisor. The scheduler body runs under
/// `catch_unwind` while [`PeRuntime`] stays owned out here, so a panic that
/// escapes the operator layer (source `drive`, injected `kill-pe`) tears
/// down only the *stack* of the scheduler — channels, cursors, pending
/// tuples and operator boxes all survive for [`restart_pe`] to rebuild
/// around, and the loop re-enters.
fn run_pe(mut pe: PeRuntime) {
    loop {
        let unwound =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_pe_once(&mut pe)));
        match unwound {
            Ok(()) => return,
            Err(payload) => {
                let clean = payload
                    .downcast_ref::<PeKill>()
                    .map(|k| k.clean)
                    .unwrap_or(false);
                if !restart_pe(&mut pe, clean) {
                    return;
                }
            }
        }
    }
}

/// Writes one consistent checkpoint of every live checkpointable operator
/// in the PE (blobs + manifest; see [`crate::checkpoint`]). A write failure
/// is returned, never panicked — the previous manifest generations stay
/// readable, so callers degrade (skip + counter + backoff) instead of
/// killing the PE over a full disk.
fn write_pe_checkpoint(
    slots: &mut [OpSlot],
    metas: &[ChanMeta],
    ckpt: &mut PeCheckpointer,
) -> std::io::Result<()> {
    let mut parts = Vec::new();
    for slot in slots.iter_mut() {
        if slot.finished {
            continue;
        }
        if let Some(cp) = slot.op.as_mut().and_then(|op| op.checkpoint()) {
            parts.push((slot.name.clone(), cp.snapshot()));
        }
    }
    // Socket-link watermarks ride along as `__netlink{id}` pseudo-parts:
    // they are what lets a respawned process resume the wire exactly where
    // its durable state left off, so they are persisted even when no
    // operator in the PE is checkpointable right now.
    let mut stabilize = Vec::new();
    for m in metas {
        if let Some(net) = &m.net {
            parts.push((
                format!("__netlink{}", net.link_id),
                checkpoint::encode_kv(&[("routed", m.routed.to_string())]),
            ));
            stabilize.push((Arc::clone(&net.stable), m.routed));
        }
    }
    if parts.is_empty() {
        return Ok(());
    }
    ckpt.write(&parts)?;
    // Only a *successful* write moves the stable watermark — the sender
    // must keep retransmitting anything the manifest does not yet cover.
    for (stable, routed) in stabilize {
        stable.fetch_max(routed, Ordering::SeqCst);
    }
    Ok(())
}

/// Startup-time recovery for a respawned distributed worker: reads the
/// PE's manifest, presets the socket-link watermarks (`__netlink{id}`
/// parts) so the RESUME handshake asks each sender to skip what this PE
/// already consumed durably, and returns the operator parts for restore
/// after the `on_start` hooks run.
fn recover_for_rehydrate(
    ckpt: &PeCheckpointer,
    pe_index: usize,
    metas: &mut [ChanMeta],
) -> Option<checkpoint::SnapshotSet> {
    let recovery = ckpt.recover();
    if recovery.quarantined > 0 || recovery.fell_back {
        eprintln!(
            "[engine] PE {pe_index} rehydrate degraded: {} file(s) quarantined, {}",
            recovery.quarantined,
            if recovery.set.is_some() {
                "fell back to an older generation"
            } else {
                "starting fresh"
            }
        );
    }
    let parts = recovery.set?;
    let mut op_parts = Vec::new();
    for (name, blob) in parts {
        let Some(id) = name.strip_prefix("__netlink") else {
            op_parts.push((name, blob));
            continue;
        };
        let Ok(link_id) = id.parse::<u64>() else {
            continue;
        };
        let routed =
            match checkpoint::decode_kv(&blob).and_then(|map| checkpoint::kv_u64(&map, "routed")) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!(
                        "[engine] PE {pe_index} netlink watermark {link_id} unreadable ({e}); \
                     the sender will replay that link from zero"
                    );
                    continue;
                }
            };
        if let Some(m) = metas
            .iter_mut()
            .find(|m| m.net.as_ref().is_some_and(|n| n.link_id == link_id))
        {
            m.routed = routed;
            let net = m.net.as_ref().expect("just matched on net");
            net.stable.store(routed, Ordering::SeqCst);
            net.delivered.store(routed, Ordering::SeqCst);
        }
    }
    Some(op_parts)
}

/// The PE-level supervisor's recovery path. Returns false when the restart
/// budget is exhausted — the PE is then wound down (EOS on every port) so
/// the rest of the graph still drains.
fn restart_pe(pe: &mut PeRuntime, clean: bool) -> bool {
    pe.pe_restarts += 1;
    let attempt = pe.pe_restarts;
    let policy = pe.policy;
    let PeRuntime {
        slots,
        metas,
        stop,
        pending,
        pe_index,
        checkpoint,
        ..
    } = pe;
    let slots = &mut slots[..];
    let stop = &**stop;
    if attempt > policy.max_restarts {
        eprintln!(
            "[supervisor] PE {pe_index} exceeded {} restarts; winding it down",
            policy.max_restarts
        );
        for i in 0..slots.len() {
            if slots[i].finished {
                continue;
            }
            if slots[i].op.is_some() {
                finish_op(slots, pending, stop, i);
            } else {
                finish_op_without_instance(slots, pending, stop, i);
            }
        }
        drain_pending(slots, pending, stop);
        flush_all(slots);
        return false;
    }
    eprintln!(
        "[supervisor] PE {pe_index} died ({}); restarting (attempt {attempt})",
        if clean {
            "injected kill"
        } else {
            "escaped panic"
        }
    );
    std::thread::sleep(policy.backoff(attempt));

    if let Some(ckpt) = checkpoint.as_mut() {
        // A clean (injected) kill unwound between tuples with consistent
        // in-memory state: persist that exact state first, so the restore
        // below genuinely round-trips every operator through disk and the
        // run stays bit-identical to a fault-free one. After an escaped
        // panic the in-memory state is suspect, so recovery falls back to
        // the last *periodic* manifest (loss bounded by the checkpoint
        // cadence).
        if clean {
            if let Err(e) = write_pe_checkpoint(slots, metas, ckpt) {
                eprintln!(
                    "[supervisor] PE {pe_index} teardown checkpoint failed ({e}); \
                     recovering from the last durable generation"
                );
                slots[0].counters.add_io_faults(1);
            }
        }
        // Degrading recovery: a torn or bit-rotted manifest/blob is
        // quarantined aside and recovery falls back to the previous
        // generation — never a PE error. Counters are PE-attributed to
        // the PE's first slot.
        let recovery = ckpt.recover();
        if recovery.quarantined > 0 || recovery.fell_back {
            eprintln!(
                "[supervisor] PE {pe_index} recovery degraded: {} file(s) quarantined, \
                 fell back to {}",
                recovery.quarantined,
                if recovery.set.is_some() {
                    "an older generation"
                } else {
                    "in-memory state"
                }
            );
            slots[0]
                .counters
                .add_quarantined_snapshots(recovery.quarantined);
            slots[0].counters.add_io_faults(recovery.quarantined.max(1));
        }
        // With no usable set (never checkpointed, or everything
        // quarantined) the in-memory state stands.
        if let Some(parts) = recovery.set {
            for (name, blob) in &parts {
                let Some(i) = slots.iter().position(|s| &s.name == name && !s.finished) else {
                    continue; // operator finished since that checkpoint
                };
                if let Some(cp) = slots[i].op.as_mut().and_then(|op| op.checkpoint()) {
                    if let Err(e) = cp.restore(blob) {
                        eprintln!(
                            "[supervisor] operator '{name}' failed to restore from the PE \
                             manifest ({e}); keeping its in-memory state"
                        );
                    }
                }
            }
        }
    }

    // An operator whose box was consumed by the unwind (panic inside
    // on_start/on_finish hooks) cannot be rebuilt; finish it so its EOS
    // propagates while the rest of the PE comes back.
    for i in 0..slots.len() {
        if slots[i].op.is_none() && !slots[i].finished {
            eprintln!(
                "[supervisor] operator '{}' was lost in the PE unwind; finishing it",
                slots[i].name
            );
            finish_op_without_instance(slots, pending, stop, i);
        }
    }
    for s in slots.iter() {
        s.counters.add_pe_restart();
    }
    true
}

/// Like [`finish_op`] but for a slot whose operator box did not survive the
/// PE unwind: no `on_finish` can run, but end-of-stream still propagates.
fn finish_op_without_instance(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    idx: usize,
) {
    if slots[idx].finished {
        return;
    }
    slots[idx].finished = true;
    let n_ports = slots[idx].out_ports.len();
    for p in 0..n_ports {
        let mut sink = PeSink {
            out_ports: &mut slots[idx].out_ports,
            pending,
            stop,
        };
        sink.emit(p, Tuple::Punct(Punctuation::EndOfStream));
    }
    for p in slots[idx].out_ports.iter_mut() {
        p.clear();
    }
}

/// One incarnation of the PE's scheduler loop; everything that must outlive
/// a panic is borrowed from [`PeRuntime`], nothing is owned here but the
/// cached selector and index scratch.
fn run_pe_once(pe: &mut PeRuntime) {
    let PeRuntime {
        slots,
        rxs,
        metas,
        stop,
        pending,
        checkpoint,
        last_ckpt_total,
        ckpt_failures,
        started,
        pe_index,
        rehydrate,
        ..
    } = pe;
    let slots = &mut slots[..];
    let metas = &mut metas[..];
    let rxs = &rxs[..];
    let stop = &**stop;

    // Periodic checkpoint cadence: the tightest cadence any member
    // operator asks for. A PE fed over the wire checkpoints at the default
    // cadence even when no member is checkpointable — its manifests carry
    // the netlink watermarks that let stable acks release the sender's
    // retransmit queue.
    let has_net = metas.iter().any(|m| m.net.is_some());
    let cadence: Option<u64> = slots
        .iter_mut()
        .filter(|s| !s.finished)
        .filter_map(|s| s.op.as_mut().and_then(|op| op.checkpoint()))
        .map(|cp| cp.checkpoint_every().max(1))
        .min()
        .or(if has_net && checkpoint.is_some() {
            Some(crate::checkpoint::DEFAULT_CHECKPOINT_EVERY)
        } else {
            None
        });

    if !*started {
        *started = true;

        // Start hooks. (Index loop: the macro needs `slots` whole, by
        // index.)
        #[allow(clippy::needless_range_loop)]
        for i in 0..slots.len() {
            with_op!(slots, pending, stop, i, |op, ctx| op.on_start(ctx));
        }
        drain_pending(slots, pending, stop);

        // Distributed rehydrate: a respawned worker restores its operators
        // from the recovered manifest *after* their start hooks, mirroring
        // the restart_pe recovery order. Wire watermarks were preset before
        // the transport started accepting, so upstream replay begins
        // exactly where this state leaves off.
        if let Some(parts) = rehydrate.take() {
            for (name, blob) in &parts {
                let Some(i) = slots.iter().position(|s| &s.name == name && !s.finished) else {
                    continue; // operator finished since that checkpoint
                };
                if let Some(cp) = slots[i].op.as_mut().and_then(|op| op.checkpoint()) {
                    if let Err(e) = cp.restore(blob) {
                        eprintln!(
                            "[engine] operator '{name}' failed to rehydrate from the PE \
                             manifest ({e}); keeping its fresh state"
                        );
                    }
                }
            }
            drain_pending(slots, pending, stop);
        }

        // Operators with no inputs that aren't sources are trivially
        // finished.
        for i in 0..slots.len() {
            let s = &slots[i];
            if !s.is_source && s.data_in_degree == 0 && s.ctrl_in_degree == 0 {
                finish_op(slots, pending, stop, i);
            }
        }
        drain_pending(slots, pending, stop);
    } else {
        // Re-entry after a PE restart: tuples queued at the moment of death
        // are still in `pending`; deliver them before touching channels.
        drain_pending(slots, pending, stop);
    }

    let source_idxs: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_source).collect();

    // Cached selector over the live receivers, rebuilt only when channel
    // liveness changes (liveness never comes back, so an alive-count match
    // means the registered set is unchanged). `map` translates the
    // selector's operation index back to the channel index.
    let mut cached_sel: Option<(Select<'_>, Vec<usize>)> = None;

    loop {
        let mut progressed = false;

        // 1. Drive live sources.
        for &i in &source_idxs {
            if slots[i].finished {
                continue;
            }
            if stop.load(Ordering::Relaxed) {
                finish_op(slots, pending, stop, i);
                drain_pending(slots, pending, stop);
                continue;
            }
            let state: SourceState = supervised_drive(slots, pending, stop, i);
            match state {
                SourceState::Emitted => progressed = true,
                SourceState::Idle => {}
                SourceState::Done => {
                    finish_op(slots, pending, stop, i);
                    progressed = true;
                }
            }
            drain_pending(slots, pending, stop);
        }

        let sources_alive = source_idxs.iter().any(|&i| !slots[i].finished);

        // 2. Receive from cross-PE channels.
        if sources_alive {
            // Non-blocking frame sweep so sources keep producing.
            if sweep_channels(slots, rxs, metas, pending, stop) {
                progressed = true;
            }
        } else {
            // No live sources: everything this PE will ever process now
            // arrives over its channels. Drain what is already buffered or
            // queued; only when that comes up empty, park in a blocking
            // select. Buffered output must be flushed before blocking — a
            // stranded partial batch could be exactly what the upstream PE
            // is waiting for.
            flush_all(slots);
            if sweep_channels(slots, rxs, metas, pending, stop) {
                progressed = true;
            } else {
                let n_alive = metas.iter().filter(|m| m.alive).count();
                if n_alive > 0 {
                    // Rebuild the cached selector only when liveness
                    // changed (liveness never comes back, so an unchanged
                    // alive count means an unchanged registered set).
                    if cached_sel.as_ref().map(|(_, map)| map.len()) != Some(n_alive) {
                        let mut sel = Select::new();
                        let mut map = Vec::with_capacity(n_alive);
                        for (i, m) in metas.iter().enumerate() {
                            if m.alive {
                                sel.recv(&rxs[i]);
                                map.push(i);
                            }
                        }
                        cached_sel = Some((sel, map));
                    }
                    let (sel, map) = cached_sel.as_mut().expect("selector just ensured");
                    // On timeout, fall through to the exit checks.
                    if let Ok(oper) = sel.select_timeout(Duration::from_millis(20)) {
                        let ci = map[oper.index()];
                        match oper.recv(&rxs[ci]) {
                            Ok(frame) => {
                                progressed = true;
                                metas[ci].accept(frame);
                                // Drain the selected frame plus whatever else
                                // queued meanwhile before paying another
                                // select.
                                sweep_channels(slots, rxs, metas, pending, stop);
                            }
                            Err(_) => {
                                on_disconnect(slots, metas, pending, stop, ci);
                            }
                        }
                    }
                }
            }
        }
        drain_pending(slots, pending, stop);

        // 3. Periodic checkpoint: once the PE's members have consumed a
        //    cadence worth of data tuples since the last snapshot set,
        //    write a fresh consistent generation. This sits between tuples
        //    (the pending queue is drained), so the set is consistent by
        //    construction. A failed write (ENOSPC, fsync error, dead
        //    device) is a *skip*, never a PE panic: the last durable
        //    generations stay readable, the skip is counted, and the
        //    effective window doubles per consecutive failure (capped at
        //    64×) so a full disk is retried at a gentle rate.
        if let (Some(every), Some(ckpt)) = (cadence, checkpoint.as_mut()) {
            // Count routed entries on net-fed channels on top of data
            // tuples: a PE consuming only control traffic (e.g. a
            // snapshot sink) must still advance its link watermarks, or
            // the senders' stable acks — and their replay-queue pruning —
            // stall until the terminal flush. Data tuples arriving over a
            // link land in both sums, which merely tightens the cadence.
            let total: u64 = slots
                .iter()
                .map(|s| s.counters.tuples_in.load(Ordering::Relaxed))
                .sum::<u64>()
                + metas
                    .iter()
                    .filter(|m| m.net.is_some())
                    .map(|m| m.routed)
                    .sum::<u64>();
            let effective = every << (*ckpt_failures).min(6);
            if total.saturating_sub(*last_ckpt_total) >= effective {
                *last_ckpt_total = total;
                match write_pe_checkpoint(slots, metas, ckpt) {
                    Ok(()) => *ckpt_failures = 0,
                    Err(e) => {
                        *ckpt_failures += 1;
                        eprintln!(
                            "[supervisor] PE {pe_index} periodic checkpoint skipped ({e}); \
                             backing off to a {}x window",
                            1u64 << (*ckpt_failures).min(6)
                        );
                        slots[0].counters.add_checkpoint_skip();
                        slots[0].counters.add_io_faults(1);
                    }
                }
            }
        }

        // 4. Exit when everything is finished.
        if slots.iter().all(|s| s.finished) {
            break;
        }
        // If nothing happened and no channel can ever deliver again, the
        // remaining unfinished ops can never finish through EOS (e.g. a
        // consumer fed only by a stopped peer that never wired EOS) —
        // finish them defensively rather than spinning forever.
        let channels_alive = metas.iter().any(|c| c.alive);
        if !progressed && !sources_alive && !channels_alive && pending.is_empty() {
            for i in 0..slots.len() {
                if !slots[i].finished {
                    finish_op(slots, pending, stop, i);
                }
            }
            drain_pending(slots, pending, stop);
        }
        if !progressed && sources_alive {
            // Idle sources: flush buffered output (nothing else will), then
            // yield briefly instead of spinning.
            flush_all(slots);
            std::thread::yield_now();
        }
    }

    // Terminal watermark flush: a PE fed over the wire persists its final
    // netlink watermarks so the stable acks cover everything it consumed —
    // without this, the peer's sender would hold its whole retransmit
    // queue at shutdown and exit with an unacked-tail warning.
    if has_net {
        if let Some(ckpt) = checkpoint.as_mut() {
            if let Err(e) = write_pe_checkpoint(slots, metas, ckpt) {
                eprintln!("[supervisor] PE {pe_index} terminal checkpoint failed ({e})");
            }
        }
    }
}

/// Bounded, non-blocking sweep: up to [`SWEEP_TUPLES`] round-robin passes,
/// each routing at most one tuple per live channel (refilling a channel's
/// cursor from its queue when it runs dry). Tuple-granular interleaving
/// across channels preserves the per-tuple transport's select fairness —
/// fused control cycles rely on no channel racing far ahead of its
/// siblings — while channel synchronization is still paid only once per
/// frame. Returns true if anything was routed.
fn sweep_channels(
    slots: &mut [OpSlot],
    rxs: &[Receiver<Frame>],
    metas: &mut [ChanMeta],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
) -> bool {
    let mut progressed = false;
    for _pass in 0..SWEEP_TUPLES {
        let mut any = false;
        for ci in 0..metas.len() {
            if !metas[ci].alive {
                continue;
            }
            match next_tuple(rxs, metas, ci) {
                Next::Tuple(t) => {
                    any = true;
                    progressed = true;
                    route_one(slots, metas, pending, stop, ci, t);
                    drain_pending(slots, pending, stop);
                }
                Next::Empty => {}
                Next::Disconnected => {
                    on_disconnect(slots, metas, pending, stop, ci);
                    drain_pending(slots, pending, stop);
                }
            }
        }
        if !any {
            break;
        }
    }
    progressed
}

/// Next tuple from channel `ci`'s cursor, refilling from the queue when the
/// cursor is spent.
fn next_tuple(rxs: &[Receiver<Frame>], metas: &mut [ChanMeta], ci: usize) -> Next {
    if let Some(t) = metas[ci].cur.pop() {
        return Next::Tuple(t);
    }
    match rxs[ci].try_recv() {
        Ok(frame) => {
            metas[ci].accept(frame);
            match metas[ci].cur.pop() {
                Some(t) => Next::Tuple(t),
                None => Next::Empty, // defensively: an empty frame
            }
        }
        Err(crossbeam::channel::TryRecvError::Empty) => Next::Empty,
        Err(crossbeam::channel::TryRecvError::Disconnected) => Next::Disconnected,
    }
}

/// Routes a single tuple received on channel `ci`.
fn route_one(
    slots: &mut [OpSlot],
    metas: &mut [ChanMeta],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    ci: usize,
    t: Tuple,
) {
    metas[ci].routed += 1;
    if t.is_eos() {
        metas[ci].got_eos = true;
        metas[ci].alive = false;
    }
    let to = metas[ci].to_local;
    let port = metas[ci].port;
    dispatch(slots, pending, stop, to, port, t);
}

fn on_disconnect(
    slots: &mut [OpSlot],
    metas: &mut [ChanMeta],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    ci: usize,
) {
    metas[ci].alive = false;
    if !metas[ci].got_eos {
        // Upstream dropped without punctuating (stop/panic path): treat the
        // closure as end-of-stream so this PE can still drain and exit.
        metas[ci].got_eos = true;
        let to = metas[ci].to_local;
        let port = metas[ci].port;
        dispatch(
            slots,
            pending,
            stop,
            to,
            port,
            Tuple::Punct(Punctuation::EndOfStream),
        );
    }
}

fn dispatch(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    idx: usize,
    port: PortKind,
    t: Tuple,
) {
    if slots[idx].finished {
        return; // late tuple for a finished operator
    }
    match t {
        Tuple::Punct(Punctuation::EndOfStream) => {
            match port {
                PortKind::Data => slots[idx].eos_data += 1,
                PortKind::Control => slots[idx].eos_ctrl += 1,
            }
            let s = &slots[idx];
            let data_done = s.eos_data >= s.data_in_degree;
            let ready = if s.data_in_degree > 0 {
                data_done
            } else {
                // Control-only consumer: wait for its control edges.
                s.eos_ctrl >= s.ctrl_in_degree
            };
            // Sources with no inputs only finish via drive()/stop; a source
            // *with* a data input (e.g. a sync controller watching the data
            // stream) winds down when that stream ends.
            let externally_finishable = !s.is_source || s.data_in_degree > 0;
            if ready && externally_finishable {
                finish_op(slots, pending, stop, idx);
            }
        }
        Tuple::Data(d) => {
            if port == PortKind::Data {
                slots[idx].counters.add_in();
                supervised_process(slots, pending, stop, idx, d);
            }
            // Data on a control port is a wiring error; dropped.
        }
        Tuple::Control(c) => {
            slots[idx].counters.add_control();
            supervised_control(slots, pending, stop, idx, c);
        }
    }
}

/// Drives a source under `catch_unwind`. A panicking `drive` cannot be
/// isolated at the operator layer — the source's cursor may be mid-emission
/// and there is no in-flight tuple to redeliver — so the panic is
/// *escalated*: the operator box is parked back in its slot first (it must
/// survive for checkpoint recovery), then the whole PE is unwound for the
/// PE-level supervisor to rebuild.
fn supervised_drive(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    idx: usize,
) -> SourceState {
    let mut op = slots[idx].op.take().expect("operator in flight");
    let counters = Arc::clone(&slots[idx].counters);
    let t0 = Instant::now();
    let result = {
        let mut sink = PeSink {
            out_ports: &mut slots[idx].out_ports,
            pending,
            stop,
        };
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let ctx = &mut OpContext::new(&mut sink, &counters);
            op.drive(ctx)
        }))
    };
    counters.add_busy(t0.elapsed().as_nanos() as u64);
    slots[idx].op = Some(op);
    match result {
        Ok(state) => state,
        Err(_) => {
            eprintln!(
                "[supervisor] source '{}' panicked in drive; escalating to a PE restart",
                slots[idx].name
            );
            std::panic::panic_any(PeKill { clean: false })
        }
    }
}

/// Applies pre-delivery operator faults (poison/stall), determines whether
/// an injected panic is due, and hands the tuple to the supervised call.
fn supervised_process(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    idx: usize,
    d: DataTuple,
) {
    let mut d = d;
    let mut panic_due = false;
    let mut kill_pe_due = false;
    if !slots[idx].faults.is_empty() {
        slots[idx].fault_data_seen += 1;
        let seen = slots[idx].fault_data_seen;
        for f in slots[idx].faults.iter_mut() {
            if f.fired {
                continue;
            }
            match f.action {
                FaultAction::PoisonNan(n) if n == seen => {
                    f.fired = true;
                    d = d.poisoned(f64::NAN);
                }
                FaultAction::PoisonInf(n) if n == seen => {
                    f.fired = true;
                    d = d.poisoned(f64::INFINITY);
                }
                FaultAction::Stall { at, ms } if at == seen => {
                    f.fired = true;
                    std::thread::sleep(Duration::from_millis(ms));
                }
                // The injected panic fires *after* `process` returns, so a
                // deterministic fault leaves the tuple fully processed — the
                // declared fault window loses no data.
                FaultAction::PanicAfter(n) if n == seen => {
                    f.fired = true;
                    panic_due = true;
                }
                FaultAction::KillPe(n) if n == seen => {
                    f.fired = true;
                    kill_pe_due = true;
                }
                _ => {}
            }
        }
    }
    deliver_supervised(slots, pending, stop, idx, d, panic_due);
    if kill_pe_due {
        // Fires after `process` returned and the operator box is parked
        // back in its slot: the whole PE unwinds from a consistent
        // between-tuples state (`clean`), so teardown can persist it and
        // recovery loses nothing.
        std::panic::panic_any(PeKill { clean: true });
    }
}

/// Runs `process` under `catch_unwind`, borrowing (not moving) the operator
/// so the instance survives an unwind and `recover` can run on its real
/// state. parking_lot mutexes do not poison, so surviving state stays
/// usable.
fn deliver_supervised(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    idx: usize,
    d: DataTuple,
    inject_panic: bool,
) {
    let retry = d.clone();
    let mut op = slots[idx].op.take().expect("operator in flight");
    let counters = Arc::clone(&slots[idx].counters);
    let t0 = Instant::now();
    let mut completed = false;
    let result = {
        let mut sink = PeSink {
            out_ports: &mut slots[idx].out_ports,
            pending,
            stop,
        };
        let completed = &mut completed;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let ctx = &mut OpContext::new(&mut sink, &counters);
            op.process(d, ctx);
            *completed = true;
            if inject_panic {
                panic!("injected fault: deterministic panic from the fault plan");
            }
        }))
    };
    counters.add_busy(t0.elapsed().as_nanos() as u64);
    slots[idx].op = Some(op);
    if result.is_err() {
        // A real mid-process panic left the tuple unprocessed: redeliver it
        // after recovery. The injected panic fires after completion, so its
        // tuple is never redelivered (zero loss outside the fault window).
        let redeliver = if completed { None } else { Some(retry) };
        handle_panic(slots, pending, stop, idx, redeliver);
    }
}

/// Runs `on_control` under `catch_unwind`. Control tuples are never
/// redelivered: sync commands are periodic and a missed one is simply the
/// next skipped sync, not data loss.
fn supervised_control(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    idx: usize,
    c: crate::tuple::ControlTuple,
) {
    let mut op = slots[idx].op.take().expect("operator in flight");
    let counters = Arc::clone(&slots[idx].counters);
    let t0 = Instant::now();
    let result = {
        let mut sink = PeSink {
            out_ports: &mut slots[idx].out_ports,
            pending,
            stop,
        };
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let ctx = &mut OpContext::new(&mut sink, &counters);
            op.on_control(c, ctx);
        }))
    };
    counters.add_busy(t0.elapsed().as_nanos() as u64);
    slots[idx].op = Some(op);
    if result.is_err() {
        handle_panic(slots, pending, stop, idx, None);
    }
}

/// The supervisor's panic path: capped exponential backoff, then a guarded
/// `recover` call. A recovered operator resumes (optionally re-fed the
/// in-flight tuple, once); an unrecoverable one — or one past its restart
/// budget — is finished so end-of-stream still propagates downstream.
fn handle_panic(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    idx: usize,
    retry: Option<DataTuple>,
) {
    let attempt = slots[idx].restart_attempts + 1;
    let policy = slots[idx].policy;
    if attempt > policy.max_restarts {
        eprintln!(
            "[supervisor] operator '{}' exceeded {} restarts; finishing it",
            slots[idx].name, policy.max_restarts
        );
        finish_op(slots, pending, stop, idx);
        return;
    }
    std::thread::sleep(policy.backoff(attempt));
    let mut op = slots[idx].op.take().expect("operator in flight");
    // recover() itself runs guarded: an operator that panics while
    // restoring is unrecoverable.
    let recovered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op.recover(attempt)));
    slots[idx].op = Some(op);
    match recovered {
        Ok(true) => {
            slots[idx].restart_attempts = attempt;
            slots[idx].counters.add_restart();
            if let Some(d) = retry {
                // Redeliver the in-flight tuple exactly once: a tuple whose
                // retry panics again is a poison pill and is dropped.
                if slots[idx].last_redelivered != Some(d.seq) {
                    slots[idx].last_redelivered = Some(d.seq);
                    deliver_supervised(slots, pending, stop, idx, d, false);
                }
            }
        }
        _ => {
            eprintln!(
                "[supervisor] operator '{}' did not recover (attempt {attempt}); finishing it",
                slots[idx].name
            );
            finish_op(slots, pending, stop, idx);
        }
    }
}

fn finish_op(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
    idx: usize,
) {
    if slots[idx].finished {
        return;
    }
    with_op!(slots, pending, stop, idx, |op, ctx| op.on_finish(ctx));
    slots[idx].finished = true;
    // Punctuate every out port (local + remote). Punctuation is urgent, so
    // each edge flushes any buffered data tuples ahead of its EOS.
    let n_ports = slots[idx].out_ports.len();
    for p in 0..n_ports {
        let mut sink = PeSink {
            out_ports: &mut slots[idx].out_ports,
            pending,
            stop,
        };
        sink.emit(p, Tuple::Punct(Punctuation::EndOfStream));
    }
    // Release channel senders so downstream PEs observe closure even if
    // they already stopped selecting this edge.
    for p in slots[idx].out_ports.iter_mut() {
        p.clear();
    }
}

fn drain_pending(
    slots: &mut [OpSlot],
    pending: &mut VecDeque<(usize, PortKind, Tuple)>,
    stop: &AtomicBool,
) {
    while let Some((idx, port, t)) = pending.pop_front() {
        dispatch(slots, pending, stop, idx, port, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, OpId};
    use crate::operator::{OpContext, Operator, SourceState};
    use crate::tuple::DataTuple;
    use parking_lot::Mutex;

    /// Source emitting `n` one-dimensional tuples then finishing.
    struct CountSource {
        n: u64,
        next: u64,
    }

    impl Operator for CountSource {
        fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
        fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
            if self.next >= self.n {
                return SourceState::Done;
            }
            let d = DataTuple::new(self.next, vec![self.next as f64]);
            self.next += 1;
            ctx.emit_data(0, d);
            SourceState::Emitted
        }
    }

    /// Terminal operator collecting sequence numbers.
    #[derive(Clone)]
    struct Collect {
        seen: Arc<Mutex<Vec<u64>>>,
    }

    impl Operator for Collect {
        fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
            self.seen.lock().push(t.seq);
        }
    }

    /// Pass-through doubling the value.
    struct Double;
    impl Operator for Double {
        fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
            let vals: Vec<f64> = t.values.iter().map(|v| v * 2.0).collect();
            ctx.emit_data(0, DataTuple::new(t.seq, vals));
        }
    }

    fn pipeline(n: u64, fused: bool) -> (Vec<u64>, RunReport) {
        let mut g = GraphBuilder::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n, next: 0 }));
        let mid = g.add_op("double", Box::new(Double));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, mid, PortKind::Data);
        g.connect(mid, 0, sink, PortKind::Data);
        if fused {
            g.fuse(&[src, mid, sink]);
        }
        let report = Engine::run(g);
        let data = seen.lock().clone();
        (data, report)
    }

    #[test]
    fn unfused_pipeline_delivers_everything_in_order() {
        let (seen, report) = pipeline(1000, false);
        assert_eq!(seen.len(), 1000);
        assert!(seen.windows(2).all(|w| w[1] == w[0] + 1), "order violated");
        assert_eq!(report.op("collect").unwrap().tuples_in, 1000);
        assert_eq!(report.op("src").unwrap().tuples_out, 1000);
        // Two cross-PE links carried traffic.
        assert_eq!(report.links.len(), 2);
        assert_eq!(report.links[0].tuples(), 1001); // + EOS
        assert_eq!(report.links[0].from, "src");
        assert_eq!(report.links[1].to, "collect");
    }

    #[test]
    fn fused_pipeline_has_no_links() {
        let (seen, report) = pipeline(500, true);
        assert_eq!(seen.len(), 500);
        assert!(report.links.is_empty());
        assert_eq!(report.op("double").unwrap().tuples_in, 500);
    }

    #[test]
    fn fan_out_duplicates_tuples() {
        let mut g = GraphBuilder::new();
        let seen_a = Arc::new(Mutex::new(Vec::new()));
        let seen_b = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 100, next: 0 }));
        let a = g.add_op(
            "a",
            Box::new(Collect {
                seen: Arc::clone(&seen_a),
            }),
        );
        let b = g.add_op(
            "b",
            Box::new(Collect {
                seen: Arc::clone(&seen_b),
            }),
        );
        g.connect(src, 0, a, PortKind::Data);
        g.connect(src, 0, b, PortKind::Data);
        Engine::run(g);
        assert_eq!(seen_a.lock().len(), 100);
        assert_eq!(seen_b.lock().len(), 100);
    }

    #[test]
    fn stop_terminates_infinite_source() {
        struct Forever(u64);
        impl Operator for Forever {
            fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
            fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
                self.0 += 1;
                ctx.emit_data(0, DataTuple::new(self.0, vec![0.0]));
                SourceState::Emitted
            }
        }
        let mut g = GraphBuilder::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("inf", Box::new(Forever(0)));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, sink, PortKind::Data);
        let running = Engine::start(g);
        std::thread::sleep(Duration::from_millis(50));
        running.stop();
        let report = running.join();
        let n = seen.lock().len() as u64;
        assert!(n > 0, "nothing flowed before stop");
        assert_eq!(report.op("collect").unwrap().tuples_in, n);
    }

    #[test]
    fn on_finish_emits_final_results() {
        struct Summer {
            total: f64,
        }
        impl Operator for Summer {
            fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
                self.total += t.values[0];
            }
            fn on_finish(&mut self, ctx: &mut OpContext<'_>) {
                ctx.emit_data(0, DataTuple::new(0, vec![self.total]));
            }
        }
        let mut g = GraphBuilder::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 10, next: 0 }));
        let sum = g.add_op("sum", Box::new(Summer { total: 0.0 }));
        let out = g.add_op(
            "out",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, sum, PortKind::Data);
        g.connect(sum, 0, out, PortKind::Data);
        Engine::run(g);
        // Final tuple seq 0 carrying sum 0+1+..+9 = 45 observed by `out`.
        assert_eq!(seen.lock().len(), 1);
    }

    #[test]
    fn control_edges_do_not_gate_completion() {
        // A control-only cycle between two ops must not deadlock: data EOS
        // finishes both.
        struct Echo;
        impl Operator for Echo {
            fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
                // Send a control ping to the peer on port 1.
                ctx.emit_control(1, crate::tuple::ControlTuple::signal(1, t.seq as u32));
                ctx.emit_data(0, t);
            }
        }
        let mut g = GraphBuilder::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 50, next: 0 }));
        let e1 = g.add_op("e1", Box::new(Echo));
        let e2 = g.add_op("e2", Box::new(Echo));
        let sink = g.add_op(
            "sink",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, e1, PortKind::Data);
        g.connect(src, 0, e2, PortKind::Data);
        g.connect(e1, 0, sink, PortKind::Data);
        g.connect(e2, 0, sink, PortKind::Data);
        // Control cycle. Fusing the echoes makes control delivery
        // deterministic (in-PE pending queue drains before data EOS);
        // cross-PE control tuples racing EOS may legitimately be dropped.
        g.connect(e1, 1, e2, PortKind::Control);
        g.connect(e2, 1, e1, PortKind::Control);
        g.fuse(&[e1, e2]);
        let report = Engine::run(g);
        assert_eq!(seen.lock().len(), 100);
        // Both echoes saw control traffic, and the cycle did not deadlock.
        assert!(report.op("e1").unwrap().control_in > 0);
        assert!(report.op("e2").unwrap().control_in > 0);
    }

    #[test]
    fn backpressure_does_not_lose_tuples() {
        let mut g = GraphBuilder::new().with_channel_capacity(2);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 500, next: 0 }));
        struct Slow;
        impl Operator for Slow {
            fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
                std::thread::sleep(Duration::from_micros(20));
                ctx.emit_data(0, t);
            }
        }
        let slow = g.add_op("slow", Box::new(Slow));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, slow, PortKind::Data);
        g.connect(slow, 0, sink, PortKind::Data);
        Engine::run(g);
        assert_eq!(seen.lock().len(), 500);
    }

    #[test]
    fn network_link_accounts_bytes() {
        let mut g = GraphBuilder::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 10, next: 0 }));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect_kind(
            src,
            0,
            sink,
            PortKind::Data,
            LinkKind::Network { model_delay_us: 0 },
        );
        let report = Engine::run(g);
        assert_eq!(report.links.len(), 1);
        // 10 data tuples (16 + 8 bytes each) + EOS (8).
        assert_eq!(report.links[0].bytes(), 10 * 24 + 8);
    }

    #[test]
    fn empty_graph_terminates() {
        let g = GraphBuilder::new();
        let report = Engine::run(g);
        assert!(report.ops.is_empty());
    }

    #[test]
    fn kill_pe_restarts_the_pe_without_losing_tuples() {
        // Kill the PE hosting `double` after its 50th tuple. The injected
        // kill fires between tuples, the PE rebuilds in place, and every
        // tuple still arrives exactly once, in order.
        let mut g = GraphBuilder::new()
            .with_fault_plan(crate::fault::FaultPlan::parse("kill-pe@double:50").unwrap());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 1000, next: 0 }));
        let mid = g.add_op("double", Box::new(Double));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, mid, PortKind::Data);
        g.connect(mid, 0, sink, PortKind::Data);
        let report = Engine::run(g);
        let data = seen.lock().clone();
        assert_eq!(data.len(), 1000, "kill-pe must not lose or duplicate");
        assert!(data.windows(2).all(|w| w[1] == w[0] + 1), "order violated");
        assert_eq!(report.op("double").unwrap().pe_restarts, 1);
        assert_eq!(report.op("src").unwrap().pe_restarts, 0);
        assert_eq!(report.total_pe_restarts(), 1);
        // Operator-level restarts are a different counter and stay zero.
        assert_eq!(report.total_restarts(), 0);
    }

    #[test]
    fn kill_pe_in_fused_pe_counts_every_member() {
        let mut g = GraphBuilder::new()
            .with_fault_plan(crate::fault::FaultPlan::parse("kill-pe@double:10").unwrap());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("src", Box::new(CountSource { n: 200, next: 0 }));
        let mid = g.add_op("double", Box::new(Double));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, mid, PortKind::Data);
        g.connect(mid, 0, sink, PortKind::Data);
        g.fuse(&[mid, sink]);
        let report = Engine::run(g);
        assert_eq!(seen.lock().len(), 200);
        // Both fused members lived through the same PE restart.
        assert_eq!(report.op("double").unwrap().pe_restarts, 1);
        assert_eq!(report.op("collect").unwrap().pe_restarts, 1);
        assert_eq!(report.op("src").unwrap().pe_restarts, 0);
    }

    /// A source with a durable cursor: emits `0..n`, checkpointing `next`.
    /// On a dirty restart the cursor would rewind to the last snapshot; the
    /// `emitted` log records what actually went out.
    struct DurableSource {
        n: u64,
        next: u64,
        every: u64,
    }

    impl Operator for DurableSource {
        fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
        fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
            if self.next >= self.n {
                return SourceState::Done;
            }
            let d = DataTuple::new(self.next, vec![self.next as f64]);
            self.next += 1;
            ctx.emit_data(0, d);
            SourceState::Emitted
        }
        fn checkpoint(&mut self) -> Option<&mut dyn crate::checkpoint::Checkpoint> {
            Some(self)
        }
    }

    impl crate::checkpoint::Checkpoint for DurableSource {
        fn snapshot(&self) -> Vec<u8> {
            crate::checkpoint::encode_kv(&[("next", self.next.to_string())])
        }
        fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
            let map = crate::checkpoint::decode_kv(bytes)?;
            self.next = crate::checkpoint::kv_u64(&map, "next")?;
            Ok(())
        }
        fn checkpoint_every(&self) -> u64 {
            self.every
        }
    }

    #[test]
    fn kill_pe_with_checkpoint_dir_round_trips_state_through_disk() {
        let dir = std::env::temp_dir().join(format!(
            "spca-engine-ckpt-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Fault triggers count data tuples *delivered to* an operator, so
        // the kill targets `double` — fused with the source below, its PE
        // death tears the checkpointable source down with it.
        let mut g = GraphBuilder::new()
            .with_fault_plan(crate::fault::FaultPlan::parse("kill-pe@double:40").unwrap())
            .with_checkpoint_dir(&dir);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source(
            "src",
            Box::new(DurableSource {
                n: 500,
                next: 0,
                every: 25,
            }),
        );
        let mid = g.add_op("double", Box::new(Double));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, mid, PortKind::Data);
        g.connect(mid, 0, sink, PortKind::Data);
        // Fuse the source with `double` so killing the PE (triggered by
        // double's 40th tuple) also tears down the checkpointable source;
        // the clean kill persists `next` at teardown and restores it, so
        // the stream continues exactly where it left off.
        g.fuse(&[src, mid]);
        let report = Engine::run(g);
        let data = seen.lock().clone();
        assert_eq!(data.len(), 500, "restored cursor must not skip or repeat");
        assert!(data.windows(2).all(|w| w[1] == w[0] + 1), "order violated");
        assert_eq!(report.op("src").unwrap().pe_restarts, 1);
        // The teardown manifest is on disk and names the durable source.
        let manifest = crate::checkpoint::read_pe_manifest(&dir, 0)
            .unwrap()
            .expect("PE 0 wrote a manifest");
        assert!(manifest.iter().any(|(name, _)| name == "src"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drive_panic_escalates_to_pe_restart_and_recovers_from_checkpoint() {
        // A source that panics in drive() once, at tuple 30. The PE-level
        // supervisor restores its cursor from the last periodic checkpoint
        // (cadence 10), so some tuples repeat but none are skipped.
        struct FlakySource {
            inner: DurableSource,
            panic_at: u64,
            panicked: bool,
        }
        impl Operator for FlakySource {
            fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
            fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
                if !self.panicked && self.inner.next == self.panic_at {
                    self.panicked = true;
                    panic!("flaky source");
                }
                self.inner.drive(ctx)
            }
            fn checkpoint(&mut self) -> Option<&mut dyn crate::checkpoint::Checkpoint> {
                Some(&mut self.inner)
            }
        }
        let dir = std::env::temp_dir().join(format!(
            "spca-engine-ckpt-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut g = GraphBuilder::new().with_checkpoint_dir(&dir);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source(
            "src",
            Box::new(FlakySource {
                inner: DurableSource {
                    n: 100,
                    next: 0,
                    every: 10,
                },
                panic_at: 30,
                panicked: true,
            }),
        );
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, sink, PortKind::Data);
        // First make sure the no-panic baseline works, then the panic run.
        let report = Engine::run(g);
        assert_eq!(seen.lock().len(), 100);
        assert_eq!(report.total_pe_restarts(), 0);

        let mut g = GraphBuilder::new().with_checkpoint_dir(&dir);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source(
            "src",
            Box::new(FlakySource {
                inner: DurableSource {
                    n: 100,
                    next: 0,
                    every: 10,
                },
                panic_at: 30,
                panicked: false,
            }),
        );
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, sink, PortKind::Data);
        let report = Engine::run(g);
        let data = seen.lock().clone();
        assert_eq!(report.op("src").unwrap().pe_restarts, 1);
        // The cursor rewound to a checkpoint at or before tuple 30: every
        // value 0..100 is present (no loss), duplicates only inside the
        // rewind window.
        let mut uniq: Vec<u64> = data.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq, (0..100).collect::<Vec<u64>>(), "values lost");
        assert!(
            data.len() >= 100 && data.len() <= 100 + 30,
            "rewind window too large: {} tuples",
            data.len()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pe_restart_budget_exhaustion_winds_the_pe_down() {
        // Every drive() call panics: the PE burns its restart budget and is
        // wound down; EOS still propagates so the run terminates.
        struct AlwaysPanics;
        impl Operator for AlwaysPanics {
            fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
            fn drive(&mut self, _ctx: &mut OpContext<'_>) -> SourceState {
                panic!("always");
            }
        }
        let mut g = GraphBuilder::new().with_restart_policy(crate::fault::RestartPolicy {
            max_restarts: 2,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(1),
        });
        let seen = Arc::new(Mutex::new(Vec::new()));
        let src = g.add_source("bad", Box::new(AlwaysPanics));
        let sink = g.add_op(
            "collect",
            Box::new(Collect {
                seen: Arc::clone(&seen),
            }),
        );
        g.connect(src, 0, sink, PortKind::Data);
        let report = Engine::run(g);
        assert!(seen.lock().is_empty());
        assert_eq!(report.op("bad").unwrap().pe_restarts, 2);
    }

    #[test]
    fn isolated_non_source_terminates() {
        let mut g = GraphBuilder::new();
        struct Nop;
        impl Operator for Nop {
            fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
        }
        let _id: OpId = g.add_op("lonely", Box::new(Nop));
        let report = Engine::run(g);
        assert_eq!(report.ops.len(), 1);
    }
}
