//! Transport-semantics tests for the batched cross-PE frame transport:
//! loss-free and order-preserving delivery, exact per-consumer counts,
//! batch-invariant link metrics, and immediate control-tuple flushing.

use parking_lot::Mutex;
use spca_streams::ops::{Split, SplitStrategy};
use spca_streams::{
    ControlTuple, DataTuple, Engine, GraphBuilder, OpContext, Operator, PortKind, SourceState,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct CountSource {
    n: u64,
    next: u64,
}

impl Operator for CountSource {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
    fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
        if self.next >= self.n {
            return SourceState::Done;
        }
        ctx.emit_data(0, DataTuple::new(self.next, vec![self.next as f64]));
        self.next += 1;
        SourceState::Emitted
    }
}

struct Collect {
    seen: Arc<Mutex<Vec<u64>>>,
}

impl Operator for Collect {
    fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
        self.seen.lock().push(t.seq);
    }
}

struct Relay;

impl Operator for Relay {
    fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
        ctx.emit_data(0, t);
    }
}

/// Runs `src → relay → sink` unfused and returns (delivered seqs, link
/// tuple counts, link byte counts).
fn run_pipeline(n: u64, batch: usize) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let mut g = GraphBuilder::new().with_batch_size(batch);
    let src = g.add_source("src", Box::new(CountSource { n, next: 0 }));
    let relay = g.add_op("relay", Box::new(Relay));
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sink = g.add_op(
        "sink",
        Box::new(Collect {
            seen: Arc::clone(&seen),
        }),
    );
    g.connect(src, 0, relay, PortKind::Data);
    g.connect(relay, 0, sink, PortKind::Data);
    let report = Engine::run(g);
    let tuples = report.links.iter().map(|l| l.tuples()).collect();
    let bytes = report.links.iter().map(|l| l.bytes()).collect();
    let delivered = seen.lock().clone();
    (delivered, tuples, bytes)
}

#[test]
fn delivery_is_loss_free_and_ordered_at_every_batch_size() {
    for batch in [1, 8, 64] {
        let (seen, _, _) = run_pipeline(1000, batch);
        assert_eq!(seen.len(), 1000, "batch {batch}: lost tuples");
        assert!(
            seen.windows(2).all(|w| w[1] == w[0] + 1),
            "batch {batch}: order violated"
        );
    }
}

#[test]
fn link_metrics_are_batch_invariant() {
    // Frames must account per-tuple counts/bytes: the LinkReport of a
    // batched run is identical to the per-tuple (batch = 1) run.
    let (_, tuples_1, bytes_1) = run_pipeline(500, 1);
    for batch in [8, 64] {
        let (_, tuples_b, bytes_b) = run_pipeline(500, batch);
        assert_eq!(tuples_1, tuples_b, "tuple accounting differs at {batch}");
        assert_eq!(bytes_1, bytes_b, "byte accounting differs at {batch}");
    }
    // 500 data tuples + 1 EOS per link.
    assert_eq!(tuples_1, vec![501, 501]);
}

/// `src → split(RoundRobin) → n sinks`, capacity ample so the split never
/// sheds: every consumer must receive exactly `n_tuples / n` tuples, at
/// every batch size.
#[test]
fn round_robin_counts_are_exact_across_batch_sizes() {
    const N: u64 = 1200;
    const BRANCHES: usize = 4;
    for batch in [1, 8, 64] {
        let mut g = GraphBuilder::new()
            .with_batch_size(batch)
            .with_channel_capacity(N as usize);
        let src = g.add_source("src", Box::new(CountSource { n: N, next: 0 }));
        let split = g.add_op("split", Box::new(Split::new(SplitStrategy::RoundRobin)));
        g.connect(src, 0, split, PortKind::Data);
        let mut stores = Vec::new();
        for b in 0..BRANCHES {
            let seen = Arc::new(Mutex::new(Vec::new()));
            let c = g.add_op(
                format!("pca-{b}"),
                Box::new(Collect {
                    seen: Arc::clone(&seen),
                }),
            );
            g.connect(split, b, c, PortKind::Data);
            stores.push(seen);
        }
        let report = Engine::run(g);
        for (b, store) in stores.iter().enumerate() {
            let snap = report.op(&format!("pca-{b}")).unwrap();
            assert_eq!(
                snap.tuples_in,
                N / BRANCHES as u64,
                "batch {batch}: pca-{b} count off"
            );
            // Per-consumer order: round-robin hands consumer b the seqs
            // b, b+4, b+8, ... in that order.
            let seen = store.lock().clone();
            assert!(
                seen.windows(2).all(|w| w[1] == w[0] + BRANCHES as u64),
                "batch {batch}: pca-{b} order violated"
            );
        }
        assert_eq!(report.tuples_in_matching("pca-"), N);
    }
}

/// The delivered multiset is identical whatever the batch size, for every
/// split strategy (Random/LeastLoaded may shed differently per run, but
/// with ample capacity nothing is ever dropped).
#[test]
fn delivered_multiset_is_batch_invariant() {
    const N: u64 = 600;
    for strategy in [
        SplitStrategy::Random,
        SplitStrategy::RoundRobin,
        SplitStrategy::LeastLoaded,
    ] {
        let mut reference: Option<Vec<u64>> = None;
        for batch in [1, 8, 64] {
            let mut g = GraphBuilder::new()
                .with_batch_size(batch)
                .with_channel_capacity(N as usize);
            let src = g.add_source("src", Box::new(CountSource { n: N, next: 0 }));
            let split = g.add_op("split", Box::new(Split::new(strategy)));
            g.connect(src, 0, split, PortKind::Data);
            let mut stores = Vec::new();
            for b in 0..3 {
                let seen = Arc::new(Mutex::new(Vec::new()));
                let c = g.add_op(
                    format!("sink{b}"),
                    Box::new(Collect {
                        seen: Arc::clone(&seen),
                    }),
                );
                g.connect(split, b, c, PortKind::Data);
                stores.push(seen);
            }
            Engine::run(g);
            let mut union: Vec<u64> = stores.iter().flat_map(|s| s.lock().clone()).collect();
            union.sort_unstable();
            match &reference {
                None => reference = Some(union),
                Some(r) => assert_eq!(
                    &union, r,
                    "{strategy:?}: delivered multiset differs at batch {batch}"
                ),
            }
        }
        assert_eq!(
            reference.unwrap(),
            (0..N).collect::<Vec<_>>(),
            "{strategy:?}: loss or duplication"
        );
    }
}

/// A control tuple emitted behind buffered data must flush immediately and
/// arrive in FIFO position — never stranded behind a pending data batch.
///
/// The source emits `N_DATA` data tuples and one control tuple, then idles
/// until the consumer acknowledges the control tuple. If control flushing
/// were broken the acknowledgement would never come and the run would hang
/// (the test harness timeout catches that); if control overtook data, the
/// consumer would see fewer than `N_DATA` data tuples first.
#[test]
fn control_tuple_is_not_stranded_behind_data_batch() {
    const N_DATA: u64 = 10;

    struct ScriptedSource {
        emitted: bool,
        ack: Arc<AtomicBool>,
    }
    impl Operator for ScriptedSource {
        fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
        fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
            if !self.emitted {
                self.emitted = true;
                for seq in 0..N_DATA {
                    ctx.emit_data(0, DataTuple::new(seq, vec![seq as f64]));
                }
                ctx.emit_control(0, ControlTuple::signal(7, 0));
                return SourceState::Emitted;
            }
            if self.ack.load(Ordering::SeqCst) {
                SourceState::Done
            } else {
                SourceState::Idle
            }
        }
    }

    struct AckingSink {
        n_data: Arc<Mutex<Vec<u64>>>,
        data_seen_at_control: Arc<Mutex<Option<usize>>>,
        ack: Arc<AtomicBool>,
    }
    impl Operator for AckingSink {
        fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
            self.n_data.lock().push(t.seq);
        }
        fn on_control(&mut self, c: ControlTuple, _ctx: &mut OpContext<'_>) {
            assert_eq!(c.kind, 7);
            *self.data_seen_at_control.lock() = Some(self.n_data.lock().len());
            self.ack.store(true, Ordering::SeqCst);
        }
    }

    // Batch far larger than the data burst: without the urgent-flush rule
    // everything would sit in the sender buffer until end-of-stream — and
    // end-of-stream never comes, because the source waits for the ack.
    let ack = Arc::new(AtomicBool::new(false));
    let n_data = Arc::new(Mutex::new(Vec::new()));
    let at_control = Arc::new(Mutex::new(None));
    let mut g = GraphBuilder::new().with_batch_size(1024);
    let src = g.add_source(
        "src",
        Box::new(ScriptedSource {
            emitted: false,
            ack: Arc::clone(&ack),
        }),
    );
    let sink = g.add_op(
        "sink",
        Box::new(AckingSink {
            n_data: Arc::clone(&n_data),
            data_seen_at_control: Arc::clone(&at_control),
            ack: Arc::clone(&ack),
        }),
    );
    g.connect(src, 0, sink, PortKind::Data);
    Engine::run(g);
    assert_eq!(n_data.lock().len() as u64, N_DATA);
    assert_eq!(
        *at_control.lock(),
        Some(N_DATA as usize),
        "control tuple was reordered relative to the data ahead of it"
    );
}

/// End-of-stream flushes buffered data ahead of itself: nothing is lost
/// when a stream shorter than the batch size terminates.
#[test]
fn eos_flushes_partial_batch() {
    let (seen, tuples, _) = run_pipeline(5, 64);
    assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    // 5 data + EOS on each link.
    assert_eq!(tuples, vec![6, 6]);
}

/// `OpContext::flush` makes buffered data visible downstream while the
/// emitting operator keeps running (no EOS, no control tuple).
#[test]
fn explicit_flush_makes_data_visible() {
    struct FlushingSource {
        sent: bool,
        done: Arc<AtomicBool>,
    }
    impl Operator for FlushingSource {
        fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
        fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
            if !self.sent {
                self.sent = true;
                for seq in 0..3 {
                    ctx.emit_data(0, DataTuple::new(seq, vec![]));
                }
                ctx.flush();
                return SourceState::Emitted;
            }
            if self.done.load(Ordering::SeqCst) {
                SourceState::Done
            } else {
                SourceState::Idle
            }
        }
    }
    struct AckSink {
        got: Arc<Mutex<Vec<u64>>>,
        done: Arc<AtomicBool>,
    }
    impl Operator for AckSink {
        fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
            let mut got = self.got.lock();
            got.push(t.seq);
            if got.len() == 3 {
                self.done.store(true, Ordering::SeqCst);
            }
        }
    }
    let done = Arc::new(AtomicBool::new(false));
    let got = Arc::new(Mutex::new(Vec::new()));
    let mut g = GraphBuilder::new().with_batch_size(1024);
    let src = g.add_source(
        "src",
        Box::new(FlushingSource {
            sent: false,
            done: Arc::clone(&done),
        }),
    );
    let sink = g.add_op(
        "sink",
        Box::new(AckSink {
            got: Arc::clone(&got),
            done: Arc::clone(&done),
        }),
    );
    g.connect(src, 0, sink, PortKind::Data);
    Engine::run(g);
    assert_eq!(got.lock().clone(), vec![0, 1, 2]);
}

/// Control tuples keep FIFO position relative to data under heavy batched
/// traffic interleaving data and control on the same edge.
#[test]
fn interleaved_control_keeps_fifo_position() {
    struct Interleaved {
        next: u64,
    }
    impl Operator for Interleaved {
        fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
        fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
            if self.next >= 300 {
                return SourceState::Done;
            }
            ctx.emit_data(0, DataTuple::new(self.next, vec![]));
            if self.next % 50 == 49 {
                // Control tuple carrying the number of data tuples before it.
                ctx.emit_control(0, ControlTuple::signal(9, (self.next + 1) as u32));
            }
            self.next += 1;
            SourceState::Emitted
        }
    }
    #[derive(Default)]
    struct Watcher {
        n_data: u64,
        checked: Arc<Mutex<Vec<(u32, u64)>>>,
    }
    impl Operator for Watcher {
        fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {
            self.n_data += 1;
        }
        fn on_control(&mut self, c: ControlTuple, _ctx: &mut OpContext<'_>) {
            self.checked.lock().push((c.sender, self.n_data));
        }
    }
    for batch in [1, 8, 64] {
        let checked = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new().with_batch_size(batch);
        let src = g.add_source("src", Box::new(Interleaved { next: 0 }));
        let sink = g.add_op(
            "sink",
            Box::new(Watcher {
                n_data: 0,
                checked: Arc::clone(&checked),
            }),
        );
        g.connect(src, 0, sink, PortKind::Data);
        Engine::run(g);
        let got = checked.lock().clone();
        assert_eq!(got.len(), 6, "batch {batch}");
        for (announced, seen) in got {
            assert_eq!(
                announced as u64, seen,
                "batch {batch}: control tuple out of FIFO position"
            );
        }
    }
}
