//! Property tests for the dataflow engine: tuple conservation, ordering,
//! and clean shutdown over randomized topologies.

use parking_lot::Mutex;
use proptest::prelude::*;
use spca_streams::ops::{Split, SplitStrategy};
use spca_streams::{DataTuple, Engine, GraphBuilder, OpContext, Operator, PortKind, SourceState};
use std::sync::Arc;

struct CountSource {
    n: u64,
    next: u64,
}

impl Operator for CountSource {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
    fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
        if self.next >= self.n {
            return SourceState::Done;
        }
        ctx.emit_data(0, DataTuple::new(self.next, vec![self.next as f64]));
        self.next += 1;
        SourceState::Emitted
    }
}

struct Collect {
    seen: Arc<Mutex<Vec<u64>>>,
}

impl Operator for Collect {
    fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
        self.seen.lock().push(t.seq);
    }
}

struct Relay;

impl Operator for Relay {
    fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
        ctx.emit_data(0, t);
    }
}

/// A randomized linear pipeline: source → k relays → split(m) → collectors,
/// with a random subset of ops fused and a random channel capacity.
#[derive(Debug, Clone)]
struct Topology {
    n_tuples: u64,
    n_relays: usize,
    n_branches: usize,
    fuse_mask: u8,
    capacity: usize,
    strategy: u8,
    batch: usize,
}

/// Batch sizes biased toward the interesting corners: 1 (per-tuple
/// degenerate transport), 8, 64 (default), plus a free-range draw.
fn batch_size() -> impl Strategy<Value = usize> {
    (0u8..4, 1usize..128).prop_map(|(sel, free)| match sel {
        0 => 1,
        1 => 8,
        2 => 64,
        _ => free,
    })
}

fn topology() -> impl Strategy<Value = Topology> {
    (
        1u64..400,
        0usize..4,
        1usize..5,
        any::<u8>(),
        1usize..64,
        0u8..3,
        batch_size(),
    )
        .prop_map(
            |(n_tuples, n_relays, n_branches, fuse_mask, capacity, strategy, batch)| Topology {
                n_tuples,
                n_relays,
                n_branches,
                fuse_mask,
                capacity,
                strategy,
                batch,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every tuple the source emits reaches exactly one collector, exactly
    /// once, regardless of topology, fusion, capacity, split strategy, or
    /// transport batch size (including 1, the per-tuple degenerate case).
    #[test]
    fn conservation_over_random_topologies(t in topology()) {
        let mut g = GraphBuilder::new()
            .with_channel_capacity(t.capacity)
            .with_batch_size(t.batch);
        let src = g.add_source("src", Box::new(CountSource { n: t.n_tuples, next: 0 }));
        let mut prev = src;
        let mut all_ops = vec![src];
        for i in 0..t.n_relays {
            let r = g.add_op(format!("relay{i}"), Box::new(Relay));
            g.connect(prev, 0, r, PortKind::Data);
            prev = r;
            all_ops.push(r);
        }
        let strategy = match t.strategy {
            0 => SplitStrategy::Random,
            1 => SplitStrategy::RoundRobin,
            _ => SplitStrategy::LeastLoaded,
        };
        let split = g.add_op("split", Box::new(Split::new(strategy)));
        g.connect(prev, 0, split, PortKind::Data);
        all_ops.push(split);

        let mut stores = Vec::new();
        for b in 0..t.n_branches {
            let seen = Arc::new(Mutex::new(Vec::new()));
            let c = g.add_op(format!("sink{b}"), Box::new(Collect { seen: Arc::clone(&seen) }));
            g.connect(split, b, c, PortKind::Data);
            stores.push(seen);
            all_ops.push(c);
        }

        // Fuse a random prefix of the op list.
        let prefix = (t.fuse_mask as usize % all_ops.len()).max(1);
        g.fuse(&all_ops[..prefix]);

        let report = Engine::run(g);

        let mut seqs: Vec<u64> = stores
            .iter()
            .flat_map(|s| s.lock().clone())
            .collect();
        seqs.sort_unstable();
        let expected: Vec<u64> = (0..t.n_tuples).collect();
        prop_assert_eq!(seqs, expected, "loss or duplication");
        prop_assert_eq!(report.op("src").unwrap().tuples_out, t.n_tuples);
    }

    /// A single-consumer pipeline preserves order end to end whatever the
    /// fusion and capacity choices.
    #[test]
    fn fifo_order_preserved(n in 1u64..500, relays in 0usize..4, cap in 1usize..32, fuse in any::<bool>(), batch in batch_size()) {
        let mut g = GraphBuilder::new().with_channel_capacity(cap).with_batch_size(batch);
        let src = g.add_source("src", Box::new(CountSource { n, next: 0 }));
        let mut prev = src;
        let mut ops = vec![src];
        for i in 0..relays {
            let r = g.add_op(format!("relay{i}"), Box::new(Relay));
            g.connect(prev, 0, r, PortKind::Data);
            prev = r;
            ops.push(r);
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let c = g.add_op("sink", Box::new(Collect { seen: Arc::clone(&seen) }));
        g.connect(prev, 0, c, PortKind::Data);
        ops.push(c);
        if fuse {
            g.fuse(&ops);
        }
        Engine::run(g);
        let got = seen.lock().clone();
        prop_assert_eq!(got.len() as u64, n);
        prop_assert!(got.windows(2).all(|w| w[1] == w[0] + 1), "order violated");
    }

    /// Stopping mid-stream never deadlocks and never duplicates: whatever
    /// was delivered is a prefix-free subset of what was generated.
    #[test]
    fn stop_is_safe(cap in 1usize..16, batch in batch_size()) {
        struct Forever(u64);
        impl Operator for Forever {
            fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
            fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
                ctx.emit_data(0, DataTuple::new(self.0, vec![]));
                self.0 += 1;
                SourceState::Emitted
            }
        }
        let mut g = GraphBuilder::new().with_channel_capacity(cap).with_batch_size(batch);
        let src = g.add_source("src", Box::new(Forever(0)));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let c = g.add_op("sink", Box::new(Collect { seen: Arc::clone(&seen) }));
        g.connect(src, 0, c, PortKind::Data);
        let running = Engine::start(g);
        std::thread::sleep(std::time::Duration::from_millis(5));
        running.stop();
        let report = running.join();
        let got = seen.lock().clone();
        // No duplicates and nothing beyond what the source emitted.
        prop_assert!(got.windows(2).all(|w| w[1] > w[0]));
        prop_assert!(got.len() as u64 <= report.op("src").unwrap().tuples_out);
    }
}
