//! Engine-level wire-fault tests: a two-partition run split across two
//! in-process [`NetTransport`]s, with faults injected through the fault
//! grammar (`FaultPlan::parse` → `wire_spec` → `set_faults` inside
//! `Engine::start_in_partition`) rather than by poking the transport
//! directly. Asserts exactly-once redelivery: the delivered stream is
//! bit-identical to the fault-free run even when the wire drops the
//! connection or lands a partial write mid-stream.

use parking_lot::Mutex;
use spca_streams::{
    DataTuple, Engine, FaultPlan, GraphBuilder, NetPartition, NetTransport, OpContext, Operator,
    PortKind, SourceState,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const N: u64 = 400;

/// Delivered tuples as `(seq, timestamp_ns, value bit patterns)`.
type SeenLog = Arc<Mutex<Vec<(u64, u64, Vec<u64>)>>>;

struct CountSource {
    next: u64,
}

impl Operator for CountSource {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
    fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
        if self.next >= N {
            return SourceState::Done;
        }
        // Irregular payloads so a replayed-but-mutated tuple can't hide
        // behind a round value.
        let x = (self.next as f64 * 0.7311).sin() * 1e3;
        let mut t = DataTuple::new(self.next, vec![x, -x, x * 1e-9]);
        t.timestamp_ns = self.next * 13 + 5;
        ctx.emit_data(0, t);
        self.next += 1;
        SourceState::Emitted
    }
}

struct Collect {
    seen: SeenLog,
}

impl Operator for Collect {
    fn process(&mut self, t: DataTuple, _ctx: &mut OpContext<'_>) {
        self.seen.lock().push((
            t.seq,
            t.timestamp_ns,
            t.values.iter().map(|v| v.to_bits()).collect(),
        ));
    }
}

/// Runs `src → sink` split across two transports on loopback — `src` in
/// partition A (whose outgoing wire carries `plan`'s faults), `sink` in
/// partition B — and returns the delivered tuples in arrival order.
fn run_two_partitions(plan: Option<&str>) -> Vec<(u64, u64, Vec<u64>)> {
    let seen = Arc::new(Mutex::new(Vec::new()));

    // Both partitions build the identical graph; partition membership
    // alone decides which PEs each side actually spawns.
    let build = |seen: &SeenLog| {
        let mut g = GraphBuilder::new().with_batch_size(16);
        let src = g.add_source("src", Box::new(CountSource { next: 0 }));
        let sink = g.add_op(
            "sink",
            Box::new(Collect {
                seen: Arc::clone(seen),
            }),
        );
        g.connect(src, 0, sink, PortKind::Data);
        g
    };

    let net_a = NetTransport::bind("127.0.0.1:0").expect("bind a");
    let net_b = NetTransport::bind("127.0.0.1:0").expect("bind b");

    let mut g_a = build(&seen);
    if let Some(spec) = plan {
        g_a = g_a.with_fault_plan(FaultPlan::parse(spec).expect("parse plan"));
    }
    let part_a = NetPartition {
        local_ops: HashSet::from(["src".to_string()]),
        net: Arc::clone(&net_a),
        peers: HashMap::from([(0, net_b.local_addr())]),
        rehydrate: false,
    };
    let part_b = NetPartition {
        local_ops: HashSet::from(["sink".to_string()]),
        net: Arc::clone(&net_b),
        peers: HashMap::new(),
        rehydrate: false,
    };

    let run_b = Engine::start_in_partition(build(&seen), part_b);
    let run_a = Engine::start_in_partition(g_a, part_a);
    run_a.join();
    run_b.join();

    Arc::try_unwrap(seen).expect("engines joined").into_inner()
}

/// Wire faults must be invisible in the delivered stream: same tuples,
/// same order, same bits — nothing lost, nothing duplicated, nothing
/// reordered by the reconnect/replay machinery.
#[test]
fn delivery_under_wire_faults_is_bit_identical() {
    let clean = run_two_partitions(None);
    assert_eq!(clean.len() as u64, N, "fault-free run lost tuples");
    for (i, (seq, _, _)) in clean.iter().enumerate() {
        assert_eq!(*seq, i as u64, "fault-free run out of order");
    }

    for plan in [
        "net-drop-conn@link:1",
        "net-partial-write@link:2",
        "net-drop-conn@link:1, net-partial-write@link:3",
    ] {
        let faulted = run_two_partitions(Some(plan));
        assert_eq!(
            faulted, clean,
            "{plan}: delivered stream differs from the fault-free run"
        );
    }
}
