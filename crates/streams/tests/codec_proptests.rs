//! Property tests of the columnar frame codec's robustness guarantees:
//! bit-identical round trips over arbitrary batches and gap patterns, and
//! clean (error, never panic, never partial-apply) rejection of frames
//! truncated or corrupted at any byte offset.

use proptest::collection::vec;
use proptest::prelude::*;
use spca_streams::{
    decode_frame, encode_frame, ColumnarFrame, ControlTuple, DataTuple, Punctuation, Tuple,
};

/// One generated tuple: the selector byte picks the kind (weighted toward
/// data), `bits` become raw f64 payloads — including NaNs with payloads,
/// both zeros, infinities, and subnormals, which must survive by *bits* —
/// and `mask_bits` carries an arbitrary gap pattern.
fn any_tuple() -> impl Strategy<Value = Tuple> {
    (
        any::<u8>(),
        any::<u64>(),
        any::<u64>(),
        vec(any::<u64>(), 0..12),
        any::<u64>(),
    )
        .prop_map(|(sel, seq, stamp, bits, mask_bits)| match sel % 9 {
            0..=5 => {
                let values: Vec<f64> = bits.iter().copied().map(f64::from_bits).collect();
                let mut d = if mask_bits & 1 == 1 {
                    let mask: Vec<bool> = (0..values.len())
                        .map(|i| mask_bits >> (i + 1) & 1 == 1)
                        .collect();
                    DataTuple::masked(seq, values, mask)
                } else {
                    DataTuple::new(seq, values)
                };
                d.timestamp_ns = stamp;
                Tuple::Data(d)
            }
            // Signals carry the unit payload, which crosses the wire
            // without a registered codec.
            6 | 7 => Tuple::Control(ControlTuple::signal(seq as u32, stamp as u32)),
            _ => Tuple::Punct(Punctuation::EndOfStream),
        })
}

fn batch() -> impl Strategy<Value = Vec<Tuple>> {
    vec(any_tuple(), 0..40)
}

fn assert_bit_identical(a: &[Tuple], b: &[Tuple]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        match (x, y) {
            (Tuple::Data(p), Tuple::Data(q)) => {
                assert_eq!(p.seq, q.seq);
                assert_eq!(p.timestamp_ns, q.timestamp_ns);
                assert_eq!(p.values.len(), q.values.len());
                for (u, v) in p.values.iter().zip(q.values.iter()) {
                    assert_eq!(u.to_bits(), v.to_bits());
                }
                match (&p.mask, &q.mask) {
                    (None, None) => {}
                    (Some(m), Some(n)) => assert_eq!(m.as_slice(), n.as_slice()),
                    _ => panic!("mask presence changed"),
                }
            }
            (Tuple::Control(p), Tuple::Control(q)) => {
                assert_eq!(p.kind, q.kind);
                assert_eq!(p.sender, q.sender);
            }
            (Tuple::Punct(Punctuation::EndOfStream), Tuple::Punct(Punctuation::EndOfStream)) => {}
            _ => panic!("tuple kind changed in round trip"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode → materialize reproduces every batch bit-exactly:
    /// arbitrary f64 bit patterns, arbitrary gap masks, mixed tuple kinds,
    /// order preserved.
    #[test]
    fn round_trip_is_bit_identical(tuples in batch()) {
        let mut buf = Vec::new();
        encode_frame(&tuples, &mut buf).expect("encode");

        let mut cols = ColumnarFrame::default();
        let consumed = decode_frame(&buf, &mut cols).expect("decode");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(cols.n_entries(), tuples.len());

        let mut back = Vec::new();
        cols.materialize(&mut back).expect("materialize");
        assert_bit_identical(&tuples, &back);
    }

    /// A frame truncated at *any* byte offset decodes to a clean error —
    /// no panic, and nothing is applied: the same `ColumnarFrame` then
    /// decodes the intact frame correctly, proving no partial state leaks.
    #[test]
    fn truncation_at_any_offset_errors_cleanly(tuples in batch()) {
        let mut buf = Vec::new();
        encode_frame(&tuples, &mut buf).expect("encode");

        let mut cols = ColumnarFrame::default();
        for cut in 0..buf.len() {
            prop_assert!(
                decode_frame(&buf[..cut], &mut cols).is_err(),
                "prefix of {}/{} bytes must not decode",
                cut,
                buf.len()
            );
        }
        // The frame reused across all the failed attempts still decodes
        // the full buffer to the exact original batch.
        decode_frame(&buf, &mut cols).expect("decode after failures");
        let mut back = Vec::new();
        cols.materialize(&mut back).expect("materialize");
        assert_bit_identical(&tuples, &back);
    }

    /// Any single corrupted byte — header, counts, payload, bitmap, or
    /// trailer — yields a clean decode error. (A one-byte change is a
    /// burst of at most 8 bits, which CRC-32 always detects; header
    /// fields are validated directly.)
    #[test]
    fn corruption_at_any_offset_errors_cleanly(tuples in batch(), flip in 1u8..=255) {
        let mut buf = Vec::new();
        encode_frame(&tuples, &mut buf).expect("encode");

        let mut cols = ColumnarFrame::default();
        for i in 0..buf.len() {
            let orig = buf[i];
            buf[i] ^= flip;
            prop_assert!(
                decode_frame(&buf, &mut cols).is_err(),
                "byte {}/{} xor {:#04x} must not decode",
                i,
                buf.len(),
                flip
            );
            buf[i] = orig;
        }
        decode_frame(&buf, &mut cols).expect("restored frame decodes");
        let mut back = Vec::new();
        cols.materialize(&mut back).expect("materialize");
        assert_bit_identical(&tuples, &back);
    }
}
