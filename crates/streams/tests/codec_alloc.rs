//! Proves the frame codec's hot path is allocation-free in steady state:
//! once the caller-owned encode buffer and `ColumnarFrame` have grown to
//! the working-set size, a stretch of encode → decode round trips performs
//! zero heap allocations on the codec thread.
//!
//! Materialization into `Tuple`s is deliberately outside the measured
//! stretch — it hands out `Arc`-owned vectors and is documented as the
//! allocating step; cross-PE routing consumes the columnar form directly.
//!
//! Same thread-filtered counting-allocator pattern as
//! `crates/engine/tests/serving_alloc.rs`; this file must contain exactly
//! one `#[test]` because the tracked flag is file-global state.

use spca_streams::{decode_frame, encode_frame, ColumnarFrame, DataTuple, Tuple};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct ThreadFilteredAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // const-initialized TLS: reading it never allocates, so it is safe
    // to consult from inside the global allocator.
    static TRACKED: Cell<bool> = const { Cell::new(false) };
}

fn count_if_tracked() {
    // try_with: TLS may be unavailable during thread teardown.
    if TRACKED.try_with(Cell::get).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for ThreadFilteredAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracked();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_if_tracked();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracked();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: ThreadFilteredAlloc = ThreadFilteredAlloc;

const DIM: usize = 1000;
const BATCH: usize = 64;

#[test]
fn steady_state_encode_decode_does_not_allocate() {
    // Build the input batch up front (allocates freely: Arcs, vectors).
    // Every 7th tuple carries a gap mask so the presence-bitmap path is
    // exercised inside the measured stretch.
    let tuples: Vec<Tuple> = (0..BATCH)
        .map(|i| {
            let values: Vec<f64> = (0..DIM).map(|j| ((i * DIM + j) as f64).sin()).collect();
            let d = if i % 7 == 0 {
                let mask: Vec<bool> = (0..DIM).map(|j| (i + j) % 5 != 0).collect();
                DataTuple::masked(i as u64, values, mask)
            } else {
                DataTuple::new(i as u64, values)
            };
            Tuple::Data(d)
        })
        .collect();

    let mut buf = Vec::new();
    let mut cols = ColumnarFrame::default();

    TRACKED.with(|t| t.set(true));

    // Warm-up: grow `buf` and the frame's column vectors to working size.
    for _ in 0..8 {
        encode_frame(&tuples, &mut buf).unwrap();
        let consumed = decode_frame(&buf, &mut cols).unwrap();
        assert_eq!(consumed, buf.len());
    }

    // Measured stretch: every round trip must reuse the grown buffers.
    ALLOCS.store(0, Ordering::SeqCst);
    for _ in 0..200 {
        encode_frame(&tuples, &mut buf).unwrap();
        let consumed = decode_frame(&buf, &mut cols).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(cols.n_entries(), BATCH);
    }
    let allocs = ALLOCS.load(Ordering::SeqCst);
    TRACKED.with(|t| t.set(false));

    assert_eq!(
        allocs, 0,
        "codec allocated {allocs} times during steady-state encode/decode \
         of {BATCH}-tuple frames at d={DIM}"
    );
}
