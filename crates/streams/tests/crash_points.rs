//! Crash-point recovery harness (ISSUE 8 tentpole).
//!
//! A PE checkpoint is a sequence of VFS operations
//! (create/write/fsync/rename/fsync-dir per atomic file, plus GC
//! removes). This harness first runs a fixed multi-generation checkpoint
//! workload fault-free to *enumerate* those operations, then replays the
//! same workload once per operation index K with a sticky crash injected
//! at K — operation K and everything after it fails, simulating the
//! device dying mid-write. After every crash it asserts the two
//! guarantees the persistence layer makes:
//!
//! 1. **Recovery always reads a valid generation** — the recovered
//!    snapshot set is bit-identical to the state after some completed
//!    workload step (old or new generation, never a torn mix, never a
//!    panic).
//! 2. **The resumed run converges** — reopening the checkpointer on the
//!    crashed directory (which sweeps scratch debris and resumes the
//!    generation counter) and replaying the remaining steps ends with
//!    the exact same recovered state as the fault-free run.

use spca_streams::checkpoint::{recover_pe_manifest, PeCheckpointer, SnapshotSet};
use spca_streams::vfs::{FaultVfs, IoFaultSpec};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const PE: usize = 0;
const STEPS: u64 = 3;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spca_crashpt_{}_{name}", std::process::id()))
}

/// The canonical checkpoint contents after workload step `step`. Two
/// parts per step — one with a space in its operator name (exercising
/// the manifest's name-last field) — whose payloads are a deterministic
/// function of the step, so a recovered set identifies exactly which
/// step it came from.
fn canonical_parts(step: u64) -> SnapshotSet {
    vec![
        (
            "alpha split op".to_string(),
            format!("alpha payload for step {step}; ")
                .repeat(4)
                .into_bytes(),
        ),
        (
            "beta".to_string(),
            vec![step as u8 ^ 0x5a; 48 + step as usize],
        ),
    ]
}

/// Runs the whole workload: `STEPS` checkpoint generations, in order.
/// Errors are returned (not unwrapped) so crash replays can keep going
/// the way a supervised PE would — a failed checkpoint is skipped, not
/// fatal.
fn run_workload(ckpt: &mut PeCheckpointer, from_step: u64) -> Vec<std::io::Result<()>> {
    ((from_step + 1)..=STEPS)
        .map(|s| ckpt.write(&canonical_parts(s)))
        .collect()
}

/// Which workload step a recovered snapshot set corresponds to:
/// `Some(0)` for a clean empty directory, `Some(s)` when the set is
/// bit-identical to `canonical_parts(s)`, `None` when it matches no
/// committed state (i.e. recovery surfaced a torn mix — the failure this
/// harness exists to catch).
fn step_of(set: &Option<SnapshotSet>) -> Option<u64> {
    match set {
        None => Some(0),
        Some(parts) => (1..=STEPS).find(|&s| parts == &canonical_parts(s)),
    }
}

fn assert_no_scratch_debris(dir: &Path, context: &str) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            !name.contains(".tmp"),
            "{context}: scratch file {name} survived"
        );
    }
}

#[test]
fn every_crash_point_recovers_a_valid_generation_and_converges() {
    // Pass 1: fault-free, to enumerate the operation sequence and record
    // the reference final state.
    let free_dir = tmp("free");
    std::fs::remove_dir_all(&free_dir).ok();
    let vfs = Arc::new(FaultVfs::default());
    let mut ckpt = PeCheckpointer::new_with_vfs(&free_dir, PE, vfs.clone()).unwrap();
    for r in run_workload(&mut ckpt, 0) {
        r.unwrap();
    }
    let total_ops = vfs.ops_performed();
    assert!(
        total_ops > 20,
        "workload must span many storage operations, got {total_ops}"
    );
    let reference = recover_pe_manifest(&free_dir, PE);
    assert_eq!(reference.quarantined, 0);
    assert!(!reference.fell_back);
    assert_eq!(
        step_of(&reference.set),
        Some(STEPS),
        "fault-free run must land on the final step"
    );
    std::fs::remove_dir_all(&free_dir).ok();

    // Pass 2: replay, killing the device after operation K, for every K.
    for k in 1..=total_ops {
        let dir = tmp(&format!("k{k}"));
        std::fs::remove_dir_all(&dir).ok();
        let vfs = Arc::new(FaultVfs::new(IoFaultSpec {
            crash_at_op: Some(k),
            ..IoFaultSpec::default()
        }));
        let mut ckpt = PeCheckpointer::new_with_vfs(&dir, PE, vfs).unwrap();
        // A supervised PE treats a failed checkpoint as a skip; once the
        // device is dead every later write fails fast too.
        let _ = run_workload(&mut ckpt, 0);
        drop(ckpt);

        // "Reboot": the device is healthy again; recovery must hand back
        // a bit-identical committed generation, quarantining whatever
        // the crash tore.
        let recovery = recover_pe_manifest(&dir, PE);
        let recovered_step = step_of(&recovery.set).unwrap_or_else(|| {
            panic!("crash at op {k}/{total_ops}: recovery produced a state matching no committed generation")
        });

        // Resume: reopen (sweeps scratch debris, resumes the generation
        // counter) and finish the workload; on a healthy device every
        // remaining step must succeed.
        let mut resumed = PeCheckpointer::new(&dir, PE).unwrap();
        for r in run_workload(&mut resumed, recovered_step) {
            r.unwrap_or_else(|e| {
                panic!("crash at op {k}: resumed write failed on a healthy device: {e}")
            });
        }
        assert_no_scratch_debris(&dir, &format!("crash at op {k}"));

        let final_state = recover_pe_manifest(&dir, PE);
        assert_eq!(final_state.quarantined, 0, "crash at op {k}");
        assert_eq!(
            step_of(&final_state.set),
            Some(STEPS),
            "crash at op {k}/{total_ops} (recovered at step {recovered_step}): \
             resumed run must converge to the fault-free final state"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Crashing *while recovering* (the reboot itself dies mid-quarantine)
/// must still never surface a torn mix: a second, healthy recovery reads
/// a valid generation.
#[test]
fn crash_during_recovery_is_also_safe() {
    use spca_streams::checkpoint::recover_pe_manifest_vfs;

    let dir = tmp("recrash");
    std::fs::remove_dir_all(&dir).ok();
    let mut ckpt = PeCheckpointer::new(&dir, PE).unwrap();
    for r in run_workload(&mut ckpt, 0) {
        r.unwrap();
    }
    // Tear the pointer manifest so recovery has quarantine work to do.
    let pointer = ckpt.manifest_path();
    let bytes = std::fs::read(&pointer).unwrap();
    std::fs::write(&pointer, &bytes[..bytes.len() / 2]).unwrap();
    drop(ckpt);

    for k in 1..=6 {
        let vfs = FaultVfs::new(IoFaultSpec {
            crash_at_op: Some(k),
            ..IoFaultSpec::default()
        });
        // Must not panic, whatever it manages to salvage.
        let _ = recover_pe_manifest_vfs(&vfs, &dir, PE);
        // A healthy retry still reads a committed generation.
        let retry = recover_pe_manifest(&dir, PE);
        let step = step_of(&retry.set);
        assert!(
            step.is_some() && step != Some(0),
            "recovery crash at op {k}: healthy retry must still read a committed generation"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
