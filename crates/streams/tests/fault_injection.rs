//! Integration tests of deterministic fault injection and supervised
//! operator restart: the fault plan reproduces the same failure at the
//! same tuple every run, the supervisor bounds data loss to the declared
//! fault window, and end-of-stream always propagates — a dead operator
//! never wedges the graph.

use spca_streams::ops::{CollectSink, GeneratorSource};
use spca_streams::{
    Checkpoint, ControlTuple, DataTuple, Engine, FaultPlan, GraphBuilder, OpContext, Operator,
    PortKind, RestartPolicy, RunReport, SourceState,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn counting_source(n: u64) -> Box<dyn Operator> {
    Box::new(GeneratorSource::new(|seq| Some((vec![seq as f64], None))).with_max_tuples(n))
}

/// A restart policy with near-zero backoff so tests stay fast.
fn fast_policy(max_restarts: u64) -> RestartPolicy {
    RestartPolicy {
        max_restarts,
        backoff_base: Duration::from_micros(10),
        backoff_cap: Duration::from_millis(1),
    }
}

fn op_snapshot(report: &RunReport, name: &str) -> spca_streams::metrics::OpSnapshot {
    report
        .ops
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("no op '{name}' in report"))
        .1
}

/// Forwards data tuples, panicking every `every`-th call *before* the
/// forward (so the in-flight tuple is unprocessed and must be redelivered).
/// State survives the unwind because the supervisor restarts the same
/// instance.
struct Flaky {
    every: u64,
    seen: u64,
    recoverable: bool,
}

impl Operator for Flaky {
    fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
        self.seen += 1;
        if self.every > 0 && self.seen.is_multiple_of(self.every) {
            panic!("flaky operator failing on call {}", self.seen);
        }
        ctx.emit_data(0, t);
    }

    fn recover(&mut self, _attempt: u64) -> bool {
        self.recoverable
    }
}

/// Forwards data tuples; `recover` always succeeds (state is trivially
/// intact). Used to exercise plan-injected panics.
struct RecoveringForward;

impl Operator for RecoveringForward {
    fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
        ctx.emit_data(0, t);
    }

    fn recover(&mut self, _attempt: u64) -> bool {
        true
    }
}

/// Forwards data tuples with the default (declining) `recover`.
struct Forward;

impl Operator for Forward {
    fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
        ctx.emit_data(0, t);
    }
}

#[test]
fn supervised_restart_is_loss_bounded() {
    // 100 tuples through an operator that panics on every 10th call.
    // Each panicked tuple is redelivered after recovery, so the run is
    // loss-free: calls c satisfy c - c/10 = 100 → 111 calls, 11 panics.
    let mut g = GraphBuilder::new().with_restart_policy(fast_policy(32));
    let src = g.add_source("src", counting_source(100));
    let flaky = g.add_op(
        "flaky",
        Box::new(Flaky {
            every: 10,
            seen: 0,
            recoverable: true,
        }),
    );
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, flaky, PortKind::Data);
    g.connect(flaky, 0, out, PortKind::Data);
    let report = Engine::run(g);

    let collected = store.lock();
    assert_eq!(collected.len(), 100, "no tuple may be lost to a restart");
    let mut seqs: Vec<u64> = collected.iter().map(|t| t.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..100).collect::<Vec<_>>(), "each seq exactly once");
    assert_eq!(op_snapshot(&report, "flaky").restarts, 11);
    assert_eq!(report.total_restarts(), 11);
}

#[test]
fn unrecoverable_operator_finishes_and_eos_propagates() {
    // Default recover() declines: the first panic finishes the operator,
    // EOS reaches the sink, and the run terminates instead of wedging.
    let mut g = GraphBuilder::new().with_restart_policy(fast_policy(8));
    let src = g.add_source("src", counting_source(100));
    let flaky = g.add_op(
        "flaky",
        Box::new(Flaky {
            every: 10,
            seen: 0,
            recoverable: false,
        }),
    );
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, flaky, PortKind::Data);
    g.connect(flaky, 0, out, PortKind::Data);
    let report = Engine::run(g);

    assert_eq!(store.lock().len(), 9, "nine forwards before the fatal call");
    assert_eq!(op_snapshot(&report, "flaky").restarts, 0);
}

#[test]
fn restart_budget_caps_supervision() {
    // every = 3 with a budget of 2: panics on calls 3, 6 (restarted), 9
    // (budget exceeded → finished). Forwards = 9 calls - 3 panics = 6.
    let mut g = GraphBuilder::new().with_restart_policy(fast_policy(2));
    let src = g.add_source("src", counting_source(100));
    let flaky = g.add_op(
        "flaky",
        Box::new(Flaky {
            every: 3,
            seen: 0,
            recoverable: true,
        }),
    );
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, flaky, PortKind::Data);
    g.connect(flaky, 0, out, PortKind::Data);
    let report = Engine::run(g);

    assert_eq!(store.lock().len(), 6);
    assert_eq!(op_snapshot(&report, "flaky").restarts, 2);
}

#[test]
fn injected_panic_fires_after_the_tuple_is_processed() {
    // A plan-injected panic deliberately fires *after* process() returns:
    // tuple 30 is already forwarded when the operator dies, so with a
    // declining recover() exactly 30 tuples arrive.
    let mut g = GraphBuilder::new()
        .with_restart_policy(fast_policy(8))
        .with_fault_plan(FaultPlan::parse("panic@fwd:30").unwrap());
    let src = g.add_source("src", counting_source(100));
    let fwd = g.add_op("fwd", Box::new(Forward));
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, fwd, PortKind::Data);
    g.connect(fwd, 0, out, PortKind::Data);
    let report = Engine::run(g);

    assert_eq!(store.lock().len(), 30);
    assert_eq!(op_snapshot(&report, "fwd").restarts, 0);
}

#[test]
fn injected_panic_with_recovery_loses_nothing() {
    let mut g = GraphBuilder::new()
        .with_restart_policy(fast_policy(8))
        .with_fault_plan(FaultPlan::parse("panic@fwd:30").unwrap());
    let src = g.add_source("src", counting_source(100));
    let fwd = g.add_op("fwd", Box::new(RecoveringForward));
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, fwd, PortKind::Data);
    g.connect(fwd, 0, out, PortKind::Data);
    let report = Engine::run(g);

    let collected = store.lock();
    assert_eq!(collected.len(), 100);
    let mut seqs: Vec<u64> = collected.iter().map(|t| t.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    assert_eq!(op_snapshot(&report, "fwd").restarts, 1);
}

#[test]
fn drop_fault_loses_exactly_the_named_tuple() {
    let mut g = GraphBuilder::new().with_fault_plan(FaultPlan::parse("drop@src>sink:50").unwrap());
    let src = g.add_source("src", counting_source(100));
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, out, PortKind::Data);
    Engine::run(g);

    let collected = store.lock();
    assert_eq!(collected.len(), 99);
    // The 50th data tuple on the link is seq 49.
    assert!(collected.iter().all(|t| t.seq != 49), "seq 49 was dropped");
}

#[test]
fn dup_fault_duplicates_adjacently() {
    let mut g = GraphBuilder::new().with_fault_plan(FaultPlan::parse("dup@src>sink:50").unwrap());
    let src = g.add_source("src", counting_source(100));
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, out, PortKind::Data);
    Engine::run(g);

    let collected = store.lock();
    assert_eq!(collected.len(), 101);
    let dups: Vec<usize> = collected
        .iter()
        .enumerate()
        .filter(|(_, t)| t.seq == 49)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(dups.len(), 2, "seq 49 must appear twice");
    assert_eq!(dups[1], dups[0] + 1, "the duplicate is adjacent");
}

#[test]
fn delay_and_stall_lose_nothing() {
    let mut g = GraphBuilder::new()
        .with_fault_plan(FaultPlan::parse("delay@src>fwd:10:2,stall@fwd:20:2").unwrap());
    let src = g.add_source("src", counting_source(100));
    let fwd = g.add_op("fwd", Box::new(Forward));
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, fwd, PortKind::Data);
    g.connect(fwd, 0, out, PortKind::Data);
    Engine::run(g);

    let collected = store.lock();
    assert_eq!(collected.len(), 100, "latency faults must not lose tuples");
    let seqs: Vec<u64> = collected.iter().map(|t| t.seq).collect();
    assert_eq!(seqs, (0..100).collect::<Vec<_>>(), "order preserved");
}

#[test]
fn poison_faults_rewrite_the_named_payloads() {
    let mut g = GraphBuilder::new()
        .with_fault_plan(FaultPlan::parse("poison-nan@fwd:5,poison-inf@fwd:7").unwrap());
    let src = g.add_source("src", counting_source(100));
    let fwd = g.add_op("fwd", Box::new(Forward));
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, fwd, PortKind::Data);
    g.connect(fwd, 0, out, PortKind::Data);
    Engine::run(g);

    let collected = store.lock();
    assert_eq!(collected.len(), 100, "poisoning corrupts, never drops");
    for t in collected.iter() {
        match t.seq {
            4 => assert!(t.values.iter().all(|v| v.is_nan()), "5th tuple is NaN"),
            6 => assert!(
                t.values.iter().all(|v| *v == f64::INFINITY),
                "7th tuple is Inf"
            ),
            s => assert_eq!(t.values[0], s as f64, "others untouched"),
        }
    }
}

/// Emits a single control tuple, then finishes.
struct OneShotControl {
    sent: bool,
}

impl Operator for OneShotControl {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
    fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
        if self.sent {
            return SourceState::Done;
        }
        self.sent = true;
        ctx.emit_control(0, ControlTuple::new(7, 0, Arc::new(())));
        SourceState::Emitted
    }
}

/// Forwards data; panics on every control tuple; recovery succeeds.
struct ControlPanicker;

impl Operator for ControlPanicker {
    fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
        ctx.emit_data(0, t);
    }
    fn on_control(&mut self, _t: ControlTuple, _ctx: &mut OpContext<'_>) {
        panic!("control handler failure");
    }
    fn recover(&mut self, _attempt: u64) -> bool {
        true
    }
}

#[test]
fn control_panic_recovers_without_redelivery() {
    // A panic in on_control restarts the operator but the control tuple is
    // NOT redelivered (a missed sync command is just a skipped sync): one
    // restart, every data tuple still arrives.
    let mut g = GraphBuilder::new().with_restart_policy(fast_policy(8));
    let src = g.add_source("src", counting_source(10));
    let ctrl = g.add_source("ctrl", Box::new(OneShotControl { sent: false }));
    let op = g.add_op("op", Box::new(ControlPanicker));
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, op, PortKind::Data);
    g.connect(ctrl, 0, op, PortKind::Control);
    g.connect(op, 0, out, PortKind::Data);
    let report = Engine::run(g);

    assert_eq!(store.lock().len(), 10);
    assert_eq!(op_snapshot(&report, "op").restarts, 1);
}

#[test]
#[should_panic(expected = "fault plan targets unknown operator")]
fn unknown_op_target_panics_at_start() {
    let mut g = GraphBuilder::new().with_fault_plan(FaultPlan::parse("panic@nonesuch:1").unwrap());
    let src = g.add_source("src", counting_source(5));
    let (sink, _store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, out, PortKind::Data);
    Engine::run(g);
}

#[test]
#[should_panic(expected = "fault plan targets unknown link")]
fn unknown_link_target_panics_at_start() {
    let mut g = GraphBuilder::new().with_fault_plan(FaultPlan::parse("drop@sink>src:1").unwrap());
    let src = g.add_source("src", counting_source(5));
    let (sink, _store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, out, PortKind::Data);
    Engine::run(g);
}

/// Forwards data tuples while keeping a durable tuple count; `restore`
/// additionally raises a flag so tests can prove the disk round-trip ran.
struct DurableCounter {
    seen: u64,
    restored: Arc<AtomicBool>,
}

impl Operator for DurableCounter {
    fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
        self.seen += 1;
        ctx.emit_data(0, t);
    }

    fn checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

impl Checkpoint for DurableCounter {
    fn snapshot(&self) -> Vec<u8> {
        spca_streams::checkpoint::encode_kv(&[("seen", self.seen.to_string())])
    }

    fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let map = spca_streams::checkpoint::decode_kv(bytes)?;
        self.seen = spca_streams::checkpoint::kv_u64(&map, "seen")?;
        self.restored.store(true, Ordering::SeqCst);
        Ok(())
    }
}

#[test]
fn kill_pe_mid_graph_rehydrates_and_loses_nothing() {
    // src (PE 0) → [counter, fused fwd] (PE 1) → sink (PE 2): the killed PE
    // sits between two cross-PE frame channels. The clean kill tears down
    // both fused operators, writes a teardown manifest, and rehydrates the
    // checkpointable one from disk; the frame channels on either side must
    // neither lose nor duplicate in-flight tuples.
    let dir = std::env::temp_dir().join(format!("spca_killpe_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let restored = Arc::new(AtomicBool::new(false));
    let mut g = GraphBuilder::new()
        .with_restart_policy(fast_policy(8))
        .with_fault_plan(FaultPlan::parse("kill-pe@ctr:40").unwrap())
        .with_checkpoint_dir(&dir);
    let src = g.add_source("src", counting_source(100));
    let ctr = g.add_op(
        "ctr",
        Box::new(DurableCounter {
            seen: 0,
            restored: Arc::clone(&restored),
        }),
    );
    let fwd = g.add_op("fwd", Box::new(Forward));
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, ctr, PortKind::Data);
    g.connect(ctr, 0, fwd, PortKind::Data);
    g.connect(fwd, 0, out, PortKind::Data);
    g.fuse(&[ctr, fwd]);
    let report = Engine::run(g);

    let collected = store.lock();
    assert_eq!(collected.len(), 100, "a PE restart must not lose tuples");
    let mut seqs: Vec<u64> = collected.iter().map(|t| t.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..100).collect::<Vec<_>>(), "each seq exactly once");
    assert!(
        restored.load(Ordering::SeqCst),
        "the counter must be rehydrated from the PE manifest"
    );
    // Only the killed PE's members count the restart; operator-level
    // supervision never fired.
    assert_eq!(op_snapshot(&report, "ctr").pe_restarts, 1);
    assert_eq!(op_snapshot(&report, "fwd").pe_restarts, 1);
    assert_eq!(op_snapshot(&report, "src").pe_restarts, 0);
    assert_eq!(op_snapshot(&report, "sink").pe_restarts, 0);
    assert_eq!(report.total_pe_restarts(), 2);
    assert_eq!(report.total_restarts(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_pe_without_checkpoint_dir_still_finishes_loss_free() {
    // With no checkpoint dir the supervisor cannot round-trip state through
    // disk, but a clean kill unwinds between tuples with the operator boxes
    // intact in memory — the rebuilt PE continues from that state and the
    // run still completes without loss.
    let mut g = GraphBuilder::new()
        .with_restart_policy(fast_policy(8))
        .with_fault_plan(FaultPlan::parse("kill-pe@fwd:25").unwrap());
    let src = g.add_source("src", counting_source(100));
    let fwd = g.add_op("fwd", Box::new(Forward));
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, fwd, PortKind::Data);
    g.connect(fwd, 0, out, PortKind::Data);
    let report = Engine::run(g);

    let collected = store.lock();
    assert_eq!(collected.len(), 100);
    let mut seqs: Vec<u64> = collected.iter().map(|t| t.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    assert_eq!(op_snapshot(&report, "fwd").pe_restarts, 1);
}

/// Like [`DurableCounter`] but checkpointing every 10 tuples, so short
/// runs exercise many periodic checkpoint attempts.
struct EagerCounter {
    seen: u64,
    restored: Arc<AtomicBool>,
}

impl Operator for EagerCounter {
    fn process(&mut self, t: DataTuple, ctx: &mut OpContext<'_>) {
        self.seen += 1;
        ctx.emit_data(0, t);
    }

    fn checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

impl Checkpoint for EagerCounter {
    fn snapshot(&self) -> Vec<u8> {
        spca_streams::checkpoint::encode_kv(&[("seen", self.seen.to_string())])
    }

    fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let map = spca_streams::checkpoint::decode_kv(bytes)?;
        self.seen = spca_streams::checkpoint::kv_u64(&map, "seen")?;
        self.restored.store(true, Ordering::SeqCst);
        Ok(())
    }

    fn checkpoint_every(&self) -> u64 {
        10
    }
}

/// Builds src → ctr(EagerCounter) → sink with a checkpoint dir and the
/// given fault plan, runs it, and asserts the stream itself survived:
/// every tuple delivered (duplicates tolerated only if `exact` is
/// false), no operator-level restarts escaped the persistence layer.
fn run_disk_fault_matrix(
    tag: &str,
    plan: &str,
    n: u64,
    exact: bool,
) -> (RunReport, Arc<AtomicBool>) {
    let dir = std::env::temp_dir().join(format!("spca_diskfault_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let restored = Arc::new(AtomicBool::new(false));
    // Small batches so the periodic-checkpoint check runs often enough
    // for the backoff schedule to get several attempts within `n` tuples.
    let mut g = GraphBuilder::new()
        .with_restart_policy(fast_policy(8))
        .with_batch_size(8)
        .with_fault_plan(FaultPlan::parse(plan).unwrap())
        .with_checkpoint_dir(&dir);
    let src = g.add_source("src", counting_source(n));
    let ctr = g.add_op(
        "ctr",
        Box::new(EagerCounter {
            seen: 0,
            restored: Arc::clone(&restored),
        }),
    );
    let (sink, store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, ctr, PortKind::Data);
    g.connect(ctr, 0, out, PortKind::Data);
    let report = Engine::run(g);

    let collected = store.lock();
    let mut seqs: Vec<u64> = collected.iter().map(|t| t.seq).collect();
    seqs.sort_unstable();
    if exact {
        assert_eq!(
            seqs,
            (0..n).collect::<Vec<_>>(),
            "{tag}: each seq exactly once"
        );
    } else {
        seqs.dedup();
        assert_eq!(
            seqs,
            (0..n).collect::<Vec<_>>(),
            "{tag}: each seq at least once"
        );
    }
    assert_eq!(
        report.total_restarts(),
        0,
        "{tag}: a disk fault must never escalate into an operator panic"
    );
    std::fs::remove_dir_all(&dir).ok();
    (report, restored)
}

#[test]
fn enospc_skips_the_checkpoint_and_the_run_completes() {
    // The first PE-checkpoint write hits ENOSPC: that periodic checkpoint
    // is skipped (counted, window backed off) and later ones succeed —
    // the stream itself never notices.
    let (report, _) = run_disk_fault_matrix("enospc", "io-enospc@pe:1", 300, true);
    assert!(report.total_checkpoint_skips() >= 1);
    assert!(report.total_io_faults() >= 1);
    assert_eq!(report.total_quarantined_snapshots(), 0);
}

#[test]
fn fsync_failure_degrades_to_skips_never_a_panic() {
    // Every fsync fails, so every periodic checkpoint attempt fails. The
    // PE keeps running, backing its checkpoint window off each time, and
    // the run finishes loss-free with the failures visible as counters.
    let (report, _) = run_disk_fault_matrix("fsync", "io-fsync-err", 300, true);
    assert!(
        report.total_checkpoint_skips() >= 1,
        "every checkpoint attempt fails, so at least one skip: {report:?}"
    );
    assert_eq!(report.total_io_faults(), report.total_checkpoint_skips());
}

#[test]
fn dead_device_mid_run_degrades_to_skips() {
    // The device dies a few operations in (io-crash): whatever checkpoint
    // was in flight fails, and so does every attempt after it. The run
    // still completes loss-free.
    let (report, _) = run_disk_fault_matrix("crash", "io-crash@op:4", 300, true);
    assert!(report.total_checkpoint_skips() >= 1);
    assert!(report.total_io_faults() >= 1);
}

#[test]
fn kill_pe_with_torn_checkpoints_quarantines_and_still_delivers() {
    // Every PE-checkpoint write lands torn (half its bytes), then the PE
    // is killed: rehydration finds only damaged generations, quarantines
    // them to *.corrupt-N, and degrades to a restart without restored
    // state — the frame channels still deliver every tuple.
    let torn: Vec<String> = (1..=60).map(|w| format!("io-torn@pe:{w}")).collect();
    let plan = format!("kill-pe@ctr:40,{}", torn.join(","));
    let (report, restored) = run_disk_fault_matrix("torn", &plan, 100, false);
    assert!(
        report.total_quarantined_snapshots() >= 1,
        "torn manifests must be quarantined at recovery: {report:?}"
    );
    assert!(report.total_io_faults() >= 1);
    assert!(report.total_pe_restarts() >= 1);
    assert!(
        !restored.load(Ordering::SeqCst),
        "nothing valid on disk: restore must not have run"
    );
}

#[test]
#[should_panic(expected = "cross-PE")]
fn link_fault_on_fused_edge_is_rejected() {
    // Link faults model the network; a fused (in-memory) hand-off has no
    // network to fail, so targeting it is a plan error, not a no-op.
    let mut g = GraphBuilder::new().with_fault_plan(FaultPlan::parse("drop@src>sink:1").unwrap());
    let src = g.add_source("src", counting_source(5));
    let (sink, _store) = CollectSink::new();
    let out = g.add_op("sink", Box::new(sink));
    g.connect(src, 0, out, PortKind::Data);
    g.fuse(&[src, out]);
    Engine::run(g);
}
