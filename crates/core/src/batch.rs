//! Offline baselines: classical batch PCA and iterative robust batch PCA.
//!
//! The streaming estimators approximate these; the test-suite and the
//! experiment harness use them as ground truth. The robust batch variant is
//! the Maronna (2005) alternating scheme the paper cites: iterate
//! {residuals → M-scale → weights → weighted mean/covariance → eigensystem}
//! to a fixed point.

use crate::classic::decayed_count;
use crate::eigensystem::EigenSystem;
use crate::rho::Rho;
use crate::robust::mscale_fixed_point;
use crate::{PcaError, Result};
use spca_linalg::{eigen, gemm, svd, vecops, Mat};

/// Classical batch PCA: exact eigensystem of the sample covariance,
/// truncated to `p` components. Running sums are seeded as if the batch had
/// streamed through with α = 1.
pub fn batch_pca(data: &[Vec<f64>], p: usize) -> Result<EigenSystem> {
    let n = data.len();
    if n == 0 {
        return Err(PcaError::IncompatibleMerge("empty batch".into()));
    }
    let d = data[0].len();
    for x in data {
        if x.len() != d {
            return Err(PcaError::DimensionMismatch {
                expected: d,
                got: x.len(),
            });
        }
        if !vecops::all_finite(x) {
            return Err(PcaError::NotFinite);
        }
    }
    let mut mean = vec![0.0; d];
    for x in data {
        vecops::axpy(1.0, x, &mut mean);
    }
    vecops::scale(&mut mean, 1.0 / n as f64);

    let (basis, values) = covariance_eigensystem(data, &mean, None, p)?;

    let mut eig = EigenSystem {
        mean,
        basis,
        values,
        sigma2: 0.0,
        sum_u: n as f64,
        sum_v: n as f64,
        sum_q: 0.0,
        n_obs: n as u64,
    };
    let mean_r2 = data
        .iter()
        .map(|x| eig.residual_sq_truncated(x, p))
        .sum::<f64>()
        / n as f64;
    eig.sigma2 = mean_r2;
    eig.sum_q = n as f64 * mean_r2;
    Ok(eig)
}

/// Spherical (spatial-sign) PCA: the eigensystem of the covariance of the
/// unit-normalized, median-centered observations. Every point's influence
/// is bounded by construction, so the estimate survives heavy
/// contamination — the standard robust *initializer* for Maronna's M-scale
/// iteration, which otherwise has contaminated fixed points.
pub fn spherical_pca(data: &[Vec<f64>], p: usize) -> Result<EigenSystem> {
    let n = data.len();
    if n == 0 {
        return Err(PcaError::IncompatibleMerge("empty batch".into()));
    }
    let d = data[0].len();
    // Coordinate-wise median center.
    let mut center = vec![0.0; d];
    let mut scratch: Vec<f64> = Vec::with_capacity(n);
    for i in 0..d {
        scratch.clear();
        for x in data {
            if x.len() != d {
                return Err(PcaError::DimensionMismatch {
                    expected: d,
                    got: x.len(),
                });
            }
            scratch.push(x[i]);
        }
        scratch.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));
        center[i] = if n % 2 == 1 {
            scratch[n / 2]
        } else {
            0.5 * (scratch[n / 2 - 1] + scratch[n / 2])
        };
    }
    // Spatial signs.
    let signs: Vec<Vec<f64>> = data
        .iter()
        .map(|x| {
            let mut s = vecops::sub(x, &center);
            vecops::normalize(&mut s);
            s
        })
        .collect();
    let zero = vec![0.0; d];
    let (basis, values) = covariance_eigensystem(&signs, &zero, None, p)?;
    let mut eig = EigenSystem {
        mean: center,
        basis,
        values,
        sigma2: 0.0,
        sum_u: n as f64,
        sum_v: n as f64,
        sum_q: 0.0,
        n_obs: n as u64,
    };
    let mean_r2 = data
        .iter()
        .map(|x| eig.residual_sq_truncated(x, p))
        .sum::<f64>()
        / n as f64;
    eig.sigma2 = mean_r2;
    eig.sum_q = n as f64 * mean_r2;
    Ok(eig)
}

/// Iterative robust batch PCA (Maronna-style M-scale PCA), initialized from
/// [`spherical_pca`] so the iteration starts in the basin of the
/// uncontaminated fixed point.
///
/// Returns the converged eigensystem and the number of iterations taken.
pub fn batch_robust_pca(
    data: &[Vec<f64>],
    p: usize,
    rho: &dyn Rho,
    delta: f64,
    max_iters: usize,
) -> Result<(EigenSystem, usize)> {
    let n = data.len();
    if n == 0 {
        return Err(PcaError::IncompatibleMerge("empty batch".into()));
    }
    let mut eig = spherical_pca(data, p)?;
    let mut sigma2 = {
        let r2: Vec<f64> = data
            .iter()
            .map(|x| eig.residual_sq_truncated(x, p))
            .collect();
        mscale_fixed_point(&r2, delta, rho, 50)
    };

    let mut iters = 0;
    for it in 0..max_iters {
        iters = it + 1;
        // Weights from the current fit.
        let r2: Vec<f64> = data
            .iter()
            .map(|x| eig.residual_sq_truncated(x, p))
            .collect();
        let sig = sigma2.max(1e-300);
        let w: Vec<f64> = r2.iter().map(|&r| rho.weight(r / sig)).collect();
        let wsum: f64 = w.iter().sum();
        if wsum <= 0.0 {
            // Everything rejected — degenerate contamination; bail with the
            // current estimate rather than dividing by zero.
            break;
        }

        // Weighted mean (eq. 6).
        let d = eig.dim();
        let mut mean = vec![0.0; d];
        for (x, &wi) in data.iter().zip(&w) {
            vecops::axpy(wi, x, &mut mean);
        }
        vecops::scale(&mut mean, 1.0 / wsum);

        // Weighted covariance eigensystem (eq. 7 up to the σ² prefactor,
        // which only rescales eigenvalues, not eigenvectors).
        let (basis, values) = covariance_eigensystem(data, &mean, Some(&w), p)?;
        let old_basis = std::mem::replace(&mut eig.basis, basis);
        eig.mean = mean;
        eig.values = values;

        // New scale.
        let r2_new: Vec<f64> = data
            .iter()
            .map(|x| eig.residual_sq_truncated(x, p))
            .collect();
        let sigma2_new = mscale_fixed_point(&r2_new, delta, rho, 50);

        let basis_drift = crate::metrics::subspace_distance(&old_basis, &eig.basis)?;
        let scale_drift = if sigma2 > 0.0 {
            ((sigma2_new - sigma2) / sigma2).abs()
        } else {
            1.0
        };
        sigma2 = sigma2_new;
        if basis_drift < 1e-8 && scale_drift < 1e-10 {
            break;
        }
    }
    eig.sigma2 = sigma2;
    // Seed running sums consistently with the final weights.
    let r2: Vec<f64> = data
        .iter()
        .map(|x| eig.residual_sq_truncated(x, p))
        .collect();
    let sig = sigma2.max(1e-300);
    let w: Vec<f64> = r2.iter().map(|&r| rho.weight(r / sig)).collect();
    eig.sum_u = decayed_count(1.0, n);
    eig.sum_v = w.iter().sum();
    eig.sum_q = w.iter().zip(&r2).map(|(wi, ri)| wi * ri).sum();
    eig.n_obs = n as u64;
    Ok((eig, iters))
}

/// Completes any (near-)zero columns of `basis` with directions orthonormal
/// to the rest, so downstream invariants (orthonormal tracked basis) hold
/// even when the data rank is below the requested component count.
fn complete_basis(basis: &mut Mat) {
    let (d, total) = basis.shape();
    let mut axis = 0;
    for j in 0..total {
        if vecops::norm(basis.col(j)) > 0.5 {
            continue;
        }
        while axis < d {
            let mut cand = vec![0.0; d];
            cand[axis] = 1.0;
            axis += 1;
            for other in 0..total {
                if other == j {
                    continue;
                }
                let proj = vecops::dot(&cand, basis.col(other));
                vecops::axpy(-proj, basis.col(other), &mut cand);
            }
            if vecops::normalize(&mut cand) > 1e-6 {
                basis.col_mut(j).copy_from_slice(&cand);
                break;
            }
        }
    }
}

/// Top-`p` eigensystem of the (optionally weighted) sample covariance.
///
/// Chooses between the Gram trick (n < d: SVD of the `n`-column centered
/// data matrix) and the explicit `d × d` covariance eigensolve (n ≥ d),
/// both exact.
fn covariance_eigensystem(
    data: &[Vec<f64>],
    mean: &[f64],
    weights: Option<&[f64]>,
    p: usize,
) -> Result<(Mat, Vec<f64>)> {
    let n = data.len();
    let d = mean.len();
    let wsum: f64 = match weights {
        Some(w) => w.iter().sum(),
        None => n as f64,
    };
    if d >= n {
        // Thin SVD of weighted centered columns: C = Y Yᵀ / wsum.
        let mut y = Mat::zeros(d, n);
        for (j, x) in data.iter().enumerate() {
            let wj = weights.map_or(1.0, |w| w[j]);
            let s = (wj / wsum).max(0.0).sqrt();
            let col = y.col_mut(j);
            for ((o, &xi), &mi) in col.iter_mut().zip(x).zip(mean) {
                *o = s * (xi - mi);
            }
        }
        let f = svd::thin_svd(&y)?;
        let k = p.min(f.s.len());
        let mut basis = Mat::zeros(d, p);
        let mut values = vec![0.0; p];
        for (j, val) in values.iter_mut().enumerate().take(k) {
            basis.col_mut(j).copy_from_slice(f.u.col(j));
            *val = f.s[j] * f.s[j];
        }
        complete_basis(&mut basis);
        Ok((basis, values))
    } else {
        // Explicit covariance + symmetric eigensolve.
        let mut y = Mat::zeros(d, n);
        for (j, x) in data.iter().enumerate() {
            let wj = weights.map_or(1.0, |w| w[j]);
            let s = (wj / wsum).max(0.0).sqrt();
            let col = y.col_mut(j);
            for ((o, &xi), &mi) in col.iter_mut().zip(x).zip(mean) {
                *o = s * (xi - mi);
            }
        }
        let cov = gemm::par_gemm(&y, &y.transpose(), num_threads())?;
        // Full Jacobi is O(d³) per sweep; for large covariances with few
        // requested components, block subspace iteration gets the same
        // eigenpairs in O(d²p) per step.
        let (vals, vecs) = if d > 128 && 8 * p < d {
            let r = spca_linalg::subspace::top_k_symmetric(&cov, p, 1e-11, 400)?;
            (r.values, r.vectors)
        } else {
            let e = eigen::sym_eigen(&cov)?;
            e.top_k(p)
        };
        let mut values = vals;
        values.resize(p, 0.0);
        let mut basis = Mat::zeros(d, p);
        for j in 0..vecs.cols() {
            basis.col_mut(j).copy_from_slice(vecs.col(j));
        }
        complete_basis(&mut basis);
        Ok((basis, values.into_iter().map(|v| v.max(0.0)).collect()))
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rho::Bisquare;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;
    use spca_linalg::rng::standard_normal_vec;

    const D: usize = 10;

    fn planted(rng: &mut StdRng, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                let c = standard_normal_vec(rng, 2);
                let mut x = vec![0.0; D];
                x[0] = 3.0 * c[0];
                x[1] = 1.5 * c[1];
                for xi in x.iter_mut() {
                    *xi += 0.02 * spca_linalg::rng::standard_normal(rng);
                }
                x
            })
            .collect()
    }

    #[test]
    fn batch_pca_finds_planted_axes() {
        let mut rng = StdRng::seed_from_u64(30);
        let data = planted(&mut rng, 800);
        let e = batch_pca(&data, 2).unwrap();
        assert!(e.basis[(0, 0)].abs() > 0.99);
        assert!(e.basis[(1, 1)].abs() > 0.99);
        assert!((e.values[0] - 9.0).abs() < 1.0, "λ1={}", e.values[0]);
        assert!((e.values[1] - 2.25).abs() < 0.4, "λ2={}", e.values[1]);
    }

    #[test]
    fn gram_trick_and_covariance_paths_agree() {
        let mut rng = StdRng::seed_from_u64(31);
        let data = planted(&mut rng, 60); // n > d → covariance path
        let small = &data[..8]; // n < d → Gram path
        let e1 = batch_pca(small, 2).unwrap();
        // Re-run the same data through the covariance branch by faking a
        // smaller d? Instead, just check both paths on their natural data
        // satisfy the residual identity: total variance = Σλ + mean r².
        for (e, set) in [
            (e1, small.to_vec()),
            (batch_pca(&data, 2).unwrap(), data.clone()),
        ] {
            let n = set.len() as f64;
            let total_var: f64 = set
                .iter()
                .map(|x| {
                    let y = e.center(x);
                    vecops::norm_sq(&y)
                })
                .sum::<f64>()
                / n;
            let explained: f64 = e.values.iter().sum();
            let resid: f64 = set
                .iter()
                .map(|x| e.residual_sq_truncated(x, 2))
                .sum::<f64>()
                / n;
            assert!(
                (total_var - explained - resid).abs() < 1e-6 * total_var.max(1.0),
                "variance bookkeeping: {total_var} vs {explained}+{resid}"
            );
        }
    }

    #[test]
    fn robust_batch_resists_contamination() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut data = planted(&mut rng, 500);
        // 15% gross outliers along axis 7.
        for _ in 0..75 {
            let mut x = vec![0.0; D];
            x[7] = 60.0 + 10.0 * rng.gen::<f64>();
            data.push(x);
        }
        let classic = batch_pca(&data, 2).unwrap();
        let (robust, iters) = batch_robust_pca(&data, 2, &Bisquare::default(), 0.5, 50).unwrap();
        assert!(iters >= 1);
        let plane = |e: &EigenSystem| {
            let c = e.basis.col(0);
            c[0] * c[0] + c[1] * c[1]
        };
        assert!(
            plane(&robust) > 0.98,
            "robust plane energy {}",
            plane(&robust)
        );
        assert!(
            plane(&classic) < 0.5,
            "classic should be captured: {}",
            plane(&classic)
        );
    }

    #[test]
    fn robust_equals_classic_on_clean_data() {
        let mut rng = StdRng::seed_from_u64(33);
        let data = planted(&mut rng, 400);
        let classic = batch_pca(&data, 2).unwrap();
        let (robust, _) = batch_robust_pca(&data, 2, &Bisquare::default(), 0.5, 50).unwrap();
        let dist = crate::metrics::subspace_distance(&classic.basis, &robust.basis).unwrap();
        assert!(dist < 0.02, "clean-data disagreement {dist}");
    }

    #[test]
    fn empty_batch_rejected() {
        assert!(batch_pca(&[], 2).is_err());
        assert!(batch_robust_pca(&[], 2, &Bisquare::default(), 0.5, 10).is_err());
    }

    #[test]
    fn ragged_batch_rejected() {
        let data = vec![vec![0.0; 4], vec![0.0; 5]];
        assert!(matches!(
            batch_pca(&data, 1),
            Err(PcaError::DimensionMismatch { .. })
        ));
    }
}
