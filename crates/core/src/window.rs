//! Sliding-window PCA (§II-B).
//!
//! "When dealing with the online arrival of data, there are several options
//! to maintain the eigensystem over varying temporal extents, including a
//! damping factor or time-based windows … Both approaches can be
//! implemented, exploiting sharing strategies for sliding window
//! scenarios."
//!
//! [`RobustPca`] with α < 1 is the damping factor. This
//! module is the windowed alternative, built on the classic *paned* sharing
//! strategy: the window of the last `W` observations is covered by `k`
//! tumbling panes of `W/k` observations each. Every pane is a small,
//! independent robust eigensystem built with infinite memory (α = 1); a
//! query merges the live pane with the sealed ones (paper eq. 15–16 — the
//! same machinery that synchronizes parallel engines also composes window
//! panes, which is exactly the sharing the paper alludes to). When the
//! live pane fills, the oldest sealed pane is dropped — observations older
//! than the window stop influencing the estimate *entirely*, the hard
//! cutoff a damping factor cannot provide.

use crate::config::PcaConfig;
use crate::eigensystem::EigenSystem;
use crate::merge::merge_all;
use crate::robust::{RobustPca, UpdateOutcome};
use crate::{PcaError, Result};
use std::collections::VecDeque;

/// What advances the window: observation counts or stream time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rotation {
    /// Rotate after this many observations per pane.
    Count(u64),
    /// Rotate when the pane spans this many nanoseconds of stream time.
    Time(u64),
}

/// Robust PCA over a sliding window of the most recent observations.
pub struct WindowedPca {
    cfg: PcaConfig,
    rotation: Rotation,
    n_panes: usize,
    sealed: VecDeque<EigenSystem>,
    live: RobustPca,
    live_count: u64,
    pane_start_ns: Option<u64>,
    total: u64,
}

impl WindowedPca {
    /// A window of `n_panes × pane_size` observations. The PCA
    /// configuration's forgetting factor is overridden to α = 1 (each pane
    /// is an exact batch; the *window* does the forgetting).
    pub fn new(cfg: PcaConfig, pane_size: u64, n_panes: usize) -> Self {
        assert!(
            pane_size >= cfg.init_size as u64,
            "pane must cover the warm-up"
        );
        assert!(n_panes >= 1);
        let cfg = cfg.with_alpha(1.0);
        let live = RobustPca::new(cfg.clone());
        WindowedPca {
            cfg,
            rotation: Rotation::Count(pane_size),
            n_panes,
            sealed: VecDeque::new(),
            live,
            live_count: 0,
            pane_start_ns: None,
            total: 0,
        }
    }

    /// A *time-based* window of `n_panes × pane_duration_ns` nanoseconds of
    /// stream time (§II-B's literal "time-based windows"). Feed it through
    /// [`update_at`](Self::update_at) with each observation's timestamp;
    /// panes rotate when their time span elapses, whatever the tuple rate.
    pub fn new_time_based(cfg: PcaConfig, pane_duration_ns: u64, n_panes: usize) -> Self {
        assert!(pane_duration_ns > 0);
        assert!(n_panes >= 1);
        let cfg = cfg.with_alpha(1.0);
        let live = RobustPca::new(cfg.clone());
        WindowedPca {
            cfg,
            rotation: Rotation::Time(pane_duration_ns),
            n_panes,
            sealed: VecDeque::new(),
            live,
            live_count: 0,
            pane_start_ns: None,
            total: 0,
        }
    }

    /// Window span in observations (count mode) or nanoseconds (time mode).
    pub fn window_len(&self) -> u64 {
        match self.rotation {
            Rotation::Count(n) => n * self.n_panes as u64,
            Rotation::Time(ns) => ns * self.n_panes as u64,
        }
    }

    /// Processes one timestamped observation (time-based windows).
    /// Timestamps must be non-decreasing; a pane rotates when the incoming
    /// timestamp leaves its span.
    pub fn update_at(&mut self, x: &[f64], t_ns: u64) -> Result<UpdateOutcome> {
        let Rotation::Time(pane_ns) = self.rotation else {
            return Err(PcaError::IncompatibleMerge(
                "update_at requires a time-based window (new_time_based)".into(),
            ));
        };
        let start = *self.pane_start_ns.get_or_insert(t_ns);
        if t_ns.saturating_sub(start) >= pane_ns {
            self.rotate();
            // A long silence may skip several pane spans; the new pane
            // starts at the current observation.
            self.pane_start_ns = Some(t_ns);
        }
        let out = self.live.update(x)?;
        self.live_count += 1;
        self.total += 1;
        Ok(out)
    }

    /// Total observations consumed.
    pub fn n_obs(&self) -> u64 {
        self.total
    }

    /// Number of sealed panes currently retained.
    pub fn sealed_panes(&self) -> usize {
        self.sealed.len()
    }

    /// Processes one observation (count-based windows).
    pub fn update(&mut self, x: &[f64]) -> Result<UpdateOutcome> {
        let out = self.live.update(x)?;
        self.live_count += 1;
        self.total += 1;
        if let Rotation::Count(n) = self.rotation {
            if self.live_count >= n {
                self.rotate();
            }
        }
        Ok(out)
    }

    /// Processes a gappy observation (count-based windows).
    pub fn update_masked(&mut self, x: &[f64], mask: &[bool]) -> Result<UpdateOutcome> {
        let out = self.live.update_masked(x, mask)?;
        self.live_count += 1;
        self.total += 1;
        if let Rotation::Count(n) = self.rotation {
            if self.live_count >= n {
                self.rotate();
            }
        }
        Ok(out)
    }

    fn rotate(&mut self) {
        if let Some(eig) = self.live.full_eigensystem() {
            self.sealed.push_back(eig.clone());
            while self.sealed.len() >= self.n_panes {
                self.sealed.pop_front();
            }
        }
        self.live = RobustPca::new(self.cfg.clone());
        self.live_count = 0;
    }

    /// The eigensystem of the current window: the merge of every sealed
    /// pane with the live pane (if initialized), truncated to `p`.
    pub fn eigensystem(&self) -> Result<EigenSystem> {
        let mut parts: Vec<EigenSystem> = self.sealed.iter().cloned().collect();
        if let Some(live) = self.live.full_eigensystem() {
            parts.push(live.clone());
        }
        if parts.is_empty() {
            return Err(PcaError::IncompatibleMerge(
                "window has no initialized pane yet".into(),
            ));
        }
        Ok(merge_all(&parts)?.truncated(self.cfg.p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::subspace_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spca_linalg::rng::standard_normal;

    const D: usize = 12;

    fn axis_sample(rng: &mut StdRng, axis: usize) -> Vec<f64> {
        let mut x = vec![0.0; D];
        x[axis] = 4.0 * standard_normal(rng);
        x[(axis + 1) % D] = 1.5 * standard_normal(rng);
        for v in x.iter_mut() {
            *v += 0.02 * standard_normal(rng);
        }
        x
    }

    fn cfg() -> PcaConfig {
        PcaConfig::new(D, 2).with_init_size(30).with_extra(0)
    }

    #[test]
    fn window_learns_stationary_stream() {
        let mut w = WindowedPca::new(cfg(), 200, 4);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1500 {
            w.update(&axis_sample(&mut rng, 0)).unwrap();
        }
        let eig = w.eigensystem().unwrap();
        eig.check_invariants().unwrap();
        assert!(eig.basis[(0, 0)].abs() > 0.98, "{:?}", eig.basis.col(0));
        assert_eq!(w.n_obs(), 1500);
    }

    #[test]
    fn window_forgets_old_regime_completely() {
        let mut w = WindowedPca::new(cfg(), 200, 3); // window = 600
        let mut rng = StdRng::seed_from_u64(2);
        // Phase A on axes (0,1).
        for _ in 0..1000 {
            w.update(&axis_sample(&mut rng, 0)).unwrap();
        }
        // Phase B on axes (5,6), long enough to flush the window.
        for _ in 0..800 {
            w.update(&axis_sample(&mut rng, 5)).unwrap();
        }
        let eig = w.eigensystem().unwrap();
        // The top component must be on axis 5; axes 0/1 must carry nothing.
        assert!(eig.basis[(5, 0)].abs() > 0.95, "{:?}", eig.basis.col(0));
        let stale: f64 = (0..2)
            .map(|k| eig.basis[(0, k)].abs() + eig.basis[(1, k)].abs())
            .sum();
        assert!(stale < 0.1, "old regime leaked into the window: {stale}");
    }

    #[test]
    fn damping_retains_what_window_drops() {
        // Contrast test: α-damped PCA with a long memory still remembers
        // phase A after the window variant has dropped it.
        let mut windowed = WindowedPca::new(cfg(), 150, 2); // window = 300
        let mut damped = RobustPca::new(cfg().with_memory(5000));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1200 {
            let x = axis_sample(&mut rng, 0);
            windowed.update(&x).unwrap();
            damped.update(&x).unwrap();
        }
        for _ in 0..400 {
            let x = axis_sample(&mut rng, 5);
            windowed.update(&x).unwrap();
            damped.update(&x).unwrap();
        }
        let we = windowed.eigensystem().unwrap();
        let de = damped.eigensystem();
        // Windowed: axis 5 on top. Damped (memory 5000 ≫ 400): axis 0 on top.
        assert!(
            we.basis[(5, 0)].abs() > 0.9,
            "windowed {:?}",
            we.basis.col(0)
        );
        assert!(de.basis[(0, 0)].abs() > 0.9, "damped {:?}", de.basis.col(0));
    }

    #[test]
    fn pane_count_bounded() {
        let mut w = WindowedPca::new(cfg(), 100, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2000 {
            w.update(&axis_sample(&mut rng, 0)).unwrap();
        }
        assert!(w.sealed_panes() < 3);
    }

    #[test]
    fn query_before_any_pane_errors() {
        let w = WindowedPca::new(cfg(), 100, 3);
        assert!(w.eigensystem().is_err());
    }

    #[test]
    fn windowed_matches_damped_on_stationary_data() {
        let mut windowed = WindowedPca::new(cfg(), 200, 4);
        let mut damped = RobustPca::new(cfg().with_memory(800));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let x = axis_sample(&mut rng, 0);
            windowed.update(&x).unwrap();
            damped.update(&x).unwrap();
        }
        let we = windowed.eigensystem().unwrap();
        let de = damped.eigensystem();
        let d = subspace_distance(&we.basis, &de.basis).unwrap();
        assert!(d < 0.1, "stationary disagreement {d}");
    }

    #[test]
    fn time_window_rotates_by_stream_time() {
        // 10 obs/“second” for 3 seconds; 1-second panes, 2 retained.
        let mut w = WindowedPca::new_time_based(cfg().with_init_size(5), 1_000_000_000, 2);
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..30u64 {
            let t = i * 100_000_000; // 0.1 s apart
            w.update_at(&axis_sample(&mut rng, 0), t).unwrap();
        }
        // 3 pane spans crossed → ≤ 1 sealed pane retained (n_panes−1).
        assert!(w.sealed_panes() <= 1);
        assert_eq!(w.n_obs(), 30);
        w.eigensystem().unwrap().check_invariants().unwrap();
    }

    #[test]
    fn time_window_forgets_old_regime() {
        let mut w = WindowedPca::new_time_based(cfg().with_init_size(10), 1_000, 2);
        let mut rng = StdRng::seed_from_u64(8);
        let mut t = 0u64;
        for _ in 0..300 {
            t += 10;
            w.update_at(&axis_sample(&mut rng, 0), t).unwrap();
        }
        // Phase B much later in stream time: old panes rotate away.
        for _ in 0..300 {
            t += 10;
            w.update_at(&axis_sample(&mut rng, 5), t).unwrap();
        }
        let eig = w.eigensystem().unwrap();
        assert!(eig.basis[(5, 0)].abs() > 0.9, "{:?}", eig.basis.col(0));
    }

    #[test]
    fn update_at_on_count_window_errors() {
        let mut w = WindowedPca::new(cfg(), 100, 2);
        assert!(w.update_at(&[0.0; D], 5).is_err());
    }

    #[test]
    fn masked_updates_flow_through_panes() {
        let mut w = WindowedPca::new(cfg().with_extra(1), 150, 3);
        let mut rng = StdRng::seed_from_u64(6);
        let mut mask = vec![true; D];
        mask[3] = false;
        for _ in 0..600 {
            let x = axis_sample(&mut rng, 0);
            w.update_masked(&x, &mask).unwrap();
        }
        let eig = w.eigensystem().unwrap();
        eig.check_invariants().unwrap();
    }
}
