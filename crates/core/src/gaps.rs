//! Missing-data handling (§II-D).
//!
//! Spectra arrive with gaps — masked pixels, and redshift-dependent
//! wavelength coverage. Following Connolly & Szalay (1999) as extended by
//! the paper, each incomplete vector is *patched* by an unbiased
//! reconstruction from the current eigenbasis before entering the streaming
//! update. Patching removes the residual in the missing bins, which would
//! bias the robust weights toward gappy spectra; the fix (paper §II-D, last
//! paragraph) is to solve for `p + q` components and estimate the missing
//! bins' residual from the difference between the `p`- and `(p+q)`-term
//! reconstructions.

use crate::eigensystem::EigenSystem;
use crate::{PcaError, Result};
use spca_linalg::solve::{spd_solve, spd_solve_into, SolveWorkspace};
use spca_linalg::Mat;

/// Result of patching an incomplete observation.
#[derive(Debug, Clone)]
pub struct GapFill {
    /// The observation with missing bins replaced by the eigenbasis
    /// reconstruction `µ + E c` evaluated at those bins.
    pub filled: Vec<f64>,
    /// Bias-corrected squared residual: observed-bin residual plus the
    /// higher-order estimate of the missing-bin residual.
    pub residual_sq: f64,
}

/// Reusable buffers for [`fill_gaps_into`].
#[derive(Debug, Clone, Default)]
pub struct GapWorkspace {
    /// The gap-filled observation, valid after a successful call.
    pub filled: Vec<f64>,
    g: Mat,
    b: Vec<f64>,
    solve: SolveWorkspace,
}

/// Patches the missing entries of `x` using the eigensystem's top `p + q`
/// components and returns the filled vector along with a bias-corrected
/// squared residual for the robust weighting.
///
/// `mask[i] == true` marks an observed bin.
pub fn fill_gaps(
    eig: &EigenSystem,
    x: &[f64],
    mask: &[bool],
    p: usize,
    q: usize,
) -> Result<GapFill> {
    let mut ws = GapWorkspace::default();
    let residual_sq = fill_gaps_into(eig, x, mask, p, q, &mut ws)?;
    Ok(GapFill {
        filled: ws.filled,
        residual_sq,
    })
}

/// [`fill_gaps`] into a workspace: the patched observation lands in
/// `ws.filled`, the bias-corrected squared residual is returned, and no
/// allocation happens once the buffers have grown to size.
pub fn fill_gaps_into(
    eig: &EigenSystem,
    x: &[f64],
    mask: &[bool],
    p: usize,
    q: usize,
    ws: &mut GapWorkspace,
) -> Result<f64> {
    let d = eig.dim();
    if x.len() != d || mask.len() != d {
        return Err(PcaError::DimensionMismatch {
            expected: d,
            got: x.len(),
        });
    }
    let n_obs = mask.iter().filter(|&&m| m).count();
    if n_obs == 0 {
        return Err(PcaError::AllMissing);
    }
    let k = (p + q).min(eig.n_components());
    let p = p.min(k);

    // Solve the masked least squares (Eᵀ M E) c = Eᵀ M y over the top-k
    // basis, where M zeroes the missing bins.
    let GapWorkspace {
        filled,
        g,
        b,
        solve,
    } = ws;
    masked_coefficients_into(eig, x, mask, k, g, b, solve)?;
    let coeffs = &solve.x;

    // Reconstructions restricted to the two truncated bases.
    filled.clear();
    filled.extend_from_slice(x);
    let mut r2_obs = 0.0; // residual over observed bins w.r.t. p components
    let mut r2_miss = 0.0; // higher-order residual estimate over missing bins
    for i in 0..d {
        // p-term and k-term reconstructions of bin i.
        let mut rec_p = eig.mean[i];
        let mut rec_k = eig.mean[i];
        for (j, &c) in coeffs.iter().enumerate() {
            let e_ij = eig.basis[(i, j)];
            if j < p {
                rec_p += c * e_ij;
            }
            rec_k += c * e_ij;
        }
        if mask[i] {
            let r = x[i] - rec_p;
            r2_obs += r * r;
        } else {
            filled[i] = rec_k;
            // The missing bin's unknown residual is approximated by the
            // spread between the two truncations (§II-D).
            let dr = rec_k - rec_p;
            r2_miss += dr * dr;
        }
    }

    Ok(r2_obs + r2_miss)
}

/// Least-squares coefficients of `x − µ` on the top-`k` eigenvectors
/// restricted to the observed bins.
pub fn masked_coefficients(
    eig: &EigenSystem,
    x: &[f64],
    mask: &[bool],
    k: usize,
) -> Result<Vec<f64>> {
    let k = k.min(eig.n_components());
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut g = Mat::default();
    let mut b = Vec::new();
    let mut solve = SolveWorkspace::default();
    masked_coefficients_into(eig, x, mask, k, &mut g, &mut b, &mut solve)?;
    Ok(solve.x)
}

/// [`masked_coefficients`] into caller-owned buffers: the Gram matrix and
/// right-hand side are built in `g`/`b`, the coefficients land in
/// `solve.x`.
///
/// The Gram build exploits the orthonormality of the eigenbasis: with
/// `M` zeroing the missing bins, `EᵀME = EᵀE − E_missᵀE_miss =
/// I_k − E_missᵀE_miss`, so when fewer than half the bins are missing the
/// `k × k` Gram is assembled from the `m` *missing* rows in O(m·k²)
/// instead of scanning all `d` observed rows. Gappy astronomical spectra
/// are overwhelmingly in that regime (a few masked pixels out of
/// thousands of bins). The dense observed-row scan remains for
/// heavily-masked inputs, where it is the cheaper of the two.
fn masked_coefficients_into(
    eig: &EigenSystem,
    x: &[f64],
    mask: &[bool],
    k: usize,
    g: &mut Mat,
    b: &mut Vec<f64>,
    solve: &mut SolveWorkspace,
) -> Result<()> {
    let d = eig.dim();
    let k = k.min(eig.n_components());
    if k == 0 {
        solve.x.clear();
        return Ok(());
    }
    let n_miss = mask.iter().filter(|&&m| !m).count();
    if 2 * n_miss < d {
        masked_gram_from_missing(eig, mask, k, g);
    } else {
        masked_gram_dense(eig, mask, k, g);
    }
    // b = EᵀM(x−µ) always comes from the observed bins (the masked entries
    // of x carry no information).
    b.clear();
    b.resize(k, 0.0);
    for i in 0..d {
        if !mask[i] {
            continue;
        }
        let yi = x[i] - eig.mean[i];
        for (a, ba) in b.iter_mut().enumerate() {
            *ba += eig.basis[(i, a)] * yi;
        }
    }
    spd_solve_into(g, b, solve)?;
    Ok(())
}

/// Builds `G = EᵀME` (`k × k`) by scanning every observed bin — the
/// original O((d−m)·k²) construction, kept for heavily-masked inputs and
/// as the reference the fast path is tested against.
fn masked_gram_dense(eig: &EigenSystem, mask: &[bool], k: usize, g: &mut Mat) {
    g.reset_zeroed(k, k);
    for (i, &observed) in mask.iter().enumerate().take(eig.dim()) {
        if !observed {
            continue;
        }
        for a in 0..k {
            let ea = eig.basis[(i, a)];
            for c in a..k {
                g[(a, c)] += ea * eig.basis[(i, c)];
            }
        }
    }
    mirror_upper(g, k);
}

/// Builds `G = I_k − E_missᵀE_miss` from the missing rows only — O(m·k²).
///
/// Valid because the eigenbasis columns are orthonormal (`EᵀE = I_k`),
/// which the streaming update maintains by construction (every update
/// ends in a QR or SVD re-orthonormalization).
fn masked_gram_from_missing(eig: &EigenSystem, mask: &[bool], k: usize, g: &mut Mat) {
    g.reset_identity(k);
    for (i, &observed) in mask.iter().enumerate().take(eig.dim()) {
        if observed {
            continue;
        }
        for a in 0..k {
            let ea = eig.basis[(i, a)];
            for c in a..k {
                g[(a, c)] -= ea * eig.basis[(i, c)];
            }
        }
    }
    mirror_upper(g, k);
}

/// Copies the strict upper triangle onto the lower one.
fn mirror_upper(g: &mut Mat, k: usize) {
    for a in 0..k {
        for c in 0..a {
            g[(a, c)] = g[(c, a)];
        }
    }
}

/// Fits an overall normalization shift together with the gap fill (Wild et
/// al. 2007 extension): finds scalar `s` and coefficients `c` minimizing
/// `Σ_observed (x_i − s·µ_i − Σ_j c_j E_ij)²`, and returns `(s, c)`.
///
/// Spectra are normalized before entering PCA (§II-D); when bins are
/// missing the normalization itself is biased, and jointly fitting the
/// scale of the mean spectrum removes that bias.
pub fn masked_scale_and_coefficients(
    eig: &EigenSystem,
    x: &[f64],
    mask: &[bool],
    k: usize,
) -> Result<(f64, Vec<f64>)> {
    let d = eig.dim();
    if x.len() != d || mask.len() != d {
        return Err(PcaError::DimensionMismatch {
            expected: d,
            got: x.len(),
        });
    }
    let k = k.min(eig.n_components());
    // Augmented design: columns [µ | e_1 .. e_k] restricted to observed bins.
    let m = k + 1;
    let mut g = Mat::zeros(m, m);
    let mut b = vec![0.0; m];
    let col = |j: usize, i: usize| -> f64 {
        if j == 0 {
            eig.mean[i]
        } else {
            eig.basis[(i, j - 1)]
        }
    };
    let mut any = false;
    for i in 0..d {
        if !mask[i] {
            continue;
        }
        any = true;
        for a in 0..m {
            let ca = col(a, i);
            b[a] += ca * x[i];
            for c in a..m {
                g[(a, c)] += ca * col(c, i);
            }
        }
    }
    if !any {
        return Err(PcaError::AllMissing);
    }
    for a in 0..m {
        for c in 0..a {
            g[(a, c)] = g[(c, a)];
        }
    }
    let sol = spd_solve(&g, &b)?;
    Ok((sol[0], sol[1..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Eigensystem spanning axes 0 and 1 of R⁵ with mean (1,..,1).
    fn system() -> EigenSystem {
        let mut e = EigenSystem::zeros(5, 3);
        e.basis[(0, 0)] = 1.0;
        e.basis[(1, 1)] = 1.0;
        e.basis[(2, 2)] = 1.0; // extra (q) component on axis 2
        e.values = vec![4.0, 2.0, 0.5];
        e.mean = vec![1.0; 5];
        e.sigma2 = 0.1;
        e
    }

    #[test]
    fn complete_mask_reproduces_plain_residual() {
        let e = system();
        let x = vec![3.0, 2.0, 1.5, 1.2, 0.8];
        let mask = vec![true; 5];
        let gf = fill_gaps(&e, &x, &mask, 2, 1).unwrap();
        assert_eq!(gf.filled, x);
        assert!((gf.residual_sq - e.residual_sq_truncated(&x, 2)).abs() < 1e-12);
    }

    #[test]
    fn missing_bin_filled_from_basis() {
        let e = system();
        // True point: mean + 2·e0 + 1·e1 → (3, 2, 1, 1, 1). Hide bin 0.
        let x = vec![999.0, 2.0, 1.0, 1.0, 1.0];
        let mask = vec![false, true, true, true, true];
        let gf = fill_gaps(&e, &x, &mask, 2, 1).unwrap();
        // Bin 0 can only be explained by e0, whose coefficient is
        // unconstrained by the observed bins → least squares sets it to 0,
        // so the fill equals the mean.
        assert!((gf.filled[0] - 1.0).abs() < 1e-9, "filled {:?}", gf.filled);
        // Observed bins exactly on the model → zero residual.
        assert!(gf.residual_sq < 1e-12, "r² = {}", gf.residual_sq);
    }

    #[test]
    fn fill_recovers_in_plane_point() {
        let e = system();
        // Point with correlated structure: e1 coefficient visible in bin 1.
        let x = vec![1.0, 4.0, 1.0, 1.0, 1.0]; // mean + 3·e1
        let mask = vec![true, false, true, true, true];
        // Hide bin 1: coefficient of e1 is unconstrained → fill = mean.
        let gf = fill_gaps(&e, &x, &mask, 2, 1).unwrap();
        assert!((gf.filled[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn higher_order_residual_counts_missing_energy() {
        let e = system();
        // Observed bins carry energy on the extra axis-2 component: the
        // p=2 reconstruction misses it, the k=3 one captures it.
        let x = vec![1.0, 1.0, 3.0, 1.0, 999.0];
        let mask = vec![true, true, true, true, false];
        let gf = fill_gaps(&e, &x, &mask, 2, 1).unwrap();
        // Observed residual w.r.t. p=2: bin 2 deviates by 2.
        assert!(
            (gf.residual_sq - 4.0).abs() < 1e-9,
            "r² = {}",
            gf.residual_sq
        );
        // Missing bin 4 is off-basis entirely: filled with the k-term
        // reconstruction = mean there.
        assert!((gf.filled[4] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_missing_is_error() {
        let e = system();
        let x = vec![0.0; 5];
        assert_eq!(
            fill_gaps(&e, &x, &[false; 5], 2, 1).unwrap_err(),
            PcaError::AllMissing
        );
    }

    #[test]
    fn scale_fit_recovers_brightness() {
        let e = system();
        // A twice-as-bright version of the mean, partially observed.
        let x: Vec<f64> = e.mean.iter().map(|m| 2.0 * m).collect();
        let mask = vec![true, true, true, false, true];
        let (s, _c) = masked_scale_and_coefficients(&e, &x, &mask, 2).unwrap();
        assert!((s - 2.0).abs() < 1e-6, "scale {s}");
    }

    #[test]
    fn masked_coefficients_match_projection_when_complete() {
        let e = system();
        let x = vec![2.5, 0.5, 1.0, 1.0, 1.0];
        let mask = vec![true; 5];
        let c = masked_coefficients(&e, &x, &mask, 2).unwrap();
        let y = e.center(&x);
        let proj = e.project(&y);
        assert!((c[0] - proj[0]).abs() < 1e-9);
        assert!((c[1] - proj[1]).abs() < 1e-9);
    }

    /// A d×k eigensystem with a random (QR-orthonormalized) basis.
    fn random_orthonormal_system(d: usize, k: usize, seed: u64) -> EigenSystem {
        use spca_linalg::qr::orthonormalize;
        use spca_linalg::rng::fill_standard_normal;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let mut m = Mat::zeros(d, k);
        fill_standard_normal(&mut rng, m.as_mut_slice());
        let mut e = EigenSystem::zeros(d, k);
        e.basis = orthonormalize(&m).unwrap();
        e.values = (0..k).map(|j| (k - j) as f64).collect();
        e.mean = (0..d).map(|i| (i % 7) as f64 * 0.1).collect();
        e.sigma2 = 0.1;
        e
    }

    #[test]
    fn fast_gram_matches_dense_on_orthonormal_basis() {
        // The O(m·k²) missing-row construction and the O((d−m)·k²)
        // observed-row scan must agree (up to rounding) whenever the basis
        // is orthonormal — over sparse, clustered and empty masks.
        let (d, k) = (60usize, 5usize);
        let e = random_orthonormal_system(d, k, 7);
        for (name, missing) in [
            ("none", vec![]),
            ("one", vec![3usize]),
            ("sparse", vec![0, 9, 17, 41, 59]),
            ("clustered", (20..35).collect::<Vec<_>>()),
        ] {
            let mut mask = vec![true; d];
            for &i in &missing {
                mask[i] = false;
            }
            let mut dense = Mat::default();
            let mut fast = Mat::default();
            masked_gram_dense(&e, &mask, k, &mut dense);
            masked_gram_from_missing(&e, &mask, k, &mut fast);
            assert!(
                fast.sub(&dense).unwrap().max_abs() < 1e-12,
                "{name}: max diff {}",
                fast.sub(&dense).unwrap().max_abs()
            );
        }
    }

    #[test]
    fn fast_path_coefficients_match_dense_construction() {
        // On a lightly-masked spectrum the production path takes the
        // missing-row Gram; solving the same system with the dense
        // observed-row Gram must give the same coefficients.
        let (d, k) = (50usize, 4usize);
        let e = random_orthonormal_system(d, k, 11);
        let x: Vec<f64> = (0..d).map(|i| (i as f64 * 0.3).sin() + 1.0).collect();
        let mut mask = vec![true; d];
        for i in [2usize, 13, 27, 44] {
            mask[i] = false;
        }
        // Production path (m = 4 < d/2 → fast Gram).
        let fast = masked_coefficients(&e, &x, &mask, k).unwrap();
        // Reference: dense Gram + identical rhs, solved the same way.
        let mut g = Mat::default();
        masked_gram_dense(&e, &mask, k, &mut g);
        let mut b = vec![0.0; k];
        for i in 0..d {
            if mask[i] {
                let yi = x[i] - e.mean[i];
                for (a, ba) in b.iter_mut().enumerate() {
                    *ba += e.basis[(i, a)] * yi;
                }
            }
        }
        let dense = spd_solve(&g, &b).unwrap();
        for (f, r) in fast.iter().zip(&dense) {
            assert!((f - r).abs() < 1e-10 * (1.0 + r.abs()), "{f} vs {r}");
        }
    }

    #[test]
    fn dimension_mismatch_detected() {
        let e = system();
        assert!(matches!(
            fill_gaps(&e, &[0.0; 4], &[true; 4], 2, 1),
            Err(PcaError::DimensionMismatch { .. })
        ));
    }
}
