//! Bounded ρ-functions for the M-scale estimate.
//!
//! The paper (§II-A) requires a bounded ρ scaled so that `ρ(0) = 0` and
//! `ρ(∞) = 1`, with weights `W(t) = ρ'(t)` and `W*(t) = ρ(t)/t`, where the
//! argument is the *squared, scale-normalized* residual `t = r²/σ²`.
//!
//! The default is the Tukey bisquare, the choice of Maronna (2005) whose
//! M-scale procedure the paper adopts. Also provided: a bounded Huber-type
//! function, the smoothly-redescending Welsch exponential, and the unbounded
//! classical `ρ(t) = t` (which reduces every robust recursion to its
//! classical counterpart — used as a consistency oracle in tests).

/// A bounded robust ρ-function on the squared normalized residual.
pub trait Rho: Send + Sync {
    /// ρ(t), non-decreasing, ρ(0)=0, bounded by 1 (except [`Classical`]).
    fn rho(&self, t: f64) -> f64;

    /// Hard-rejection weight `W(t) = ρ'(t)` (eq. 7).
    fn weight(&self, t: f64) -> f64;

    /// Scale weight `W*(t) = ρ(t)/t`, continuously extended at `t = 0`
    /// (eq. 8).
    fn scale_weight(&self, t: f64) -> f64 {
        if t <= 0.0 {
            // lim_{t→0} ρ(t)/t = ρ'(0)
            self.weight(0.0)
        } else {
            self.rho(t) / t
        }
    }

    /// The value of `t` above which an observation receives zero weight
    /// (i.e. is treated as a pure outlier), or `f64::INFINITY` if weights
    /// never vanish.
    fn rejection_point(&self) -> f64;
}

/// Tukey bisquare on the squared residual: for `t ≤ c²`,
/// `ρ(t) = 1 − (1 − t/c²)³`; for `t > c²`, `ρ(t) = 1`.
///
/// `W(t) = (3/c²)(1 − t/c²)²` inside the acceptance region, `0` outside —
/// so gross outliers are *completely* rejected, which is what lets the
/// streaming eigensystem ignore the "rainbow effect" of Fig. 1.
#[derive(Debug, Clone, Copy)]
pub struct Bisquare {
    c2: f64,
}

impl Bisquare {
    /// Creates a bisquare with rejection point `c²` (in units of `r²/σ²`).
    ///
    /// The conventional default [`Bisquare::default`] rejects at `t = 9`,
    /// i.e. residuals beyond 3σ.
    pub fn new(c2: f64) -> Self {
        assert!(c2 > 0.0, "rejection point must be positive");
        Bisquare { c2 }
    }
}

impl Default for Bisquare {
    fn default() -> Self {
        Bisquare::new(9.0)
    }
}

impl Rho for Bisquare {
    fn rho(&self, t: f64) -> f64 {
        if t >= self.c2 {
            1.0
        } else if t <= 0.0 {
            0.0
        } else {
            // Factored form 1 − u³ = (1 − u)(1 + u + u²) with 1 − u = t/c²:
            // avoids catastrophic cancellation for t ≪ c².
            let u = 1.0 - t / self.c2;
            (t / self.c2) * (1.0 + u + u * u)
        }
    }

    fn scale_weight(&self, t: f64) -> f64 {
        // ρ(t)/t = (1 + u + u²)/c² inside the acceptance region — exact and
        // stable down to t = 0 where it equals ρ'(0) = 3/c².
        if t >= self.c2 {
            1.0 / t
        } else if t < 0.0 {
            0.0
        } else {
            let u = 1.0 - t / self.c2;
            (1.0 + u + u * u) / self.c2
        }
    }

    fn weight(&self, t: f64) -> f64 {
        if t >= self.c2 || t < 0.0 {
            0.0
        } else {
            let u = 1.0 - t / self.c2;
            3.0 / self.c2 * u * u
        }
    }

    fn rejection_point(&self) -> f64 {
        self.c2
    }
}

/// Bounded Huber-type function: `ρ(t) = min(t/c², 1)`.
///
/// Linear (i.e. classical) inside the acceptance region, capped outside.
/// Unlike the bisquare its weights do not descend smoothly, which makes it
/// cheaper but slightly less efficient statistically — included for the
/// ρ-ablation bench.
#[derive(Debug, Clone, Copy)]
pub struct HuberLike {
    c2: f64,
}

impl HuberLike {
    /// Creates a Huber-type ρ with cap at `t = c²`.
    pub fn new(c2: f64) -> Self {
        assert!(c2 > 0.0, "cap must be positive");
        HuberLike { c2 }
    }
}

impl Default for HuberLike {
    fn default() -> Self {
        HuberLike::new(9.0)
    }
}

impl Rho for HuberLike {
    fn rho(&self, t: f64) -> f64 {
        (t / self.c2).clamp(0.0, 1.0)
    }

    fn weight(&self, t: f64) -> f64 {
        if (0.0..self.c2).contains(&t) {
            1.0 / self.c2
        } else {
            0.0
        }
    }

    fn rejection_point(&self) -> f64 {
        self.c2
    }
}

/// Welsch (exponential) ρ: `ρ(t) = 1 − exp(−t/c²)`.
///
/// Smoothly redescending — weights decay exponentially but never hit an
/// exact zero, so extreme observations keep an (exponentially tiny) say.
/// Included for the ρ-ablation: it trades the bisquare's hard rejection
/// point for infinite support.
#[derive(Debug, Clone, Copy)]
pub struct Welsch {
    c2: f64,
}

impl Welsch {
    /// Creates a Welsch ρ with scale `c²`.
    pub fn new(c2: f64) -> Self {
        assert!(c2 > 0.0, "scale must be positive");
        Welsch { c2 }
    }
}

impl Default for Welsch {
    fn default() -> Self {
        Welsch::new(9.0)
    }
}

impl Rho for Welsch {
    fn rho(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(-t / self.c2).exp_m1()
        }
    }

    fn weight(&self, t: f64) -> f64 {
        if t < 0.0 {
            0.0
        } else {
            (-t / self.c2).exp() / self.c2
        }
    }

    fn scale_weight(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0 / self.c2 // lim ρ(t)/t = ρ'(0)
        } else {
            self.rho(t) / t
        }
    }

    fn rejection_point(&self) -> f64 {
        // Weights never vanish exactly; report where they fall below a
        // float-meaningful floor (w < 1e-12 · w(0) at t ≈ 27.6·c²).
        27.7 * self.c2
    }
}

/// The classical, unbounded `ρ(t) = t`: every observation gets weight 1 and
/// the M-scale degenerates to the mean squared residual. With this choice
/// the robust recursions reproduce classical streaming PCA exactly, which
/// the test-suite exploits as a consistency oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct Classical;

impl Rho for Classical {
    fn rho(&self, t: f64) -> f64 {
        t
    }

    fn weight(&self, _t: f64) -> f64 {
        1.0
    }

    fn rejection_point(&self) -> f64 {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bounds<R: Rho>(r: &R) {
        assert_eq!(r.rho(0.0), 0.0);
        for &t in &[0.01, 0.5, 1.0, 3.0, 8.9, 9.0, 100.0] {
            let v = r.rho(t);
            assert!((0.0..=1.0).contains(&v), "rho({t}) = {v}");
            assert!(r.weight(t) >= 0.0);
        }
        // Monotone non-decreasing.
        let mut prev = 0.0;
        for i in 0..100 {
            let v = r.rho(i as f64 * 0.2);
            assert!(v >= prev - 1e-15);
            prev = v;
        }
    }

    #[test]
    fn bisquare_bounds_and_monotonicity() {
        check_bounds(&Bisquare::default());
    }

    #[test]
    fn huber_bounds_and_monotonicity() {
        check_bounds(&HuberLike::default());
    }

    #[test]
    fn welsch_bounds_and_monotonicity() {
        check_bounds(&Welsch::default());
    }

    #[test]
    fn welsch_weight_is_derivative() {
        let wl = Welsch::default();
        let h = 1e-6;
        for &t in &[0.1, 1.0, 4.0, 8.0, 20.0] {
            let num = (wl.rho(t + h) - wl.rho(t - h)) / (2.0 * h);
            assert!((num - wl.weight(t)).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn welsch_never_fully_rejects() {
        let wl = Welsch::default();
        assert!(wl.weight(100.0) > 0.0);
        assert!(wl.weight(100.0) < 1e-4);
        assert!((wl.scale_weight(0.0) - wl.weight(0.0)).abs() < 1e-12);
    }

    #[test]
    fn bisquare_weight_is_derivative() {
        let b = Bisquare::default();
        let h = 1e-6;
        for &t in &[0.1, 1.0, 4.0, 8.0] {
            let num = (b.rho(t + h) - b.rho(t - h)) / (2.0 * h);
            assert!((num - b.weight(t)).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn huber_weight_is_derivative_inside() {
        let hb = HuberLike::default();
        let h = 1e-6;
        for &t in &[0.1, 1.0, 4.0, 8.0] {
            let num = (hb.rho(t + h) - hb.rho(t - h)) / (2.0 * h);
            assert!((num - hb.weight(t)).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn scale_weight_continuous_at_zero() {
        let b = Bisquare::default();
        assert!((b.scale_weight(0.0) - b.scale_weight(1e-12)).abs() < 1e-9);
        assert!((b.scale_weight(0.0) - b.weight(0.0)).abs() < 1e-15);
    }

    #[test]
    fn rejection_beyond_c2() {
        let b = Bisquare::new(9.0);
        assert_eq!(b.weight(9.0), 0.0);
        assert_eq!(b.weight(100.0), 0.0);
        assert_eq!(b.rho(9.0), 1.0);
        assert!(b.weight(8.999) > 0.0);
    }

    #[test]
    fn classical_is_identity() {
        let c = Classical;
        assert_eq!(c.rho(5.0), 5.0);
        assert_eq!(c.weight(123.0), 1.0);
        assert_eq!(c.scale_weight(7.0), 1.0);
        assert_eq!(c.rejection_point(), f64::INFINITY);
    }

    #[test]
    fn bisquare_scale_weight_monotone_decreasing() {
        let b = Bisquare::default();
        let mut prev = b.scale_weight(0.0);
        for i in 1..200 {
            let t = i as f64 * 0.1;
            let w = b.scale_weight(t);
            assert!(w <= prev + 1e-12, "t={t}");
            prev = w;
        }
    }
}
