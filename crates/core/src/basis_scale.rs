//! Streaming robust eigenvalues along fixed basis vectors (§II-B).
//!
//! "It is worth noting that robust 'eigenvalues' can be computed for any
//! basis vectors in a consistent way, which enables a meaningful comparison
//! of the performance of various bases. To derive a robust measure of the
//! scatter of the data along a given eigenspectrum e, one can project the
//! data on it, and formally solve the same equation as in eq.(5) but with
//! the residuals replaced with the projected values."
//!
//! [`BasisScaleTracker`] runs one M-scale recursion (the σ² update of
//! eq. 11/14) per basis vector, incrementally — so two candidate bases can
//! be scored against the *live stream* without buffering it.

use crate::config::PcaConfig;
use crate::rho::Rho;
use crate::{PcaError, Result};
use spca_linalg::{vecops, Mat};
use std::sync::Arc;

/// Incremental robust scale (M-scale) of a scalar stream: the σ² recursion
/// of eq. (11) with γ₃ from the decayed count (eq. 14).
#[derive(Debug, Clone)]
pub struct RobustScale {
    sigma2: f64,
    sum_u: f64,
    alpha: f64,
    delta: f64,
    n: u64,
}

impl RobustScale {
    /// A scale tracker with forgetting factor `alpha` and breakdown `delta`.
    pub fn new(alpha: f64, delta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        RobustScale {
            sigma2: 0.0,
            sum_u: 0.0,
            alpha,
            delta,
            n: 0,
        }
    }

    /// Feeds one squared value `r²`.
    pub fn update(&mut self, r2: f64, rho: &dyn Rho) {
        let u_new = self.alpha * self.sum_u + 1.0;
        let gamma3 = self.alpha * self.sum_u / u_new;
        // Before any scale exists, seed with the raw value (the fixed-point
        // iteration forgets the seed geometrically anyway).
        let sigma = if self.sigma2 > 0.0 {
            self.sigma2
        } else {
            r2.max(f64::MIN_POSITIVE)
        };
        let t = r2 / sigma;
        let w_star = rho.scale_weight(t);
        self.sigma2 = gamma3 * self.sigma2 + (1.0 - gamma3) * w_star * r2 / self.delta;
        self.sum_u = u_new;
        self.n += 1;
    }

    /// The current scale estimate σ².
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// Observations consumed.
    pub fn n_obs(&self) -> u64 {
        self.n
    }
}

/// Tracks robust eigenvalues of a data stream along a *fixed* orthonormal
/// basis, plus a robust location along the way.
pub struct BasisScaleTracker {
    basis: Mat,
    mean: Vec<f64>,
    mean_v: f64,
    scales: Vec<RobustScale>,
    rho: Arc<dyn Rho>,
    alpha: f64,
}

impl BasisScaleTracker {
    /// A tracker over the columns of `basis`, configured like a PCA run
    /// (α, δ, ρ are taken from `cfg`).
    pub fn new(basis: Mat, cfg: &PcaConfig) -> Self {
        let k = basis.cols();
        let d = basis.rows();
        BasisScaleTracker {
            basis,
            mean: vec![0.0; d],
            mean_v: 0.0,
            scales: (0..k)
                .map(|_| RobustScale::new(cfg.alpha, cfg.delta))
                .collect(),
            rho: cfg.rho.build(),
            alpha: cfg.alpha,
        }
    }

    /// Feeds one observation.
    pub fn update(&mut self, x: &[f64]) -> Result<()> {
        if x.len() != self.basis.rows() {
            return Err(PcaError::DimensionMismatch {
                expected: self.basis.rows(),
                got: x.len(),
            });
        }
        if !vecops::all_finite(x) {
            return Err(PcaError::NotFinite);
        }
        // Simple robust-ish location: the classic decayed mean (adequate —
        // the scales dominate the comparison and the paper's equation uses
        // the PCA location anyway when available).
        let v_new = self.alpha * self.mean_v + 1.0;
        let gamma = self.alpha * self.mean_v / v_new;
        for (m, &xi) in self.mean.iter_mut().zip(x) {
            *m = gamma * *m + (1.0 - gamma) * xi;
        }
        self.mean_v = v_new;

        let y = vecops::sub(x, &self.mean);
        for (k, scale) in self.scales.iter_mut().enumerate() {
            let proj = vecops::dot(self.basis.col(k), &y);
            scale.update(proj * proj, self.rho.as_ref());
        }
        Ok(())
    }

    /// Robust eigenvalue estimates, one per basis column.
    pub fn robust_eigenvalues(&self) -> Vec<f64> {
        self.scales.iter().map(|s| s.sigma2()).collect()
    }

    /// Total robust variance captured by the basis — the score for
    /// comparing candidate bases on the same stream.
    pub fn captured(&self) -> f64 {
        self.robust_eigenvalues().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rho::{Bisquare, Classical};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;
    use spca_linalg::rng::standard_normal;

    const D: usize = 10;

    fn axes(which: &[usize]) -> Mat {
        let mut m = Mat::zeros(D, which.len());
        for (j, &ax) in which.iter().enumerate() {
            m[(ax, j)] = 1.0;
        }
        m
    }

    fn sample(rng: &mut StdRng) -> Vec<f64> {
        let mut x = vec![0.0; D];
        x[0] = 4.0 * standard_normal(rng);
        x[1] = 2.0 * standard_normal(rng);
        for v in x.iter_mut() {
            *v += 0.01 * standard_normal(rng);
        }
        x
    }

    #[test]
    fn classical_rho_recovers_projection_variance() {
        // With ρ(t)=t and δ=0.5, the recursion estimates E[r²]/δ = 2·Var.
        let cfg = PcaConfig::new(D, 2)
            .with_memory(2000)
            .with_rho(crate::RhoKind::Classical);
        let mut tr = BasisScaleTracker::new(axes(&[0, 1]), &cfg);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..6000 {
            tr.update(&sample(&mut rng)).unwrap();
        }
        let lam = tr.robust_eigenvalues();
        assert!((lam[0] - 32.0).abs() < 4.0, "λ0 = {} (want ≈ 2·16)", lam[0]);
        assert!((lam[1] - 8.0).abs() < 1.5, "λ1 = {} (want ≈ 2·4)", lam[1]);
    }

    #[test]
    fn good_basis_captures_more_than_bad() {
        let cfg = PcaConfig::new(D, 2).with_memory(1000);
        let mut good = BasisScaleTracker::new(axes(&[0, 1]), &cfg);
        let mut bad = BasisScaleTracker::new(axes(&[7, 8]), &cfg);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..3000 {
            let x = sample(&mut rng);
            good.update(&x).unwrap();
            bad.update(&x).unwrap();
        }
        assert!(
            good.captured() > 100.0 * bad.captured(),
            "good {} vs bad {}",
            good.captured(),
            bad.captured()
        );
    }

    #[test]
    fn robust_scale_ignores_contamination() {
        // 10% gross spikes in the projections barely move the bisquare
        // scale but blow up the classical one.
        let mut robust = RobustScale::new(0.999, 0.5);
        let mut classic = RobustScale::new(0.999, 0.5);
        let bi = Bisquare::default();
        let cl = Classical;
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..5000 {
            let base: f64 = standard_normal(&mut rng);
            let r2 = if i % 10 == 0 { 1e6 } else { base * base };
            robust.update(r2, &bi);
            classic.update(r2, &cl);
        }
        assert!(
            robust.sigma2() < 50.0,
            "robust exploded: {}",
            robust.sigma2()
        );
        assert!(
            classic.sigma2() > 1e4,
            "classical should absorb spikes: {}",
            classic.sigma2()
        );
    }

    #[test]
    fn agrees_with_batch_fixed_point() {
        // Streaming M-scale with long memory ≈ batch fixed point on the
        // same values.
        let mut rng = StdRng::seed_from_u64(4);
        let r2: Vec<f64> = (0..8000)
            .map(|_| {
                let v: f64 = standard_normal(&mut rng);
                if rng.gen::<f64>() < 0.05 {
                    400.0
                } else {
                    v * v
                }
            })
            .collect();
        let bi = Bisquare::default();
        let batch = crate::robust::mscale_fixed_point(&r2, 0.5, &bi, 100);
        let mut streaming = RobustScale::new(1.0 - 1.0 / 2000.0, 0.5);
        for &v in &r2 {
            streaming.update(v, &bi);
        }
        let rel = (streaming.sigma2() - batch).abs() / batch;
        assert!(
            rel < 0.3,
            "streaming {} vs batch {batch}",
            streaming.sigma2()
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let cfg = PcaConfig::new(D, 2);
        let mut tr = BasisScaleTracker::new(axes(&[0]), &cfg);
        assert!(tr.update(&[1.0, 2.0]).is_err());
    }
}
