//! Read-path queries against a pinned eigensystem snapshot.
//!
//! The serving layer answers project / reconstruct / outlier-score /
//! top-k-similarity queries at high QPS while the streaming update runs
//! at full ingest rate, so the per-request math must not allocate: every
//! query runs through a caller-owned [`QueryWorkspace`] whose buffers are
//! grown once and reused for the lifetime of a serving thread.
//!
//! Semantics match the streaming update path exactly: projections use the
//! top `p` reported components of a (possibly `p + q`-component) tracked
//! eigensystem, and the outlier score reproduces the scale-collapse guard
//! of the robust step (`σ²` clamped to `1e-12·λ₀` before forming
//! `t = r²/σ²`), so a served score is bit-identical to the
//! [`UpdateOutcome`](crate::UpdateOutcome) the estimator would have
//! produced for the same observation against the same state.

use crate::eigensystem::EigenSystem;
use crate::{PcaError, Result};
use spca_linalg::vecops;

/// Outlier diagnostics for a queried observation, mirroring the fields of
/// [`UpdateOutcome`](crate::UpdateOutcome) that do not depend on the
/// ρ-function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierScore {
    /// Squared residual `r²` against the top `p` components.
    pub residual_sq: f64,
    /// Scale-normalized squared residual `t = r²/σ²` (σ² guarded against
    /// collapse exactly as in the robust step).
    pub scaled_residual: f64,
}

/// One ranked component from a top-k-similarity query: which eigenvector,
/// its projection coefficient, and the cosine similarity between the
/// centered observation and that eigenvector direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityHit {
    /// Component index (0-based, descending eigenvalue order).
    pub component: usize,
    /// Projection coefficient `c_j = e_jᵀ (x − µ)`.
    pub coefficient: f64,
    /// Cosine similarity `c_j / ‖x − µ‖` in `[-1, 1]` (0 if `x = µ`).
    pub cosine: f64,
}

/// Reusable scratch for the query read path. Buffers grow on first use at
/// a given dimension and are reused thereafter; in steady state no query
/// method allocates.
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    centered: Vec<f64>,
    coeffs: Vec<f64>,
    recon: Vec<f64>,
    hits: Vec<SimilarityHit>,
}

impl QueryWorkspace {
    /// A workspace with empty buffers (grown on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn check_dim(eig: &EigenSystem, x: &[f64]) -> Result<()> {
        if x.len() != eig.dim() {
            return Err(PcaError::DimensionMismatch {
                expected: eig.dim(),
                got: x.len(),
            });
        }
        if !vecops::all_finite(x) {
            return Err(PcaError::NotFinite);
        }
        Ok(())
    }

    /// Centers `x` and fills `self.coeffs` with the top-`p` projection
    /// coefficients.
    fn project_truncated(&mut self, eig: &EigenSystem, p: usize, x: &[f64]) -> Result<()> {
        Self::check_dim(eig, x)?;
        let p = p.min(eig.n_components());
        eig.center_into(x, &mut self.centered);
        self.coeffs.clear();
        self.coeffs
            .extend((0..p).map(|j| vecops::dot(eig.basis.col(j), &self.centered)));
        Ok(())
    }

    /// Projection coefficients `c = E_pᵀ (x − µ)` onto the top `p`
    /// components.
    pub fn project(&mut self, eig: &EigenSystem, p: usize, x: &[f64]) -> Result<&[f64]> {
        self.project_truncated(eig, p, x)?;
        Ok(&self.coeffs)
    }

    /// Full reconstruction `µ + E_p E_pᵀ (x − µ)` of an observation from
    /// its top-`p` projection.
    pub fn reconstruct(&mut self, eig: &EigenSystem, p: usize, x: &[f64]) -> Result<&[f64]> {
        self.project_truncated(eig, p, x)?;
        self.recon.clear();
        self.recon.extend_from_slice(&eig.mean);
        for (j, &c) in self.coeffs.iter().enumerate() {
            vecops::axpy(c, eig.basis.col(j), &mut self.recon);
        }
        Ok(&self.recon)
    }

    /// Outlier score of an observation against the top `p` components,
    /// using the same residual and σ²-guard as the robust streaming step.
    pub fn outlier_score(
        &mut self,
        eig: &EigenSystem,
        p: usize,
        x: &[f64],
    ) -> Result<OutlierScore> {
        Self::check_dim(eig, x)?;
        eig.center_into(x, &mut self.centered);
        let residual_sq = eig.residual_sq_truncated_centered(&self.centered, p);
        // Scale-collapse guard mirrored from `robust_step_with_residual`.
        let var_scale: f64 = eig.values.first().copied().unwrap_or(0.0).max(1e-300);
        let sigma2 = eig.sigma2.max(1e-12 * var_scale);
        Ok(OutlierScore {
            residual_sq,
            scaled_residual: residual_sq / sigma2,
        })
    }

    /// The `k` components most similar to the observation, ranked by
    /// `|c_j|` descending (ties broken by component index), with cosine
    /// similarities against the centered observation.
    pub fn top_k_similarity(
        &mut self,
        eig: &EigenSystem,
        p: usize,
        x: &[f64],
        k: usize,
    ) -> Result<&[SimilarityHit]> {
        self.project_truncated(eig, p, x)?;
        let norm = vecops::norm(&self.centered);
        let inv = if norm > 0.0 { 1.0 / norm } else { 0.0 };
        self.hits.clear();
        self.hits
            .extend(self.coeffs.iter().enumerate().map(|(j, &c)| SimilarityHit {
                component: j,
                coefficient: c,
                cosine: c * inv,
            }));
        self.hits.sort_unstable_by(|a, b| {
            b.coefficient
                .abs()
                .partial_cmp(&a.coefficient.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.component.cmp(&b.component))
        });
        self.hits.truncate(k.min(self.hits.len()));
        Ok(&self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PcaConfig;
    use crate::robust::RobustPca;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spca_linalg::rng::standard_normal_vec;

    const D: usize = 16;
    const P: usize = 3;

    fn fitted() -> RobustPca {
        let mut pca = RobustPca::new(PcaConfig::new(D, P));
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let mut x = vec![0.0; D];
            let c = standard_normal_vec(&mut rng, 2);
            x[0] = 3.0 * c[0];
            x[1] = 1.5 * c[1];
            for xi in x.iter_mut() {
                *xi += 0.01 * spca_linalg::rng::standard_normal(&mut rng);
            }
            pca.update(&x).unwrap();
        }
        assert!(pca.is_initialized());
        pca
    }

    #[test]
    fn project_matches_naive() {
        let pca = fitted();
        let eig = pca.full_eigensystem().unwrap();
        let x: Vec<f64> = (0..D).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut ws = QueryWorkspace::new();
        let got = ws.project(eig, P, &x).unwrap().to_vec();
        let y = eig.center(&x);
        let naive: Vec<f64> = (0..P)
            .map(|j| spca_linalg::vecops::dot(eig.basis.col(j), &y))
            .collect();
        assert_eq!(got, naive);
    }

    #[test]
    fn reconstruct_matches_naive() {
        let pca = fitted();
        let eig = pca.full_eigensystem().unwrap();
        let x: Vec<f64> = (0..D).map(|i| (i as f64 * 0.61).cos()).collect();
        let mut ws = QueryWorkspace::new();
        let got = ws.reconstruct(eig, P, &x).unwrap().to_vec();
        // Naive: µ + Σⱼ cⱼ eⱼ over the top P components.
        let y = eig.center(&x);
        let mut want = eig.mean.clone();
        for j in 0..P {
            let c = spca_linalg::vecops::dot(eig.basis.col(j), &y);
            for (w, e) in want.iter_mut().zip(eig.basis.col(j)) {
                *w += c * e;
            }
        }
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }

    #[test]
    fn outlier_score_matches_update_outcome() {
        // The score served for an observation must equal the outcome the
        // estimator itself reports when consuming that observation.
        let mut pca = fitted();
        let eig = pca.full_eigensystem().unwrap().clone();
        let mut spike = vec![0.0; D];
        spike[7] = 50.0;
        let mut ws = QueryWorkspace::new();
        let score = ws.outlier_score(&eig, P, &spike).unwrap();
        let outcome = pca.update(&spike).unwrap();
        assert_eq!(score.residual_sq, outcome.residual_sq);
        assert_eq!(score.scaled_residual, outcome.scaled_residual);
        assert!(score.scaled_residual > 10.0, "spike should score high");
    }

    #[test]
    fn top_k_ranked_by_abs_coefficient() {
        let pca = fitted();
        let eig = pca.full_eigensystem().unwrap();
        let x: Vec<f64> = (0..D).map(|i| (i as f64 * 0.23).sin() * 2.0).collect();
        let mut ws = QueryWorkspace::new();
        let hits = ws.top_k_similarity(eig, P, &x, 2).unwrap().to_vec();
        assert_eq!(hits.len(), 2);
        assert!(hits[0].coefficient.abs() >= hits[1].coefficient.abs());
        for h in &hits {
            assert!(h.cosine.abs() <= 1.0 + 1e-12);
            let y = eig.center(&x);
            let c = spca_linalg::vecops::dot(eig.basis.col(h.component), &y);
            assert_eq!(h.coefficient, c);
        }
        // k larger than p clamps.
        assert_eq!(ws.top_k_similarity(eig, P, &x, 99).unwrap().len(), P);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let pca = fitted();
        let eig = pca.full_eigensystem().unwrap();
        let mut ws = QueryWorkspace::new();
        assert!(ws.project(eig, P, &[1.0, 2.0]).is_err());
        assert!(ws.outlier_score(eig, P, &[f64::NAN; D]).is_err());
    }

    #[test]
    fn copy_from_is_exact_and_reuses_buffers() {
        let pca = fitted();
        let src = pca.full_eigensystem().unwrap();
        let mut dst = EigenSystem::zeros(D, src.n_components());
        dst.copy_from(src);
        assert_eq!(dst.mean, src.mean);
        assert_eq!(dst.values, src.values);
        assert_eq!(dst.basis.as_slice(), src.basis.as_slice());
        assert_eq!(dst.n_obs, src.n_obs);
        assert_eq!(dst.sigma2, src.sigma2);
        // Second copy at the same shape must not grow capacity.
        let cap = dst.mean.capacity();
        dst.copy_from(src);
        assert_eq!(dst.mean.capacity(), cap);
    }
}
