#![warn(missing_docs)]
//! Robust incremental principal components analysis for data streams.
//!
//! This crate implements the core contribution of *"Incremental and Parallel
//! Analytics on Astrophysical Data Streams"* (SC 2012):
//!
//! * [`ClassicIncrementalPca`] — the classical incremental eigensystem update
//!   via a low-rank factor SVD (paper eq. 1–3).
//! * [`RobustPca`] — the statistically robust streaming estimator: M-scale of
//!   the residuals (eq. 5), per-observation weights, weighted recursions for
//!   mean / covariance / scale (eq. 9–11) driven by running sums `u, v, q`
//!   and forgetting factor `α` (eq. 12–14), and outlier flagging.
//! * [`mod@merge`] — combining independently-estimated eigensystems at
//!   synchronization points (eq. 15–16).
//! * [`gaps`] — handling missing entries via eigenbasis reconstruction with
//!   the higher-order (`p+q`) residual correction of §II-D.
//! * [`batch`] — offline baselines: classical batch PCA and the iterative
//!   Maronna-style robust batch PCA the streaming method approximates.
//! * [`metrics`] — subspace distances (principal angles) and convergence
//!   diagnostics used by the experiment harness.
//!
//! The crate is deliberately independent of any streaming machinery: it is a
//! pure state-machine library (`update(&mut self, x)`), which is what lets
//! the dataflow engine in `spca-streams` wrap it as a stateful operator
//! exactly the way the paper wraps its C++ operator in InfoSphere.
//!
//! ```
//! use spca_core::{PcaConfig, RobustPca};
//!
//! // Track 2 components of a 8-dimensional stream, forgetting over ~500
//! // observations.
//! let mut pca = RobustPca::new(PcaConfig::new(8, 2).with_memory(500));
//! for i in 0..200u32 {
//!     // A noisy rank-1 stream along the first axis.
//!     let c = (i as f64 * 0.37).sin() * 3.0;
//!     let x: Vec<f64> = (0..8).map(|j| if j == 0 { c } else { 1e-3 * (i + j as u32) as f64 }).collect();
//!     let outcome = pca.update(&x).unwrap();
//!     assert!(!outcome.outlier || !outcome.initialized);
//! }
//! let eig = pca.eigensystem();
//! assert_eq!(eig.n_components(), 2);
//! assert!(eig.basis[(0, 0)].abs() > 0.99); // found the planted axis
//! ```

pub mod basis_scale;
pub mod batch;
pub mod classic;
pub mod config;
pub mod eigensystem;
pub mod gaps;
pub mod merge;
pub mod metrics;
pub mod query;
pub mod rho;
pub mod robust;
pub mod window;

pub use basis_scale::{BasisScaleTracker, RobustScale};
pub use classic::{ClassicIncrementalPca, UpdateWorkspace};
pub use config::{PcaConfig, RhoKind};
pub use eigensystem::EigenSystem;
pub use merge::{merge, merge_all, merge_tree};
pub use query::{OutlierScore, QueryWorkspace, SimilarityHit};
pub use robust::{RobustPca, UpdateOutcome};
pub use window::WindowedPca;

/// Errors from streaming-PCA state updates.
#[derive(Debug, Clone, PartialEq)]
pub enum PcaError {
    /// An observation's length does not match the configured dimension.
    DimensionMismatch {
        /// Configured dimensionality.
        expected: usize,
        /// Observed vector length.
        got: usize,
    },
    /// The observation contains NaN / infinite entries.
    NotFinite,
    /// Linear-algebra kernel failure (propagated).
    Linalg(spca_linalg::LinalgError),
    /// Attempted to merge eigensystems with incompatible shapes.
    IncompatibleMerge(String),
    /// Masked update where every bin is missing.
    AllMissing,
}

impl std::fmt::Display for PcaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcaError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            PcaError::NotFinite => write!(f, "observation contains non-finite values"),
            PcaError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            PcaError::IncompatibleMerge(msg) => write!(f, "incompatible merge: {msg}"),
            PcaError::AllMissing => write!(f, "masked observation has no observed bins"),
        }
    }
}

impl std::error::Error for PcaError {}

impl From<spca_linalg::LinalgError> for PcaError {
    fn from(e: spca_linalg::LinalgError) -> Self {
        PcaError::Linalg(e)
    }
}

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, PcaError>;
