//! Combining independently-estimated eigensystems (§II-C, eq. 15–16).
//!
//! When the stream is split across engines, each engine's eigensystem drifts
//! on its own substream; synchronization merges two (or more) systems into
//! one. The combined location is the `v`-weighted average of the means, and
//! the combined covariance is diagonalized through a low-rank factor
//!
//! ```text
//! A = [ E₁√(γ₁Λ₁) | E₂√(γ₂Λ₂) | √γ₁·(µ₁−µ) | √γ₂·(µ₂−µ) ]
//! ```
//!
//! whose two trailing columns are the exact mean-shift correction of
//! eq. (15); when the means agree they vanish and the factor reduces to the
//! paper's approximation (eq. 16). Running sums add, so merged systems keep
//! driving the γ-recursions consistently.

use crate::eigensystem::EigenSystem;
use crate::{PcaError, Result};
use spca_linalg::{svd, vecops, Mat};

/// Merges two eigensystems into a `k`-component combined estimate, where
/// `k = max(k₁, k₂)` components are retained.
pub fn merge(s1: &EigenSystem, s2: &EigenSystem) -> Result<EigenSystem> {
    if s1.dim() != s2.dim() {
        return Err(PcaError::IncompatibleMerge(format!(
            "cannot merge eigensystem of shape {}×{} with {}×{}: dimensions {} vs {} differ",
            s1.dim(),
            s1.n_components(),
            s2.dim(),
            s2.n_components(),
            s1.dim(),
            s2.dim()
        )));
    }
    let d = s1.dim();
    let k_out = s1.n_components().max(s2.n_components());

    // Degenerate participants (no data yet) pass the other side through.
    if s1.sum_v <= 0.0 && s1.n_obs == 0 {
        return Ok(pad_components(s2, k_out));
    }
    if s2.sum_v <= 0.0 && s2.n_obs == 0 {
        return Ok(pad_components(s1, k_out));
    }

    // γ weights from the robust running weight sums (paper: γ₁ = v₁/(v₁+v₂)).
    let v_total = s1.sum_v + s2.sum_v;
    let (g1, g2) = if v_total > 0.0 {
        (s1.sum_v / v_total, s2.sum_v / v_total)
    } else {
        (0.5, 0.5)
    };

    // Combined mean.
    let mean: Vec<f64> = s1
        .mean
        .iter()
        .zip(&s2.mean)
        .map(|(&m1, &m2)| g1 * m1 + g2 * m2)
        .collect();

    // Low-rank factor with mean-shift correction columns.
    let k1 = s1.n_components();
    let k2 = s2.n_components();
    let mut a = Mat::zeros(d, k1 + k2 + 2);
    for j in 0..k1 {
        let s = (g1 * s1.values[j]).max(0.0).sqrt();
        for (o, &e) in a.col_mut(j).iter_mut().zip(s1.basis.col(j)) {
            *o = s * e;
        }
    }
    for j in 0..k2 {
        let s = (g2 * s2.values[j]).max(0.0).sqrt();
        for (o, &e) in a.col_mut(k1 + j).iter_mut().zip(s2.basis.col(j)) {
            *o = s * e;
        }
    }
    {
        let sg1 = g1.sqrt();
        let col = a.col_mut(k1 + k2);
        for i in 0..d {
            col[i] = sg1 * (s1.mean[i] - mean[i]);
        }
    }
    {
        let sg2 = g2.sqrt();
        let col = a.col_mut(k1 + k2 + 1);
        for i in 0..d {
            col[i] = sg2 * (s2.mean[i] - mean[i]);
        }
    }

    // The factor is d×(k₁+k₂+2); when the combined component count exceeds
    // the dimension (full-rank merges, where nothing is truncated and the
    // combination is exact) the matrix is wide, and thin SVD wants rows ≥
    // cols — so factor the transpose instead: A = UΣVᵀ ⇔ Aᵀ = VΣUᵀ, and
    // the left singular vectors of A are the right ones of Aᵀ.
    let (left, s) = if a.rows() >= a.cols() {
        let f = svd::thin_svd(&a)?;
        (f.u, f.s)
    } else {
        let f = svd::thin_svd(&a.transpose())?;
        (f.v, f.s)
    };
    let mut basis = Mat::zeros(d, k_out);
    let mut values = vec![0.0; k_out];
    for (j, val) in values.iter_mut().enumerate().take(k_out.min(s.len())) {
        basis.col_mut(j).copy_from_slice(left.col(j));
        *val = s[j] * s[j];
    }

    // Scales combine v-weighted; running sums add (both engines' decayed
    // histories contribute to the merged estimate's memory).
    let sigma2 = g1 * s1.sigma2 + g2 * s2.sigma2;

    let merged = EigenSystem {
        mean,
        basis,
        values,
        sigma2,
        sum_u: s1.sum_u + s2.sum_u,
        sum_v: v_total,
        sum_q: s1.sum_q + s2.sum_q,
        n_obs: s1.n_obs + s2.n_obs,
    };
    merged.check_invariants()?;
    Ok(merged)
}

/// Merges many eigensystems left-to-right. Returns an error on an empty
/// input slice.
///
/// The left fold is the synchronization-path shape (one accumulator, peers
/// folded in as they arrive). For batch reductions over many partitions,
/// prefer [`merge_tree`]: same algebra, balanced γ-weighting, and a
/// log-depth critical path.
pub fn merge_all(systems: &[EigenSystem]) -> Result<EigenSystem> {
    let (first, rest) = systems
        .split_first()
        .ok_or_else(|| PcaError::IncompatibleMerge("cannot merge zero systems".into()))?;
    let mut acc = first.clone();
    for s in rest {
        acc = merge(&acc, s)?;
    }
    Ok(acc)
}

/// Merges many eigensystems by pairwise tree reduction, parallelized over
/// the machine's available cores.
///
/// Each level merges adjacent pairs `(0,1), (2,3), …` — an odd trailing
/// element passes through to the next level — so the reduction finishes in
/// ⌈log₂ n⌉ levels instead of `n − 1` sequential folds, and every merge
/// combines subtrees of (nearly) equal observation mass, which keeps the
/// γ weights of eq. 15 balanced instead of letting a long-running
/// accumulator dominate every step. The pairing is fixed by index, so the
/// result is **bit-identical regardless of worker count** — independent
/// pair merges never observe each other.
///
/// Returns a [`PcaError`] on an empty input slice.
pub fn merge_tree(systems: &[EigenSystem]) -> Result<EigenSystem> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    merge_tree_threads(systems, threads)
}

/// [`merge_tree`] with an explicit worker-thread cap (`0` and `1` both mean
/// sequential). The reduction shape — and therefore the result, bit for
/// bit — does not depend on `threads`.
pub fn merge_tree_threads(systems: &[EigenSystem], threads: usize) -> Result<EigenSystem> {
    if systems.is_empty() {
        return Err(PcaError::IncompatibleMerge(
            "cannot merge zero systems".into(),
        ));
    }
    let mut level: Vec<EigenSystem> = systems.to_vec();
    while level.len() > 1 {
        level = merge_level(&level, threads)?;
    }
    Ok(level.pop().expect("non-empty by construction"))
}

/// Merges adjacent pairs of one tree level, in parallel when it pays.
fn merge_level(level: &[EigenSystem], threads: usize) -> Result<Vec<EigenSystem>> {
    let pairs = level.len() / 2;
    let workers = threads.min(pairs).max(1);
    if workers <= 1 {
        let mut next = Vec::with_capacity(pairs + level.len() % 2);
        for pair in 0..pairs {
            next.push(merge(&level[2 * pair], &level[2 * pair + 1])?);
        }
        if level.len() % 2 == 1 {
            next.push(level[level.len() - 1].clone());
        }
        return Ok(next);
    }
    // Contiguous chunks of pair indices per worker; each worker fills its
    // own output slots, so no result depends on scheduling order.
    let mut slots: Vec<Option<Result<EigenSystem>>> = Vec::new();
    slots.resize_with(pairs, || None);
    let chunk = pairs.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, out) in slots.chunks_mut(chunk).enumerate() {
            let start = w * chunk;
            scope.spawn(move || {
                for (off, slot) in out.iter_mut().enumerate() {
                    let pair = start + off;
                    *slot = Some(merge(&level[2 * pair], &level[2 * pair + 1]));
                }
            });
        }
    });
    let mut next = Vec::with_capacity(pairs + level.len() % 2);
    for slot in slots {
        next.push(slot.expect("every pair slot is written")?);
    }
    if level.len() % 2 == 1 {
        next.push(level[level.len() - 1].clone());
    }
    Ok(next)
}

/// Pads (or truncates) an eigensystem to exactly `k` components, filling
/// new components with orthonormal completions and zero eigenvalues.
fn pad_components(e: &EigenSystem, k: usize) -> EigenSystem {
    use std::cmp::Ordering;
    match e.n_components().cmp(&k) {
        Ordering::Equal => e.clone(),
        Ordering::Greater => e.truncated(k),
        Ordering::Less => {
            let d = e.dim();
            let mut basis = Mat::zeros(d, k);
            let mut values = vec![0.0; k];
            for (j, &v) in e.values.iter().enumerate().take(e.n_components()) {
                basis.col_mut(j).copy_from_slice(e.basis.col(j));
                values[j] = v;
            }
            // Orthonormal completion for the tail.
            let mut axis = 0;
            for j in e.n_components()..k {
                while axis < d {
                    let mut cand = vec![0.0; d];
                    cand[axis] = 1.0;
                    axis += 1;
                    for other in 0..j {
                        let proj = vecops::dot(&cand, basis.col(other));
                        vecops::axpy(-proj, basis.col(other), &mut cand);
                    }
                    if vecops::normalize(&mut cand) > 1e-6 {
                        basis.col_mut(j).copy_from_slice(&cand);
                        break;
                    }
                }
            }
            EigenSystem {
                basis,
                values,
                ..e.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::batch_pca;
    use crate::metrics::subspace_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spca_linalg::rng::standard_normal_vec;

    const D: usize = 8;

    fn planted(rng: &mut StdRng, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                let c = standard_normal_vec(rng, 2);
                let mut x = vec![0.0; D];
                x[0] = 3.0 * c[0] + 1.0; // non-zero mean on axis 0
                x[1] = 1.5 * c[1];
                for xi in x.iter_mut() {
                    *xi += 0.02 * spca_linalg::rng::standard_normal(rng);
                }
                x
            })
            .collect()
    }

    #[test]
    fn merge_of_two_halves_matches_whole() {
        let mut rng = StdRng::seed_from_u64(20);
        let a = planted(&mut rng, 400);
        let b = planted(&mut rng, 400);
        let whole: Vec<Vec<f64>> = a.iter().chain(&b).cloned().collect();

        let ea = batch_pca(&a, 2).unwrap();
        let eb = batch_pca(&b, 2).unwrap();
        let ew = batch_pca(&whole, 2).unwrap();

        let merged = merge(&ea, &eb).unwrap();
        let dist = subspace_distance(&merged.basis, &ew.basis).unwrap();
        assert!(dist < 0.05, "merged basis off by {dist}");
        for k in 0..2 {
            let rel = (merged.values[k] - ew.values[k]).abs() / ew.values[k];
            assert!(
                rel < 0.15,
                "λ{k}: merged {} vs whole {}",
                merged.values[k],
                ew.values[k]
            );
        }
        // Means agree.
        for i in 0..D {
            assert!((merged.mean[i] - ew.mean[i]).abs() < 0.05);
        }
    }

    #[test]
    fn merge_is_weighted_toward_heavier_side() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut heavy = batch_pca(&planted(&mut rng, 500), 2).unwrap();
        let mut light = heavy.clone();
        heavy.sum_v = 1000.0;
        light.sum_v = 1.0;
        // Move the light mean far away.
        light.mean = vec![10.0; D];
        let merged = merge(&heavy, &light).unwrap();
        // Mean must stay close to the heavy side.
        assert!(
            (merged.mean[2] - heavy.mean[2]).abs() < 0.1,
            "{:?}",
            &merged.mean[..3]
        );
    }

    #[test]
    fn mean_shift_columns_capture_between_group_variance() {
        // Two clusters on opposite ends of axis 3 with negligible internal
        // variance along it: the merged top eigenvector must pick up the
        // between-means direction.
        let mut rng = StdRng::seed_from_u64(22);
        let mut a = planted(&mut rng, 300);
        let mut b = planted(&mut rng, 300);
        for x in a.iter_mut() {
            x[3] += 20.0;
        }
        for x in b.iter_mut() {
            x[3] -= 20.0;
        }
        let ea = batch_pca(&a, 2).unwrap();
        let eb = batch_pca(&b, 2).unwrap();
        let merged = merge(&ea, &eb).unwrap();
        let top = merged.basis.col(0);
        assert!(
            top[3].abs() > 0.95,
            "between-group direction missed: {top:?}"
        );
    }

    #[test]
    fn running_sums_add() {
        let mut rng = StdRng::seed_from_u64(23);
        let ea = batch_pca(&planted(&mut rng, 100), 2).unwrap();
        let eb = batch_pca(&planted(&mut rng, 100), 2).unwrap();
        let merged = merge(&ea, &eb).unwrap();
        assert!((merged.sum_u - (ea.sum_u + eb.sum_u)).abs() < 1e-9);
        assert!((merged.sum_v - (ea.sum_v + eb.sum_v)).abs() < 1e-9);
        assert_eq!(merged.n_obs, ea.n_obs + eb.n_obs);
    }

    #[test]
    fn merge_with_empty_side_passes_through() {
        let mut rng = StdRng::seed_from_u64(24);
        let ea = batch_pca(&planted(&mut rng, 200), 2).unwrap();
        let empty = EigenSystem::zeros(D, 2);
        // Subspace distance is sin(max angle): orthonormality error ε in the
        // basis shows up as ~sqrt(ε), so "identical" means < 1e-4 here.
        let m = merge(&ea, &empty).unwrap();
        let dist = subspace_distance(&m.basis, &ea.basis).unwrap();
        assert!(dist < 1e-4, "dist {dist}");
        let m2 = merge(&empty, &ea).unwrap();
        assert!(subspace_distance(&m2.basis, &ea.basis).unwrap() < 1e-4);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = EigenSystem::zeros(4, 2);
        let b = EigenSystem::zeros(5, 2);
        assert!(merge(&a, &b).is_err());
    }

    #[test]
    fn merge_all_associates() {
        let mut rng = StdRng::seed_from_u64(25);
        let parts: Vec<EigenSystem> = (0..4)
            .map(|_| batch_pca(&planted(&mut rng, 200), 2).unwrap())
            .collect();
        let left = merge_all(&parts).unwrap();
        // Pairwise tree merge.
        let t1 = merge(&parts[0], &parts[1]).unwrap();
        let t2 = merge(&parts[2], &parts[3]).unwrap();
        let tree = merge(&t1, &t2).unwrap();
        let dist = subspace_distance(&left.basis, &tree.basis).unwrap();
        assert!(dist < 0.05, "association error {dist}");
    }

    #[test]
    fn merge_all_empty_is_error() {
        assert!(merge_all(&[]).is_err());
        assert!(merge_tree(&[]).is_err());
    }

    #[test]
    fn dimension_mismatch_error_names_both_shapes() {
        let a = EigenSystem::zeros(4, 2);
        let b = EigenSystem::zeros(5, 3);
        let err = merge(&a, &b).unwrap_err();
        let msg = format!("{err:?}");
        assert!(msg.contains("4×2"), "missing left shape: {msg}");
        assert!(msg.contains("5×3"), "missing right shape: {msg}");
    }

    #[test]
    fn tree_merge_matches_left_fold() {
        let mut rng = StdRng::seed_from_u64(27);
        for n in [1usize, 2, 3, 5, 8] {
            let parts: Vec<EigenSystem> = (0..n)
                .map(|_| batch_pca(&planted(&mut rng, 150), 2).unwrap())
                .collect();
            let fold = merge_all(&parts).unwrap();
            let tree = merge_tree(&parts).unwrap();
            let dist = subspace_distance(&fold.basis, &tree.basis).unwrap();
            assert!(dist < 0.05, "n={n}: association error {dist}");
            assert!((fold.sum_v - tree.sum_v).abs() < 1e-9 * fold.sum_v.max(1.0));
            assert_eq!(fold.n_obs, tree.n_obs);
        }
    }

    #[test]
    fn tree_merge_is_bit_identical_across_worker_counts() {
        let mut rng = StdRng::seed_from_u64(28);
        let parts: Vec<EigenSystem> = (0..7)
            .map(|_| batch_pca(&planted(&mut rng, 120), 2).unwrap())
            .collect();
        let seq = merge_tree_threads(&parts, 1).unwrap();
        for threads in [2, 3, 8] {
            let par = merge_tree_threads(&parts, threads).unwrap();
            assert_eq!(par.n_obs, seq.n_obs);
            for (a, b) in par.mean.iter().zip(&seq.mean) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} workers: mean");
            }
            for (a, b) in par.values.iter().zip(&seq.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} workers: values");
            }
            assert_eq!(
                par.basis.sub(&seq.basis).unwrap().max_abs(),
                0.0,
                "{threads} workers: basis"
            );
            assert_eq!(par.sigma2.to_bits(), seq.sigma2.to_bits());
            assert_eq!(par.sum_v.to_bits(), seq.sum_v.to_bits());
        }
    }

    #[test]
    fn tree_merge_single_system_passes_through() {
        let mut rng = StdRng::seed_from_u64(29);
        let only = batch_pca(&planted(&mut rng, 100), 2).unwrap();
        let out = merge_tree(std::slice::from_ref(&only)).unwrap();
        assert_eq!(out.n_obs, only.n_obs);
        assert_eq!(out.basis.sub(&only.basis).unwrap().max_abs(), 0.0);
    }

    #[test]
    fn merged_system_passes_invariants() {
        let mut rng = StdRng::seed_from_u64(26);
        let ea = batch_pca(&planted(&mut rng, 150), 3).unwrap();
        let eb = batch_pca(&planted(&mut rng, 150), 3).unwrap();
        merge(&ea, &eb).unwrap().check_invariants().unwrap();
    }
}
