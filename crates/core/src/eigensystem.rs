//! The truncated eigensystem state `{µ, E_p, Λ_p, σ², u, v, q}`.
//!
//! This is the object the paper's stateful InfoSphere operator stores as
//! class members and the one exchanged between PCA engines during
//! synchronization. It bundles the truncated eigenbasis with the running
//! sums that drive the γ-recursions (eq. 12–14), because the merge step
//! (eq. 15–16) needs those sums to weight the participants.

use crate::{PcaError, Result};
use spca_linalg::{vecops, Mat};

/// A truncated eigensystem estimate over a `d`-dimensional stream.
#[derive(Debug, Clone)]
pub struct EigenSystem {
    /// Location estimate µ (weighted mean), length `d`.
    pub mean: Vec<f64>,
    /// Eigenbasis `E` (`d × k`, column-orthonormal), descending eigenvalues.
    pub basis: Mat,
    /// Eigenvalues Λ (length `k`, descending, non-negative).
    pub values: Vec<f64>,
    /// Robust residual scale σ² (M-scale of residuals, eq. 5).
    pub sigma2: f64,
    /// Decayed running count Σ 1 (paper's `u`, eq. 14).
    pub sum_u: f64,
    /// Decayed running weight Σ w (paper's `v`, eq. 12).
    pub sum_v: f64,
    /// Decayed running weighted residual Σ w·r² (paper's `q`, eq. 13).
    pub sum_q: f64,
    /// Total observations folded into this estimate (undecayed counter).
    pub n_obs: u64,
}

impl EigenSystem {
    /// An empty (zero) eigensystem of dimension `d` with `k` components.
    pub fn zeros(d: usize, k: usize) -> Self {
        EigenSystem {
            mean: vec![0.0; d],
            basis: Mat::zeros(d, k),
            values: vec![0.0; k],
            sigma2: 0.0,
            sum_u: 0.0,
            sum_v: 0.0,
            sum_q: 0.0,
            n_obs: 0,
        }
    }

    /// Stream dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of tracked components `k`.
    pub fn n_components(&self) -> usize {
        self.values.len()
    }

    /// The `k`-th eigenvector as a slice.
    pub fn eigenvector(&self, k: usize) -> &[f64] {
        self.basis.col(k)
    }

    /// Centers `x` against the current mean: `y = x − µ`.
    pub fn center(&self, x: &[f64]) -> Vec<f64> {
        vecops::sub(x, &self.mean)
    }

    /// Centers `x` into a caller-owned buffer (no allocation once `y` has
    /// capacity `d`).
    pub fn center_into(&self, x: &[f64], y: &mut Vec<f64>) {
        assert_eq!(x.len(), self.dim(), "center_into: dimension mismatch");
        y.clear();
        y.extend(x.iter().zip(&self.mean).map(|(xi, mi)| xi - mi));
    }

    /// Projection coefficients `c = Eᵀ y` of a centered vector.
    pub fn project(&self, y: &[f64]) -> Vec<f64> {
        self.basis
            .tr_matvec(y)
            .expect("dimension checked by caller")
    }

    /// Projection coefficients into a caller-owned buffer (no allocation
    /// once `coeffs` has capacity `k`).
    pub fn project_into(&self, y: &[f64], coeffs: &mut Vec<f64>) {
        coeffs.clear();
        coeffs.extend((0..self.n_components()).map(|j| vecops::dot(self.basis.col(j), y)));
    }

    /// Reconstruction `E c` from projection coefficients.
    pub fn reconstruct_centered(&self, coeffs: &[f64]) -> Vec<f64> {
        self.basis
            .matvec(coeffs)
            .expect("coefficient length matches basis")
    }

    /// Full reconstruction `µ + E Eᵀ (x − µ)` of an observation.
    pub fn reconstruct(&self, x: &[f64]) -> Vec<f64> {
        let y = self.center(x);
        let c = self.project(&y);
        let mut rec = self.reconstruct_centered(&c);
        for (r, m) in rec.iter_mut().zip(&self.mean) {
            *r += m;
        }
        rec
    }

    /// Residual vector `r = (I − E Eᵀ)(x − µ)` (paper eq. 4).
    pub fn residual(&self, x: &[f64]) -> Vec<f64> {
        let y = self.center(x);
        let c = self.project(&y);
        let rec = self.reconstruct_centered(&c);
        vecops::sub(&y, &rec)
    }

    /// Squared residual norm `r²` of an observation.
    pub fn residual_sq(&self, x: &[f64]) -> f64 {
        vecops::norm_sq(&self.residual(x))
    }

    /// Squared residual using only the top `p` of the tracked components
    /// (used when extra gap-correction components are carried).
    pub fn residual_sq_truncated(&self, x: &[f64], p: usize) -> f64 {
        let y = self.center(x);
        self.residual_sq_truncated_centered(&y, p)
    }

    /// [`residual_sq_truncated`](Self::residual_sq_truncated) on an
    /// already-centered vector — the allocation-free form the streaming
    /// hot path uses.
    pub fn residual_sq_truncated_centered(&self, y: &[f64], p: usize) -> f64 {
        let p = p.min(self.n_components());
        let mut r2 = vecops::norm_sq(y);
        for k in 0..p {
            let c = vecops::dot(self.basis.col(k), y);
            r2 -= c * c;
        }
        r2.max(0.0)
    }

    /// Fraction of total tracked variance captured by the top `p`
    /// components.
    pub fn variance_captured(&self, p: usize) -> f64 {
        let total: f64 = self.values.iter().sum::<f64>() + self.sigma2;
        if total <= 0.0 {
            return 0.0;
        }
        self.values.iter().take(p).sum::<f64>() / total
    }

    /// Makes `self` an exact copy of `src`, reusing existing allocations
    /// whenever capacity suffices. After the first call at a given
    /// `(d, k)`, subsequent calls perform no heap allocation — this is the
    /// snapshot-copy primitive of the epoch-versioned serving store.
    pub fn copy_from(&mut self, src: &EigenSystem) {
        self.mean.clear();
        self.mean.extend_from_slice(&src.mean);
        self.basis.copy_from(&src.basis);
        self.values.clear();
        self.values.extend_from_slice(&src.values);
        self.sigma2 = src.sigma2;
        self.sum_u = src.sum_u;
        self.sum_v = src.sum_v;
        self.sum_q = src.sum_q;
        self.n_obs = src.n_obs;
    }

    /// Truncates to the top `p` components (no-op if already ≤ p).
    pub fn truncated(&self, p: usize) -> EigenSystem {
        if p >= self.n_components() {
            return self.clone();
        }
        EigenSystem {
            mean: self.mean.clone(),
            basis: self.basis.columns_range(0, p),
            values: self.values[..p].to_vec(),
            sigma2: self.sigma2,
            sum_u: self.sum_u,
            sum_v: self.sum_v,
            sum_q: self.sum_q,
            n_obs: self.n_obs,
        }
    }

    /// Validates internal invariants: shapes agree, eigenvalues descending
    /// and non-negative, basis near-orthonormal, sums non-negative, all
    /// finite. Returns a description of the first violation.
    pub fn check_invariants(&self) -> Result<()> {
        let d = self.dim();
        let k = self.n_components();
        if self.basis.shape() != (d, k) {
            return Err(PcaError::IncompatibleMerge(format!(
                "basis shape {:?} != ({d}, {k})",
                self.basis.shape()
            )));
        }
        if !vecops::all_finite(&self.mean) || !self.basis.is_finite() {
            return Err(PcaError::NotFinite);
        }
        if !(self.sigma2.is_finite() && self.sigma2 >= 0.0) {
            return Err(PcaError::NotFinite);
        }
        for w in self.values.windows(2) {
            // NaN must also fail the ordering check, hence partial_cmp.
            let cmp = w[0].partial_cmp(&(w[1] - 1e-9));
            if matches!(cmp, Some(std::cmp::Ordering::Less) | None) {
                return Err(PcaError::IncompatibleMerge(format!(
                    "eigenvalues not descending: {} < {}",
                    w[0], w[1]
                )));
            }
        }
        if self.values.iter().any(|&v| v < -1e-9 || !v.is_finite()) {
            return Err(PcaError::IncompatibleMerge(
                "negative/non-finite eigenvalue".into(),
            ));
        }
        if self.sum_u < 0.0 || self.sum_v < 0.0 || self.sum_q < 0.0 {
            return Err(PcaError::IncompatibleMerge("negative running sum".into()));
        }
        // Orthonormality within a loose streaming tolerance.
        let g = self.basis.gram();
        for i in 0..k {
            for j in 0..k {
                let want = if i == j { 1.0 } else { 0.0 };
                if (g[(i, j)] - want).abs() > 1e-6 {
                    return Err(PcaError::IncompatibleMerge(format!(
                        "basis not orthonormal at ({i},{j}): {}",
                        g[(i, j)]
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An eigensystem with an axis-aligned basis for hand-checkable math.
    fn axis_system() -> EigenSystem {
        let mut e = EigenSystem::zeros(4, 2);
        e.basis[(0, 0)] = 1.0;
        e.basis[(1, 1)] = 1.0;
        e.values = vec![4.0, 1.0];
        e.sigma2 = 0.5;
        e.mean = vec![1.0, 1.0, 1.0, 1.0];
        e.sum_u = 10.0;
        e.sum_v = 9.0;
        e.sum_q = 4.0;
        e
    }

    #[test]
    fn residual_removes_in_plane_part() {
        let e = axis_system();
        // x - mean = (2, 3, 4, 5); plane covers first two coords.
        let x = vec![3.0, 4.0, 5.0, 6.0];
        let r = e.residual(&x);
        assert!((r[0]).abs() < 1e-12);
        assert!((r[1]).abs() < 1e-12);
        assert!((r[2] - 4.0).abs() < 1e-12);
        assert!((r[3] - 5.0).abs() < 1e-12);
        assert!((e.residual_sq(&x) - 41.0).abs() < 1e-9);
    }

    #[test]
    fn reconstruct_is_projection_plus_mean() {
        let e = axis_system();
        let x = vec![3.0, 4.0, 5.0, 6.0];
        let rec = e.reconstruct(&x);
        assert_eq!(rec, vec![3.0, 4.0, 1.0, 1.0]);
    }

    #[test]
    fn residual_sq_truncated_matches_full_at_k() {
        let e = axis_system();
        let x = vec![0.5, -1.0, 2.0, 0.0];
        assert!((e.residual_sq_truncated(&x, 2) - e.residual_sq(&x)).abs() < 1e-9);
        // Truncating to p=1 moves the second component's energy into the
        // residual.
        let y = e.center(&x);
        let c1 = y[1];
        assert!((e.residual_sq_truncated(&x, 1) - (e.residual_sq(&x) + c1 * c1)).abs() < 1e-9);
    }

    #[test]
    fn variance_captured_fraction() {
        let e = axis_system();
        // total = 4 + 1 + 0.5; top-1 = 4
        assert!((e.variance_captured(1) - 4.0 / 5.5).abs() < 1e-12);
        assert!((e.variance_captured(2) - 5.0 / 5.5).abs() < 1e-12);
    }

    #[test]
    fn truncated_keeps_top() {
        let e = axis_system();
        let t = e.truncated(1);
        assert_eq!(t.n_components(), 1);
        assert_eq!(t.values, vec![4.0]);
        assert_eq!(t.basis.col(0), e.basis.col(0));
    }

    #[test]
    fn invariants_pass_for_valid_system() {
        axis_system().check_invariants().unwrap();
    }

    #[test]
    fn invariants_catch_unsorted_values() {
        let mut e = axis_system();
        e.values = vec![1.0, 4.0];
        assert!(e.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_non_orthonormal_basis() {
        let mut e = axis_system();
        e.basis[(0, 1)] = 1.0; // now columns overlap
        assert!(e.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_nan() {
        let mut e = axis_system();
        e.mean[0] = f64::NAN;
        assert_eq!(e.check_invariants().unwrap_err(), PcaError::NotFinite);
    }
}
