//! Robust streaming PCA — the paper's central algorithm (§II).
//!
//! Each observation is weighted by how well the current eigensystem explains
//! it: the squared residual `r²` is compared against the running M-scale
//! `σ²` (eq. 5), the bounded ρ-function turns `t = r²/σ²` into a weight
//! `w = W(t)` and a scale weight `w* = W*(t)`, and three decayed running
//! sums drive the recursions (eq. 9–14):
//!
//! ```text
//! v = α·v + w        γ₁ = α·v_prev / v     µ  = γ₁ µ  + (1−γ₁) x
//! q = α·q + w·r²     γ₂ = α·q_prev / q     C  = γ₂ C  + (1−γ₂) σ² y yᵀ / r²
//! u = α·u + 1        γ₃ = α·u_prev / u     σ² = γ₃ σ² + (1−γ₃) w*·r²/δ
//! ```
//!
//! A hard-rejected observation (`w = 0`) leaves µ and C untouched — the
//! update degenerates to pure decay — which is exactly why the robust
//! estimator in Fig. 1 (right) never "rainbows": outliers cannot capture
//! the top eigenvector because they never enter the covariance.

use crate::classic::{
    decayed_count, init_from_batch, low_rank_update, validate, StepScratch, UpdateWorkspace,
};
use crate::config::PcaConfig;
use crate::eigensystem::EigenSystem;
use crate::gaps::fill_gaps_into;
use crate::rho::Rho;
use crate::{PcaError, Result};
use std::sync::Arc;

/// Per-observation diagnostics returned by [`RobustPca::update`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateOutcome {
    /// Squared residual `r²` against the pre-update eigensystem.
    pub residual_sq: f64,
    /// Scale-normalized squared residual `t = r²/σ²`.
    pub scaled_residual: f64,
    /// Robust weight `w = W(t)` the observation received.
    pub weight: f64,
    /// True if the observation was flagged as an outlier (weight at or
    /// below the configured threshold).
    pub outlier: bool,
    /// True once the eigensystem is initialized (false during warm-up,
    /// when the other fields are zero).
    pub initialized: bool,
}

impl UpdateOutcome {
    fn warmup() -> Self {
        UpdateOutcome {
            residual_sq: 0.0,
            scaled_residual: 0.0,
            weight: 0.0,
            outlier: false,
            initialized: false,
        }
    }
}

/// The robust streaming PCA estimator.
pub struct RobustPca {
    cfg: PcaConfig,
    rho: Arc<dyn Rho>,
    state: State,
    ws: UpdateWorkspace,
}

enum State {
    WarmUp(Vec<Vec<f64>>),
    Running(EigenSystem),
}

impl std::fmt::Debug for RobustPca {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match &self.state {
            State::WarmUp(b) => format!("warm-up ({}/{})", b.len(), self.cfg.init_size),
            State::Running(e) => format!("running (n={})", e.n_obs),
        };
        write!(
            f,
            "RobustPca(d={}, p={}, {phase})",
            self.cfg.dim, self.cfg.p
        )
    }
}

impl Clone for RobustPca {
    fn clone(&self) -> Self {
        RobustPca {
            cfg: self.cfg.clone(),
            rho: Arc::clone(&self.rho),
            state: match &self.state {
                State::WarmUp(b) => State::WarmUp(b.clone()),
                State::Running(e) => State::Running(e.clone()),
            },
            // Scratch is not part of the estimate; a clone starts with
            // fresh buffers and regrows them on its first update.
            ws: UpdateWorkspace::default(),
        }
    }
}

impl RobustPca {
    /// Creates an estimator in warm-up state.
    pub fn new(cfg: PcaConfig) -> Self {
        let rho = cfg.rho.build();
        RobustPca {
            cfg,
            rho,
            state: State::WarmUp(Vec::new()),
            ws: UpdateWorkspace::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PcaConfig {
        &self.cfg
    }

    /// Returns the estimator to its initial warm-up state while keeping the
    /// grown workspace buffers, so a pooled worker (e.g. a backfill worker
    /// iterating over partitions) re-enters the allocation-free steady
    /// state without re-growing scratch on every partition.
    pub fn reset(&mut self) {
        self.state = State::WarmUp(Vec::new());
    }

    /// True once the warm-up batch has been consumed.
    pub fn is_initialized(&self) -> bool {
        matches!(self.state, State::Running(_))
    }

    /// Total observations consumed (including warm-up).
    pub fn n_obs(&self) -> u64 {
        match &self.state {
            State::WarmUp(buf) => buf.len() as u64,
            State::Running(e) => e.n_obs,
        }
    }

    /// Processes one complete observation.
    pub fn update(&mut self, x: &[f64]) -> Result<UpdateOutcome> {
        validate(&self.cfg, x)?;
        let RobustPca {
            cfg,
            rho,
            state,
            ws,
        } = self;
        match state {
            State::WarmUp(buf) => {
                buf.push(x.to_vec());
                if buf.len() >= cfg.init_size {
                    let batch = std::mem::take(buf);
                    let eig = robust_init(cfg, &batch, rho.as_ref())?;
                    *state = State::Running(eig);
                }
                Ok(UpdateOutcome::warmup())
            }
            State::Running(eig) => robust_step(eig, x, cfg, rho.as_ref(), &mut ws.step),
        }
    }

    /// Processes an observation with missing entries. `mask[i] == true`
    /// means bin `i` was observed. Gaps are filled from the current
    /// eigenbasis (§II-D) and the residual is bias-corrected using the
    /// extra `q` components before weighting.
    ///
    /// During warm-up, masked observations are gap-filled against nothing —
    /// they are buffered with missing bins set to the running buffer mean
    /// (crude, but warm-up batches are small and the stream immediately
    /// refines the estimate).
    pub fn update_masked(&mut self, x: &[f64], mask: &[bool]) -> Result<UpdateOutcome> {
        if x.len() != self.cfg.dim || mask.len() != self.cfg.dim {
            return Err(PcaError::DimensionMismatch {
                expected: self.cfg.dim,
                got: x.len(),
            });
        }
        let n_obs_bins = mask.iter().filter(|&&m| m).count();
        if n_obs_bins == 0 {
            return Err(PcaError::AllMissing);
        }
        if mask.iter().all(|&m| m) {
            return self.update(x);
        }
        if matches!(self.state, State::WarmUp(_)) {
            // Fill gaps with the mean over the observed bins so the
            // warm-up covariance is not poisoned by zeros.
            let obs_mean = x
                .iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(v, _)| *v)
                .sum::<f64>()
                / n_obs_bins as f64;
            let filled: Vec<f64> = x
                .iter()
                .zip(mask)
                .map(|(&v, &m)| if m { v } else { obs_mean })
                .collect();
            return self.update(&filled);
        }
        let RobustPca {
            cfg,
            rho,
            state,
            ws,
        } = self;
        let State::Running(eig) = state else {
            unreachable!("warm-up handled above")
        };
        let UpdateWorkspace { step, gaps } = ws;
        let residual_sq = fill_gaps_into(eig, x, mask, cfg.p, cfg.q_extra, gaps)?;
        robust_step_with_residual(eig, &gaps.filled, residual_sq, cfg, rho.as_ref(), step)
    }

    /// The eigensystem truncated to the reported `p` components.
    ///
    /// Panics before initialization; check [`is_initialized`](Self::is_initialized).
    pub fn eigensystem(&self) -> EigenSystem {
        match &self.state {
            State::WarmUp(_) => panic!("eigensystem requested before warm-up completed"),
            State::Running(e) => e.truncated(self.cfg.p),
        }
    }

    /// The full internally-tracked eigensystem (`p + q` components), if
    /// initialized.
    pub fn full_eigensystem(&self) -> Option<&EigenSystem> {
        match &self.state {
            State::WarmUp(_) => None,
            State::Running(e) => Some(e),
        }
    }

    /// Replaces the internal state (synchronization installs merged
    /// eigensystems through this).
    pub fn install_eigensystem(&mut self, eig: EigenSystem) -> Result<()> {
        if eig.dim() != self.cfg.dim || eig.n_components() != self.cfg.p_total() {
            return Err(PcaError::IncompatibleMerge(format!(
                "install: got dim {} k {}, want dim {} k {}",
                eig.dim(),
                eig.n_components(),
                self.cfg.dim,
                self.cfg.p_total()
            )));
        }
        eig.check_invariants()?;
        self.state = State::Running(eig);
        Ok(())
    }

    /// Robust "eigenvalue" of the data along an arbitrary unit vector `e`
    /// (§II-B): the M-scale of the projections `eᵀ(x−µ)` accumulated over
    /// `data`, solved by the fixed-point iteration of eq. (8).
    pub fn robust_eigenvalue_along(&self, e: &[f64], data: &[Vec<f64>]) -> Result<f64> {
        let eig = match &self.state {
            State::WarmUp(_) => return Err(PcaError::IncompatibleMerge("not initialized".into())),
            State::Running(eig) => eig,
        };
        if e.len() != self.cfg.dim {
            return Err(PcaError::DimensionMismatch {
                expected: self.cfg.dim,
                got: e.len(),
            });
        }
        let proj: Vec<f64> = data
            .iter()
            .map(|x| {
                let y = eig.center(x);
                spca_linalg::vecops::dot(e, &y)
            })
            .collect();
        let r2: Vec<f64> = proj.iter().map(|p| p * p).collect();
        Ok(mscale_fixed_point(
            &r2,
            self.cfg.delta,
            self.rho.as_ref(),
            self.cfg.init_scale_iters,
        ))
    }
}

/// Solves the M-scale equation (eq. 5) on a batch of squared residuals via
/// the fixed-point form of eq. (8): `σ² ← (1/Nδ) Σ w*(r²/σ²)·r²`.
pub(crate) fn mscale_fixed_point(r2: &[f64], delta: f64, rho: &dyn Rho, iters: usize) -> f64 {
    if r2.is_empty() {
        return 0.0;
    }
    let mean_r2 = r2.iter().sum::<f64>() / r2.len() as f64;
    if mean_r2 <= 0.0 {
        return 0.0;
    }
    let mut sigma2 = mean_r2;
    for _ in 0..iters {
        let n = r2.len() as f64;
        let s: f64 = r2.iter().map(|&v| rho.scale_weight(v / sigma2) * v).sum();
        let next = s / (n * delta);
        if next <= 0.0 {
            break;
        }
        if ((next - sigma2) / sigma2).abs() < 1e-12 {
            sigma2 = next;
            break;
        }
        sigma2 = next;
    }
    sigma2
}

/// Initializes the streaming state from the warm-up batch.
///
/// The classical SVD initializer is vulnerable to outliers *in the warm-up
/// batch itself*: a single spike plants a bogus eigenvector whose decay
/// takes ~N further observations (the "initial transients" §II-B fights
/// with α < 1). A robust batch fit (spherical-PCA start + a few Maronna
/// iterations) removes the transient at its source; if it fails for any
/// degenerate reason, the classical initializer is the fallback.
fn robust_init(cfg: &PcaConfig, batch: &[Vec<f64>], rho: &dyn Rho) -> Result<EigenSystem> {
    let mut eig = init_from_batch(cfg, batch)?;
    if batch.len() > cfg.p_total() + 2 {
        if let Ok((robust, _)) =
            crate::batch::batch_robust_pca(batch, cfg.p_total(), rho, cfg.delta, 15)
        {
            if robust.check_invariants().is_ok() {
                eig.mean = robust.mean;
                eig.basis = robust.basis;
                eig.values = robust.values;
            }
        }
    }
    solve_mscale(&mut eig, batch, cfg, rho);
    Ok(eig)
}

/// Re-solves σ² on the warm-up batch and seeds the robust running sums.
fn solve_mscale(eig: &mut EigenSystem, batch: &[Vec<f64>], cfg: &PcaConfig, rho: &dyn Rho) {
    let r2: Vec<f64> = batch
        .iter()
        .map(|x| eig.residual_sq_truncated(x, cfg.p))
        .collect();
    let sigma2 = mscale_fixed_point(&r2, cfg.delta, rho, cfg.init_scale_iters);
    eig.sigma2 = sigma2;
    let u0 = decayed_count(cfg.alpha, batch.len());
    let (mut wsum, mut wr2sum) = (0.0, 0.0);
    for &r in &r2 {
        let t = if sigma2 > 0.0 { r / sigma2 } else { 0.0 };
        let w = rho.weight(t);
        wsum += w;
        wr2sum += w * r;
    }
    // Scale the decayed count by the batch-average weight so the running
    // sums start on the same footing the recursions would have produced.
    let n = batch.len() as f64;
    eig.sum_u = u0;
    eig.sum_v = u0 * (wsum / n).max(f64::MIN_POSITIVE);
    eig.sum_q = u0 * (wr2sum / n);
}

/// One robust streaming step with the residual computed from the current
/// eigensystem.
pub(crate) fn robust_step(
    eig: &mut EigenSystem,
    x: &[f64],
    cfg: &PcaConfig,
    rho: &dyn Rho,
    scratch: &mut StepScratch,
) -> Result<UpdateOutcome> {
    eig.center_into(x, &mut scratch.y);
    let r2 = eig.residual_sq_truncated_centered(&scratch.y, cfg.p);
    robust_step_with_residual(eig, x, r2, cfg, rho, scratch)
}

/// One robust streaming step with an externally supplied squared residual
/// (the gap-filled path computes a bias-corrected `r²` first).
pub(crate) fn robust_step_with_residual(
    eig: &mut EigenSystem,
    x: &[f64],
    r2: f64,
    cfg: &PcaConfig,
    rho: &dyn Rho,
    scratch: &mut StepScratch,
) -> Result<UpdateOutcome> {
    let alpha = cfg.alpha;

    // Guard against scale collapse: if σ² underflows relative to the
    // tracked variance, treat the residual as nominal rather than dividing
    // by ~0 and rejecting everything forever.
    let var_scale: f64 = eig.values.first().copied().unwrap_or(0.0).max(1e-300);
    let sigma2 = eig.sigma2.max(1e-12 * var_scale);
    let t = r2 / sigma2;
    let w = rho.weight(t);
    let w_star = rho.scale_weight(t);

    // --- eq. 12 / 9: weighted mean ---
    let v_new = alpha * eig.sum_v + w;
    if v_new > 0.0 {
        let gamma1 = alpha * eig.sum_v / v_new;
        for (m, &xi) in eig.mean.iter_mut().zip(x) {
            *m = gamma1 * *m + (1.0 - gamma1) * xi;
        }
        eig.sum_v = v_new;
    }

    // --- eq. 14 / 11: M-scale ---
    let u_new = alpha * eig.sum_u + 1.0;
    let gamma3 = alpha * eig.sum_u / u_new;
    eig.sigma2 = gamma3 * eig.sigma2 + (1.0 - gamma3) * w_star * r2 / cfg.delta;
    eig.sum_u = u_new;

    // --- eq. 13 / 10: weighted covariance via the low-rank SVD ---
    let wr2 = w * r2;
    let q_new = alpha * eig.sum_q + wr2;
    if wr2 > 0.0 && q_new > 0.0 {
        let gamma2 = alpha * eig.sum_q / q_new;
        // New-data column coefficient: (1−γ₂)·σ²/r² multiplying y yᵀ.
        let coeff = (1.0 - gamma2) * eig.sigma2 / r2;
        // Recenter against the *post*-update mean (the recursion order the
        // paper prescribes) into the reusable buffer.
        eig.center_into(x, &mut scratch.y);
        let StepScratch { y, a, svd } = scratch;
        low_rank_update(eig, y, gamma2, coeff, a, svd)?;
        eig.sum_q = q_new;
    } else {
        // Hard-rejected observation: covariance only decays through γ₂ = 1,
        // i.e. stays put; the running sum still decays.
        eig.sum_q *= alpha;
    }

    eig.n_obs += 1;
    Ok(UpdateOutcome {
        residual_sq: r2,
        scaled_residual: t,
        weight: w,
        outlier: w <= cfg.outlier_weight_threshold,
        initialized: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RhoKind;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;
    use spca_linalg::rng::standard_normal_vec;

    const D: usize = 12;

    fn planted(rng: &mut StdRng) -> Vec<f64> {
        let c = standard_normal_vec(rng, 2);
        let mut x = vec![0.0; D];
        x[0] = 4.0 * c[0];
        x[1] = 2.0 * c[1];
        for xi in x.iter_mut() {
            *xi += 0.05 * spca_linalg::rng::standard_normal(rng);
        }
        x
    }

    fn spike_outlier(rng: &mut StdRng) -> Vec<f64> {
        // Gross outlier far off the plane.
        let mut x = vec![0.0; D];
        let axis = rng.gen_range(2..D);
        x[axis] = 80.0 + 20.0 * rng.gen::<f64>();
        x
    }

    fn cfg() -> PcaConfig {
        PcaConfig::new(D, 2)
            .with_memory(500)
            .with_extra(0)
            .with_init_size(30)
    }

    #[test]
    fn clean_stream_recovers_subspace() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut pca = RobustPca::new(cfg());
        for _ in 0..3000 {
            pca.update(&planted(&mut rng)).unwrap();
        }
        let eig = pca.eigensystem();
        eig.check_invariants().unwrap();
        assert!(eig.basis[(0, 0)].abs() > 0.98, "{:?}", eig.basis.col(0));
        assert!(eig.basis[(1, 1)].abs() > 0.98, "{:?}", eig.basis.col(1));
    }

    #[test]
    fn outliers_are_flagged_and_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut pca = RobustPca::new(cfg());
        // Converge first.
        for _ in 0..1500 {
            pca.update(&planted(&mut rng)).unwrap();
        }
        let before = pca.eigensystem();
        let mut flagged = 0;
        for i in 0..200 {
            let x = if i % 10 == 0 {
                spike_outlier(&mut rng)
            } else {
                planted(&mut rng)
            };
            let out = pca.update(&x).unwrap();
            if i % 10 == 0 {
                assert!(
                    out.scaled_residual > 9.0,
                    "outlier not extreme? t={}",
                    out.scaled_residual
                );
                if out.outlier {
                    flagged += 1;
                }
            }
        }
        assert!(flagged >= 18, "only {flagged}/20 outliers flagged");
        // Basis should not have moved toward the spike axes.
        let after = pca.eigensystem();
        let drift = crate::metrics::subspace_distance(&before.basis, &after.basis).unwrap();
        assert!(drift < 0.05, "robust basis drifted {drift}");
    }

    #[test]
    fn classical_rho_is_captured_by_outliers_but_robust_is_not() {
        // The Fig. 1 contrast in miniature.
        let run = |rho: RhoKind| {
            let mut rng = StdRng::seed_from_u64(12);
            let mut pca = RobustPca::new(cfg().with_rho(rho));
            for i in 0..2500 {
                let x = if i % 12 == 0 && i > 200 {
                    spike_outlier(&mut rng)
                } else {
                    planted(&mut rng)
                };
                pca.update(&x).unwrap();
            }
            pca.eigensystem()
        };
        let robust = run(RhoKind::Bisquare(9.0));
        let classic = run(RhoKind::Classical);
        // Energy of the top eigenvector on the true plane (coords 0,1):
        let plane_energy = |e: &EigenSystem| {
            let c = e.basis.col(0);
            c[0] * c[0] + c[1] * c[1]
        };
        assert!(
            plane_energy(&robust) > 0.95,
            "robust lost the plane: {}",
            plane_energy(&robust)
        );
        assert!(
            plane_energy(&classic) < plane_energy(&robust),
            "classic {} should be worse than robust {}",
            plane_energy(&classic),
            plane_energy(&robust)
        );
    }

    #[test]
    fn sigma2_tracks_noise_level() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut pca = RobustPca::new(cfg());
        for _ in 0..4000 {
            pca.update(&planted(&mut rng)).unwrap();
        }
        let eig = pca.eigensystem();
        // Residual noise is 0.05² per off-plane axis; with δ=0.5 the
        // M-scale consistently over-counts Gaussian tails, so just check the
        // order of magnitude.
        let noise_floor = 0.05 * 0.05 * (D - 2) as f64;
        assert!(
            eig.sigma2 > 0.1 * noise_floor && eig.sigma2 < 10.0 * noise_floor,
            "sigma2 {} vs noise floor {noise_floor}",
            eig.sigma2
        );
    }

    #[test]
    fn mscale_fixed_point_gaussian_batch() {
        // For the classical rho the fixed point is mean(r²)/delta.
        let r2: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = mscale_fixed_point(&r2, 0.5, &crate::rho::Classical, 50);
        let mean = 50.5;
        assert!((s - mean / 0.5).abs() < 1e-9, "{s}");
    }

    #[test]
    fn mscale_ignores_gross_contamination() {
        // 20% gross outliers should barely move the bisquare M-scale.
        let mut r2: Vec<f64> = vec![1.0; 80];
        r2.extend(vec![1e6; 20]);
        let clean = mscale_fixed_point(&vec![1.0; 80], 0.5, &crate::rho::Bisquare::default(), 100);
        let dirty = mscale_fixed_point(&r2, 0.5, &crate::rho::Bisquare::default(), 100);
        assert!(dirty < 4.0 * clean, "clean {clean} dirty {dirty}");
    }

    #[test]
    fn update_outcome_warmup_phase() {
        let mut pca = RobustPca::new(cfg());
        let out = pca.update(&[0.0; D]).unwrap();
        assert!(!out.initialized);
        assert!(!out.outlier);
    }

    #[test]
    fn masked_update_converges() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut pca = RobustPca::new(cfg().with_extra(2));
        for _ in 0..2500 {
            let x = planted(&mut rng);
            // Drop a random 25% of bins.
            let mask: Vec<bool> = (0..D).map(|_| rng.gen::<f64>() > 0.25).collect();
            if mask.iter().any(|&m| m) {
                pca.update_masked(&x, &mask).unwrap();
            }
        }
        let eig = pca.eigensystem();
        eig.check_invariants().unwrap();
        // Gap-filling distorts the within-plane anisotropy, so the top two
        // eigenvectors may rotate inside the plane; the invariant is that
        // the *plane* (axes 0, 1) is recovered.
        let plane_energy: f64 = (0..2)
            .map(|j| {
                let c = eig.basis.col(j);
                c[0] * c[0] + c[1] * c[1]
            })
            .sum();
        assert!(
            plane_energy > 1.8,
            "plane lost under gaps: energy {plane_energy}"
        );
        assert!(eig.values[0] >= eig.values[1]);
    }

    #[test]
    fn all_missing_rejected() {
        let mut pca = RobustPca::new(cfg());
        let mask = vec![false; D];
        assert_eq!(
            pca.update_masked(&[0.0; D], &mask).unwrap_err(),
            PcaError::AllMissing
        );
    }

    #[test]
    fn sums_follow_paper_footnote() {
        // "the sequence u rapidly converges to 1/(1−α)"
        let mut rng = StdRng::seed_from_u64(15);
        let n_mem = 200;
        let mut pca = RobustPca::new(
            PcaConfig::new(D, 2)
                .with_memory(n_mem)
                .with_extra(0)
                .with_init_size(30),
        );
        for _ in 0..4000 {
            pca.update(&planted(&mut rng)).unwrap();
        }
        let eig = pca.full_eigensystem().unwrap();
        assert!(
            (eig.sum_u - n_mem as f64).abs() < 1.0,
            "u = {} should approach N = {n_mem}",
            eig.sum_u
        );
    }

    #[test]
    fn robust_eigenvalue_along_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut pca = RobustPca::new(cfg());
        let data: Vec<Vec<f64>> = (0..3000).map(|_| planted(&mut rng)).collect();
        for x in &data {
            pca.update(x).unwrap();
        }
        let eig = pca.eigensystem();
        let lam_robust = pca
            .robust_eigenvalue_along(eig.basis.col(0), &data[1000..])
            .unwrap();
        // Projection variance along e1 is 16; the M-scale at δ=0.5 is a
        // consistent but re-scaled estimate whose fixed point for the
        // bisquare sits near 4.3, with sampling spread of roughly ±15% at
        // this evaluation size — check the right ballpark.
        assert!(
            lam_robust > 3.0 && lam_robust < 80.0,
            "robust eigenvalue {lam_robust} out of range"
        );
    }
}
