//! Configuration for the streaming PCA estimators.

use crate::rho::{Bisquare, Classical, HuberLike, Rho, Welsch};
use std::sync::Arc;

/// Which ρ-function drives the robust weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RhoKind {
    /// Tukey bisquare with rejection point `c²` (the paper's / Maronna's
    /// choice). `Bisquare(9.0)` rejects beyond 3σ.
    Bisquare(f64),
    /// Bounded Huber-type with cap `c²`.
    Huber(f64),
    /// Welsch (exponential) redescender with scale `c²` — smooth weights,
    /// never exactly zero.
    Welsch(f64),
    /// Classical `ρ(t) = t` — disables robustness (classic PCA oracle).
    Classical,
}

impl RhoKind {
    /// Instantiates the ρ-function object.
    pub fn build(self) -> Arc<dyn Rho> {
        match self {
            RhoKind::Bisquare(c2) => Arc::new(Bisquare::new(c2)),
            RhoKind::Huber(c2) => Arc::new(HuberLike::new(c2)),
            RhoKind::Welsch(c2) => Arc::new(Welsch::new(c2)),
            RhoKind::Classical => Arc::new(Classical),
        }
    }
}

/// Configuration shared by the classic and robust streaming estimators.
///
/// Mirrors the knobs the paper exposes: the eigensystem size `p`, extra
/// components `q` for the gappy-residual correction, the forgetting factor
/// `α = 1 − 1/N` (§II-B), the M-scale breakdown parameter `δ` (eq. 5), the
/// ρ-function, and the warm-up size used to initialize the eigensystem
/// (§III-C: "first our implementation accumulates a given number of
/// incoming vectors and initializes the eigensystem").
#[derive(Debug, Clone)]
pub struct PcaConfig {
    /// Dimensionality `d` of incoming vectors.
    pub dim: usize,
    /// Number of principal components `p` to maintain.
    pub p: usize,
    /// Extra components `q` kept beyond `p` for the missing-data residual
    /// correction (§II-D). The eigensystem internally tracks `p + q`
    /// components but reports `p`.
    pub q_extra: usize,
    /// Forgetting factor `α ∈ (0, 1]`. `1.0` = infinite memory (classic).
    /// The paper sets `α = 1 − 1/N` with `N` the effective sample size.
    pub alpha: f64,
    /// M-scale breakdown parameter `δ ∈ (0, 1)` (eq. 5). Defaults to `0.5`,
    /// Maronna's maximal-breakdown choice.
    pub delta: f64,
    /// ρ-function used for robust weights.
    pub rho: RhoKind,
    /// Number of warm-up observations buffered before the eigensystem is
    /// initialized with a small batch PCA.
    pub init_size: usize,
    /// Observations whose weight `w` falls at/below this value are flagged
    /// as outliers. `0.0` flags only hard-rejected points.
    pub outlier_weight_threshold: f64,
    /// Number of fixed-point iterations of eq. (8) used when solving the
    /// M-scale on the warm-up batch.
    pub init_scale_iters: usize,
}

impl PcaConfig {
    /// Creates a config with the paper-ish defaults for a `dim`-dimensional
    /// stream tracking `p` components: `α` for `N = 5000` (the paper's
    /// performance-test setting), bisquare ρ with 3σ rejection, `δ = 0.5`,
    /// warm-up of `max(2p+2, 20)` vectors, `q = 2` spare components.
    pub fn new(dim: usize, p: usize) -> Self {
        assert!(p >= 1, "need at least one component");
        assert!(dim > p, "dimension must exceed component count");
        PcaConfig {
            dim,
            p,
            q_extra: 2,
            alpha: 1.0 - 1.0 / 5000.0,
            delta: 0.5,
            rho: RhoKind::Bisquare(9.0),
            init_size: (2 * p + 2).max(20),
            outlier_weight_threshold: 0.0,
            init_scale_iters: 30,
        }
    }

    /// Sets the forgetting factor directly. Panics outside `(0, 1]`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.alpha = alpha;
        self
    }

    /// Sets `α = 1 − 1/N` from an effective sample size `N` (the paper's
    /// parametrization; also the unit the sync gate is expressed in).
    pub fn with_memory(mut self, n_effective: usize) -> Self {
        assert!(n_effective >= 1);
        self.alpha = 1.0 - 1.0 / n_effective as f64;
        self
    }

    /// Effective sample size `N = 1/(1−α)` (∞ for α = 1).
    pub fn effective_memory(&self) -> f64 {
        if self.alpha >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - self.alpha)
        }
    }

    /// Sets the ρ-function.
    pub fn with_rho(mut self, rho: RhoKind) -> Self {
        self.rho = rho;
        self
    }

    /// Sets the breakdown parameter δ. Panics outside `(0, 1)`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        self.delta = delta;
        self
    }

    /// Sets the warm-up batch size (at least `p + 1`).
    pub fn with_init_size(mut self, n: usize) -> Self {
        assert!(n > self.p, "warm-up must exceed component count");
        self.init_size = n;
        self
    }

    /// Sets the number of spare components kept for gap handling.
    pub fn with_extra(mut self, q: usize) -> Self {
        self.q_extra = q;
        self
    }

    /// Total number of components tracked internally (`p + q`).
    pub fn p_total(&self) -> usize {
        self.p + self.q_extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PcaConfig::new(100, 5);
        assert_eq!(c.dim, 100);
        assert_eq!(c.p, 5);
        assert!(c.alpha < 1.0 && c.alpha > 0.99);
        assert_eq!(c.p_total(), 7);
        assert!(c.init_size >= 12);
    }

    #[test]
    fn memory_round_trip() {
        let c = PcaConfig::new(50, 3).with_memory(5000);
        assert!((c.effective_memory() - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn alpha_one_means_infinite_memory() {
        let c = PcaConfig::new(50, 3).with_alpha(1.0);
        assert!(c.effective_memory().is_infinite());
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_rejected() {
        let _ = PcaConfig::new(50, 3).with_alpha(0.0);
    }

    #[test]
    #[should_panic(expected = "dimension must exceed")]
    fn degenerate_dim_rejected() {
        let _ = PcaConfig::new(3, 3);
    }

    #[test]
    fn rho_kinds_build() {
        assert!(RhoKind::Bisquare(9.0).build().weight(0.0) > 0.0);
        assert!(RhoKind::Huber(4.0).build().weight(0.0) > 0.0);
        assert!(RhoKind::Welsch(9.0).build().weight(0.0) > 0.0);
        assert_eq!(RhoKind::Classical.build().weight(1e9), 1.0);
    }
}
