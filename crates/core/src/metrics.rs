//! Convergence and agreement diagnostics.
//!
//! The figures of the paper are all statements about convergence (Fig. 1,
//! 4, 5) or agreement between independently-evolving estimates (the sync
//! criterion of §II-C). These metrics quantify both: principal angles
//! between subspaces, eigenvalue errors, and the smoothness measure the
//! paper invokes for Fig. 5 ("the smoothness of these curves is a sign of
//! robustness as PCA has no notion of where the pixels are relative to each
//! other").

use crate::eigensystem::EigenSystem;
use crate::Result;
use spca_linalg::{gemm, svd, Mat};

/// Cosines of the principal angles between the column spans of `a` and `b`
/// (descending). Both must have the same row count; the number of angles is
/// the smaller column count.
pub fn principal_angle_cosines(a: &Mat, b: &Mat) -> Result<Vec<f64>> {
    // cos θ_i are the singular values of AᵀB for orthonormal A, B.
    let atb = gemm::gemm(&a.transpose(), b)?;
    // thin_svd needs rows >= cols; transpose if necessary.
    let f = if atb.rows() >= atb.cols() {
        svd::thin_svd(&atb)?
    } else {
        svd::thin_svd(&atb.transpose())?
    };
    Ok(f.s.iter().map(|&s| s.min(1.0)).collect())
}

/// Distance between subspaces: `sin` of the largest principal angle, in
/// `[0, 1]`. Zero iff the spans coincide.
pub fn subspace_distance(a: &Mat, b: &Mat) -> Result<f64> {
    let cos = principal_angle_cosines(a, b)?;
    let min_cos = cos.last().copied().unwrap_or(1.0);
    Ok((1.0 - min_cos * min_cos).max(0.0).sqrt())
}

/// Mean-square distance: average of `sin²θ_i` over all principal angles —
/// a smoother convergence signal than the max angle.
pub fn mean_square_subspace_distance(a: &Mat, b: &Mat) -> Result<f64> {
    let cos = principal_angle_cosines(a, b)?;
    if cos.is_empty() {
        return Ok(0.0);
    }
    Ok(cos.iter().map(|c| 1.0 - c * c).sum::<f64>() / cos.len() as f64)
}

/// Maximum relative eigenvalue error `|λ̂ − λ| / max(λ, floor)` over the
/// common prefix of the two spectra.
pub fn eigenvalue_relative_error(estimate: &[f64], truth: &[f64], floor: f64) -> f64 {
    estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs() / t.abs().max(floor))
        .fold(0.0, f64::max)
}

/// Whether two eigensystems are "statistically independent enough" to merge
/// usefully: the paper gates synchronization on observation counts, and
/// additionally engines "verify every time that the eigensystems are
/// statistically independent". We quantify dependence as subspace
/// closeness: returns `true` when the subspace distance exceeds `threshold`
/// — i.e. the systems have drifted apart and a sync is worthwhile.
pub fn eigensystems_diverged(a: &EigenSystem, b: &EigenSystem, threshold: f64) -> Result<bool> {
    Ok(subspace_distance(&a.basis, &b.basis)? > threshold)
}

/// Second-difference roughness of a curve: `Σ (x[i+1] − 2x[i] + x[i−1])²`,
/// normalized by the curve's variance. Physical eigenspectra are smooth;
/// noise-dominated ones are rough. Used to quantify the Fig. 4 → Fig. 5
/// improvement.
pub fn roughness(curve: &[f64]) -> f64 {
    if curve.len() < 3 {
        return 0.0;
    }
    let mean = curve.iter().sum::<f64>() / curve.len() as f64;
    let var = curve.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / curve.len() as f64;
    if var <= 0.0 {
        return 0.0;
    }
    let mut s = 0.0;
    for w in curve.windows(3) {
        let d2 = w[2] - 2.0 * w[1] + w[0];
        s += d2 * d2;
    }
    s / (var * (curve.len() - 2) as f64)
}

/// A convergence trace: records a scalar diagnostic every `stride`
/// observations, for plotting eigenvalue histories (Fig. 1).
#[derive(Debug, Clone)]
pub struct Trace {
    stride: u64,
    next: u64,
    /// `(n_obs, values)` samples.
    pub samples: Vec<(u64, Vec<f64>)>,
}

impl Trace {
    /// A trace sampling every `stride` observations (`stride ≥ 1`).
    pub fn new(stride: u64) -> Self {
        assert!(stride >= 1);
        Trace {
            stride,
            next: 0,
            samples: Vec::new(),
        }
    }

    /// Offers the current observation count and a lazily-computed value
    /// vector; records it if the stride boundary has been reached.
    pub fn offer(&mut self, n_obs: u64, values: impl FnOnce() -> Vec<f64>) {
        if n_obs >= self.next {
            self.samples.push((n_obs, values()));
            self.next = n_obs + self.stride;
        }
    }

    /// The recorded series for component `k` as `(n_obs, value)` pairs.
    pub fn series(&self, k: usize) -> Vec<(u64, f64)> {
        self.samples
            .iter()
            .filter_map(|(n, vals)| vals.get(k).map(|&v| (*n, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axes(d: usize, which: &[usize]) -> Mat {
        let mut m = Mat::zeros(d, which.len());
        for (j, &ax) in which.iter().enumerate() {
            m[(ax, j)] = 1.0;
        }
        m
    }

    #[test]
    fn identical_subspaces_have_zero_distance() {
        let a = axes(6, &[0, 1]);
        assert!(subspace_distance(&a, &a).unwrap() < 1e-12);
    }

    #[test]
    fn orthogonal_subspaces_have_distance_one() {
        let a = axes(6, &[0, 1]);
        let b = axes(6, &[2, 3]);
        assert!((subspace_distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_invariance() {
        // Span{e0, e1} expressed in a rotated basis is the same subspace.
        let a = axes(4, &[0, 1]);
        let mut b = Mat::zeros(4, 2);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        b[(0, 0)] = s;
        b[(1, 0)] = s;
        b[(0, 1)] = s;
        b[(1, 1)] = -s;
        assert!(subspace_distance(&a, &b).unwrap() < 1e-12);
    }

    #[test]
    fn partial_overlap_distance() {
        let a = axes(6, &[0, 1]);
        let b = axes(6, &[0, 2]);
        // One shared direction, one orthogonal → max angle 90°.
        assert!((subspace_distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        // Mean-square distance averages: (0 + 1)/2.
        assert!((mean_square_subspace_distance(&a, &b).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eigenvalue_error_basics() {
        assert_eq!(eigenvalue_relative_error(&[2.0], &[1.0], 1e-12), 1.0);
        assert_eq!(
            eigenvalue_relative_error(&[1.0, 2.0], &[1.0, 2.0], 1e-12),
            0.0
        );
    }

    #[test]
    fn smooth_curve_less_rough_than_noise() {
        let smooth: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut noisy = smooth.clone();
        for (i, v) in noisy.iter_mut().enumerate() {
            *v += if i % 2 == 0 { 0.3 } else { -0.3 };
        }
        assert!(roughness(&smooth) < 0.1 * roughness(&noisy));
    }

    #[test]
    fn roughness_degenerate_inputs() {
        assert_eq!(roughness(&[]), 0.0);
        assert_eq!(roughness(&[1.0, 2.0]), 0.0);
        assert_eq!(roughness(&[5.0; 10]), 0.0);
    }

    #[test]
    fn trace_strides() {
        let mut t = Trace::new(10);
        for n in 0..35 {
            t.offer(n, || vec![n as f64]);
        }
        let s = t.series(0);
        assert_eq!(s.len(), 4); // n = 0, 10, 20, 30
        assert_eq!(s[1], (10, 10.0));
    }

    #[test]
    fn diverged_flag() {
        let mut a = EigenSystem::zeros(6, 2);
        a.basis = axes(6, &[0, 1]);
        a.values = vec![1.0, 0.5];
        let mut b = a.clone();
        assert!(!eigensystems_diverged(&a, &b, 0.1).unwrap());
        b.basis = axes(6, &[2, 3]);
        assert!(eigensystems_diverged(&a, &b, 0.1).unwrap());
    }
}
