//! Classical incremental PCA (paper eq. 1–3).
//!
//! Maintains the truncated eigensystem of the covariance matrix through the
//! low-rank identity
//!
//! ```text
//! C ≈ γ E Λ Eᵀ + (1−γ) y yᵀ = A Aᵀ,   A = [ e_k √(γ λ_k) | y √(1−γ) ]
//! ```
//!
//! so each arriving vector costs one thin SVD of a `d × (k+1)` factor
//! instead of an `O(d²)` covariance update. This is the non-robust
//! baseline whose failure under contamination Fig. 1 (left) demonstrates.

use crate::config::PcaConfig;
use crate::eigensystem::EigenSystem;
use crate::gaps::GapWorkspace;
use crate::{PcaError, Result};
use spca_linalg::svd::SvdWorkspace;
use spca_linalg::{svd, vecops, Mat};

/// Reusable scratch for the per-tuple streaming update.
///
/// Owned by [`ClassicIncrementalPca`] and [`crate::RobustPca`]: after the
/// first few updates every buffer has reached its steady-state size and an
/// update performs no heap allocation at all — the property the
/// allocation-counting test in `tests/alloc_count.rs` pins down.
#[derive(Debug, Clone, Default)]
pub struct UpdateWorkspace {
    pub(crate) step: StepScratch,
    pub(crate) gaps: GapWorkspace,
}

/// The scratch needed by one algebraic update step (centered vector, the
/// `d × (k+1)` factor, and the SVD workspace).
#[derive(Debug, Clone, Default)]
pub(crate) struct StepScratch {
    pub(crate) y: Vec<f64>,
    pub(crate) a: Mat,
    pub(crate) svd: SvdWorkspace,
}

/// Classical streaming PCA with exponential forgetting.
#[derive(Debug, Clone)]
pub struct ClassicIncrementalPca {
    cfg: PcaConfig,
    state: State,
    ws: UpdateWorkspace,
}

#[derive(Debug, Clone)]
enum State {
    /// Buffering the warm-up batch.
    WarmUp(Vec<Vec<f64>>),
    /// Streaming with an initialized eigensystem.
    Running(EigenSystem),
}

impl ClassicIncrementalPca {
    /// Creates an estimator in warm-up state.
    pub fn new(cfg: PcaConfig) -> Self {
        ClassicIncrementalPca {
            cfg,
            state: State::WarmUp(Vec::new()),
            ws: UpdateWorkspace::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PcaConfig {
        &self.cfg
    }

    /// True once the warm-up batch has been consumed.
    pub fn is_initialized(&self) -> bool {
        matches!(self.state, State::Running(_))
    }

    /// Total observations consumed (including warm-up).
    pub fn n_obs(&self) -> u64 {
        match &self.state {
            State::WarmUp(buf) => buf.len() as u64,
            State::Running(e) => e.n_obs,
        }
    }

    /// Processes one observation. Returns the squared residual relative to
    /// the pre-update eigensystem (0.0 during warm-up).
    pub fn update(&mut self, x: &[f64]) -> Result<f64> {
        validate(&self.cfg, x)?;
        let ClassicIncrementalPca { cfg, state, ws } = self;
        match state {
            State::WarmUp(buf) => {
                buf.push(x.to_vec());
                if buf.len() >= cfg.init_size {
                    let batch = std::mem::take(buf);
                    *state = State::Running(init_from_batch(cfg, &batch)?);
                }
                Ok(0.0)
            }
            State::Running(eig) => {
                eig.center_into(x, &mut ws.step.y);
                let r2 = eig.residual_sq_truncated_centered(&ws.step.y, cfg.p);
                classic_step(eig, x, cfg.alpha, &mut ws.step)?;
                eig.n_obs += 1;
                Ok(r2)
            }
        }
    }

    /// The current eigensystem truncated to the reported `p` components.
    ///
    /// Panics if called before initialization; check
    /// [`is_initialized`](Self::is_initialized) when the stream may still be
    /// in warm-up.
    pub fn eigensystem(&self) -> EigenSystem {
        match &self.state {
            State::WarmUp(_) => panic!("eigensystem requested before warm-up completed"),
            State::Running(e) => e.truncated(self.cfg.p),
        }
    }

    /// The full internally-tracked eigensystem (`p + q` components).
    pub fn full_eigensystem(&self) -> Option<&EigenSystem> {
        match &self.state {
            State::WarmUp(_) => None,
            State::Running(e) => Some(e),
        }
    }

    /// Replaces the internal eigensystem (used by the synchronization layer
    /// after a merge). The replacement must match dim and component count.
    pub fn install_eigensystem(&mut self, eig: EigenSystem) -> Result<()> {
        if eig.dim() != self.cfg.dim || eig.n_components() != self.cfg.p_total() {
            return Err(PcaError::IncompatibleMerge(format!(
                "install: got dim {} k {}, want dim {} k {}",
                eig.dim(),
                eig.n_components(),
                self.cfg.dim,
                self.cfg.p_total()
            )));
        }
        self.state = State::Running(eig);
        Ok(())
    }
}

pub(crate) fn validate(cfg: &PcaConfig, x: &[f64]) -> Result<()> {
    if x.len() != cfg.dim {
        return Err(PcaError::DimensionMismatch {
            expected: cfg.dim,
            got: x.len(),
        });
    }
    if !vecops::all_finite(x) {
        return Err(PcaError::NotFinite);
    }
    Ok(())
}

/// One classical incremental step on an initialized eigensystem: updates
/// mean, then eigensystem via the `A = [E√(γΛ) | y√(1−γ)]` SVD.
pub(crate) fn classic_step(
    eig: &mut EigenSystem,
    x: &[f64],
    alpha: f64,
    scratch: &mut StepScratch,
) -> Result<()> {
    // γ from the decayed observation count (eq. 14 analogue): with every
    // weight equal to one, u, v and q all share this recursion.
    let u_new = alpha * eig.sum_u + 1.0;
    let gamma = alpha * eig.sum_u / u_new;
    eig.sum_u = u_new;
    eig.sum_v = u_new;

    // Mean recursion (eq. 9 with w ≡ 1).
    for (m, &xi) in eig.mean.iter_mut().zip(x) {
        *m = gamma * *m + (1.0 - gamma) * xi;
    }

    eig.center_into(x, &mut scratch.y);
    let StepScratch { y, a, svd } = scratch;
    low_rank_update(eig, y, gamma, 1.0 - gamma, a, svd)?;
    eig.sum_q = u_new; // classical: w·r² sums degenerate to the count
    Ok(())
}

/// Shared low-rank eigensystem update: replaces `{E, Λ}` with the top-k of
/// the SVD of `A = [e_j·√(g_hist·λ_j) | y·√(g_new)]`, assembled in the
/// caller-owned factor buffer `a` and decomposed into `svd`.
pub(crate) fn low_rank_update(
    eig: &mut EigenSystem,
    y: &[f64],
    g_hist: f64,
    g_new: f64,
    a: &mut Mat,
    svd_ws: &mut SvdWorkspace,
) -> Result<()> {
    let d = eig.dim();
    let k = eig.n_components();
    a.reset_zeroed(d, k + 1);
    for j in 0..k {
        let s = (g_hist * eig.values[j]).max(0.0).sqrt();
        a.scale_col_from(j, eig.basis.col(j), s);
    }
    a.scale_col_from(k, y, g_new.max(0.0).sqrt());
    svd::thin_svd_into(a, svd_ws)?;
    for j in 0..k {
        eig.basis.col_mut(j).copy_from_slice(svd_ws.u.col(j));
        eig.values[j] = svd_ws.s[j] * svd_ws.s[j];
    }
    Ok(())
}

/// Initializes an eigensystem from a warm-up batch with plain batch PCA.
pub(crate) fn init_from_batch(cfg: &PcaConfig, batch: &[Vec<f64>]) -> Result<EigenSystem> {
    let n = batch.len();
    assert!(n > 0, "warm-up batch must be non-empty");
    let d = cfg.dim;
    let k = cfg.p_total().min(n.saturating_sub(1)).max(1);

    let mut mean = vec![0.0; d];
    for x in batch {
        vecops::axpy(1.0, x, &mut mean);
    }
    vecops::scale(&mut mean, 1.0 / n as f64);

    // Thin SVD of the centered data matrix (columns = observations) gives
    // the eigensystem of the sample covariance directly.
    let mut data = Mat::zeros(d, n);
    for (j, x) in batch.iter().enumerate() {
        let col = data.col_mut(j);
        for ((o, &xi), &mi) in col.iter_mut().zip(x).zip(&mean) {
            *o = xi - mi;
        }
    }
    // thin_svd requires rows >= cols; warm-up batches are small (n << d) in
    // the intended regime, but guard the other case by Gram eigensolve.
    let (basis, values) = if d >= n {
        let f = svd::thin_svd(&data)?;
        let mut basis = Mat::zeros(d, cfg.p_total());
        let mut values = vec![0.0; cfg.p_total()];
        for (j, val) in values.iter_mut().enumerate().take(k.min(f.s.len())) {
            basis.col_mut(j).copy_from_slice(f.u.col(j));
            *val = f.s[j] * f.s[j] / n as f64;
        }
        fill_orthonormal_tail(&mut basis, k);
        (basis, values)
    } else {
        let f = svd::thin_svd(&data.transpose())?;
        // data = (V S Uᵀ)ᵀ = U S Vᵀ with roles swapped: left vectors of
        // dataᵀ are right vectors of data.
        let mut basis = Mat::zeros(d, cfg.p_total());
        let mut values = vec![0.0; cfg.p_total()];
        for (j, val) in values.iter_mut().enumerate().take(k.min(f.s.len()).min(d)) {
            basis.col_mut(j).copy_from_slice(f.v.col(j));
            *val = f.s[j] * f.s[j] / n as f64;
        }
        fill_orthonormal_tail(&mut basis, k);
        (basis, values)
    };

    // Decayed count of the warm-up batch: Σ_{i=0}^{n-1} α^i.
    let u0 = decayed_count(cfg.alpha, n);

    let mut eig = EigenSystem {
        mean,
        basis,
        values,
        sigma2: 0.0,
        sum_u: u0,
        sum_v: u0,
        sum_q: 0.0,
        n_obs: n as u64,
    };
    // Mean residual over the batch seeds σ² (the robust path re-solves the
    // M-scale on top of this).
    let mean_r2 = batch
        .iter()
        .map(|x| eig.residual_sq_truncated(x, cfg.p))
        .sum::<f64>()
        / n as f64;
    eig.sigma2 = mean_r2;
    eig.sum_q = u0 * mean_r2;
    Ok(eig)
}

/// Geometric series Σ_{i=0}^{n-1} α^i.
pub(crate) fn decayed_count(alpha: f64, n: usize) -> f64 {
    if (alpha - 1.0).abs() < 1e-15 {
        n as f64
    } else {
        (1.0 - alpha.powi(n as i32)) / (1.0 - alpha)
    }
}

/// Completes columns `[k, basis.cols())` with arbitrary orthonormal
/// directions so the tracked basis always has full column rank.
fn fill_orthonormal_tail(basis: &mut Mat, k: usize) {
    let (d, total) = basis.shape();
    let mut axis = 0;
    for j in k..total {
        'search: while axis < d {
            let mut cand = vec![0.0; d];
            cand[axis] = 1.0;
            axis += 1;
            for other in 0..j {
                let proj = vecops::dot(&cand, basis.col(other));
                vecops::axpy(-proj, basis.col(other), &mut cand);
            }
            if vecops::normalize(&mut cand) > 1e-6 {
                basis.col_mut(j).copy_from_slice(&cand);
                break 'search;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PcaConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spca_linalg::rng::standard_normal_vec;

    /// Stream from a planted 2D subspace in 10 dims plus tiny noise.
    fn planted_stream(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 10;
        (0..n)
            .map(|_| {
                let c = standard_normal_vec(&mut rng, 2);
                let noise = standard_normal_vec(&mut rng, d);
                let mut x = vec![0.0; d];
                x[0] = 3.0 * c[0];
                x[1] = 1.5 * c[1];
                for (xi, ni) in x.iter_mut().zip(&noise) {
                    *xi += 0.01 * ni;
                }
                x
            })
            .collect()
    }

    fn cfg() -> PcaConfig {
        PcaConfig::new(10, 2)
            .with_alpha(1.0)
            .with_extra(0)
            .with_init_size(20)
    }

    #[test]
    fn warm_up_then_running() {
        let mut pca = ClassicIncrementalPca::new(cfg());
        for (i, x) in planted_stream(19, 1).iter().enumerate() {
            pca.update(x).unwrap();
            assert!(!pca.is_initialized(), "i={i}");
        }
        pca.update(&planted_stream(1, 2)[0]).unwrap();
        assert!(pca.is_initialized());
        assert_eq!(pca.n_obs(), 20);
    }

    #[test]
    fn recovers_planted_subspace() {
        let mut pca = ClassicIncrementalPca::new(cfg());
        for x in planted_stream(2000, 3) {
            pca.update(&x).unwrap();
        }
        let eig = pca.eigensystem();
        eig.check_invariants().unwrap();
        // Top eigenvector should align with axis 0 (variance 9), second
        // with axis 1 (variance 2.25).
        assert!(
            eig.basis[(0, 0)].abs() > 0.99,
            "e1 = {:?}",
            eig.basis.col(0)
        );
        assert!(
            eig.basis[(1, 1)].abs() > 0.99,
            "e2 = {:?}",
            eig.basis.col(1)
        );
        assert!((eig.values[0] - 9.0).abs() < 1.5, "λ1 = {}", eig.values[0]);
        assert!((eig.values[1] - 2.25).abs() < 0.6, "λ2 = {}", eig.values[1]);
    }

    #[test]
    fn residuals_shrink_as_model_converges() {
        let mut pca = ClassicIncrementalPca::new(cfg());
        let stream = planted_stream(1000, 4);
        let mut early = 0.0;
        let mut late = 0.0;
        for (i, x) in stream.iter().enumerate() {
            let r2 = pca.update(x).unwrap();
            if (20..120).contains(&i) {
                early += r2;
            }
            if i >= 900 {
                late += r2;
            }
        }
        assert!(
            late / 100.0 <= early / 100.0 + 1e-6,
            "early {early} late {late}"
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut pca = ClassicIncrementalPca::new(cfg());
        assert!(matches!(
            pca.update(&[1.0, 2.0]),
            Err(PcaError::DimensionMismatch {
                expected: 10,
                got: 2
            })
        ));
    }

    #[test]
    fn nan_rejected() {
        let mut pca = ClassicIncrementalPca::new(cfg());
        let mut x = vec![0.0; 10];
        x[3] = f64::NAN;
        assert_eq!(pca.update(&x).unwrap_err(), PcaError::NotFinite);
    }

    #[test]
    fn decayed_count_limits() {
        assert_eq!(decayed_count(1.0, 7), 7.0);
        // Σ α^i → 1/(1-α): the paper's footnote "u rapidly converges to
        // 1/(1−α)".
        let alpha = 0.99;
        assert!((decayed_count(alpha, 10_000) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn mean_tracks_stream_mean() {
        let mut pca = ClassicIncrementalPca::new(cfg());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1500 {
            let mut x = standard_normal_vec(&mut rng, 10);
            x[0] += 5.0;
            pca.update(&x).unwrap();
        }
        let eig = pca.eigensystem();
        assert!((eig.mean[0] - 5.0).abs() < 0.2, "mean {:?}", eig.mean[0]);
        assert!(eig.mean[1].abs() < 0.2);
    }

    #[test]
    fn forgetting_tracks_subspace_drift() {
        // With a short memory the estimator must follow a subspace that
        // rotates from axis 0 to axis 2 halfway through.
        let cfg = PcaConfig::new(10, 1)
            .with_memory(200)
            .with_extra(0)
            .with_init_size(20);
        let mut pca = ClassicIncrementalPca::new(cfg);
        let mut rng = StdRng::seed_from_u64(6);
        for phase in 0..2 {
            for _ in 0..2000 {
                let c: f64 = spca_linalg::rng::standard_normal(&mut rng);
                let mut x = vec![0.0; 10];
                x[if phase == 0 { 0 } else { 2 }] = 4.0 * c;
                for xi in x.iter_mut() {
                    *xi += 0.01 * spca_linalg::rng::standard_normal(&mut rng);
                }
                pca.update(&x).unwrap();
            }
        }
        let eig = pca.eigensystem();
        assert!(
            eig.basis[(2, 0)].abs() > 0.95,
            "should have rotated: {:?}",
            eig.basis.col(0)
        );
    }

    #[test]
    fn install_eigensystem_validates_shape() {
        let mut pca = ClassicIncrementalPca::new(cfg());
        let wrong = EigenSystem::zeros(9, 2);
        assert!(pca.install_eigensystem(wrong).is_err());
        let right = EigenSystem::zeros(10, 2);
        assert!(pca.install_eigensystem(right).is_ok());
        assert!(pca.is_initialized());
    }
}
