//! Proves the steady-state streaming update is allocation-free.
//!
//! A counting global allocator wraps the system allocator; after the
//! estimator has warmed up and its workspace buffers have grown to size,
//! a run of further updates must not touch the heap at all. This is the
//! guard that keeps the hot path from silently regressing to per-tuple
//! allocation.
//!
//! This file must contain exactly one `#[test]`: a sibling test running on
//! another thread would allocate concurrently and poison the counter.

use spca_core::{PcaConfig, RobustPca};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic pseudo-random stream without pulling rand into the
/// measured binary (the generator itself must not allocate either).
fn lcg_normal_ish(state: &mut u64) -> f64 {
    // Sum of uniforms → approximately Gaussian; plenty for exercising the
    // update path.
    let mut s = 0.0;
    for _ in 0..4 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s += (*state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    s * 2.0
}

#[test]
fn steady_state_update_performs_zero_allocations() {
    const D: usize = 64;
    const P: usize = 4;
    const WARM: usize = 300;
    const MEASURED: usize = 100;

    let mut pca = RobustPca::new(PcaConfig::new(D, P).with_memory(500).with_init_size(40));

    // Pre-generate every observation so data generation stays out of the
    // measured window.
    let mut state = 0x5eed_5eed_5eed_5eedu64;
    let data: Vec<Vec<f64>> = (0..WARM + MEASURED)
        .map(|_| {
            let c0 = 4.0 * lcg_normal_ish(&mut state);
            let c1 = 2.0 * lcg_normal_ish(&mut state);
            (0..D)
                .map(|j| {
                    let base = match j {
                        0 => c0,
                        1 => c1,
                        _ => 0.0,
                    };
                    base + 0.05 * lcg_normal_ish(&mut state)
                })
                .collect()
        })
        .collect();

    // Warm-up: initialization plus enough updates for every workspace
    // buffer to reach its steady-state capacity.
    for x in &data[..WARM] {
        pca.update(x).unwrap();
    }
    assert!(pca.is_initialized());

    let before = ALLOCS.load(Ordering::SeqCst);
    for x in &data[WARM..] {
        pca.update(x).unwrap();
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state RobustPca::update allocated {} times over {MEASURED} updates",
        after - before
    );
}
