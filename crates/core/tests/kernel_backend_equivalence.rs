//! End-to-end backend equivalence: a full streaming run under the scalar
//! kernels must produce the same eigensystem as the dispatched (SIMD)
//! kernels to 1e-10.
//!
//! This is the acceptance check for the hardware-aware kernel layer: FMA
//! contraction and lane-striped reductions may perturb individual flops in
//! the last bit, but after hundreds of rank-one updates, merges and Jacobi
//! sweeps the *engine-level* results must still agree far below any
//! physically meaningful tolerance.
//!
//! Kept as a single `#[test]` in its own integration-test binary because it
//! flips the process-wide backend override; sharing a binary with parallel
//! tests would race on it.

use spca_core::{EigenSystem, PcaConfig, RhoKind, RobustPca};
use spca_linalg::kernels::{self, Backend};

/// Deterministic synthetic stream: six planted modes with well-separated
/// amplitudes in 32 dims plus a tiny broadband term. The amplitude ladder
/// matters: the engine tracks `p + q = 6` components, and near-degenerate
/// eigenvalues would make the trailing eigenvectors ill-conditioned —
/// last-bit kernel differences would then get amplified to O(1) through the
/// robust reweighting, which is a property of degenerate spectra, not of
/// the kernels under test.
fn stream(n: usize, d: usize) -> Vec<Vec<f64>> {
    let amps = [4.0, 2.5, 1.6, 1.0, 0.6, 0.35];
    let spatial = [0.2, 0.45, 0.9, 1.3, 1.7, 2.1];
    let temporal = [1.9, 1.1, 0.7, 2.3, 0.53, 1.41];
    (0..n)
        .map(|t| {
            let tf = t as f64;
            (0..d)
                .map(|i| {
                    let fi = i as f64;
                    let mut v = 1e-3 * ((1.37 * tf + 0.77 * fi).sin());
                    for m in 0..6 {
                        v += amps[m]
                            * (spatial[m] * fi + m as f64).sin()
                            * (temporal[m] * tf + 0.1 * m as f64).sin();
                    }
                    v
                })
                .collect()
        })
        .collect()
}

fn run_stream(data: &[Vec<f64>]) -> EigenSystem {
    // Huber ρ, not the default bisquare: the bisquare's smoothly-descending
    // weight has nonzero derivative everywhere the M-scale puts the bulk of
    // the data, so it amplifies *any* last-bit perturbation (a compiler
    // upgrade as much as an FMA) into ~1e-9 trajectory noise — that is a
    // property of redescending weights, not of the kernels. Huber's weight
    // is constant across the bulk, so kernel-level rounding is all that can
    // separate the runs and the 1e-10 contract is meaningful.
    let cfg = PcaConfig::new(32, 4)
        .with_init_size(24)
        .with_extra(2)
        .with_memory(200)
        .with_rho(RhoKind::Huber(9.0));
    let mut pca = RobustPca::new(cfg);
    for x in data {
        pca.update(x).unwrap();
    }
    assert!(pca.is_initialized());
    pca.full_eigensystem().unwrap().clone()
}

#[test]
fn scalar_and_dispatched_eigensystems_agree() {
    let data = stream(400, 32);

    kernels::set_backend_override(Some(Backend::Scalar));
    let scalar = run_stream(&data);

    // Dispatched path: explicit AVX2 when the CPU has it, otherwise this
    // degenerates to scalar-vs-scalar (still a valid determinism check).
    if Backend::Avx2Fma.available() {
        kernels::set_backend_override(Some(Backend::Avx2Fma));
    } else {
        kernels::set_backend_override(None);
    }
    let dispatched = run_stream(&data);
    kernels::set_backend_override(None);

    let tol = 1e-10;
    assert_eq!(scalar.n_obs, dispatched.n_obs);
    for (a, b) in scalar.mean.iter().zip(&dispatched.mean) {
        assert!((a - b).abs() < tol * (1.0 + b.abs()), "mean: {a} vs {b}");
    }
    for (a, b) in scalar.values.iter().zip(&dispatched.values) {
        assert!((a - b).abs() < tol * (1.0 + b.abs()), "value: {a} vs {b}");
    }
    // Eigenvectors are sign-ambiguous in principle; align each pair of
    // columns before the element-wise comparison.
    for j in 0..scalar.basis.cols() {
        let (ca, cb) = (scalar.basis.col(j), dispatched.basis.col(j));
        let sign = if spca_linalg::vecops::dot(ca, cb) < 0.0 {
            -1.0
        } else {
            1.0
        };
        for (a, b) in ca.iter().zip(cb) {
            assert!(
                (a - sign * b).abs() < tol,
                "basis col {j}: {a} vs {}",
                sign * b
            );
        }
    }
    let s2 = (scalar.sigma2 - dispatched.sigma2).abs();
    assert!(s2 < tol * (1.0 + dispatched.sigma2.abs()), "sigma2: {s2}");
}
