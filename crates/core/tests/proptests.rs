//! Property-based tests for the streaming-PCA invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spca_core::batch::batch_pca;
use spca_core::merge::{merge, merge_all, merge_tree};
use spca_core::metrics::subspace_distance;
use spca_core::{ClassicIncrementalPca, EigenSystem, PcaConfig, RhoKind, RobustPca};
use spca_linalg::Mat;

/// A random *full-rank* eigensystem (`k = d`): orthonormal basis from a
/// product of random Givens rotations, well-separated descending
/// eigenvalues, random mean and running sums. Full rank matters: the merge
/// of eq. 15 is algebraically exact when nothing is truncated, which is
/// what makes tree-vs-fold agreement a 1e-10 statement instead of the
/// ~0.05 association tolerance of truncated merges.
fn random_full_rank_system(rng: &mut StdRng, d: usize) -> EigenSystem {
    let mut basis = Mat::zeros(d, d);
    for i in 0..d {
        basis.col_mut(i)[i] = 1.0;
    }
    for i in 0..d {
        for j in (i + 1)..d {
            let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let (s, c) = theta.sin_cos();
            // Row rotation in the (i, j) plane, applied across all columns.
            for col in 0..d {
                let cm = basis.col_mut(col);
                let (a, b) = (cm[i], cm[j]);
                cm[i] = c * a - s * b;
                cm[j] = s * a + c * b;
            }
        }
    }
    // Descending with guaranteed separation ≥ 0.7 (jitter < spacing).
    let values: Vec<f64> = (0..d)
        .map(|j| (d - j) as f64 + rng.gen_range(0.0..0.3))
        .collect();
    let n_obs = rng.gen_range(20..500u64);
    EigenSystem {
        mean: (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect(),
        basis,
        values,
        sigma2: rng.gen_range(0.01..1.0),
        sum_u: rng.gen_range(10.0..300.0),
        sum_v: rng.gen_range(10.0..300.0),
        sum_q: rng.gen_range(0.1..10.0),
        n_obs,
    }
}

/// `E diag(λ) Eᵀ` — the rotation-invariant content of (basis, values).
fn reconstruct(e: &EigenSystem) -> Mat {
    let d = e.dim();
    let mut scaled = Mat::zeros(d, e.n_components());
    for j in 0..e.n_components() {
        for (o, &b) in scaled.col_mut(j).iter_mut().zip(e.basis.col(j)) {
            *o = e.values[j] * b;
        }
    }
    spca_linalg::gemm::gemm(&scaled, &e.basis.transpose()).unwrap()
}

/// A stream living (mostly) on a planted low-rank subspace.
fn stream_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // Latent coefficients for 60-200 observations in 6 dims, rank 2.
    proptest::collection::vec((-3.0f64..3.0, -3.0f64..3.0, -0.02f64..0.02), 60..200).prop_map(
        |coeffs| {
            coeffs
                .into_iter()
                .map(|(c1, c2, eps)| {
                    let mut x = vec![0.0; 6];
                    x[0] = 3.0 * c1;
                    x[1] = 1.5 * c2;
                    x[2] = eps;
                    x[3] = -eps;
                    x
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The eigensystem state never violates its structural invariants, no
    /// matter what (finite) data streams through.
    #[test]
    fn robust_invariants_always_hold(stream in stream_strategy()) {
        let cfg = PcaConfig::new(6, 2).with_init_size(10).with_extra(1).with_memory(100);
        let mut pca = RobustPca::new(cfg);
        for x in &stream {
            pca.update(x).unwrap();
        }
        if pca.is_initialized() {
            pca.full_eigensystem().unwrap().check_invariants().unwrap();
        }
    }

    /// Classic incremental with α = 1 converges toward the batch solution.
    #[test]
    fn incremental_tracks_batch(stream in stream_strategy()) {
        let cfg = PcaConfig::new(6, 2).with_alpha(1.0).with_extra(0).with_init_size(10);
        let mut inc = ClassicIncrementalPca::new(cfg);
        for x in &stream {
            inc.update(x).unwrap();
        }
        let batch = batch_pca(&stream, 2).unwrap();
        let e = inc.eigensystem();
        // Truncation during streaming discards residual directions, so the
        // agreement is approximate; the planted geometry keeps it tight.
        let dist = subspace_distance(&e.basis, &batch.basis).unwrap();
        prop_assert!(dist < 0.2, "distance {dist}");
    }

    /// Robust PCA with the classical ρ produces the same mean trajectory as
    /// classic incremental PCA (the recursions coincide for w ≡ 1).
    #[test]
    fn classical_rho_matches_classic_mean(stream in stream_strategy()) {
        let cfg = PcaConfig::new(6, 2)
            .with_alpha(0.995)
            .with_extra(0)
            .with_init_size(10)
            .with_rho(RhoKind::Classical);
        let mut robust = RobustPca::new(cfg.clone());
        let mut classic = ClassicIncrementalPca::new(cfg);
        for x in &stream {
            robust.update(x).unwrap();
            classic.update(x).unwrap();
        }
        if robust.is_initialized() && classic.is_initialized() {
            let er = robust.eigensystem();
            let ec = classic.eigensystem();
            for (a, b) in er.mean.iter().zip(&ec.mean) {
                prop_assert!((a - b).abs() < 1e-6, "means diverged: {a} vs {b}");
            }
        }
    }

    /// Merging a split stream approximates the unsplit batch eigensystem.
    #[test]
    fn merge_split_consistency(stream in stream_strategy()) {
        prop_assume!(stream.len() >= 80);
        let (a, b) = stream.split_at(stream.len() / 2);
        let ea = batch_pca(a, 2).unwrap();
        let eb = batch_pca(b, 2).unwrap();
        let whole = batch_pca(&stream, 2).unwrap();
        let merged = merge(&ea, &eb).unwrap();
        let dist = subspace_distance(&merged.basis, &whole.basis).unwrap();
        prop_assert!(dist < 0.35, "split/merge distance {dist}");
        // Eigenvalue mass is conserved to first order.
        let m: f64 = merged.values.iter().sum();
        let w: f64 = whole.values.iter().sum();
        prop_assert!((m - w).abs() < 0.5 * w.max(0.1), "mass {m} vs {w}");
    }

    /// Merge is commutative up to numerical noise.
    #[test]
    fn merge_commutes(stream in stream_strategy()) {
        prop_assume!(stream.len() >= 80);
        let (a, b) = stream.split_at(stream.len() / 2);
        let ea = batch_pca(a, 2).unwrap();
        let eb = batch_pca(b, 2).unwrap();
        let ab = merge(&ea, &eb).unwrap();
        let ba = merge(&eb, &ea).unwrap();
        let dist = subspace_distance(&ab.basis, &ba.basis).unwrap();
        prop_assert!(dist < 1e-4, "commutativity violated: {dist}");
        for (x, y) in ab.mean.iter().zip(&ba.mean) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        prop_assert!((ab.sum_v - ba.sum_v).abs() < 1e-9);
    }

    /// Outlier weights are monotone: a larger residual never gets a larger
    /// weight.
    #[test]
    fn weights_monotone_in_residual(scale in 1.0f64..100.0) {
        let rho = RhoKind::Bisquare(9.0).build();
        let mut prev = f64::INFINITY;
        for i in 0..100 {
            let t = scale * i as f64 / 100.0;
            let w = rho.weight(t);
            prop_assert!(w <= prev + 1e-12);
            prev = w;
        }
    }

    /// Gap filling with a complete mask is the identity, and its
    /// bias-corrected residual equals the plain truncated residual.
    #[test]
    fn gap_fill_identity_on_complete_mask(stream in stream_strategy()) {
        prop_assume!(stream.len() >= 60);
        let eig = batch_pca(&stream, 3).unwrap();
        let mask = vec![true; 6];
        for x in stream.iter().take(20) {
            let gf = spca_core::gaps::fill_gaps(&eig, x, &mask, 2, 1).unwrap();
            prop_assert_eq!(&gf.filled, x);
            let want = eig.residual_sq_truncated(x, 2);
            prop_assert!((gf.residual_sq - want).abs() < 1e-9 * (1.0 + want));
        }
    }

    /// Gap filling never produces non-finite values, and observed bins are
    /// never modified, for any mask with at least one observed bin.
    #[test]
    fn gap_fill_preserves_observed_bins(stream in stream_strategy(), mask_bits in 1u8..63) {
        prop_assume!(stream.len() >= 60);
        let eig = batch_pca(&stream, 3).unwrap();
        let mask: Vec<bool> = (0..6).map(|i| mask_bits & (1 << i) != 0).collect();
        for x in stream.iter().take(10) {
            let gf = spca_core::gaps::fill_gaps(&eig, x, &mask, 2, 1).unwrap();
            prop_assert!(gf.filled.iter().all(|v| v.is_finite()));
            prop_assert!(gf.residual_sq.is_finite() && gf.residual_sq >= 0.0);
            for i in 0..6 {
                if mask[i] {
                    prop_assert_eq!(gf.filled[i], x[i], "observed bin {} modified", i);
                }
            }
        }
    }

    /// Tree reduction and left fold are the *same algebra* when nothing is
    /// truncated: for full-rank eigensystems the merge of eq. 15 is exact,
    /// so any association order — and any shuffle of the partitions — must
    /// land on the same merged state to floating-point accuracy (1e-10),
    /// not the ~0.05 association tolerance truncated merges carry. This is
    /// the guarantee the partitioned backfill leans on when it tree-merges
    /// per-partition states in whatever order the store yields them.
    #[test]
    fn tree_merge_equals_left_fold_for_full_rank(seed in any::<u64>(), k in 2usize..16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let systems: Vec<EigenSystem> =
            (0..k).map(|_| random_full_rank_system(&mut rng, 5)).collect();
        // Fisher–Yates shuffle (the vendored rand has no `seq` module).
        let mut shuffled = systems.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }

        let fold = merge_all(&shuffled).unwrap();
        let tree = merge_tree(&shuffled).unwrap();

        // Subspace agreement. Both spans are full-rank, so the binding
        // 1e-10 statement is the eigenvalue-weighted one below; the raw
        // sin-of-largest-angle only carries a sqrt of the bases'
        // orthonormality roundoff (~1e-15 → ~1e-7) and is checked at that
        // floor.
        let dist = subspace_distance(&fold.basis, &tree.basis).unwrap();
        prop_assert!(dist < 1e-6, "subspace angle {dist}");
        let (rf, rt) = (reconstruct(&fold), reconstruct(&tree));
        let scale = fold.values[0].max(1.0);
        let dcov = rf.sub(&rt).unwrap().max_abs();
        prop_assert!(dcov <= 1e-10 * scale, "E Λ Eᵀ differs by {dcov}");

        // Eigenvalues, mean, scale: gap-independent 1e-10 agreement.
        for (a, b) in fold.values.iter().zip(&tree.values) {
            prop_assert!((a - b).abs() <= 1e-10 * (1.0 + a.abs()), "values {a} vs {b}");
        }
        for (a, b) in fold.mean.iter().zip(&tree.mean) {
            prop_assert!((a - b).abs() <= 1e-10, "mean {a} vs {b}");
        }
        prop_assert!((fold.sigma2 - tree.sigma2).abs() <= 1e-10 * (1.0 + fold.sigma2));

        // Running sums: plain additions, associative to roundoff.
        prop_assert!((fold.sum_u - tree.sum_u).abs() <= 1e-10 * fold.sum_u);
        prop_assert!((fold.sum_v - tree.sum_v).abs() <= 1e-10 * fold.sum_v);
        prop_assert!((fold.sum_q - tree.sum_q).abs() <= 1e-10 * fold.sum_q.max(1.0));
        prop_assert_eq!(fold.n_obs, tree.n_obs);
    }

    /// The windowed estimator maintains invariants and bounded pane count
    /// over arbitrary streams.
    #[test]
    fn window_invariants(stream in stream_strategy(), pane in 20u64..60, panes in 1usize..4) {
        let cfg = PcaConfig::new(6, 2).with_init_size(10).with_extra(0);
        let mut w = spca_core::WindowedPca::new(cfg, pane, panes);
        for x in &stream {
            w.update(x).unwrap();
        }
        prop_assert!(w.sealed_panes() < panes.max(1));
        if let Ok(eig) = w.eigensystem() {
            eig.check_invariants().unwrap();
        }
        prop_assert_eq!(w.n_obs(), stream.len() as u64);
    }
}
