//! Figures 4 & 5: convergence of the leading galaxy eigenspectra.
//!
//! Fig. 4 shows the first four eigenvectors early in the stream — "noisy to
//! start with", spectral lines "hardly distinguishable"; Fig. 5 shows them
//! after many observations — smooth curves with "physically meaningful
//! features", where "the smoothness of these curves is a sign of
//! robustness as PCA has no notion of where the pixels are relative to
//! each other".
//!
//! This binary streams synthetic SDSS-like spectra — with the
//! redshift-dependent coverage window and random snippet gaps of §II-D,
//! masked-normalized, in randomized order as §II-B prescribes — and dumps
//! the four leading eigenspectra at an early (Fig. 4) and a late (Fig. 5)
//! checkpoint. Three quantitative series back the figure's claims:
//!
//! * **self-convergence**: subspace distance of the running estimate to
//!   the final one (the paper's "fast convergence way before getting to
//!   the last galaxy");
//! * **smoothness**: second-difference roughness of the eigenspectra;
//! * **feature emergence**: energy of the strong emission lines (Hα,
//!   [O III], Hβ) inside the leading eigenvectors relative to the typical
//!   pixel ("the spectral lines appear more clearly").
//!
//! A batch-PCA reference over *complete* spectra is reported as context;
//! the gappy population's eigenbasis legitimately differs from it (the
//! very bias §II-D's machinery mitigates), so no assertion compares them.
//!
//! Output: `target/figures/fig4_eigenspectra_early.csv`,
//! `fig5_eigenspectra_late.csv`, `fig4_5_convergence.csv`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_bench::{print_table, write_csv};
use spca_core::metrics::{roughness, subspace_distance};
use spca_core::{batch, EigenSystem, PcaConfig, RobustPca};
use spca_spectra::gaps::SnippetGaps;
use spca_spectra::normalize::unit_norm_masked;
use spca_spectra::GalaxyGenerator;

const N_PIXELS: usize = 500;
const P: usize = 4;
const EARLY: u64 = 300;
const LATE: u64 = 30_000;
const LINES: &[(f64, &str)] = &[
    (6562.8, "Halpha"),
    (5006.8, "[OIII]5007"),
    (4861.3, "Hbeta"),
];

fn main() {
    println!("Fig. 4/5 reproduction: eigenspectra convergence on galaxy spectra");
    println!("{N_PIXELS} px, p = {P}, {EARLY} (early) vs {LATE} (late) observations\n");

    let gen = GalaxyGenerator::new(N_PIXELS, 0.3);
    let snippets = SnippetGaps::new(1.5, 4, 12);
    let mut rng = StdRng::seed_from_u64(45);
    let cfg = PcaConfig::new(N_PIXELS, P)
        .with_memory(50_000)
        .with_init_size(80)
        .with_extra(2);
    let mut pca = RobustPca::new(cfg);

    // Context reference: batch PCA over complete (ungapped) spectra.
    let mut ref_rng = StdRng::seed_from_u64(46);
    let reference_data: Vec<Vec<f64>> = (0..3000)
        .map(|_| {
            let mut s = gen.sample(&mut ref_rng);
            let mask = vec![true; N_PIXELS];
            unit_norm_masked(&mut s.flux, &mask);
            s.flux
        })
        .collect();
    let reference = batch::batch_pca(&reference_data, P).expect("batch reference");

    let lambdas = gen.grid().lambdas();
    let mut checkpoints: Vec<(u64, EigenSystem)> = Vec::new();
    let mut early_snapshot: Option<Vec<Vec<f64>>> = None;

    let mut next_check = 100u64;
    for i in 0..LATE {
        let mut s = gen.sample_with_coverage(&mut rng);
        snippets.apply(&mut rng, &mut s.mask);
        if s.n_observed() == 0 {
            continue;
        }
        unit_norm_masked(&mut s.flux, &s.mask);
        pca.update_masked(&s.flux, &s.mask).expect("valid spectrum");

        let n = i + 1;
        if n == EARLY {
            early_snapshot = Some(eigenspectra_rows(&pca, &lambdas));
        }
        if n >= next_check && pca.is_initialized() {
            next_check = (next_check as f64 * 1.5) as u64;
            checkpoints.push((n, pca.eigensystem()));
        }
    }
    let final_eig = pca.eigensystem();

    // Convergence series against the final estimate + context columns.
    let mut convergence = Vec::new();
    for (n, eig) in &checkpoints {
        let self_dist = subspace_distance(&eig.basis, &final_eig.basis).expect("shapes");
        let batch_dist = subspace_distance(&eig.truncated(1).basis, &reference.truncated(1).basis)
            .expect("shapes");
        let mean_rough = (0..P).map(|k| roughness(eig.eigenvector(k))).sum::<f64>() / P as f64;
        convergence.push(vec![*n as f64, self_dist, mean_rough, batch_dist]);
    }

    let early = early_snapshot.expect("early checkpoint reached");
    let late = eigenspectra_rows(&pca, &lambdas);
    let hdr = ["lambda_angstrom", "e1", "e2", "e3", "e4"];
    let p1 = write_csv("fig4_eigenspectra_early.csv", &hdr, &early);
    let p2 = write_csv("fig5_eigenspectra_late.csv", &hdr, &late);
    let p3 = write_csv(
        "fig4_5_convergence.csv",
        &[
            "n_obs",
            "dist_to_final",
            "roughness",
            "top1_dist_to_complete_batch",
        ],
        &convergence,
    );
    println!(
        "wrote {}\nwrote {}\nwrote {}",
        p1.display(),
        p2.display(),
        p3.display()
    );

    // Quantified claims.
    let early_rough: f64 = (1..=P).map(|k| roughness(&column(&early, k))).sum::<f64>() / P as f64;
    let late_rough: f64 = (1..=P).map(|k| roughness(&column(&late, k))).sum::<f64>() / P as f64;
    let early_self = convergence.first().expect("nonempty")[1];
    let mid_self = convergence[convergence.len() / 2][1];
    let early_lines = line_emergence(&early, &lambdas);
    let late_lines = line_emergence(&late, &lambdas);

    print_table(
        "Fig. 4/5 summary",
        &["metric", "early", "late"],
        &[
            vec![1.0, early_rough, late_rough],
            vec![2.0, early_self, mid_self],
            vec![3.0, early_lines, late_lines],
        ],
    );
    println!("  row 1: mean eigenspectrum roughness (2nd-difference energy)");
    println!("  row 2: subspace distance to the final estimate (early vs mid-stream)");
    println!("  row 3: emission-line emergence (line-pixel energy / typical pixel)");

    assert!(
        late_rough < early_rough,
        "eigenspectra should smooth with data"
    );
    assert!(
        mid_self < early_self,
        "running estimate should converge toward its final state: {early_self} → {mid_self}"
    );
    // The converged eigenbasis must carry the physical emission-line
    // pattern. (On this synthetic manifold the lines are strong enough to
    // be picked up early as well — the paper's "hardly distinguishable"
    // early lines reflect real-survey noise levels — so the assertion is
    // presence at convergence, not growth.)
    assert!(
        late_lines > 3.0,
        "converged eigenspectra should carry the emission-line pattern: {late_lines}"
    );
    println!(
        "\nshape check PASSED: noisy early spectra → smooth, line-bearing, converged late spectra."
    );
}

fn eigenspectra_rows(pca: &RobustPca, lambdas: &[f64]) -> Vec<Vec<f64>> {
    let eig = pca.eigensystem();
    lambdas
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let mut row = vec![l];
            for k in 0..P {
                row.push(eig.eigenvector(k)[i]);
            }
            row
        })
        .collect()
}

fn column(rows: &[Vec<f64>], k: usize) -> Vec<f64> {
    rows.iter().map(|r| r[k]).collect()
}

/// Max over eigenvectors of (mean |e| at the strong-line pixels) / (mean
/// |e| overall): > 1 when a component carries the emission-line pattern.
fn line_emergence(rows: &[Vec<f64>], lambdas: &[f64]) -> f64 {
    let pix: Vec<usize> = LINES
        .iter()
        .filter_map(|&(l, _)| {
            lambdas
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    (a.1 - l)
                        .abs()
                        .partial_cmp(&(b.1 - l).abs())
                        .expect("finite")
                })
                .map(|(i, _)| i)
        })
        .collect();
    (1..=P)
        .map(|k| {
            let col = column(rows, k);
            let typical = col.iter().map(|v| v.abs()).sum::<f64>() / col.len() as f64;
            let line = pix.iter().map(|&i| col[i].abs()).sum::<f64>() / pix.len() as f64;
            line / typical.max(1e-300)
        })
        .fold(0.0, f64::max)
}
