//! Ablation: missing-data handling (§II-D).
//!
//! The paper's gap treatment has two pieces: (1) patch missing bins from
//! the current eigenbasis instead of leaving garbage/zeros; (2) correct
//! the residual with `q` extra components, because patching "artificially
//! removed the residuals in the bins of the missing entries", which would
//! hand gappy spectra inflated robust weights.
//!
//! Variants compared on the same gappy galaxy stream:
//!   A. zero-fill gaps (no patching, no correction) — the naive baseline;
//!   B. eigenbasis patching, q = 0 (no residual correction);
//!   C. eigenbasis patching, q = 2 (the paper's full treatment).
//!
//! Metrics: subspace distance to a batch reference computed on *complete*
//! spectra, and the weight bias of gappy observations (mean robust weight
//! of heavily-gapped vs complete observations — the §II-D bias is weights
//! inflating with gap size).
//!
//! Output: `target/figures/ablate_gaps.csv`.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use spca_bench::{print_table, write_csv};
use spca_core::metrics::subspace_distance;
use spca_core::{batch, PcaConfig, RobustPca};
use spca_spectra::normalize::unit_norm_masked;
use spca_spectra::GalaxyGenerator;

const N_PIXELS: usize = 200;
const P: usize = 4;
const N_OBS: usize = 8000;
/// Fraction of pixels dropped per gappy spectrum.
const GAP_FRAC: f64 = 0.35;

#[derive(Clone, Copy, Debug)]
enum Variant {
    ZeroFill,
    PatchNoCorrection,
    PatchCorrected,
}

struct Outcome {
    dist: f64,
    weight_gappy: f64,
    weight_complete: f64,
}

fn run(variant: Variant, reference: &spca_core::EigenSystem) -> Outcome {
    let gen = GalaxyGenerator::new(N_PIXELS, 0.0);
    let mut rng = StdRng::seed_from_u64(77);
    let q = match variant {
        Variant::PatchCorrected => 2,
        _ => 0,
    };
    let cfg = PcaConfig::new(N_PIXELS, P)
        .with_memory(20_000)
        .with_init_size(60)
        .with_extra(q);
    let mut pca = RobustPca::new(cfg);

    let mut w_gappy = (0.0, 0u64);
    let mut w_complete = (0.0, 0u64);
    for i in 0..N_OBS {
        let mut s = gen.sample(&mut rng);
        let mask_full = vec![true; N_PIXELS];
        unit_norm_masked(&mut s.flux, &mask_full);
        // Every other spectrum gets a contiguous gap of GAP_FRAC pixels.
        let gappy = i % 2 == 1;
        let outcome = if gappy {
            let len = (N_PIXELS as f64 * GAP_FRAC) as usize;
            let start = rng.gen_range(0..N_PIXELS - len);
            let mut mask = vec![true; N_PIXELS];
            for m in &mut mask[start..start + len] {
                *m = false;
            }
            match variant {
                Variant::ZeroFill => {
                    let mut x = s.flux.clone();
                    for (v, &m) in x.iter_mut().zip(&mask) {
                        if !m {
                            *v = 0.0;
                        }
                    }
                    pca.update(&x)
                }
                _ => pca.update_masked(&s.flux, &mask),
            }
        } else {
            pca.update(&s.flux)
        };
        let outcome = outcome.expect("valid spectrum");
        if outcome.initialized && i > N_OBS / 2 {
            let slot = if gappy { &mut w_gappy } else { &mut w_complete };
            slot.0 += outcome.weight;
            slot.1 += 1;
        }
    }

    let eig = pca.eigensystem();
    // Compare the three well-separated leading components; the 4th galaxy
    // eigenvalue is nearly degenerate with the tail, so the max principal
    // angle over all 4 saturates for every estimator.
    Outcome {
        dist: subspace_distance(&eig.truncated(3).basis, &reference.truncated(3).basis)
            .expect("shapes"),
        weight_gappy: w_gappy.0 / w_gappy.1.max(1) as f64,
        weight_complete: w_complete.0 / w_complete.1.max(1) as f64,
    }
}

fn main() {
    println!(
        "Gap-handling ablation ({N_PIXELS} px, {:.0}% gaps on half the stream)\n",
        GAP_FRAC * 100.0
    );

    // Batch reference on complete spectra.
    let gen = GalaxyGenerator::new(N_PIXELS, 0.0);
    let mut rng = StdRng::seed_from_u64(78);
    let reference_data: Vec<Vec<f64>> = (0..3000)
        .map(|_| {
            let mut s = gen.sample(&mut rng);
            unit_norm_masked(&mut s.flux, &[true; N_PIXELS]);
            s.flux
        })
        .collect();
    let reference = batch::batch_pca(&reference_data, P).expect("reference");

    let mut rows = Vec::new();
    for (code, variant) in [
        (0.0, Variant::ZeroFill),
        (1.0, Variant::PatchNoCorrection),
        (2.0, Variant::PatchCorrected),
    ] {
        let o = run(variant, &reference);
        println!(
            "{variant:?}: subspace error {:.4}, mean weight gappy {:.4} vs complete {:.4}",
            o.dist, o.weight_gappy, o.weight_complete
        );
        rows.push(vec![code, o.dist, o.weight_gappy, o.weight_complete]);
    }

    let path = write_csv(
        "ablate_gaps.csv",
        &[
            "variant",
            "subspace_error",
            "weight_gappy",
            "weight_complete",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
    print_table(
        "gap ablation (0 = zero-fill, 1 = patch q=0, 2 = patch q=2)",
        &["variant", "error", "w gappy", "w complete"],
        &rows,
    );

    let zero = &rows[0];
    let plain = &rows[1];
    let corrected = &rows[2];
    assert!(
        corrected[1] < zero[1],
        "patching must beat zero-fill: {} vs {}",
        corrected[1],
        zero[1]
    );
    // §II-D's bias: without the correction, gappy spectra get *larger*
    // weights than complete ones; the correction narrows that gap.
    let bias_plain = plain[2] / plain[3];
    let bias_corrected = corrected[2] / corrected[3];
    assert!(
        (bias_corrected - 1.0).abs() <= (bias_plain - 1.0).abs() + 0.02,
        "q-correction should not worsen the weight bias: {bias_corrected} vs {bias_plain}"
    );
    println!("\nshape check PASSED: patching beats zero-fill; residual correction tames the weight bias.");
}
