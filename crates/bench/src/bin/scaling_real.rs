//! Real-hardware cross-check for Fig. 6: throughput of the *actual*
//! dataflow engine on this machine's cores, for 1..=N parallel PCA
//! engines, fused (single PE "node") vs one-PE-per-operator (threads +
//! channels).
//!
//! The cluster simulator regenerates the paper's 10-node shape; this
//! binary validates the part of that shape a single machine can exhibit:
//! throughput grows with engines until the physical cores saturate, and
//! the channel (unfused) configuration pays a visible per-tuple cost
//! relative to fusion at low engine counts.
//!
//! Output: `target/figures/scaling_real.csv`.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_bench::{print_table, write_csv};
use spca_core::PcaConfig;
use spca_engine::{AppConfig, ParallelPcaApp, SyncStrategy};
use spca_spectra::PlantedSubspace;
use spca_streams::ops::GeneratorSource;
use spca_streams::Engine;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 250;
const P: usize = 5;

fn throughput(n_engines: usize, fuse: bool, measure: Duration) -> f64 {
    let pca = PcaConfig::new(DIM, P).with_memory(5000).with_init_size(30);
    let mut cfg = AppConfig::new(n_engines, pca);
    cfg.fuse = fuse;
    cfg.sync = SyncStrategy::Ring;
    cfg.sync_period = Duration::from_millis(500);
    let w = PlantedSubspace::new(DIM, P, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(7)));
    let source = Box::new(GeneratorSource::new(move |_| {
        Some((w.sample(&mut *rng.lock()), None))
    }));
    let (g, _h) = ParallelPcaApp::build(&cfg, source);
    let running = Engine::start(g);
    // Warm-up, then measure over a window (the paper averages 30 s after
    // 5 min; we scale down) using the shared RateProbe utility.
    std::thread::sleep(measure / 2);
    let names: Vec<String> = running
        .op_snapshots()
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    let probe = spca_streams::metrics::RateProbe::start(
        running.op_snapshots().into_iter().map(|(_, s)| s).collect(),
    );
    std::thread::sleep(measure);
    let now: Vec<_> = running.op_snapshots().into_iter().map(|(_, s)| s).collect();
    let rate = probe.total_rate_in(&now, |i| names[i].starts_with("pca-"));
    running.stop();
    running.join();
    rate
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("real-engine scaling cross-check: d = {DIM}, {cores} cores on this machine\n");
    let counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&c| c <= 2 * cores.max(4))
        .collect();
    let window = Duration::from_millis(900);

    let mut rows = Vec::new();
    for &n in &counts {
        let fused = throughput(n, true, window);
        let unfused = throughput(n, false, window);
        rows.push(vec![n as f64, fused, unfused]);
        println!("  {n:>2} engines: fused {fused:>10.0} t/s   unfused {unfused:>10.0} t/s");
    }
    let path = write_csv(
        "scaling_real.csv",
        &["engines", "fused_tps", "unfused_tps"],
        &rows,
    );
    println!("\nwrote {}", path.display());
    print_table(
        "real engine throughput",
        &["engines", "fused", "unfused"],
        &rows,
    );

    // Shape checks, scaled to the machine: with several physical cores,
    // parallel engines must beat one engine; on a single core no speedup
    // is physically possible, so the check degrades to stability — adding
    // engines must not collapse throughput (the paper's single-node
    // plateau, which is exactly what a core-starved box exhibits).
    let best_one = rows[0][1].max(rows[0][2]);
    let best_many = rows
        .iter()
        .skip(1)
        .map(|r| r[1].max(r[2]))
        .fold(0.0_f64, f64::max);
    let worst_many = rows
        .iter()
        .skip(1)
        .map(|r| r[1].min(r[2]))
        .fold(f64::INFINITY, f64::min);
    if cores >= 3 {
        assert!(
            best_many > 1.4 * best_one,
            "parallel engines should scale past one: {best_many} vs {best_one}"
        );
        println!("\nshape check PASSED: real engine scales with parallel PCA instances.");
    } else {
        assert!(
            worst_many > 0.5 * best_one,
            "over-subscription must plateau, not collapse: {worst_many} vs {best_one}"
        );
        println!(
            "\nshape check PASSED (single-core machine): throughput plateaus instead of \
             scaling — re-run on a multi-core box for the scaling curve."
        );
    }
}
