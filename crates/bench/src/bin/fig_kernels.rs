//! Kernel-dispatch microbenchmark: scalar vs. dispatched (AVX2+FMA when
//! available) timings for `dot`, `axpy` and the GEMM inner block at
//! d ∈ {256, 1000, 4000}.
//!
//! This is the measurement behind the recorded `BENCH_kernels.json`
//! artifact. Both columns are timed inside one process using the backend
//! override, so compiler flags, allocator state and frequency scaling are
//! held as equal as a userspace benchmark can make them. The GEMM cell
//! multiplies a `d × 32` panel by a `32 × 32` block — the tall-times-small
//! shape every consumer in the engine produces (basis panels, Gram
//! accumulation), not a square BLAS-3 stress shape.

use spca_bench::json::{KernelBenchReport, KernelBenchRow};
use spca_bench::print_table;
use spca_linalg::kernels::{self, Backend};
use std::hint::black_box;
use std::time::Instant;

const DIMS: [usize; 3] = [256, 1000, 4000];
const REPS: usize = 25;
const GEMM_K: usize = 32;
const GEMM_W: usize = 32;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Median ns per call of `f`, self-calibrating the inner iteration count
/// so each sample runs ≥ ~1 ms.
fn time_ns(mut f: impl FnMut()) -> f64 {
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t0.elapsed().as_secs_f64() >= 1e-3 || iters >= 1 << 24 {
            break;
        }
        iters *= 4;
    }
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    median(&mut samples)
}

fn fill(n: usize, phase: f64) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.37 + phase).sin()).collect()
}

fn bench_kernel(kernel: &str, d: usize, be: Backend) -> f64 {
    kernels::set_backend_override(Some(be));
    let ns = match kernel {
        "dot" => {
            let a = fill(d, 0.0);
            let b = fill(d, 1.0);
            time_ns(|| {
                black_box(kernels::dot(black_box(&a), black_box(&b)));
            })
        }
        "axpy" => {
            let x = fill(d, 0.0);
            let mut y = fill(d, 1.0);
            time_ns(|| {
                kernels::axpy(black_box(1.0000000001), black_box(&x), black_box(&mut y));
            })
        }
        "gemm" => {
            let a = fill(d * GEMM_K, 0.0);
            let b = fill(GEMM_K * GEMM_W, 1.0);
            let mut out = vec![0.0; d * GEMM_W];
            time_ns(|| {
                out.fill(0.0);
                kernels::gemm_block(d, GEMM_K, GEMM_W, black_box(&a), black_box(&b), &mut out);
                black_box(&out);
            })
        }
        other => unreachable!("unknown kernel {other}"),
    };
    kernels::set_backend_override(None);
    ns
}

fn main() {
    let dispatched = kernels::backend();
    println!(
        "dispatched backend: {} (SPCA_FORCE_SCALAR honored)",
        dispatched.name()
    );

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for kernel in ["dot", "axpy", "gemm"] {
        for d in DIMS {
            let scalar_ns = bench_kernel(kernel, d, Backend::Scalar);
            let dispatched_ns = bench_kernel(kernel, d, dispatched);
            let speedup = scalar_ns / dispatched_ns;
            println!("{kernel:>5} d={d:<5} scalar {scalar_ns:10.1} ns  dispatched {dispatched_ns:10.1} ns  {speedup:5.2}x");
            table.push(vec![d as f64, scalar_ns, dispatched_ns, speedup]);
            rows.push(KernelBenchRow {
                kernel: kernel.to_string(),
                d,
                scalar_ns,
                dispatched_ns,
                speedup,
            });
        }
    }
    print_table(
        "kernel dispatch (scalar vs dispatched, median ns/call)",
        &["d", "scalar_ns", "dispatched_ns", "speedup"],
        &table,
    );

    let report = KernelBenchReport {
        benchmark: format!(
            "kernel dispatch: dot/axpy/gemm at d in {{256, 1000, 4000}}, gemm as \
             (d x {GEMM_K}) * ({GEMM_K} x {GEMM_W}), median of {REPS} samples per cell"
        ),
        machine_note: "single container vCPU, cargo run --release, both columns timed in one \
                       process via the backend override"
            .to_string(),
        backend: dispatched.name().to_string(),
        reps: REPS as u64,
        target: "dot and gemm at d=1000 ≥ 1.5x dispatched over scalar".to_string(),
        results: rows,
    };
    std::fs::write("BENCH_kernels.json", format!("{}\n", report.to_json()))
        .expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
