//! Records `BENCH_serving.json`: the always-on eigensystem-serving
//! performance artifact (schema `serving-v1`).
//!
//! Two measurements over the same synthetic planted-subspace stream:
//!
//! 1. **Baseline ingest** — the parallel PCA app with serving disabled;
//!    median tuples/s over `RUNS` runs.
//! 2. **Ingest under serving load** — the same app publishing
//!    epoch-versioned snapshots, with the HTTP query server up and
//!    `CLIENTS` keep-alive clients hammering `/project` and `/score`
//!    for the whole run. Records sustained QPS, server-side `/project`
//!    latency quantiles (p50/p99/p999), and the ingest-throughput ratio
//!    against the baseline.
//!
//! The schema gate (`check_bench_json`) enforces a fault-free recording
//! (`restarts == pe_restarts == 0`), monotone latency quantiles, and an
//! ingest ratio ≥ 0.9 — waived below 4 cores, where the query clients
//! and the engines contend for the same cores and the ratio measures the
//! scheduler rather than the serving design.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_bench::json::ServingBenchReport;
use spca_core::PcaConfig;
use spca_engine::{
    endpoint_index, AppConfig, EigenQueryHandler, EpochStore, ParallelPcaApp, ServeShared,
    SyncStrategy,
};
use spca_spectra::PlantedSubspace;
use spca_streams::ops::http_server::{HttpServer, ServerConfig};
use spca_streams::ops::GeneratorSource;
use spca_streams::{Engine, Operator, RunReport};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 64;
const P: usize = 4;
const N_TUPLES: u64 = 200_000;
const ENGINES: usize = 2;
const RUNS: usize = 3;
const CLIENTS: usize = 3;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn source() -> Box<dyn Operator> {
    let w = PlantedSubspace::new(DIM, P, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(99)));
    Box::new(
        GeneratorSource::new(move |_| Some((w.sample(&mut *rng.lock()), None)))
            .with_max_tuples(N_TUPLES),
    )
}

fn app_cfg(store: Option<Arc<EpochStore>>) -> AppConfig {
    let pca = PcaConfig::new(DIM, P).with_memory(5000).with_init_size(30);
    let mut cfg = AppConfig::new(ENGINES, pca);
    cfg.sync = SyncStrategy::Ring;
    cfg.sync_period = Duration::from_millis(100);
    cfg.epoch_store = store;
    cfg.publish_every = 64;
    cfg
}

fn ingest_tps(report: &RunReport) -> f64 {
    report.tuples_in_matching("pca-") as f64 / report.elapsed.as_secs_f64().max(1e-9)
}

/// One keep-alive query client: POSTs `body` to `path` in a loop,
/// counting successful (200) responses. Reconnects on any error.
fn client_loop(addr: SocketAddr, path: &str, body: &str, stop: &AtomicBool, ok: &AtomicU64) {
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut buf = vec![0u8; 0];
    'reconnect: while !stop.load(Ordering::Relaxed) {
        let Ok(mut conn) = TcpStream::connect(addr) else {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        conn.set_nodelay(true).ok();
        while !stop.load(Ordering::Relaxed) {
            if conn.write_all(request.as_bytes()).is_err() {
                continue 'reconnect;
            }
            // Read one response: headers, then Content-Length body bytes.
            buf.clear();
            let (head_end, content_length) = loop {
                let mut chunk = [0u8; 4096];
                let n = match conn.read(&mut chunk) {
                    Ok(0) | Err(_) => continue 'reconnect,
                    Ok(n) => n,
                };
                buf.extend_from_slice(&chunk[..n]);
                if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                    let head = String::from_utf8_lossy(&buf[..pos]);
                    let len = head
                        .lines()
                        .find_map(|l| {
                            l.to_ascii_lowercase()
                                .strip_prefix("content-length:")
                                .map(str::trim)
                                .and_then(|v| v.parse::<usize>().ok())
                        })
                        .unwrap_or(0);
                    break (pos + 4, len);
                }
            };
            while buf.len() < head_end + content_length {
                let mut chunk = [0u8; 4096];
                match conn.read(&mut chunk) {
                    Ok(0) | Err(_) => continue 'reconnect,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                }
            }
            if buf.starts_with(b"HTTP/1.1 200") {
                ok.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

struct ServingRun {
    tps: f64,
    report: RunReport,
    requests: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

fn serving_run() -> ServingRun {
    let store = Arc::new(EpochStore::new());
    let shared = Arc::new(ServeShared::new(Arc::clone(&store)));
    let server = {
        let shared = Arc::clone(&shared);
        HttpServer::start("127.0.0.1:0", ServerConfig::default(), move |_| {
            EigenQueryHandler::new(Arc::clone(&shared))
        })
        .expect("bind bench server")
    };
    let addr = server.local_addr();

    let obs: String = (0..DIM)
        .map(|j| format!("{:.4}", (j as f64 * 0.31).cos()))
        .collect::<Vec<_>>()
        .join(",");
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let (stop, ok, obs) = (Arc::clone(&stop), Arc::clone(&ok), obs.clone());
            std::thread::spawn(move || {
                let path = if i % 2 == 0 { "/project" } else { "/score" };
                client_loop(addr, path, &obs, &stop, &ok);
            })
        })
        .collect();

    let (g, _h) = ParallelPcaApp::build(&app_cfg(Some(store)), source());
    let report = Engine::run(g);
    // Snapshot the request count at drain: QPS is measured over the
    // ingest window, not over client shutdown.
    let requests = ok.load(Ordering::Relaxed);
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }
    server.shutdown();

    let hist = shared.histogram(endpoint_index("project").unwrap());
    let q = |p: f64| hist.quantile_ns(p) as f64 / 1000.0;
    ServingRun {
        tps: ingest_tps(&report),
        qps: requests as f64 / report.elapsed.as_secs_f64().max(1e-9),
        requests,
        p50_us: q(0.5),
        p99_us: q(0.99),
        p999_us: q(0.999),
        report,
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut baseline_samples = Vec::with_capacity(RUNS);
    for r in 0..RUNS {
        let (g, _h) = ParallelPcaApp::build(&app_cfg(None), source());
        let tps = ingest_tps(&Engine::run(g));
        eprintln!("baseline run {r}: {tps:.0} tuples/s");
        baseline_samples.push(tps);
    }
    let baseline_tps = median(&mut baseline_samples);

    let mut runs: Vec<ServingRun> = (0..RUNS)
        .map(|r| {
            let run = serving_run();
            eprintln!(
                "serving run {r}: {:.0} tuples/s, {:.0} qps, p50 {:.0}us p99 {:.0}us",
                run.tps, run.qps, run.p50_us, run.p99_us
            );
            run
        })
        .collect();
    runs.sort_by(|a, b| a.tps.partial_cmp(&b.tps).unwrap());
    let run = &runs[runs.len() / 2];
    let ratio = run.tps / baseline_tps;
    eprintln!(
        "ingest ratio: {ratio:.3} ({:.0} / {baseline_tps:.0})",
        run.tps
    );

    let report = ServingBenchReport {
        benchmark: format!(
            "always-on serving: {ENGINES}-engine ingest of {N_TUPLES} planted-subspace \
             tuples (d={DIM}, p={P}, publish every 64) vs the same run with {CLIENTS} \
             keep-alive clients hammering /project and /score; latency quantiles are \
             server-side /project times; medians of {RUNS} runs"
        ),
        machine_note: format!(
            "single container vCPU ({cores} core(s) visible), cargo run --release; \
             the 0.9 ingest-ratio floor is waived below 4 cores — clients and engines \
             contend for the same cores there"
        ),
        cores,
        dim: DIM,
        tuples: N_TUPLES,
        target: "serving costs ingest <=10% (ratio >= 0.9, waived under 4 cores); \
                 fault-free recording; monotone latency quantiles"
            .to_string(),
        restarts: run.report.total_restarts(),
        pe_restarts: run.report.total_pe_restarts(),
        clients: CLIENTS,
        requests: run.requests,
        qps: run.qps,
        p50_us: run.p50_us,
        p99_us: run.p99_us,
        p999_us: run.p999_us,
        baseline_tuples_per_s: baseline_tps,
        serving_tuples_per_s: run.tps,
        ingest_ratio: ratio,
    };
    std::fs::write("BENCH_serving.json", format!("{}\n", report.to_json())).unwrap();
    println!("wrote BENCH_serving.json");
}
