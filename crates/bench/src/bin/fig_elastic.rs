//! Elastic-rescale benchmark behind the recorded `BENCH_elastic.json`
//! artifact (`schema: elastic-v1`).
//!
//! One paced elastic run (1 engine active, 3 provisioned) with two
//! scripted rescales: a scale-out at roughly a quarter of the stream —
//! the joiner bootstrapped from the fleet's merged eigensystem in
//! checkpoint format — and a scale-in at roughly three quarters, where
//! the retiring engine drains and its state folds into the survivor.
//! Both migration latencies are measured around the `ElasticRuntime`
//! calls (bootstrap + membership flip; flip + drain + merge), excluding
//! stream time.
//!
//! A fixed-fleet reference run over the *same seeded observations*
//! provides the consistency figure: the subspace distance between the
//! two final merged eigensystems. Gates (enforced by `from_json`, i.e.
//! by CI's `check_bench_json`): at least one rescale in each direction,
//! zero tuple loss, zero restarts of either kind, consistency within
//! 0.25, and rescale latencies under 1 s on hosts with ≥ 4 cores.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_bench::json::{ElasticBenchReport, ELASTIC_CONSISTENCY_TOL};
use spca_core::metrics::subspace_distance;
use spca_core::{EigenSystem, PcaConfig};
use spca_engine::{AppConfig, ElasticRuntime, ParallelPcaApp, SyncStrategy};
use spca_spectra::PlantedSubspace;
use spca_streams::ops::GeneratorSource;
use spca_streams::{Engine, Operator, RunReport};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 32;
const N_TUPLES: u64 = 200_000;
const MAX_ENGINES: usize = 3;
/// Pacing keeps the stream alive long enough (~2 s) to script both
/// rescales against live traffic; values are seed-determined either way.
const RATE_PER_S: f64 = 100_000.0;

fn pca_cfg() -> PcaConfig {
    // extra = 0: the consistency figure compares the tracked subspace
    // directly; surplus noise directions would dominate the distance.
    PcaConfig::new(DIM, 2)
        .with_memory(500)
        .with_init_size(30)
        .with_extra(0)
}

fn seeded_source(rate: Option<f64>) -> Box<dyn Operator> {
    let w = PlantedSubspace::new(DIM, 2, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(42)));
    let mut src = GeneratorSource::new(move |_| Some((w.sample(&mut *rng.lock()), None)))
        .with_max_tuples(N_TUPLES);
    if let Some(per_sec) = rate {
        src = src.with_rate(per_sec);
    }
    Box::new(src)
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

struct ElasticOutcome {
    report: RunReport,
    merged: EigenSystem,
    scale_out_latency: Duration,
    scale_in_latency: Duration,
    final_engines: usize,
}

fn elastic_run() -> ElasticOutcome {
    let mut cfg = AppConfig::new(1, pca_cfg());
    cfg.sync = SyncStrategy::Ring;
    cfg.sync_period = Duration::from_millis(5);
    cfg.heartbeat_every = 64;
    cfg.liveness_timeout = Duration::from_millis(500);
    cfg.channel_capacity = 8192;
    cfg.max_engines = Some(MAX_ENGINES);
    let (g, h) = ParallelPcaApp::build(&cfg, seeded_source(Some(RATE_PER_S)));
    let rt = ElasticRuntime::new(&h).expect("elastic runtime");
    let running = Engine::start(g);

    // Both rescale points gate on actual stream progress (the source's
    // live tuple counter — per-engine n_obs drifts upward with merges).
    let source_progress = |running: &spca_streams::RunningEngine| {
        running.op_snapshot("source").map_or(0, |s| s.tuples_out)
    };

    // Scale out at ~N/4.
    wait_for("the scale-out point", || {
        source_progress(&running) > N_TUPLES / 4
    });
    let t = Instant::now();
    rt.scale_out().expect("scale out");
    let scale_out_latency = t.elapsed();

    // Scale in at ~3N/4.
    wait_for("the scale-in point", || {
        source_progress(&running) > 3 * N_TUPLES / 4
    });
    let t = Instant::now();
    rt.scale_in().expect("scale in");
    let scale_in_latency = t.elapsed();

    let final_engines = rt.active();
    let report = running.join();
    let merged = rt.merged_active_eigensystem().expect("merged estimate");
    ElasticOutcome {
        report,
        merged,
        scale_out_latency,
        scale_in_latency,
        final_engines,
    }
}

fn reference_run() -> EigenSystem {
    let cfg = AppConfig::new(1, pca_cfg());
    let (g, h) = ParallelPcaApp::build(&cfg, seeded_source(None));
    Engine::run(g);
    let eig = h.engine_states[0]
        .lock()
        .full_eigensystem()
        .expect("reference initialized")
        .clone();
    eig
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("elastic rescale benchmark: d = {DIM}, {N_TUPLES} tuples, {cores} cores");

    let outcome = elastic_run();
    let reference = reference_run();

    let fed = outcome.report.op("source").expect("source op").tuples_out;
    let processed = outcome.report.tuples_in_matching("pca-");
    let consistency = subspace_distance(&outcome.merged.basis, &reference.basis).unwrap();

    println!(
        "scale-out {:.1} ms, scale-in {:.1} ms, consistency {:.4}, {} -> {} tuples",
        outcome.scale_out_latency.as_secs_f64() * 1e3,
        outcome.scale_in_latency.as_secs_f64() * 1e3,
        consistency,
        fed,
        processed
    );

    let report = ElasticBenchReport {
        benchmark: "scripted scale-out at N/4 and scale-in at 3N/4 on a paced planted-subspace \
                    stream, vs a fixed-fleet reference over the same observations"
            .into(),
        machine_note: "single container vCPU, cargo run --release, same build for every column"
            .into(),
        cores,
        dim: DIM,
        tuples: N_TUPLES,
        target: format!(
            "zero tuple loss, fault-free, consistency <= {ELASTIC_CONSISTENCY_TOL}, one rescale \
             each direction"
        ),
        restarts: outcome.report.total_restarts(),
        pe_restarts: outcome.report.total_pe_restarts(),
        scale_outs: outcome.report.total_scale_outs(),
        scale_ins: outcome.report.total_scale_ins(),
        tuple_loss: fed.saturating_sub(processed),
        scale_out_latency_ms: outcome.scale_out_latency.as_secs_f64() * 1e3,
        scale_in_latency_ms: outcome.scale_in_latency.as_secs_f64() * 1e3,
        consistency,
        max_engines: MAX_ENGINES,
        final_engines: outcome.final_engines,
    };

    // Self-gate before writing: a recording that would fail CI aborts here.
    let text = format!("{}\n", report.to_json());
    ElasticBenchReport::parse(&text).expect("recorded artifact fails its own schema gates");
    std::fs::write("BENCH_elastic.json", text).expect("write BENCH_elastic.json");
    println!("wrote BENCH_elastic.json");
}
