//! Ablation: the synchronization gate and strategy (§II-C).
//!
//! The paper gates state exchange on `obs_since_sync > 1.5·N` — "a good
//! compromise between the speed and consistency of eigensystems" — and
//! defaults to the ring of Fig. 3. This ablation quantifies both choices
//! on a drifting stream (where synchronization actually matters):
//!
//! * gate multiplier ∈ {0 (always share), 1.0, 1.5, 3.0, ∞ (never)};
//! * strategy ∈ {ring, broadcast, groups(2)};
//!
//! measuring (a) cross-engine consistency (max pairwise subspace distance
//! at end of run), (b) accuracy of the merged estimate vs the planted
//! basis, and (c) the number of state exchanges (network cost proxy).
//!
//! Output: `target/figures/ablate_sync.csv`.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_bench::{print_table, write_csv};
use spca_core::metrics::subspace_distance;
use spca_core::PcaConfig;
use spca_engine::{AppConfig, ParallelPcaApp, SyncStrategy};
use spca_spectra::PlantedSubspace;
use spca_streams::ops::GeneratorSource;
use spca_streams::Engine;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 48;
const RANK: usize = 3;
const N_ENGINES: usize = 4;
const N_TUPLES: u64 = 24_000;
const MEMORY: usize = 1000;

struct Outcome {
    consistency: f64,
    accuracy: f64,
    exchanges: u64,
}

fn run(strategy: SyncStrategy, gate_mult: Option<f64>) -> Outcome {
    run_with_divergence(strategy, gate_mult, None)
}

fn run_with_divergence(
    strategy: SyncStrategy,
    gate_mult: Option<f64>,
    divergence: Option<f64>,
) -> Outcome {
    let pca = PcaConfig::new(DIM, RANK)
        .with_memory(MEMORY)
        .with_init_size(40);
    let mut cfg = AppConfig::new(N_ENGINES, pca);
    cfg.sync = strategy;
    cfg.divergence_gate = divergence;
    cfg.sync_period = Duration::from_millis(5);
    let truth = PlantedSubspace::new(DIM, RANK, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(11)));
    let source = Box::new(
        GeneratorSource::new(move |_| Some((truth.sample(&mut *rng.lock()), None)))
            .with_max_tuples(N_TUPLES),
    );
    let (g, h) = ParallelPcaApp::build_with_gate(
        &cfg,
        source,
        gate_mult.map(|m| (m * MEMORY as f64) as u64),
    );
    Engine::run(g);
    let truth = PlantedSubspace::new(DIM, RANK, 0.05);

    // Consistency: max pairwise subspace distance between engines' finals.
    let finals: Vec<_> = (0..N_ENGINES)
        .filter_map(|e| h.hub.engine_state(e))
        .map(|s| s.truncated(RANK))
        .collect();
    let mut consistency = 0.0_f64;
    for i in 0..finals.len() {
        for j in (i + 1)..finals.len() {
            let d = subspace_distance(&finals[i].basis, &finals[j].basis).expect("shapes");
            consistency = consistency.max(d);
        }
    }
    let merged = h.hub.merged_estimate().expect("engines reported");
    let accuracy = subspace_distance(&merged.truncated(RANK).basis, truth.basis()).expect("shapes");
    // Exchanges: actual eigensystem shares, as reported in the engines'
    // final snapshots (commands blocked by the gate don't count).
    let (exchanges, _merges) = h.hub.sync_totals();
    Outcome {
        consistency,
        accuracy,
        exchanges,
    }
}

fn main() {
    println!("Sync ablation: gate multiplier × strategy ({N_ENGINES} engines, N = {MEMORY})\n");

    let mut rows = Vec::new();
    println!("gate sweep (ring strategy):");
    for (label, mult) in [
        ("always (0)", Some(0.0)),
        ("1.0 N", Some(1.0)),
        ("1.5 N (paper)", Some(1.5)),
        ("3.0 N", Some(3.0)),
        ("never", None::<f64>),
    ] {
        let strategy = if mult.is_none() {
            SyncStrategy::None
        } else {
            SyncStrategy::Ring
        };
        let o = run(strategy, mult);
        println!(
            "  {label:<14} consistency {:.4}  accuracy {:.4}  control msgs {}",
            o.consistency, o.accuracy, o.exchanges
        );
        rows.push(vec![
            mult.unwrap_or(f64::INFINITY),
            o.consistency,
            o.accuracy,
            o.exchanges as f64,
        ]);
    }

    println!("\ndata-driven divergence gate (ring, 1.5·N):");
    for (code, div) in [(0.0, None), (0.02, Some(0.02)), (0.2, Some(0.2))] {
        let o = run_with_divergence(SyncStrategy::Ring, Some(1.5), div);
        println!(
            "  divergence {:>5}: consistency {:.4}  accuracy {:.4}  shares {}",
            code, o.consistency, o.accuracy, o.exchanges
        );
        rows.push(vec![
            100.0 + code,
            o.consistency,
            o.accuracy,
            o.exchanges as f64,
        ]);
    }

    println!("\nstrategy sweep (1.5·N gate):");
    for (code, strategy) in [
        (1.0, SyncStrategy::Ring),
        (2.0, SyncStrategy::Broadcast),
        (3.0, SyncStrategy::Groups(2)),
    ] {
        let o = run(strategy, Some(1.5));
        println!(
            "  {strategy:?}: consistency {:.4}  accuracy {:.4}  control msgs {}",
            o.consistency, o.accuracy, o.exchanges
        );
        rows.push(vec![-code, o.consistency, o.accuracy, o.exchanges as f64]);
    }

    let path = write_csv(
        "ablate_sync.csv",
        &[
            "gate_or_strategy",
            "consistency",
            "accuracy",
            "control_msgs",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
    print_table(
        "sync ablation (negative first column = strategy sweep codes)",
        &["gate/strategy", "consistency", "accuracy", "ctl msgs"],
        &rows,
    );

    // The paper's claim: syncing beats never-syncing on consistency, and
    // the 1.5·N gate costs far fewer messages than always-share while
    // keeping consistency close.
    let never = &rows[4];
    let paper = &rows[2];
    let always = &rows[0];
    assert!(
        paper[1] <= never[1] + 0.05,
        "1.5N gate should be at least as consistent as never syncing"
    );
    assert!(
        paper[3] < always[3],
        "1.5N gate must exchange fewer messages than always-share"
    );
    println!(
        "\nshape check PASSED: the 1.5·N gate trades little consistency for far less traffic."
    );
}
