//! Figure 1: eigenvalue traces of classic vs robust streaming PCA on
//! random test data with artificially generated outliers.
//!
//! The paper's plot shows the classic eigensystem failing to converge —
//! each outlier "takes over the top eigenvector creating a rainbow effect"
//! — while the robust variant converges quickly and flags the outliers
//! (black points on top of the plot).
//!
//! This binary regenerates both series (eigenvalue trajectories sampled
//! every 50 observations, plus the outlier-flag track) and prints summary
//! statistics that make the contrast quantitative: trace variance of the
//! top eigenvalue after burn-in, final subspace error, detection counts.
//!
//! Output: `target/figures/fig1_classic.csv`, `fig1_robust.csv`,
//! `fig1_flags.csv`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_bench::{print_table, write_csv};
use spca_core::metrics::{subspace_distance, Trace};
use spca_core::{PcaConfig, RhoKind, RobustPca};
use spca_spectra::outliers::{OutlierInjector, OutlierKind};
use spca_spectra::PlantedSubspace;

const DIM: usize = 100;
const RANK: usize = 5;
const N: usize = 12_000;
const OUTLIER_RATE: f64 = 0.05;

fn run(rho: RhoKind) -> (Trace, Vec<(u64, bool)>, f64, u64) {
    let truth = PlantedSubspace::new(DIM, RANK, 0.05);
    let injector = OutlierInjector::new(OUTLIER_RATE).only(OutlierKind::CosmicRay);
    let cfg = PcaConfig::new(DIM, RANK)
        .with_memory(2000)
        .with_init_size(60)
        .with_rho(rho);
    let mut pca = RobustPca::new(cfg);
    let mut rng = StdRng::seed_from_u64(20120101);
    let mut trace = Trace::new(50);
    let mut flags = Vec::new();
    let mut n_flagged = 0;
    for i in 0..N {
        let mut x = truth.sample(&mut rng);
        let contaminated = injector.maybe_contaminate(&mut rng, &mut x).is_some();
        let out = pca.update(&x).expect("finite");
        if out.outlier {
            n_flagged += 1;
        }
        flags.push((i as u64, contaminated && out.outlier));
        trace.offer(i as u64, || {
            if pca.is_initialized() {
                pca.eigensystem().values.clone()
            } else {
                vec![0.0; RANK]
            }
        });
    }
    let dist = subspace_distance(&pca.eigensystem().basis, truth.basis()).expect("shapes");
    (trace, flags, dist, n_flagged)
}

/// Variance of the top-eigenvalue series after burn-in, normalized by its
/// mean — the quantitative form of "does the eigensystem converge".
fn trace_instability(trace: &Trace) -> f64 {
    let series: Vec<f64> = trace
        .series(0)
        .into_iter()
        .filter(|(n, _)| *n > (N / 3) as u64)
        .map(|(_, v)| v)
        .collect();
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let var = series.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / series.len() as f64;
    var.sqrt() / mean.max(1e-12)
}

fn main() {
    println!("Fig. 1 reproduction: classic vs robust eigenvalue traces");
    println!(
        "dim {DIM}, rank {RANK}, {N} observations, {:.0}% spike outliers\n",
        OUTLIER_RATE * 100.0
    );

    let (classic_trace, _, classic_dist, classic_flags) = run(RhoKind::Classical);
    let (robust_trace, robust_flags, robust_dist, n_flagged) = run(RhoKind::Bisquare(9.0));

    for (name, trace) in [
        ("fig1_classic.csv", &classic_trace),
        ("fig1_robust.csv", &robust_trace),
    ] {
        let rows: Vec<Vec<f64>> = trace
            .samples
            .iter()
            .map(|(n, vals)| {
                let mut row = vec![*n as f64];
                row.extend(vals.iter());
                row
            })
            .collect();
        let path = write_csv(name, &["n_obs", "l1", "l2", "l3", "l4", "l5"], &rows);
        println!("wrote {}", path.display());
    }
    let flag_rows: Vec<Vec<f64>> = robust_flags
        .iter()
        .filter(|(_, f)| *f)
        .map(|(n, _)| vec![*n as f64, 1.0])
        .collect();
    let path = write_csv("fig1_flags.csv", &["n_obs", "flagged"], &flag_rows);
    println!("wrote {}", path.display());

    let classic_inst = trace_instability(&classic_trace);
    let robust_inst = trace_instability(&robust_trace);

    print_table(
        "Fig. 1 summary (paper: classic fails to converge, robust converges & flags outliers)",
        &["metric", "classic", "robust"],
        &[
            vec![1.0, classic_inst, robust_inst],
            vec![2.0, classic_dist, robust_dist],
            vec![3.0, classic_flags as f64, n_flagged as f64],
        ],
    );
    println!("  row 1: top-eigenvalue instability (σ/µ after burn-in)");
    println!("  row 2: final subspace error vs planted basis");
    println!("  row 3: observations flagged as outliers");

    assert!(
        robust_inst < classic_inst,
        "robust trace should be steadier: {robust_inst} vs {classic_inst}"
    );
    assert!(
        robust_dist < classic_dist,
        "robust should end closer to truth"
    );
    println!("\nshape check PASSED: robust converges, classic is captured by outliers.");
}
