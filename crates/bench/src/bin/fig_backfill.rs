//! Records `BENCH_backfill.json`: the partitioned-backfill performance
//! artifact.
//!
//! Three measurements over one synthetic corpus:
//!
//! 1. **Scaling sweep** — cold backfill wall time at 1/2/4/8 workers
//!    (fresh state store each run, median of `RUNS`).
//! 2. **Cold vs warm** — the same backfill against an empty store and
//!    against a fully-populated one; the warm run must be all cache hits.
//! 3. **Incrementality** — a by-file corpus gains one file; the re-run
//!    must recompute exactly that partition.
//!
//! `restarts`/`pe_restarts` are recorded as literal zeros: backfill runs
//! no streaming engine and no fault machinery, and the schema gate
//! (`check_bench_json`) rejects anything else.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_bench::json::{BackfillBenchReport, BackfillScalingRow};
use spca_core::PcaConfig;
use spca_engine::{backfill, partition_csv_files, partition_csv_rows, BackfillConfig};
use spca_spectra::{io, PlantedSubspace};
use std::path::{Path, PathBuf};

const D: usize = 64;
const P: usize = 4;
const ROWS: usize = 6000;
const PARTS: usize = 8;
const RUNS: usize = 5;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Worker count the cold/warm comparison is recorded at.
const REF_WORKERS: usize = 4;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn pca_cfg() -> PcaConfig {
    PcaConfig::new(D, P).with_memory(5000).with_init_size(30)
}

/// One backfill run; returns (wall seconds, cache hits, computed).
fn run(
    workers: usize,
    store: &Path,
    parts: &[spca_streams::Partition<spca_engine::CorpusSlice>],
) -> (f64, u64, u64) {
    let cfg = BackfillConfig {
        pca: pca_cfg(),
        workers,
        state_dir: store.to_path_buf(),
    };
    let outcome = backfill(&cfg, parts).expect("backfill");
    (
        outcome.stats.wall.as_secs_f64(),
        outcome.stats.cache_hits as u64,
        outcome.stats.computed as u64,
    )
}

fn fresh(dir: &Path) -> PathBuf {
    std::fs::remove_dir_all(dir).ok();
    std::fs::create_dir_all(dir).unwrap();
    dir.to_path_buf()
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let work = std::env::temp_dir().join(format!("spca-fig-backfill-{}", std::process::id()));
    fresh(&work);

    // One corpus for the row-partitioned measurements.
    let planted = PlantedSubspace::new(D, P, 0.05);
    let mut rng = StdRng::seed_from_u64(4242);
    let data = planted.sample_batch(&mut rng, ROWS);
    let csv = work.join("corpus.csv");
    io::write_csv(&csv, &data).unwrap();
    let partitions = partition_csv_rows(&csv, PARTS).unwrap();

    // 1. Cold scaling sweep: a fresh store every run, so every run
    //    computes all partitions.
    let mut walls = Vec::new();
    for &w in &WORKER_SWEEP {
        let mut samples = Vec::with_capacity(RUNS);
        for r in 0..RUNS {
            let store = fresh(&work.join(format!("store-w{w}-r{r}")));
            let (wall, hits, computed) = run(w, &store, &partitions);
            assert_eq!(hits, 0, "cold run must not hit");
            assert_eq!(computed, PARTS as u64);
            samples.push(wall);
        }
        let wall = median(&mut samples);
        eprintln!("workers {w}: cold median {wall:.3}s");
        walls.push((w, wall));
    }
    let wall_1 = walls.iter().find(|(w, _)| *w == 1).unwrap().1;
    let scaling: Vec<BackfillScalingRow> = walls
        .iter()
        .map(|&(workers, wall_s)| BackfillScalingRow {
            workers,
            wall_s,
            speedup: wall_1 / wall_s,
        })
        .collect();

    // 2. Cold vs warm at the reference worker count: populate once, then
    //    the warm medians come from all-cache-hit re-runs.
    let store = fresh(&work.join("store-warm"));
    let mut cold_samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        fresh(&store);
        let (wall, _, _) = run(REF_WORKERS, &store, &partitions);
        cold_samples.push(wall);
    }
    let cold_wall_s = median(&mut cold_samples);
    let mut warm_samples = Vec::with_capacity(RUNS);
    let mut warm_cache_hits = 0;
    for _ in 0..RUNS {
        let (wall, hits, computed) = run(REF_WORKERS, &store, &partitions);
        assert_eq!(computed, 0, "warm run recomputed {computed} partitions");
        warm_cache_hits = hits;
        warm_samples.push(wall);
    }
    let warm_wall_s = median(&mut warm_samples);
    eprintln!(
        "cold {cold_wall_s:.3}s, warm {warm_wall_s:.5}s ({:.0}x)",
        cold_wall_s / warm_wall_s
    );

    // 3. Incrementality on a by-file corpus: 8 day files, then one more.
    let days = work.join("days");
    fresh(&days);
    let day_rows = ROWS / PARTS;
    let extra = planted.sample_batch(&mut rng, day_rows);
    for (i, chunk) in data.chunks(day_rows).enumerate() {
        io::write_csv(days.join(format!("day{i}.csv")), chunk).unwrap();
    }
    let day_files =
        |n: usize| -> Vec<PathBuf> { (0..n).map(|i| days.join(format!("day{i}.csv"))).collect() };
    let inc_store = fresh(&work.join("store-inc"));
    run(
        REF_WORKERS,
        &inc_store,
        &partition_csv_files(&day_files(PARTS)).unwrap(),
    );
    io::write_csv(days.join(format!("day{PARTS}.csv")), &extra).unwrap();
    let (_, inc_hits, inc_computed) = run(
        REF_WORKERS,
        &inc_store,
        &partition_csv_files(&day_files(PARTS + 1)).unwrap(),
    );
    eprintln!("incremental: +1 file -> {inc_computed} computed, {inc_hits} hits");

    let report = BackfillBenchReport {
        benchmark: format!(
            "partitioned backfill: {ROWS} rows x d={D}, {PARTS} row-range partitions; \
             cold scaling at 1/2/4/8 workers, cold-vs-warm store at {REF_WORKERS} workers, \
             +1-file incrementality; medians of {RUNS} runs"
        ),
        machine_note: format!(
            "single container vCPU ({cores} core(s) visible), cargo run --release; \
             the 2.5x scaling floor is waived below 4 cores — thread-level speedup \
             is unmeasurable without physical parallelism"
        ),
        cores,
        partitions: PARTS as u64,
        rows: ROWS as u64,
        dim: D,
        target: ">=2.5x cold speedup at 4 workers (waived under 4 cores); warm store >=10x \
                 faster than cold; adding one partition recomputes exactly one"
            .to_string(),
        restarts: 0,
        pe_restarts: 0,
        scaling,
        cold_wall_s,
        warm_wall_s,
        warm_speedup: cold_wall_s / warm_wall_s,
        warm_cache_hits,
        incremental_added: 1,
        incremental_recomputed: inc_computed,
    };
    std::fs::write("BENCH_backfill.json", format!("{}\n", report.to_json())).unwrap();
    println!("wrote BENCH_backfill.json");
    std::fs::remove_dir_all(&work).ok();
}
