//! Wire-transport benchmark behind the recorded `BENCH_net.json`
//! artifact (`schema: net-v1`). Four measurements:
//!
//! 1. **Codec vs CSV.** Encode + decode round trips of d = 1000
//!    observation frames through the columnar binary codec, against
//!    formatting + parsing the same observations as CSV text — the wire
//!    representation the codec replaced. Gate: ≥ 5× tuples/s.
//! 2. **Steady-state allocations.** The codec stretch runs under a
//!    thread-filtered counting allocator (same pattern as
//!    `crates/streams/tests/codec_alloc.rs`). Gate: exactly 0.
//! 3. **Loopback distributed ratio.** The same corpus through
//!    `run_local` (one process, in-memory channels) and through a real
//!    coordinator + 2 worker *processes* on loopback TCP. Gate: ≥ 0.5×,
//!    waived below 4 cores where two processes time-slice one core. The
//!    two runs must also produce bit-identical eigensystem snapshots —
//!    the bench aborts otherwise.
//! 4. **Per-message overhead.** Half the median round trip of a
//!    64-byte message on loopback TCP with `TCP_NODELAY`: the measured
//!    calibration constant for the cluster cost model's
//!    `network_delay_us` (the paper's 2012 cluster is modeled at
//!    hundreds of µs; loopback shows today's floor).
//!
//! Re-executes itself as `fig_net worker --coordinator A --index N
//! --data D` for the worker processes — the same argument shape the
//! coordinator's respawn path uses.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_bench::json::NetBenchReport;
use spca_bench::print_table;
use spca_engine::{run_coordinator, run_local, DistSpec};
use spca_spectra::PlantedSubspace;
use spca_streams::ops::CsvFileSource;
use spca_streams::{
    decode_frame, encode_frame, ColumnarFrame, DataTuple, Tuple, DEFAULT_BATCH_SIZE,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

// --- thread-filtered counting allocator (codec steady-state gate) -------

struct ThreadFilteredAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static TRACKED: Cell<bool> = const { Cell::new(false) };
}

fn count_if_tracked() {
    if TRACKED.try_with(Cell::get).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for ThreadFilteredAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracked();
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_if_tracked();
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracked();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: ThreadFilteredAlloc = ThreadFilteredAlloc;

// --- codec microbenchmark ----------------------------------------------

const DIM: usize = 1000;
const BATCH: usize = 64;
const CODEC_REPS: usize = 200;
const CSV_REPS: usize = 20;

/// A frame-sized batch with a gap mask on every 8th tuple, payloads from
/// a planted subspace so the CSV text has realistic digit counts.
fn sample_batch() -> Vec<Tuple> {
    let w = PlantedSubspace::new(DIM, 4, 0.05);
    let mut rng = StdRng::seed_from_u64(17);
    (0..BATCH)
        .map(|i| {
            let values = w.sample(&mut rng);
            let d = if i % 8 == 0 {
                let mask: Vec<bool> = (0..DIM).map(|j| (i + j) % 11 != 0).collect();
                DataTuple::masked(i as u64, values, mask)
            } else {
                DataTuple::new(i as u64, values)
            };
            Tuple::Data(d)
        })
        .collect()
}

struct CodecNumbers {
    encode_gbps: f64,
    decode_gbps: f64,
    roundtrip_tuples_per_s: f64,
    steady_allocs: u64,
    frame_bytes_per_tuple: f64,
}

fn bench_codec(tuples: &[Tuple]) -> CodecNumbers {
    let mut buf = Vec::new();
    let mut cols = ColumnarFrame::default();
    // Warm-up grows both buffers to working size.
    for _ in 0..8 {
        encode_frame(tuples, &mut buf).expect("encode");
        decode_frame(&buf, &mut cols).expect("decode");
    }
    let frame_bytes = buf.len();

    let t0 = Instant::now();
    for _ in 0..CODEC_REPS {
        encode_frame(tuples, &mut buf).expect("encode");
    }
    let t_enc = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..CODEC_REPS {
        decode_frame(&buf, &mut cols).expect("decode");
    }
    let t_dec = t0.elapsed().as_secs_f64();

    // Round-trip stretch doubles as the allocation gate.
    TRACKED.with(|t| t.set(true));
    ALLOCS.store(0, Ordering::SeqCst);
    let t0 = Instant::now();
    for _ in 0..CODEC_REPS {
        encode_frame(tuples, &mut buf).expect("encode");
        decode_frame(&buf, &mut cols).expect("decode");
    }
    let t_rt = t0.elapsed().as_secs_f64();
    let steady_allocs = ALLOCS.load(Ordering::SeqCst) as u64;
    TRACKED.with(|t| t.set(false));

    let total_bytes = (CODEC_REPS * frame_bytes) as f64;
    CodecNumbers {
        encode_gbps: total_bytes / t_enc / 1e9,
        decode_gbps: total_bytes / t_dec / 1e9,
        roundtrip_tuples_per_s: (CODEC_REPS * BATCH) as f64 / t_rt,
        steady_allocs,
        frame_bytes_per_tuple: frame_bytes as f64 / BATCH as f64,
    }
}

/// The wire path the codec replaced: full-precision CSV text, one
/// observation per line, `nan` marking gaps, parsed back exactly the way
/// `CsvFileSource` parses its input.
fn bench_csv(tuples: &[Tuple]) -> f64 {
    let mut text = String::new();
    let mut values: Vec<f64> = Vec::new();
    let mut mask: Vec<bool> = Vec::new();
    let mut sink = 0usize;
    // Warm-up sizes the text buffer.
    for rep in 0..CSV_REPS + 2 {
        let timed = rep == 2;
        let t0 = Instant::now();
        for _ in 0..if timed { CSV_REPS } else { 1 } {
            text.clear();
            for t in tuples {
                let Tuple::Data(d) = t else { unreachable!() };
                for (j, v) in d.values.iter().enumerate() {
                    if j > 0 {
                        text.push(',');
                    }
                    let present = d.mask.as_ref().is_none_or(|m| m[j]);
                    if present {
                        write!(text, "{v}").expect("format");
                    } else {
                        text.push_str("nan");
                    }
                }
                text.push('\n');
            }
            for line in text.lines() {
                values.clear();
                mask.clear();
                let mut any_missing = false;
                for field in line.trim().split(',') {
                    match field.trim().parse::<f64>() {
                        Ok(v) if v.is_finite() => {
                            values.push(v);
                            mask.push(true);
                        }
                        _ => {
                            values.push(0.0);
                            mask.push(false);
                            any_missing = true;
                        }
                    }
                }
                sink += values.len() + any_missing as usize;
            }
        }
        if timed {
            let dt = t0.elapsed().as_secs_f64();
            assert!(sink > 0);
            return (CSV_REPS * BATCH) as f64 / dt;
        }
    }
    unreachable!()
}

// --- per-message overhead ----------------------------------------------

const PING_MSG: usize = 64;
const PINGS: usize = 2000;

/// Half the median loopback round trip of a small message: what one
/// frame send fundamentally costs before any payload bytes.
fn bench_per_message_overhead() -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
    let addr = listener.local_addr().expect("echo addr");
    let echo = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        s.set_nodelay(true).ok();
        let mut buf = [0u8; PING_MSG];
        while s.read_exact(&mut buf).is_ok() {
            if s.write_all(&buf).is_err() {
                break;
            }
        }
    });

    let mut s = TcpStream::connect(addr).expect("connect echo");
    s.set_nodelay(true).ok();
    let msg = [0x5au8; PING_MSG];
    let mut buf = [0u8; PING_MSG];
    let mut rtts_us = Vec::with_capacity(PINGS);
    for i in 0..PINGS + 50 {
        let t0 = Instant::now();
        s.write_all(&msg).expect("ping");
        s.read_exact(&mut buf).expect("pong");
        if i >= 50 {
            rtts_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    drop(s);
    echo.join().expect("echo thread");
    rtts_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    rtts_us[rtts_us.len() / 2] / 2.0
}

// --- loopback distributed vs in-process --------------------------------

const ROWS: u64 = 30_000;
const CORPUS_DIM: usize = 48;

fn spec(snapshots: &Path) -> DistSpec {
    let nowhere: SocketAddr = "127.0.0.1:0".parse().expect("addr");
    DistSpec {
        n_engines: 2,
        n_workers: 2,
        dim: CORPUS_DIM,
        components: 4,
        memory: 5000,
        batch: DEFAULT_BATCH_SIZE,
        capacity: 1 << 20,
        snapshot_every: 0,
        snapshots: snapshots.to_path_buf(),
        recovery: None,
        coord_data: nowhere,
        worker_data: vec![nowhere; 2],
    }
}

fn write_corpus(path: &Path) {
    let w = PlantedSubspace::new(CORPUS_DIM, 4, 0.05);
    let mut rng = StdRng::seed_from_u64(7);
    let mut text = String::new();
    for _ in 0..ROWS {
        let row = w.sample(&mut rng);
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                text.push(',');
            }
            write!(text, "{v:.6}").expect("format");
        }
        text.push('\n');
    }
    std::fs::write(path, text).expect("write corpus");
}

struct DistNumbers {
    local_tuples_per_s: f64,
    dist_tuples_per_s: f64,
    restarts: u64,
}

fn bench_distributed(tmp: &Path) -> DistNumbers {
    let corpus = tmp.join("corpus.csv");
    write_corpus(&corpus);
    let snap_local = tmp.join("snap_local");
    let snap_dist = tmp.join("snap_dist");
    std::fs::create_dir_all(&snap_local).expect("mkdir");
    std::fs::create_dir_all(&snap_dist).expect("mkdir");

    let t0 = Instant::now();
    let local = run_local(&spec(&snap_local), Box::new(CsvFileSource::new(&corpus)));
    let t_local = t0.elapsed().as_secs_f64();
    assert_eq!(
        local.op("split").map(|o| o.tuples_in),
        Some(ROWS),
        "local run did not ingest the corpus"
    );

    // Reserve a control port, release it, and race to rebind: the window
    // is microseconds and the workers retry their dial for 30 s anyway.
    let ctl: SocketAddr = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe port");
        probe.local_addr().expect("probe addr")
    };
    let exe = std::env::current_exe().expect("current_exe");
    let mut workers: Vec<_> = (0..2)
        .map(|i| {
            Command::new(&exe)
                .args([
                    "worker",
                    "--coordinator",
                    &ctl.to_string(),
                    "--index",
                    &i.to_string(),
                    "--data",
                    "127.0.0.1:0",
                ])
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn worker")
        })
        .collect();

    let t0 = Instant::now();
    let coord = run_coordinator(
        ctl,
        "127.0.0.1:0".parse().expect("addr"),
        corpus,
        spec(&snap_dist),
    )
    .expect("coordinator");
    let t_dist = t0.elapsed().as_secs_f64();
    for w in &mut workers {
        w.wait().expect("worker exit");
    }
    assert_eq!(
        coord.report.op("split").map(|o| o.tuples_in),
        Some(ROWS),
        "distributed run did not ingest the corpus"
    );

    // Correctness backstop: the two runs must agree bit-for-bit.
    for k in 0..2 {
        let name = format!("engine{k}_latest.snapshot");
        let a = std::fs::read(snap_local.join(&name)).expect("local snapshot");
        let b = std::fs::read(snap_dist.join(&name)).expect("dist snapshot");
        assert_eq!(a, b, "{name}: distributed run diverged from in-process");
    }

    DistNumbers {
        local_tuples_per_s: ROWS as f64 / t_local,
        dist_tuples_per_s: ROWS as f64 / t_dist,
        restarts: local.total_restarts() + coord.report.total_restarts() + coord.respawns as u64,
    }
}

// --- worker re-exec ----------------------------------------------------

fn worker_main(args: &[String]) {
    let get = |flag: &str| -> &str {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .unwrap_or_else(|| panic!("fig_net worker: missing {flag}"))
    };
    let coordinator: SocketAddr = get("--coordinator").parse().expect("--coordinator");
    let index: usize = get("--index").parse().expect("--index");
    let data: SocketAddr = get("--data").parse().expect("--data");
    spca_engine::run_worker(coordinator, index, data).expect("worker run");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).is_some_and(|a| a == "worker") {
        worker_main(&args[2..]);
        return;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let tuples = sample_batch();

    println!("codec microbenchmark (d = {DIM}, batch = {BATCH}, {CODEC_REPS} reps)...");
    let codec = bench_codec(&tuples);
    let csv_tuples_per_s = bench_csv(&tuples);
    let codec_vs_csv = codec.roundtrip_tuples_per_s / csv_tuples_per_s;

    println!("loopback per-message overhead ({PINGS} pings)...");
    let per_message_overhead_us = bench_per_message_overhead();

    println!("distributed loopback run ({ROWS} rows, d = {CORPUS_DIM}, 2 workers)...");
    let tmp = std::env::temp_dir().join(format!("spca_fig_net_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("mkdir tmp");
    let dist = bench_distributed(&tmp);
    std::fs::remove_dir_all(&tmp).ok();
    let dist_ratio = dist.dist_tuples_per_s / dist.local_tuples_per_s;

    let header = [
        "codec_enc_gbps",
        "codec_dec_gbps",
        "codec_vs_csv",
        "dist_ratio",
        "msg_overhead_us",
    ];
    let rows = vec![vec![
        codec.encode_gbps,
        codec.decode_gbps,
        codec_vs_csv,
        dist_ratio,
        per_message_overhead_us,
    ]];
    print_table("wire transport", &header, &rows);

    let report = NetBenchReport {
        benchmark: format!(
            "wire transport: codec round trip vs CSV text at d = {DIM} ({CODEC_REPS} reps of \
             {BATCH}-tuple frames), 2-process loopback coordinator/worker run vs in-process \
             baseline ({ROWS} rows at d = {CORPUS_DIM}, bit-identical snapshots asserted), \
             loopback TCP_NODELAY half-round-trip as the per-message cost-model constant"
        ),
        machine_note: "single container vCPU, cargo run --release, same build for every column"
            .to_string(),
        cores,
        dim: DIM,
        batch: BATCH,
        tuples: (CODEC_REPS * BATCH) as u64,
        target: format!(
            "codec >= 5x CSV at d = {DIM}, zero steady-state allocs, loopback 2-process >= \
             0.5x in-process (waived under 4 cores)"
        ),
        restarts: dist.restarts,
        codec_encode_gbps: codec.encode_gbps,
        codec_decode_gbps: codec.decode_gbps,
        codec_roundtrip_tuples_per_s: codec.roundtrip_tuples_per_s,
        csv_roundtrip_tuples_per_s: csv_tuples_per_s,
        codec_vs_csv,
        codec_steady_allocs: codec.steady_allocs,
        frame_bytes_per_tuple: codec.frame_bytes_per_tuple,
        local_tuples_per_s: dist.local_tuples_per_s,
        dist_tuples_per_s: dist.dist_tuples_per_s,
        dist_ratio,
        per_message_overhead_us,
    };
    std::fs::write("BENCH_net.json", format!("{}\n", report.to_json()))
        .expect("write BENCH_net.json");
    println!("wrote BENCH_net.json");
    println!(
        "codec {:.2}x CSV ({:.0} vs {:.0} tuples/s), {} steady-state allocs, dist ratio \
         {:.2} on {} core(s), {:.0} us/message",
        codec_vs_csv,
        codec.roundtrip_tuples_per_s,
        csv_tuples_per_s,
        codec.steady_allocs,
        dist_ratio,
        cores,
        per_message_overhead_us
    );
}
