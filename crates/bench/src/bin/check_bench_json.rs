//! CI gate for recorded benchmark artifacts: parses `BENCH_engine.json`
//! (or the paths given as arguments) against the schema in
//! [`spca_bench::json`] and exits nonzero on any malformed file, so a
//! hand-edited or truncated artifact cannot land silently.

use spca_bench::json::EngineBenchReport;
use std::process::ExitCode;

fn check(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    let report = EngineBenchReport::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: ok ({} cells, {} tuples/run, batch {})",
        report.results.len(),
        report.tuples,
        report.batch
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<&str> = if args.is_empty() {
        vec!["BENCH_engine.json"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let mut failed = false;
    for path in paths {
        if let Err(e) = check(path) {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
