//! CI gate for recorded benchmark artifacts: parses `BENCH_engine.json`
//! and `BENCH_kernels.json` (or the paths given as arguments) against the
//! schemas in [`spca_bench::json`] and exits nonzero on any malformed
//! file, so a hand-edited or truncated artifact cannot land silently.
//!
//! Artifacts self-identify via a `"schema"` discriminator field:
//! `"kernels-v1"` selects the kernel-dispatch schema, `"backfill-v1"` the
//! partitioned-backfill schema, `"serving-v1"` the always-on-serving
//! schema, `"net-v1"` the wire-transport schema, `"elastic-v1"` the
//! elastic-rescale schema; its absence selects the original
//! engine-transport schema (recorded before discriminators existed).

use spca_bench::json::{
    BackfillBenchReport, ElasticBenchReport, EngineBenchReport, Json, KernelBenchReport,
    NetBenchReport, ServingBenchReport, BACKFILL_SCHEMA, ELASTIC_SCHEMA, KERNELS_SCHEMA,
    NET_SCHEMA, SERVING_SCHEMA,
};
use std::process::ExitCode;

fn check(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    let value = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match value.get("schema").and_then(|s| s.as_str()) {
        Some(KERNELS_SCHEMA) => {
            let report =
                KernelBenchReport::from_json(&value).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{path}: ok (kernels-v1, {} cells, backend {}, {} reps)",
                report.results.len(),
                report.backend,
                report.reps
            );
        }
        Some(BACKFILL_SCHEMA) => {
            let report =
                BackfillBenchReport::from_json(&value).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{path}: ok (backfill-v1, {} partitions, warm {:.1}x, {} cores)",
                report.partitions, report.warm_speedup, report.cores
            );
        }
        Some(SERVING_SCHEMA) => {
            let report =
                ServingBenchReport::from_json(&value).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{path}: ok (serving-v1, {:.0} qps, p99 {:.0}us, ingest ratio {:.3}, {} cores)",
                report.qps, report.p99_us, report.ingest_ratio, report.cores
            );
        }
        Some(NET_SCHEMA) => {
            let report = NetBenchReport::from_json(&value).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{path}: ok (net-v1, codec {:.1}x CSV, dist ratio {:.2}, {:.0}us/msg, {} cores)",
                report.codec_vs_csv,
                report.dist_ratio,
                report.per_message_overhead_us,
                report.cores
            );
        }
        Some(ELASTIC_SCHEMA) => {
            let report =
                ElasticBenchReport::from_json(&value).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{path}: ok (elastic-v1, {} out / {} in, consistency {:.4}, out {:.1}ms / in \
                 {:.1}ms, {} cores)",
                report.scale_outs,
                report.scale_ins,
                report.consistency,
                report.scale_out_latency_ms,
                report.scale_in_latency_ms,
                report.cores
            );
        }
        Some(other) => return Err(format!("{path}: unknown schema '{other}'")),
        None => {
            let report =
                EngineBenchReport::from_json(&value).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{path}: ok ({} cells, {} tuples/run, batch {})",
                report.results.len(),
                report.tuples,
                report.batch
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<&str> = if args.is_empty() {
        vec!["BENCH_engine.json", "BENCH_kernels.json"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let mut failed = false;
    for path in paths {
        if let Err(e) = check(path) {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
