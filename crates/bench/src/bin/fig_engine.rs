//! Engine-transport throughput grid: fused/unfused × 1/2/4 engines,
//! per-tuple transport (batch size 1) vs. the batched frame transport.
//!
//! This is the measurement behind the recorded `BENCH_engine.json`
//! artifact: the cross-PE batching optimization must hold its speedup on
//! the full application graph, not just in microbenchmarks. The workload
//! is deliberately transport-heavy (modest dimensionality, pre-generated
//! observations) so the number isolates what the transport change buys;
//! at paper-scale dimensions the PCA update dominates and batching is
//! simply neutral.
//!
//! Unfused cells run their cross-PE data links as `LinkKind::Network`
//! with a 1 µs modeled per-message overhead — PEs that are not fused
//! communicate over the network in the paper's deployment, and every
//! real send pays a fixed per-message cost (the repo's calibrated
//! cluster cost model puts it at *hundreds* of µs on the paper's 2012
//! hardware, so 1 µs is conservative). Fused cells have no cross-PE
//! transport and are unaffected; they are the no-network control row.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_bench::json::{EngineBenchReport, EngineBenchRow};
use spca_bench::{print_table, write_csv};
use spca_core::PcaConfig;
use spca_engine::{AppConfig, ParallelPcaApp, SyncStrategy};
use spca_spectra::PlantedSubspace;
use spca_streams::ops::GeneratorSource;
use spca_streams::{Engine, DEFAULT_BATCH_SIZE};
use std::sync::Arc;
use std::time::Instant;

const DIM: usize = 16;
const TUPLES: u64 = 20_000;
const RUNS: usize = 5;
/// Modeled per-message overhead on unfused cross-PE data links (µs).
const NET_DELAY_US: u64 = 1;

fn run_once(
    samples: &Arc<Vec<Vec<f64>>>,
    n_engines: usize,
    fuse: bool,
    batch: usize,
) -> (f64, u64, u64) {
    let pca = PcaConfig::new(DIM, 2).with_memory(2000).with_init_size(20);
    let mut cfg = AppConfig::new(n_engines, pca);
    cfg.fuse = fuse;
    cfg.sync = SyncStrategy::None;
    cfg.batch_size = batch;
    cfg.network_delay_us = NET_DELAY_US;
    let data = Arc::clone(samples);
    let cursor = Arc::new(Mutex::new(0usize));
    let source = Box::new(
        GeneratorSource::new(move |_| {
            let mut i = cursor.lock();
            let row = data[*i % data.len()].clone();
            *i += 1;
            Some((row, None))
        })
        .with_max_tuples(TUPLES),
    );
    let (g, _h) = ParallelPcaApp::build(&cfg, source);
    let t0 = Instant::now();
    let report = Engine::run(g);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(report.tuples_in_matching("pca-"), TUPLES);
    (
        TUPLES as f64 / dt,
        report.total_restarts(),
        report.total_pe_restarts(),
    )
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn measure(
    samples: &Arc<Vec<Vec<f64>>>,
    n_engines: usize,
    fuse: bool,
    batch: usize,
) -> (f64, u64, u64) {
    let mut restarts = 0;
    let mut pe_restarts = 0;
    let mut rates: Vec<f64> = (0..RUNS)
        .map(|_| {
            let (rate, r, pr) = run_once(samples, n_engines, fuse, batch);
            restarts += r;
            pe_restarts += pr;
            rate
        })
        .collect();
    (median(&mut rates), restarts, pe_restarts)
}

fn main() {
    // Pre-generate the stream so the generator cost is identical (and
    // negligible) in every cell.
    let w = PlantedSubspace::new(DIM, 2, 0.05);
    let mut rng = StdRng::seed_from_u64(42);
    let samples = Arc::new(
        (0..TUPLES as usize)
            .map(|_| w.sample(&mut rng))
            .collect::<Vec<_>>(),
    );

    let mut rows = Vec::new();
    let mut report_rows = Vec::new();
    let mut total_restarts = 0;
    let mut total_pe_restarts = 0;
    for fuse in [true, false] {
        for engines in [1usize, 2, 4] {
            let (batch1, r1, pr1) = measure(&samples, engines, fuse, 1);
            let (batched, rb, prb) = measure(&samples, engines, fuse, DEFAULT_BATCH_SIZE);
            total_restarts += r1 + rb;
            total_pe_restarts += pr1 + prb;
            let speedup = batched / batch1;
            rows.push(vec![
                if fuse { 1.0 } else { 0.0 },
                engines as f64,
                batch1,
                batched,
                speedup,
            ]);
            report_rows.push(EngineBenchRow {
                config: format!("{}-{engines}", if fuse { "fused" } else { "unfused" }),
                fused: fuse,
                engines,
                batch1_tuples_per_s: batch1,
                batched_tuples_per_s: batched,
                speedup,
            });
        }
    }

    let header = [
        "fused",
        "engines",
        "batch1_tuples_per_s",
        "batched_tuples_per_s",
        "speedup",
    ];
    print_table("engine transport throughput", &header, &rows);
    let csv = write_csv("fig_engine.csv", &header, &rows);
    println!("\nwrote {}", csv.display());

    let report = EngineBenchReport {
        benchmark: format!(
            "engine_throughput grid (d = {DIM}, {TUPLES} tuples, median of {RUNS} runs per \
             cell; unfused cross-PE links modeled at {NET_DELAY_US} µs per message)"
        ),
        machine_note: "single container vCPU, cargo run --release, same build for both columns"
            .to_string(),
        tuples: TUPLES,
        dim: DIM,
        batch: DEFAULT_BATCH_SIZE,
        target: "unfused 2-engine batched ≥ 1.5x over batch-size-1".to_string(),
        restarts: total_restarts,
        pe_restarts: total_pe_restarts,
        results: report_rows,
    };
    std::fs::write("BENCH_engine.json", format!("{}\n", report.to_json()))
        .expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");

    let key = report
        .results
        .iter()
        .find(|r| !r.fused && r.engines == 2)
        .expect("unfused-2 cell");
    println!(
        "unfused 2-engine speedup: {:.2}x ({:.0} → {:.0} tuples/s)",
        key.speedup, key.batch1_tuples_per_s, key.batched_tuples_per_s
    );
}
