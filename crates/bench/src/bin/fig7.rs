//! Figure 7: per-thread throughput vs dimensionality (log-scale in the
//! paper), for 1, 5, 10 and 20 synchronized engines on the 10-node cluster.
//!
//! The paper's findings this must reproduce in *shape*:
//!   * throughput/thread falls roughly inversely with dimension (the
//!     per-tuple SVD cost grows with d);
//!   * 5 and 10 threads show "good scaling capabilities" — their per-thread
//!     rate stays close to the single-remote-engine service rate;
//!   * 20 threads saturate the interconnect at low dimensions, dropping
//!     their per-thread rate below the 5/10-thread lines, with the penalty
//!     shrinking as the dimension (and thus compute share) grows.
//!
//! One caveat recorded in EXPERIMENTS.md: the paper's single distributed
//! thread underperforms even the 5-thread per-thread line, which the
//! authors attribute to "non optimal distribution of components"; our
//! simulator models the deliberate placements only, so its 1-thread line
//! underperforms the *fused* engine (Fig. 6) but matches the 5-thread
//! per-thread rate.
//!
//! Output: `target/figures/fig7_dimensionality.csv`.

use spca_bench::{calibrate_dimension_curve, print_table, write_csv};
use spca_cluster::{ClusterSim, ClusterSpec, CostModel, Placement, SimConfig};

const DIMS: &[usize] = &[250, 500, 1000, 1500, 2000];
const THREADS: &[usize] = &[1, 5, 10, 20];

fn main() {
    println!("Fig. 7 reproduction: tuples/s/thread vs dimensionality");
    println!("calibrating per-tuple update cost on this machine ...");
    let measured = calibrate_dimension_curve(DIMS, 5);
    for (d, t) in &measured {
        println!("  d = {d:>5}: {:.1} µs/tuple (this machine)", t * 1e6);
    }
    let cost = CostModel::paper().with_measurements(measured);
    let spec = ClusterSpec::paper();

    let mut rows = Vec::new();
    for &dim in DIMS {
        let mut row = vec![dim as f64];
        for &n in THREADS {
            // "For 20 threads the PCA components were grouped by 2 on all
            // distributed computing nodes evenly"; smaller counts go
            // round-robin like the paper's default placement.
            let placement = if n >= 2 * spec.n_nodes {
                Placement::grouped(n, 2, spec.n_nodes)
            } else {
                Placement::round_robin(n, spec.n_nodes)
            };
            let cfg = SimConfig {
                dim,
                ..Default::default()
            };
            let report = ClusterSim::new(spec.clone(), cost.clone(), placement, cfg).run();
            row.push(report.per_thread());
        }
        rows.push(row);
    }

    let path = write_csv(
        "fig7_dimensionality.csv",
        &[
            "dim",
            "tps_per_thread_1",
            "tps_per_thread_5",
            "tps_per_thread_10",
            "tps_per_thread_20",
        ],
        &rows,
    );
    println!("\nwrote {}", path.display());
    print_table(
        "Fig. 7: tuples/second/thread (simulated 10-node cluster)",
        &["dim", "1 thread", "5 threads", "10 threads", "20 threads"],
        &rows,
    );

    // Shape checks.
    let cell = |dim: usize, t_idx: usize| {
        rows.iter().find(|r| r[0] == dim as f64).expect("row")[t_idx + 1]
    };
    for &dim in DIMS {
        // Monotone decrease of the 5-thread line with dimension.
        if dim > DIMS[0] {
            assert!(
                cell(dim, 1) < cell(DIMS[0], 1),
                "per-thread rate must fall with d"
            );
        }
    }
    // At the smallest dimension the interconnect bites: 20 threads per-thread
    // rate below the 5- and 10-thread lines.
    assert!(
        cell(250, 3) < cell(250, 1),
        "20 threads should saturate at d=250"
    );
    assert!(
        cell(250, 3) < cell(250, 2),
        "20 threads below 10 threads at d=250"
    );
    // 5 and 10 threads scale well (per-thread within 25% of each other).
    let r5 = cell(250, 1);
    let r10 = cell(250, 2);
    assert!(
        (r5 - r10).abs() / r5 < 0.25,
        "5 vs 10 threads per-thread gap too large"
    );
    // At high dimension the engines, not the network, dominate: the
    // 20-thread line converges toward the others.
    let gap_low = cell(250, 1) / cell(250, 3);
    let gap_high = cell(2000, 1) / cell(2000, 3);
    assert!(
        gap_high < gap_low,
        "saturation penalty must shrink as d grows"
    );
    println!("\nshape check PASSED: inverse-d scaling, 5/10-thread efficiency, 20-thread saturation at low d.");
}
