//! Cloud elasticity demonstration (paper §I/§IV's motivation: "dynamic
//! cluster scaling allows flexible adapting the available computing power
//! to the data volume demand").
//!
//! Drives the autoscaling policy against a survey-like diurnal load curve
//! (nightly observing ramps the ingest up ~20×, daytime is calibration
//! trickle) and prints the pool-size / satisfaction trace.
//!
//! Output: `target/figures/autoscale.csv`.

use spca_bench::{print_table, write_csv};
use spca_cluster::{simulate_elastic, ClusterSpec, CostModel, ElasticPolicy, SimConfig};

fn main() {
    let spec = ClusterSpec::paper();
    let cost = CostModel::paper();
    let cfg = SimConfig {
        duration: 8.0,
        warmup: 2.0,
        ..Default::default()
    };

    // 24 "hours": night (hours 0–8) at high ingest, day at trickle, with a
    // burst when a transient alert arrives at hour 20.
    let load: Vec<f64> = (0..24)
        .map(|h| match h {
            0..=8 => 9000.0 + 2000.0 * ((h as f64) * 0.7).sin(),
            20 => 14000.0,
            _ => 600.0,
        })
        .collect();

    let reports = simulate_elastic(&spec, &cost, &cfg, &load, &ElasticPolicy::default());

    let rows: Vec<Vec<f64>> = reports
        .iter()
        .enumerate()
        .map(|(h, r)| {
            vec![
                h as f64,
                r.offered,
                r.engines as f64,
                r.achieved,
                r.satisfaction,
                r.action as f64,
            ]
        })
        .collect();
    let path = write_csv(
        "autoscale.csv",
        &[
            "hour",
            "offered_tps",
            "engines",
            "achieved_tps",
            "satisfaction",
            "action",
        ],
        &rows,
    );
    println!("wrote {}", path.display());
    print_table(
        "elastic pool over a survey day",
        &[
            "hour", "offered", "engines", "achieved", "satisf.", "action",
        ],
        &rows,
    );

    // Shape checks: the pool follows the load in both directions, and
    // steady-night satisfaction is high.
    let night_max = reports[..9].iter().map(|r| r.engines).max().unwrap();
    let midday = reports[14].engines;
    assert!(night_max >= 6, "night pool too small: {night_max}");
    assert!(
        midday < night_max,
        "pool failed to shrink by midday: {midday} vs {night_max}"
    );
    // A reactive policy lags load swings by an epoch; require ≥0.8 within
    // the night and full satisfaction once settled.
    let late_night: Vec<f64> = reports[4..9].iter().map(|r| r.satisfaction).collect();
    assert!(
        late_night.iter().all(|&s| s > 0.8),
        "night demand unsatisfied after scale-up: {late_night:?}"
    );
    assert!(late_night.iter().filter(|&&s| s >= 0.999).count() >= 3);
    println!("\nshape check PASSED: pool tracks the diurnal load up and down.");
}
